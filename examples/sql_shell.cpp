// Interactive SQL shell over a generated factorised database: type queries
// against the materialised view R1 (factorised) or the base relations
// Orders / Packages / Items (flat input path), and compare engines with
// the \rdb toggle.
//
// Usage: sql_shell [scale]               (default scale 2)
// Commands:  \rdb           toggle evaluation with the relational baseline
//            \plan          toggle printing the f-plan
//            \stats         per-node union statistics of the view R1
//            \threads N     resize the execution pool (parallel build,
//                           enumeration and aggregation; 1 = serial)
//            \save <path>   snapshot the whole database to a *.fdbs file
//            \open <path>   replace the database with a saved snapshot
//                           (views reopen lazily, zero-copy via mmap)
//            \check         run the deep invariant checker (fdb/check)
//                           over every view, the dictionary, and the
//                           on-disk chain; prints each issue found
//            \checkpoint <path>
//                           incremental persistence: the first call (or a
//                           fold) writes a base snapshot, later calls
//                           append only what changed since (a delta file
//                           <path>.delta-N) — O(changes), not O(database)
//            \wal <path>    enable the write-ahead log bound to <path>
//                           (checkpoints there first; every commit is
//                           durable with one fsync)
//            \begin / \commit / \rollback
//                           group \insert/\delete ops into one atomic,
//                           durably-logged commit group
//            \insert V v1,v2,...   insert a tuple into view V
//                                  (autocommits outside \begin)
//            \delete V v1,v2,...   delete a tuple from view V
//            \wal-status    log path, pending ops/bytes, committed groups
//            \timing on|off per-statement wall time and row count (psql
//                           style; default off)
//            \metrics       dump the metrics registry (counters, gauges,
//                           latency histograms with p50/p95/p99)
//            \metrics-json  the same, machine-readable
//            \metrics-reset zero every counter/gauge/histogram and drop
//                           the statement store (fresh measurement window)
//            \statements    per-statement aggregates (pg_stat_statements
//                           style): calls, errors, latency, rows, engine
//                           split — same data as SELECT ... FROM
//                           fdb.statements
//            \log [N]       the last N structured events (slow queries,
//                           recovery, checkpoints, WAL stalls; default 20)
//            \history [start [ms] | stop]
//                           control the background metrics sampler and
//                           show windowed rates / percentile history
//            \profile <path>
//                           write the last traced query (EXPLAIN ANALYZE)
//                           as a chrome://tracing JSON file
//            \connect host:port
//                           client mode: speak the wire protocol to a
//                           running fdb_server. SQL lines and \insert /
//                           \delete / \begin / \commit / \rollback are
//                           sent over the wire; other verbs stay local
//            \disconnect    leave client mode
//            \q             quit (stops the sampler and flushes the
//                           FDB_LOG sink; Ctrl-C does the same)
//
// Prefix any query with EXPLAIN ANALYZE to run it and print the per-phase
// trace: wall time, cardinalities, and the factorised-vs-flat size gap.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fdb/check/check.h"
#include "fdb/core/stats.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/exec/task_pool.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/sampler.h"
#include "fdb/obs/statements.h"
#include "fdb/obs/trace.h"
#include "fdb/serve/client.h"
#include "fdb/workload/generator.h"

using namespace fdb;

// Ctrl-C: note it and let the interrupted getline() fall out of the main
// loop, so the shell always leaves through the cleanup path below.
static volatile sig_atomic_t g_interrupted = 0;
static void OnInterrupt(int) { g_interrupted = 1; }

// Parses "V 1,2,foo" into a view name and a tuple (integers where the
// whole cell parses as one, strings otherwise).
static bool ParseTupleArg(const std::string& arg, std::string* view,
                          Tuple* tuple) {
  std::istringstream in(arg);
  std::string cells;
  if (!(in >> *view) || !(in >> cells)) return false;
  std::istringstream cs(cells);
  std::string cell;
  while (std::getline(cs, cell, ',')) {
    try {
      size_t used = 0;
      int64_t v = std::stoll(cell, &used);
      if (used == cell.size()) {
        tuple->push_back(Value(v));
        continue;
      }
    } catch (const std::exception&) {
    }
    tuple->push_back(Value(cell));
  }
  return !tuple->empty();
}

// Renders a tuple as a VALUES(...) literal list for the wire protocol's
// SQL write syntax (\insert V 1,foo → INSERT INTO V VALUES (1, 'foo')).
static std::string TupleToValuesList(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    const Value& v = tuple[i];
    if (v.is_string()) {
      out += '\'';
      for (char c : v.as_string()) {
        out += c;
        if (c == '\'') out += '\'';  // '' escape
      }
      out += '\'';
    } else {
      out += v.ToString();
    }
  }
  out += ")";
  return out;
}

// Prints one wire-protocol statement outcome the way the local engines
// print theirs: header, up to 25 rows, then the server-side stats line.
static void PrintWireResult(const serve::Client::Result& res) {
  if (res.retry) {
    std::cout << "server busy: retry in " << res.retry_info.retry_after_ms
              << " ms (" << res.retry_info.message << ")\n";
    return;
  }
  if (!res.ok) {
    std::cout << "error [" << serve::ErrorCodeName(res.error.code)
              << "]: " << res.error.message << "\n";
    return;
  }
  for (size_t i = 0; i < res.columns.size(); ++i) {
    std::cout << (i > 0 ? " | " : "") << res.columns[i];
  }
  if (!res.columns.empty()) std::cout << "\n";
  size_t shown = 0;
  for (const std::vector<Value>& row : res.rows) {
    if (++shown > 25) {
      std::cout << "  ... " << res.rows.size() - 25 << " more rows\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << (i > 0 ? " | " : "") << row[i].ToString();
    }
    std::cout << "\n";
  }
  std::cout << "(" << res.stats.rows << " row"
            << (res.stats.rows == 1 ? "" : "s") << ", "
            << static_cast<double>(res.stats.elapsed_ns) / 1e6
            << " ms server";
  if (res.stats.queue_wait_ns > 0) {
    std::cout << " + " << static_cast<double>(res.stats.queue_wait_ns) / 1e6
              << " ms queued";
  }
  std::cout << ")\n";
}

int main(int argc, char** argv) {
  // The shell is a diagnostic surface, not a benchmark: run with metrics
  // on so \metrics has something to show. FDB_METRICS=0 keeps them off.
  const char* menv = std::getenv("FDB_METRICS");
  if (menv == nullptr || std::string(menv) != "0") {
    obs::SetMetricsEnabled(true);
  }
  // Same for the structured event log: \log (and fdb.events) should have
  // something to show. FDB_LOG=0 keeps it off; FDB_LOG=<path> (handled by
  // EventLog itself) additionally appends JSONL to <path>.
  const char* lenv = std::getenv("FDB_LOG");
  if (lenv == nullptr || std::string(lenv) != "0") {
    obs::SetLogEnabled(true);
  }
  int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  Database db;
  int64_t singletons = InstallWorkload(&db, SmallParams(scale), "R1");
  db.AddRelation("R1flat", db.view("R1")->Flatten());

  std::cout << "FDB shell — factorised view R1 (" << singletons
            << " singletons), relations Orders/Packages/Items/R1flat\n"
            << "example: SELECT customer, sum(price) AS revenue FROM R1 "
               "GROUP BY customer ORDER BY revenue DESC LIMIT 5;\n";

  FdbEngine fdb_engine(&db);
  RdbEngine rdb_engine(&db);
  bool use_rdb = false;
  bool show_plan = false;
  bool timing = false;
  std::shared_ptr<obs::Trace> last_trace;
  serve::Client client;

  // No SA_RESTART: Ctrl-C interrupts the blocking read under getline so
  // the loop exits and the cleanup below (sampler, log sink) still runs.
  struct sigaction sa {};
  sa.sa_handler = OnInterrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a dead server must not kill the shell

  std::string line;
  while (std::cout << (client.connected() ? "srv> "
                       : use_rdb          ? "rdb> "
                                          : "fdb> ") &&
         std::cout.flush() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line.rfind("\\connect ", 0) == 0) {
      std::string target = line.substr(9);
      size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::cout << "usage: \\connect host:port\n";
        continue;
      }
      try {
        client.Connect(target.substr(0, colon),
                       std::atoi(target.c_str() + colon + 1));
        std::cout << "connected to " << target
                  << " — statements now run server-side (\\disconnect to "
                     "return)\n";
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line == "\\disconnect") {
      if (client.connected()) {
        client.Close();
        std::cout << "disconnected — statements run locally again\n";
      } else {
        std::cout << "not connected\n";
      }
      continue;
    }
    if (client.connected()) {
      // Client mode: SQL and the write/txn verbs go over the wire; the
      // remaining backslash verbs fall through to the local handlers.
      std::string stmt;
      if (line[0] != '\\') {
        stmt = line;
      } else if (line == "\\begin" || line == "\\commit" ||
                 line == "\\rollback") {
        stmt = line == "\\begin"    ? "BEGIN"
               : line == "\\commit" ? "COMMIT"
                                    : "ROLLBACK";
      } else if (line.rfind("\\insert ", 0) == 0 ||
                 line.rfind("\\delete ", 0) == 0) {
        std::string view;
        Tuple tuple;
        if (!ParseTupleArg(line.substr(8), &view, &tuple)) {
          std::cout << "usage: " << line.substr(0, 7)
                    << " <view> v1,v2,...\n";
          continue;
        }
        stmt = (line[1] == 'i' ? "INSERT INTO " : "DELETE FROM ") + view +
               " VALUES " + TupleToValuesList(tuple);
      }
      if (!stmt.empty()) {
        try {
          int64_t t0 = obs::NowNs();
          serve::Client::Result res = client.Query(stmt);
          PrintWireResult(res);
          if (timing && res.ok) {
            std::cout << "Time: "
                      << static_cast<double>(obs::NowNs() - t0) / 1e6
                      << " ms round trip\n";
          }
        } catch (const std::exception& e) {
          std::cout << "connection lost: " << e.what() << "\n";
        }
        continue;
      }
    }
    if (line == "\\rdb") {
      use_rdb = !use_rdb;
      continue;
    }
    if (line == "\\plan") {
      show_plan = !show_plan;
      continue;
    }
    if (line.rfind("\\timing", 0) == 0) {
      std::string arg = line.size() > 8 ? line.substr(8) : "";
      if (arg == "on") {
        timing = true;
      } else if (arg == "off") {
        timing = false;
      } else if (arg.empty()) {
        timing = !timing;
      } else {
        std::cout << "usage: \\timing [on|off]\n";
        continue;
      }
      std::cout << "timing " << (timing ? "on" : "off") << "\n";
      continue;
    }
    if (line == "\\metrics") {
      std::cout << obs::Registry::Instance().RenderText();
      continue;
    }
    if (line == "\\metrics-json") {
      std::cout << obs::Registry::Instance().RenderJson() << "\n";
      continue;
    }
    if (line == "\\metrics-reset") {
      obs::Registry::Instance().ResetAll();
      obs::StatementStore::Instance().Clear();
      std::cout << "metrics registry and statement store reset\n";
      continue;
    }
    if (line == "\\statements") {
      std::vector<obs::StatementRow> rows =
          obs::StatementStore::Instance().Snapshot();
      if (rows.empty()) {
        std::cout << "no statements recorded yet (metrics "
                  << (obs::MetricsEnabled() ? "on" : "OFF — enable with "
                                                     "FDB_METRICS=1")
                  << ")\n";
        continue;
      }
      std::cout << rows.size() << " statement"
                << (rows.size() == 1 ? "" : "s")
                << " (by total time; also: SELECT ... FROM fdb.statements)\n";
      size_t shown = 0;
      for (const obs::StatementRow& r : rows) {
        if (++shown > 25) {
          std::cout << "  ... " << rows.size() - 25 << " more\n";
          break;
        }
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  calls=%llu (fdb=%llu rdb=%llu err=%llu) "
                      "total=%.3fms mean=%.1fus p99=%.1fus rows=%llu",
                      static_cast<unsigned long long>(r.calls),
                      static_cast<unsigned long long>(r.calls_fdb),
                      static_cast<unsigned long long>(r.calls_rdb),
                      static_cast<unsigned long long>(r.errors),
                      static_cast<double>(r.total_ns) / 1e6,
                      r.calls == 0
                          ? 0.0
                          : static_cast<double>(r.total_ns) /
                                static_cast<double>(r.calls) / 1e3,
                      r.latency.Percentile(0.99) / 1e3,
                      static_cast<unsigned long long>(r.rows));
        std::cout << buf << "\n    " << r.text << "\n";
      }
      continue;
    }
    if (line == "\\log" || line.rfind("\\log ", 0) == 0) {
      if (!obs::LogEnabled()) {
        std::cout << "event log is OFF (it was disabled with FDB_LOG=0)\n";
        continue;
      }
      size_t want = 20;
      if (line.size() > 5) {
        int n = std::atoi(line.c_str() + 5);
        if (n > 0) want = static_cast<size_t>(n);
      }
      std::vector<obs::Event> events = obs::EventLog::Instance().Snapshot();
      uint64_t dropped = obs::EventLog::Instance().dropped();
      if (events.empty()) {
        std::cout << "no events yet (slow-query threshold: "
                  << obs::EventLog::Instance().slow_query_ns() / 1000000
                  << " ms — FDB_SLOW_QUERY_MS to change)\n";
        continue;
      }
      size_t start = events.size() > want ? events.size() - want : 0;
      std::cout << "events " << events[start].seq << ".."
                << events.back().seq << " of " << events.back().seq
                << " emitted";
      if (dropped > 0) std::cout << " (" << dropped << " rotated out)";
      std::cout << "\n";
      for (size_t i = start; i < events.size(); ++i) {
        const obs::Event& e = events[i];
        std::cout << "  #" << e.seq << " " << obs::EventTypeName(e.type)
                  << " " << e.DetailString() << "\n";
      }
      continue;
    }
    if (line == "\\history" || line.rfind("\\history ", 0) == 0) {
      std::string arg = line.size() > 9 ? line.substr(9) : "";
      if (arg.rfind("start", 0) == 0) {
        int64_t ms = 1000;
        if (arg.size() > 6) {
          int64_t n = std::atoll(arg.c_str() + 6);
          if (n >= 1) ms = n;
        }
        db.StartMetricsSampler(ms);
        std::cout << "metrics sampler started (every " << ms << " ms)\n";
        continue;
      }
      if (arg == "stop") {
        db.StopMetricsSampler();
        std::cout << "metrics sampler stopped\n";
        continue;
      }
      std::shared_ptr<obs::MetricsSampler> sampler = db.metrics_sampler();
      if (sampler == nullptr) {
        std::cout << "sampler not running (usage: \\history [start [ms] | "
                     "stop]; query with SELECT ... FROM fdb.metrics_history)"
                     "\n";
        continue;
      }
      std::vector<obs::MetricsSampler::Window> windows = sampler->Windows();
      std::cout << sampler->ticks() << " tick"
                << (sampler->ticks() == 1 ? "" : "s") << ", "
                << windows.size() << " metrics\n";
      for (const obs::MetricsSampler::Window& w : windows) {
        char buf[160];
        if (w.is_hist) {
          std::snprintf(buf, sizeof(buf),
                        "  %-28s points=%zu p50=%.1fus p99=%.1fus",
                        w.metric.c_str(), w.points, w.last_p50 / 1e3,
                        w.last_p99 / 1e3);
        } else {
          std::snprintf(buf, sizeof(buf),
                        "  %-28s points=%zu last=%.0f rate=%.1f/s",
                        w.metric.c_str(), w.points, w.last_value,
                        w.rate_per_s);
        }
        std::cout << buf << "\n";
      }
      continue;
    }
    if (line.rfind("\\profile ", 0) == 0) {
      std::string path = line.substr(9);
      if (last_trace == nullptr) {
        std::cout << "error: no trace yet — run an EXPLAIN ANALYZE query "
                     "first\n";
        continue;
      }
      std::ofstream out(path);
      if (!out) {
        std::cout << "error: cannot write " << path << "\n";
        continue;
      }
      out << last_trace->ToChromeJson();
      std::cout << "wrote " << path
                << " — open chrome://tracing (or https://ui.perfetto.dev) "
                   "and load it\n";
      continue;
    }
    if (line.rfind("\\threads", 0) == 0) {
      int n = line.size() > 9 ? std::atoi(line.c_str() + 9) : 0;
      if (n >= 1) {
        exec::TaskPool::SetDefaultThreads(n);
        std::cout << "execution pool resized to " << n << " thread"
                  << (n == 1 ? "" : "s") << "\n";
      } else {
        std::cout << "pool width: "
                  << exec::TaskPool::Default().num_threads()
                  << " (usage: \\threads N)\n";
      }
      continue;
    }
    if (line == "\\stats") {
      // After \open the database may lack a view named R1.
      const Factorisation* r1 = db.view("R1");
      if (r1 != nullptr) {
        std::cout << FactStatsToString(*r1, db.registry());
      } else {
        std::cout << "error: no view R1 in the current database\n";
      }
      continue;
    }
    if (line == "\\check") {
      try {
        std::cout << check::ValidateDatabase(db).ToString();
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line.rfind("\\checkpoint ", 0) == 0) {
      std::string path = line.substr(12);
      try {
        storage::CheckpointInfo info = db.Checkpoint(path);
        switch (info.kind) {
          case storage::CheckpointInfo::kBase:
            std::cout << "checkpoint: wrote base " << path << " ("
                      << info.bytes << " bytes)\n";
            break;
          case storage::CheckpointInfo::kDelta:
            std::cout << "checkpoint: appended "
                      << storage::DeltaPath(path, info.seq) << " ("
                      << info.bytes << " bytes)\n";
            break;
          case storage::CheckpointInfo::kNoop:
            std::cout << "checkpoint: no changes since the last one\n";
            break;
        }
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line.rfind("\\wal ", 0) == 0) {
      try {
        db.EnableWal(line.substr(5));
        std::cout << "wal: logging to " << db.WalStatus().path << "\n";
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line == "\\wal-status") {
      storage::WalStatus st = db.WalStatus();
      if (!st.enabled) {
        std::cout << "wal: disabled (use \\wal <path>)\n";
      } else {
        std::cout << "wal: " << st.path << (st.broken ? " [BROKEN]" : "")
                  << "\n  committed groups: " << st.committed_groups
                  << ", log bytes: " << st.wal_bytes << "\n  txn: "
                  << (st.in_txn ? "open" : "none") << ", pending ops: "
                  << st.pending_ops << " (" << st.pending_bytes
                  << " bytes)\n";
      }
      continue;
    }
    if (line == "\\begin" || line == "\\commit" || line == "\\rollback") {
      try {
        if (line == "\\begin") {
          db.Begin();
          std::cout << "txn: begun\n";
        } else if (line == "\\commit") {
          uint64_t seq = db.Commit();
          std::cout << "txn: committed"
                    << (seq != 0 ? " (group #" + std::to_string(seq) + ")"
                                 : " (empty)")
                    << "\n";
        } else {
          db.Rollback();
          std::cout << "txn: rolled back\n";
        }
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line.rfind("\\insert ", 0) == 0 || line.rfind("\\delete ", 0) == 0) {
      std::string view;
      Tuple tuple;
      if (!ParseTupleArg(line.substr(8), &view, &tuple)) {
        std::cout << "usage: " << line.substr(0, 7) << " <view> v1,v2,...\n";
        continue;
      }
      try {
        if (line[1] == 'i') {
          db.Insert(view, tuple);
        } else {
          db.Delete(view, tuple);
        }
        std::cout << (db.WalStatus().in_txn ? "buffered\n" : "applied\n");
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    if (line.rfind("\\save ", 0) == 0 || line.rfind("\\open ", 0) == 0) {
      std::string path = line.substr(6);
      try {
        if (line[1] == 's') {
          db.Save(path);
          std::cout << "saved to " << path << "\n";
        } else {
          db = Database::Open(path);
          std::cout << "opened " << path << " — views:";
          for (const std::string& v : db.ViewNames()) std::cout << " " << v;
          std::cout << "; relations:";
          for (const std::string& r : db.RelationNames()) {
            std::cout << " " << r;
          }
          std::cout << "\n";
        }
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      continue;
    }
    try {
      int64_t t0 = obs::NowNs();
      int64_t rows = 0;
      if (use_rdb) {
        RdbResult r = rdb_engine.ExecuteSql(line);
        rows = r.flat.size();
        if (r.trace != nullptr) {
          last_trace = r.trace;
          std::cout << obs::ExplainReport(*r.trace);
        }
        std::cout << r.flat.ToString(db.registry(), 25)
                  << "(" << r.seconds * 1e3 << " ms)\n";
      } else {
        FdbResult r = fdb_engine.ExecuteSql(line);
        rows = r.flat.size();
        if (show_plan) {
          std::cout << "plan: " << PlanToString(r.plan, db.registry())
                    << "\n";
        }
        if (r.trace != nullptr) {
          last_trace = r.trace;
          std::cout << obs::ExplainReport(*r.trace);
        }
        std::cout << r.flat.ToString(db.registry(), 25) << "("
                  << (r.plan_seconds + r.exec_seconds + r.enum_seconds) *
                         1e3
                  << " ms)\n";
      }
      if (timing) {
        std::cout << "Time: " << static_cast<double>(obs::NowNs() - t0) / 1e6
                  << " ms (" << rows << " row" << (rows == 1 ? "" : "s")
                  << ")\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  // Orderly exit for \q, EOF, and Ctrl-C alike: close the wire session,
  // stop the background sampler thread, and flush the FDB_LOG JSONL sink
  // so no buffered events are lost.
  if (g_interrupted) std::cout << "\n";
  client.Close();
  db.StopMetricsSampler();
  obs::EventLog::Instance().SetSinkPath("");
  std::cout << "bye\n";
  return 0;
}
