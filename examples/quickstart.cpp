// Quickstart: the paper's running example (Figure 1 / Example 1) in ~60
// lines of API use. Builds the pizzeria database, materialises the
// factorised view R = Orders ⋈ Pizzas ⋈ Items over the f-tree T1, and runs
// the two queries of Example 1 through the FDB engine.

#include <iostream>

#include "fdb/core/build.h"
#include "fdb/engine/fdb_engine.h"

using namespace fdb;

int main() {
  Database db;
  AttributeRegistry& reg = db.registry();
  AttrId customer = reg.Intern("customer"), date = reg.Intern("date"),
         pizza = reg.Intern("pizza"), item = reg.Intern("item"),
         price = reg.Intern("price");

  // Base relations (Figure 1).
  Relation orders{RelSchema({customer, date, pizza})};
  orders.Add({Value("Mario"), Value("Monday"), Value("Capricciosa")});
  orders.Add({Value("Mario"), Value("Tuesday"), Value("Margherita")});
  orders.Add({Value("Pietro"), Value("Friday"), Value("Hawaii")});
  orders.Add({Value("Lucia"), Value("Friday"), Value("Hawaii")});
  orders.Add({Value("Mario"), Value("Friday"), Value("Capricciosa")});

  Relation pizzas{RelSchema({pizza, item})};
  for (const char* p : {"Margherita", "Capricciosa", "Hawaii"}) {
    pizzas.Add({Value(p), Value("base")});
  }
  pizzas.Add({Value("Capricciosa"), Value("ham")});
  pizzas.Add({Value("Capricciosa"), Value("mushrooms")});
  pizzas.Add({Value("Hawaii"), Value("ham")});
  pizzas.Add({Value("Hawaii"), Value("pineapple")});

  Relation items{RelSchema({item, price})};
  items.Add({Value("base"), Value(6)});
  items.Add({Value("ham"), Value(1)});
  items.Add({Value("mushrooms"), Value(1)});
  items.Add({Value("pineapple"), Value(2)});

  // The f-tree T1: pizza → {date → customer, item → price}.
  FTree t1;
  int n_pizza = t1.AddNode({pizza}, -1);
  int n_date = t1.AddNode({date}, n_pizza);
  t1.AddNode({customer}, n_date);
  int n_item = t1.AddNode({item}, n_pizza);
  t1.AddNode({price}, n_item);
  t1.AddEdge({{customer, date, pizza}, 5.0, "Orders"});
  t1.AddEdge({{pizza, item}, 7.0, "Pizzas"});
  t1.AddEdge({{item, price}, 4.0, "Items"});

  // Materialise the factorised view.
  Factorisation r = FactoriseJoin(t1, {&orders, &pizzas, &items});
  std::cout << "factorised view R over T1:\n  " << r.ToString(reg) << "\n";
  std::cout << "singletons: " << r.CountSingletons()
            << "  (flat join would hold " << r.CountTuples()
            << " tuples x 5 columns)\n\n";

  db.AddRelation("Orders", std::move(orders));
  db.AddRelation("Pizzas", std::move(pizzas));
  db.AddRelation("Items", std::move(items));
  db.AddView("R", std::move(r));

  FdbEngine engine(&db);

  // Query S of Example 1: price of each ordered pizza.
  FdbResult s = engine.ExecuteSql(
      "SELECT customer, date, pizza, sum(price) AS total FROM R "
      "GROUP BY customer, date, pizza");
  std::cout << "S = price of each ordered pizza:\n"
            << s.flat.ToString(reg) << "\n";

  // Query P of Example 1: revenue per customer (expected 9 / 22 / 9).
  FdbResult p = engine.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer");
  std::cout << "P = revenue per customer:\n" << p.flat.ToString(reg);
  std::cout << "\nf-plan used: " << PlanToString(p.plan, reg) << "\n";
  return 0;
}
