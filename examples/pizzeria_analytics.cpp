// Analytics over the paper's §6 synthetic workload: generates the
// Orders/Packages/Items database at a chosen scale, materialises the
// factorised view R1, and answers a batch of reporting queries with both
// engines, printing timings and the factorisation sizes — a miniature of
// Experiments 1–3.
//
// Usage: pizzeria_analytics [scale]      (default scale 4)

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/workload/generator.h"

using namespace fdb;

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 4;
  Database db;
  WorkloadParams params = SmallParams(scale);
  int64_t singletons = InstallWorkload(&db, params, "R1");

  Relation flat = db.view("R1")->Flatten();
  std::cout << "scale " << scale << ": |Orders| = "
            << db.relation("Orders")->size()
            << ", |R1 flat| = " << flat.size() << " tuples ("
            << flat.size() * 5 << " singletons), factorised = "
            << singletons << " singletons, ratio = " << std::fixed
            << std::setprecision(1)
            << static_cast<double>(flat.size()) * 5 / singletons << "x\n\n";
  db.AddRelation("R1flat", std::move(flat));

  FdbEngine fdb_engine(&db);
  RdbEngine rdb_engine(&db);

  struct Report {
    const char* label;
    const char* fdb_sql;
    const char* rdb_sql;
  };
  const Report reports[] = {
      {"revenue per customer",
       "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer",
       "SELECT customer, sum(price) AS revenue FROM R1flat GROUP BY "
       "customer"},
      {"daily revenue per package",
       "SELECT date, package, sum(price) FROM R1 GROUP BY date, package",
       "SELECT date, package, sum(price) FROM R1flat GROUP BY date, "
       "package"},
      {"package price statistics",
       "SELECT package, min(price), max(price), avg(price) FROM R1 GROUP "
       "BY package",
       "SELECT package, min(price), max(price), avg(price) FROM R1flat "
       "GROUP BY package"},
      {"top customers (revenue >= 100)",
       "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
       "HAVING revenue >= 100 ORDER BY revenue DESC LIMIT 5",
       "SELECT customer, sum(price) AS revenue FROM R1flat GROUP BY "
       "customer HAVING revenue >= 100 ORDER BY revenue DESC LIMIT 5"},
      {"total singletons sold", "SELECT count(*) FROM R1",
       "SELECT count(*) FROM R1flat"},
  };

  for (const Report& rep : reports) {
    FdbResult fr = fdb_engine.ExecuteSql(rep.fdb_sql);
    RdbResult rr = rdb_engine.ExecuteSql(rep.rdb_sql);
    bool agree = fr.flat.BagEquals(rr.flat);
    double fdb_ms =
        (fr.plan_seconds + fr.exec_seconds + fr.enum_seconds) * 1e3;
    std::cout << std::left << std::setw(34) << rep.label << " FDB "
              << std::setw(9) << std::setprecision(3) << fdb_ms
              << " ms   RDB " << std::setw(9) << rr.seconds * 1e3
              << " ms   rows " << fr.flat.size()
              << (agree ? "" : "   !! ENGINES DISAGREE") << "\n";
  }

  std::cout << "\nsample (revenue per customer, first 5 rows):\n"
            << fdb_engine
                   .ExecuteSql(
                       "SELECT customer, sum(price) AS revenue FROM R1 "
                       "GROUP BY customer LIMIT 5")
                   .flat.ToString(db.registry());
  return 0;
}
