// Concurrent serving demo: many reader threads run aggregate queries
// against a materialised view while a writer applies a stream of updates
// through the Database's epoch-style view map — readers grab a snapshot
// (shared_ptr) of the current version and never block, the writer builds
// each new version off-line on shared arenas and swaps it in, and
// generational compaction retires dead versions once the last reader
// drops them.
//
// Usage: concurrent_readers [scale] [readers] [writes]   (defaults 2 4 300)

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "fdb/exec/task_pool.h"
#include "fdb/workload/generator.h"

using namespace fdb;

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  int num_readers = argc > 2 ? std::atoi(argv[2]) : 4;
  int num_writes = argc > 3 ? std::atoi(argv[3]) : 300;

  Database db;
  InstallWorkload(&db, SmallParams(scale), "R1");

  // The updatable view: Orders as a sorted path trie (date → customer →
  // package), the shape InsertTuple/DeleteTuple maintain incrementally.
  AttributeRegistry& reg = db.registry();
  AttrId date = *reg.Find("date"), customer = *reg.Find("customer"),
         package = *reg.Find("package");
  db.AddView("OrdersByDate",
             FactoriseRelation(*db.relation("Orders"),
                               {date, customer, package}));
  int64_t base_orders = db.ViewSnapshot("OrdersByDate")->CountTuples();

  std::cout << "serving " << base_orders << " orders to " << num_readers
            << " reader threads while applying " << num_writes
            << " inserts (pool: "
            << exec::TaskPool::Default().num_threads() << " threads)\n";

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < num_readers; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // A snapshot pins one consistent version for the whole query —
        // updates and compaction proceed underneath without blocking it.
        std::shared_ptr<const Factorisation> v =
            db.ViewSnapshot("OrdersByDate");
        int64_t n = v->CountTuples();
        if (n < base_orders) {
          std::cerr << "reader saw a torn version!\n";
          std::exit(1);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int64_t i = 0; i < num_writes; ++i) {
    db.UpdateView("OrdersByDate", [&](Factorisation* f) {
      // New synthetic order far outside the generated id ranges.
      Tuple t{Value(int64_t{9000000} + i), Value(int64_t{1}),
              Value(int64_t{1})};
      InsertTuple(f, t);
    });
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  int64_t final_orders = db.ViewSnapshot("OrdersByDate")->CountTuples();
  std::cout << "served " << queries.load() << " snapshot queries; view grew "
            << base_orders << " -> " << final_orders << " orders\n";
  return final_orders == base_orders + num_writes ? 0 : 1;
}
