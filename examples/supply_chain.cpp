// A TPC-H-flavoured supply-chain scenario on a deeper schema than the
// paper's pizzeria: Customer ⋈ COrders ⋈ Lineitem ⋈ Part, factorised over a
// four-way branching f-tree. Shows the kind of reporting workload the
// paper's introduction motivates, on both engines.
//
// Usage: supply_chain [scale]            (default scale 2)

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "fdb/fdb.h"
#include "fdb/workload/tpch_lite.h"

using namespace fdb;

int main(int argc, char** argv) {
  TpchLiteParams params;
  params.scale = argc > 1 ? std::atoi(argv[1]) : 2;

  Database db;
  int64_t singletons = InstallTpchLite(&db, params, "TL");
  Relation flat = db.view("TL")->Flatten();
  std::cout << "supply-chain database at scale " << params.scale << ": "
            << db.relation("Customer")->size() << " customers, "
            << db.relation("COrders")->size() << " orders, "
            << db.relation("Lineitem")->size() << " line items\n"
            << "flat join: " << flat.size() << " tuples ("
            << flat.size() * 8 << " singletons); factorised view: "
            << singletons << " singletons ("
            << std::fixed << std::setprecision(1)
            << static_cast<double>(flat.size()) * 8 / singletons << "x)\n\n";
  db.AddRelation("TLflat", std::move(flat));

  FdbEngine fdb_engine(&db);
  RdbEngine rdb_engine(&db);

  struct Report {
    const char* label;
    const char* select_list;
    const char* tail;  // WHERE / GROUP BY / ORDER BY / LIMIT clauses
  };
  const Report reports[] = {
      {"revenue per nation", "nation, sum(extprice) AS revenue",
       "GROUP BY nation ORDER BY revenue DESC"},
      {"pricing summary per brand",
       "brand, count(*) AS lines, sum(quantity), avg(extprice)",
       "GROUP BY brand ORDER BY brand"},
      {"top 5 customers by revenue", "custkey, sum(extprice) AS revenue",
       "GROUP BY custkey ORDER BY revenue DESC, custkey LIMIT 5"},
      {"large recent orders", "nation, count(*)",
       "WHERE odate >= 300 AND quantity >= 25 GROUP BY nation"},
  };

  for (const Report& rep : reports) {
    FdbResult fr = fdb_engine.ExecuteSql(std::string("SELECT ") +
                                         rep.select_list + " FROM TL " +
                                         rep.tail);
    RdbResult rr = rdb_engine.ExecuteSql(std::string("SELECT ") +
                                         rep.select_list + " FROM TLflat " +
                                         rep.tail);
    bool agree = fr.flat.BagEquals(rr.flat);
    std::cout << std::left << std::setw(30) << rep.label << " FDB "
              << std::setw(8) << std::setprecision(3)
              << (fr.plan_seconds + fr.exec_seconds + fr.enum_seconds) * 1e3
              << " ms   RDB " << std::setw(8) << rr.seconds * 1e3
              << " ms   rows " << fr.flat.size()
              << (agree ? "" : "  !! ENGINES DISAGREE") << "\n";
  }

  std::cout << "\nrevenue per nation:\n"
            << fdb_engine
                   .ExecuteSql(
                       "SELECT nation, sum(extprice) AS revenue FROM TL "
                       "GROUP BY nation ORDER BY revenue DESC")
                   .flat.ToString(db.registry(), 12);
  return 0;
}
