// Materialised-view lifecycle: build a factorised view, persist it to
// disk, reload it into a fresh database, keep a sorted view up to date
// under inserts/deletes, and inspect per-node statistics and
// subexpression-sharing compression.
//
// Usage: materialised_views [scale]      (default scale 2)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "fdb/fdb.h"

using namespace fdb;

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  std::string path = "/tmp/fdb_r1_view.fdb";

  // --- build and persist ---------------------------------------------------
  Database db;
  int64_t singletons = InstallWorkload(&db, SmallParams(scale), "R1");
  std::cout << "built view R1: " << singletons << " singletons ("
            << db.view("R1")->CountTuples() << " tuples represented)\n";
  SaveFactorisation(*db.view("R1"), db.registry(), path);
  std::cout << "saved to " << path << "\n";

  // --- reload into a fresh database and query ------------------------------
  Database fresh;
  fresh.AddView("R1", LoadFactorisation(path, &fresh.registry()));
  std::remove(path.c_str());
  FdbEngine engine(&fresh);
  FdbResult top = engine.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
      "ORDER BY revenue DESC LIMIT 3");
  std::cout << "\ntop customers from the reloaded view:\n"
            << top.flat.ToString(fresh.registry());

  // --- per-node statistics --------------------------------------------------
  std::cout << "\nper-node union statistics (what the size bounds of [22] "
               "predict):\n"
            << FactStatsToString(*fresh.view("R1"), fresh.registry());

  // --- compression (toward the paper's §8 future work) ----------------------
  Factorisation compressed = *fresh.view("R1");
  CompressInPlace(&compressed);
  std::cout << "\nsubexpression sharing: " << compressed.CountSingletons()
            << " logical singletons stored as "
            << CountStoredSingletons(compressed) << "\n";

  // --- incremental maintenance of a sorted view -----------------------------
  AttributeRegistry& reg = db.registry();
  Factorisation r3 = FactoriseRelation(
      *db.relation("Orders"),
      {*reg.Find("date"), *reg.Find("customer"), *reg.Find("package")});
  std::cout << "\nsorted view R3 over Orders: " << r3.CountTuples()
            << " tuples\n";
  Tuple order = {Value(int64_t{9999}), Value(int64_t{1}),
                 Value(int64_t{2})};
  InsertTuple(&r3, order);
  std::cout << "after insert: " << r3.CountTuples()
            << " tuples, contains new order: "
            << (ContainsTuple(r3, order) ? "yes" : "no") << "\n";
  DeleteTuple(&r3, order);
  std::cout << "after delete: " << r3.CountTuples() << " tuples\n";
  return 0;
}
