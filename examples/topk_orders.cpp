// Ordered enumeration and top-k over factorised data (Experiment 4 in
// miniature): shows that a factorised view supports several sort orders at
// once, that a new order needs only a partial restructuring (one swap),
// and that LIMIT k costs k constant-delay steps after the restructuring.
//
// Usage: topk_orders [scale] [k]        (defaults: scale 4, k 10)

#include <cstdlib>
#include <iostream>

#include "fdb/core/build.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/workload/generator.h"

using namespace fdb;

namespace {

void Run(FdbEngine& engine, const AttributeRegistry& reg,
         const std::string& sql) {
  FdbResult r = engine.ExecuteSql(sql);
  int swaps = 0;
  for (const FOp& op : r.plan) swaps += op.kind == FOpKind::kSwap;
  std::cout << sql << "\n  swaps needed: " << swaps << ", rows: "
            << r.flat.size() << ", time: "
            << (r.plan_seconds + r.exec_seconds + r.enum_seconds) * 1e3
            << " ms\n";
  std::cout << r.flat.ToString(reg, 5) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 4;
  int k = argc > 2 ? std::atoi(argv[2]) : 10;

  Database db;
  InstallWorkload(&db, SmallParams(scale), "R1");
  AttributeRegistry& reg = db.registry();

  // A sorted materialised view: R2 = R1 ordered by (package, date, item).
  Relation flat = db.view("R1")->Flatten();
  db.AddView("R2",
             FactoriseRelation(flat, {*reg.Find("package"),
                                      *reg.Find("date"), *reg.Find("item"),
                                      *reg.Find("customer"),
                                      *reg.Find("price")}));
  std::cout << "R2: " << flat.size() << " tuples, "
            << db.view("R2")->CountSingletons()
            << " singletons as a factorised trie\n\n";

  FdbEngine engine(&db);
  std::string lim = " LIMIT " + std::to_string(k);

  // The stored order: no restructuring at all.
  Run(engine, reg, "SELECT * FROM R2 ORDER BY package, date, item" + lim);
  // A second order supported by the same view (swap within the stored trie).
  Run(engine, reg, "SELECT * FROM R2 ORDER BY package, item, date" + lim);
  // A different leading attribute: one swap, still no full re-sort.
  Run(engine, reg, "SELECT * FROM R2 ORDER BY date, package, item" + lim);
  // Descending keys come free from the sorted unions.
  Run(engine, reg,
      "SELECT * FROM R2 ORDER BY package DESC, date DESC" + lim);
  // Top-k by an aggregate: restructures only the aggregated result.
  Run(engine, reg,
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
      "ORDER BY revenue DESC" +
          lim);
  return 0;
}
