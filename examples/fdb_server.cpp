// fdb_server — the network front door for a factorised database.
//
// Usage:
//   fdb_server [options]
//     --db <path.fdbs>       open (or create) this snapshot; enables the WAL
//     --demo <scale>         build the synthetic demo database (default 4)
//     --host <ip>            listen address      (default 127.0.0.1)
//     --port <n>             listen port         (default 5433; 0 = ephemeral)
//     --max-concurrent <n>   executing statements (default 4)
//     --max-queue <n>        admission queue length (default 16)
//     --timeout-ms <n>       per-query wall-time limit (default 0 = none)
//     --mem-limit-mb <n>     per-query arena budget (default 0 = none)
//     --max-sessions <n>     connection cap (default 64)
//
// Environment: FDB_METRICS / FDB_LOG / FDB_THREADS as everywhere else;
// FDB_QUERY_TIMEOUT_MS and FDB_QUERY_MEM_MB give the limit defaults.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// statements, stop the metrics sampler, flush the FDB_LOG sink, and
// checkpoint the database before exit.

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "fdb/core/build.h"
#include "fdb/engine/database.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/serve/server.h"
#include "fdb/workload/generator.h"

using namespace fdb;

namespace {

// Signal handling via the self-pipe trick: the handler only writes one
// byte; the main thread blocks on read() and runs the actual shutdown,
// so no async-signal-unsafe work happens in the handler.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 1;
  // Best effort; a full pipe means a shutdown is already pending.
  [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &b, 1);
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoll(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path, host = "127.0.0.1";
  int demo_scale = 4;
  serve::ServerConfig cfg;
  cfg.port = 5433;
  cfg.admission.query_timeout_ms = EnvInt("FDB_QUERY_TIMEOUT_MS", 0);
  cfg.admission.query_mem_bytes = EnvInt("FDB_QUERY_MEM_MB", 0) * (1 << 20);

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--db") {
      db_path = next();
    } else if (a == "--demo") {
      demo_scale = std::atoi(next().c_str());
    } else if (a == "--host") {
      host = next();
    } else if (a == "--port") {
      cfg.port = std::atoi(next().c_str());
    } else if (a == "--max-concurrent") {
      cfg.admission.max_concurrent = std::atoi(next().c_str());
    } else if (a == "--max-queue") {
      cfg.admission.max_queue = std::atoi(next().c_str());
    } else if (a == "--timeout-ms") {
      cfg.admission.query_timeout_ms = std::atoll(next().c_str());
    } else if (a == "--mem-limit-mb") {
      cfg.admission.query_mem_bytes =
          std::atoll(next().c_str()) * (1 << 20);
    } else if (a == "--max-sessions") {
      cfg.max_sessions = std::atoi(next().c_str());
    } else {
      std::cerr << "unknown option " << a << "\n";
      return 2;
    }
  }
  cfg.host = host;

  // Serving is the observable path: metrics on unless explicitly off,
  // same policy as the shell.
  const char* menv = std::getenv("FDB_METRICS");
  if (menv == nullptr || std::string(menv) != "0") {
    obs::SetMetricsEnabled(true);
  }
  const char* lenv = std::getenv("FDB_LOG");
  if (lenv != nullptr && std::string(lenv) != "0") {
    obs::SetLogEnabled(true);
  }

  Database db;
  try {
    if (!db_path.empty() && ::access(db_path.c_str(), F_OK) == 0) {
      db = Database::Open(db_path);
      std::cerr << "opened " << db_path << "\n";
    } else {
      // The shell's workload: factorised view R1 plus its flat baseline.
      int64_t singletons = InstallWorkload(&db, SmallParams(demo_scale), "R1");
      db.AddRelation("R1flat", db.view("R1")->Flatten());
      // A small path-shaped view so INSERT/DELETE work over the wire out
      // of the box (R1's f-tree is not a path, so it rejects updates).
      AttrId ka = db.Attr("k"), va = db.Attr("v");
      Relation kv{RelSchema({ka, va})};
      for (int64_t x = 0; x < 16; ++x) kv.Add({Value(x), Value(x * x)});
      db.AddView("KV", FactoriseRelation(kv, {ka, va}));
      std::cerr << "demo database, scale " << demo_scale << " ("
                << singletons << " singletons; updatable view KV)\n";
      if (!db_path.empty()) {
        db.Save(db_path);
        std::cerr << "saved to " << db_path << "\n";
      }
    }
    if (!db_path.empty()) db.EnableWal(db_path);
  } catch (const std::exception& e) {
    std::cerr << "failed to open database: " << e.what() << "\n";
    return 1;
  }
  db.StartMetricsSampler();

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // restart the server's own syscalls
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  serve::Server server(&db, cfg);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::cerr << "failed to start: " << e.what() << "\n";
    return 1;
  }
  std::cout << "fdb_server listening on " << cfg.host << ":" << server.port()
            << std::endl;

  // Park until a signal arrives: the handler writes one byte to the
  // pipe, which completes this read.
  char b;
  while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }
  std::cerr << "shutting down: draining sessions...\n";
  server.Shutdown();
  db.StopMetricsSampler();
  if (!db_path.empty()) {
    try {
      storage::CheckpointInfo info = db.Checkpoint(db_path);
      std::cerr << "checkpointed " << db_path
                << (info.kind == storage::CheckpointInfo::kNoop ? " (no-op)"
                                                                : "")
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "checkpoint failed: " << e.what() << "\n";
    }
  }
  obs::EventLog::Instance().SetSinkPath("");  // flush + close the JSONL sink
  std::cerr << "bye\n";
  return 0;
}
