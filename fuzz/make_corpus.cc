// Regenerates the committed seed corpora under fuzz/corpus/ using the
// real encoders, so every seed is a valid (or near-valid) input the
// fuzzer mutates from. Run manually after a format change:
//
//   make_fuzz_corpus <repo>/fuzz/corpus
//
// Corpora are committed; CI replays them through the standalone drivers
// (ctest) and uses them as libFuzzer seeds in the fuzz-smoke job.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/engine/database.h"
#include "fdb/relational/relation.h"
#include "fdb/serve/wire.h"
#include "fdb/storage/wal.h"

namespace {

void Put(const std::filesystem::path& dir, const std::string& name,
         const void* data, size_t n) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out.good()) {
    std::cerr << "make_fuzz_corpus: cannot write " << (dir / name) << "\n";
    std::exit(2);
  }
}

void Put(const std::filesystem::path& dir, const std::string& name,
         const std::vector<uint8_t>& bytes) {
  Put(dir, name, bytes.data(), bytes.size());
}

std::vector<uint8_t> OneFrame(fdb::serve::FrameType type,
                              const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  fdb::serve::AppendFrame(&out, type, payload.data(), payload.size());
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A small database with one two-attribute view "V".
fdb::Database SmallDb() {
  fdb::Database db;
  fdb::AttrId a = db.Attr("fz_a"), b = db.Attr("fz_b");
  fdb::Relation r{fdb::RelSchema({a, b})};
  for (int64_t x = 0; x < 20; ++x) {
    r.Add({fdb::Value(x / 4), fdb::Value(x)});
  }
  db.AddView("V", fdb::FactoriseRelation(r, {a, b}));
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_fuzz_corpus <corpus-dir>\n";
    return 2;
  }
  std::filesystem::path root = argv[1];
  std::filesystem::path tmp =
      std::filesystem::temp_directory_path() / "fdb_make_corpus";
  std::filesystem::create_directories(tmp);

  // --- fuzz_wire: one valid frame of every type -------------------------
  using namespace fdb::serve;
  Put(root / "fuzz_wire", "hello.bin",
      OneFrame(FrameType::kHello, EncodeHello()));
  Put(root / "fuzz_wire", "schema.bin",
      OneFrame(FrameType::kSchema, EncodeSchema({"a", "b", "c"})));
  Put(root / "fuzz_wire", "row.bin",
      OneFrame(FrameType::kRow,
               EncodeRow({fdb::Value(static_cast<int64_t>(9)),
                          fdb::Value(2.5), fdb::Value("str"), fdb::Value()})));
  Put(root / "fuzz_wire", "done.bin",
      OneFrame(FrameType::kDone, EncodeDone(DoneStats{5, 6, 7, 8})));
  Put(root / "fuzz_wire", "error.bin",
      OneFrame(FrameType::kError, EncodeError(ErrorInfo{kErrParse, "p"})));
  Put(root / "fuzz_wire", "retry.bin",
      OneFrame(FrameType::kRetry, EncodeRetry(RetryInfo{99, "later"})));
  {
    std::string q = "SELECT a FROM V";
    Put(root / "fuzz_wire", "query.bin",
        OneFrame(FrameType::kQuery,
                 std::vector<uint8_t>(q.begin(), q.end())));
  }

  // --- fuzz_sql: statement text -----------------------------------------
  const char* stmts[] = {
      "SELECT a, b FROM V WHERE a = 1 ORDER BY b",
      "SELECT COUNT(*) FROM V GROUP BY a",
      "SELECT SUM(b), a FROM V WHERE b < 10 AND a >= 0 GROUP BY a",
      "SELECT x FROM R1 WHERE name = 'widget' OR price > 2.5",
  };
  int n = 0;
  for (const char* s : stmts) {
    Put(root / "fuzz_sql", "stmt" + std::to_string(n++) + ".sql", s,
        std::strlen(s));
  }

  // --- fuzz_snapshot: a real base snapshot ------------------------------
  {
    fdb::Database db = SmallDb();
    std::string path = (tmp / "seed.fdbs").string();
    db.Save(path);
    std::string bytes = ReadFile(path);
    Put(root / "fuzz_snapshot", "base.fdbs", bytes.data(), bytes.size());
  }

  // --- fuzz_wal: (epoch, chain_pos) prefix + a real log -----------------
  {
    fdb::Database db = SmallDb();
    std::string path = (tmp / "seed_wal.fdbs").string();
    db.EnableWal(path);
    db.Begin();
    db.Insert("V", {fdb::Value(int64_t{100}), fdb::Value(int64_t{1000})});
    db.Delete("V", {fdb::Value(int64_t{0}), fdb::Value(int64_t{0})});
    db.Commit();
    db.Insert("V", {fdb::Value(int64_t{101}), fdb::Value(int64_t{1001})});
    std::string wal = ReadFile(fdb::storage::WalPath(path));
    // The harness reads the stamp prefix the log must validate against;
    // lift the real one out of the WalHeader (epoch at 16, pos at 24).
    std::vector<uint8_t> seed(16 + wal.size());
    std::memcpy(seed.data(), wal.data() + 16, 8);
    std::memcpy(seed.data() + 8, wal.data() + 24, 8);
    std::memcpy(seed.data() + 16, wal.data(), wal.size());
    Put(root / "fuzz_wal", "log.bin", seed);
  }

  std::filesystem::remove_all(tmp);
  std::cout << "make_fuzz_corpus: wrote corpora under " << root << "\n";
  return 0;
}
