// Fuzz target: the SQL parser. Invariant: arbitrary statement text
// either parses or throws a std::exception with a diagnostic — never a
// crash or runaway recursion.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

#include "fdb/query/parser.h"
#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  try {
    (void)fdb::ParseSql(
        std::string(reinterpret_cast<const char*>(data), size));
  } catch (const std::exception&) {
    // Rejected with a parse error — the invariant holds.
  }
  return 0;
}
