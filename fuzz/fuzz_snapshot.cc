// Fuzz target: the snapshot reader. The input bytes are treated as a
// whole snapshot file image (base format, v1..v3) and opened through the
// same path Database::Open uses; every view is then materialised so the
// deferred fix-up pass runs too. Invariant: arbitrary bytes either open
// or throw std::invalid_argument naming the corruption — never a crash
// or a read outside the mapping.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

#include "fdb/engine/database.h"
#include "fdb/storage/mapped_arena.h"
#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  try {
    fdb::Database db = fdb::Database::OpenSnapshot(
        fdb::storage::SnapshotMapping::FromBuffer(data, size));
    for (const std::string& name : db.ViewNames()) {
      (void)db.ViewSnapshot(name);
    }
  } catch (const std::exception&) {
    // Corrupt image rejected cleanly — the invariant holds.
  }
  return 0;
}
