// Fuzz target: the wire-protocol FrameDecoder plus every typed payload
// decoder behind it (promoted from wire_test's ad-hoc mutation loop).
// Invariant: arbitrary bytes either decode cleanly or throw WireError —
// no crash, no wild read, no unbounded allocation.

#include <cstddef>
#include <cstdint>

#include "fdb/serve/wire.h"
#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace fdb::serve;
  FrameDecoder dec;
  try {
    dec.Feed(data, size);
    Frame f;
    while (dec.Next(&f)) {
      switch (f.type) {
        case FrameType::kHello:
          DecodeHello(f.payload);
          break;
        case FrameType::kSchema:
          (void)DecodeSchema(f.payload);
          break;
        case FrameType::kRow:
          (void)DecodeRow(f.payload, 4);
          break;
        case FrameType::kDone:
          (void)DecodeDone(f.payload);
          break;
        case FrameType::kError:
          (void)DecodeError(f.payload);
          break;
        case FrameType::kRetry:
          (void)DecodeRetry(f.payload);
          break;
        case FrameType::kQuery:
          // Query payloads are free-form statement text.
          break;
      }
    }
  } catch (const WireError&) {
    // Malformed input rejected cleanly — the invariant holds.
  }
  return 0;
}
