// Fuzz target: WAL recovery. The first 16 input bytes pick the
// (epoch, chain_pos) stamp recovery validates against (reduced mod 4 so
// mutated inputs still land near the seeds' real stamps); the rest is
// the log file image, written to a scratch path and replayed through
// ReadWal. Invariant: recovery returns a prefix-consistent group list,
// returns nullopt, or throws std::invalid_argument — never a crash.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "fdb/storage/wal.h"
#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  uint64_t epoch = 1, chain_pos = 0;
  if (size >= 16) {
    std::memcpy(&epoch, data, 8);
    std::memcpy(&chain_pos, data + 8, 8);
    epoch %= 4;
    chain_pos %= 4;
    data += 16;
    size -= 16;
  }
  static const std::string base = [] {
    const char* t = std::getenv("TMPDIR");
    return std::string(t != nullptr ? t : "/tmp") + "/fdb_fuzz_wal.fdbs";
  }();
  {
    std::ofstream out(fdb::storage::WalPath(base),
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
  try {
    (void)fdb::storage::ReadWal(base, epoch, chain_pos);
  } catch (const std::exception&) {
    // Undecodable CRC-valid frame rejected cleanly — the invariant holds.
  }
  return 0;
}
