#ifndef FDB_FUZZ_FUZZ_DRIVER_H_
#define FDB_FUZZ_FUZZ_DRIVER_H_

// Shared entry-point shim for the fuzz targets.
//
// With FDB_FUZZ_LIBFUZZER defined the target is linked with
// -fsanitize=fuzzer (clang's libFuzzer supplies main and drives
// LLVMFuzzerTestOneInput with mutated inputs). Without it — the default,
// and what the GCC container builds — this header supplies a standalone
// main that replays every file named on the command line through the
// same entry point, which is how ctest keeps the committed corpora
// passing as plain regression tests.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef FDB_FUZZ_LIBFUZZER

#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "fuzz: cannot open " << argv[i] << "\n";
      return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::cout << "fuzz: replayed " << ran << " input(s), no crash\n";
  return 0;
}

#endif  // !FDB_FUZZ_LIBFUZZER

#endif  // FDB_FUZZ_FUZZ_DRIVER_H_
