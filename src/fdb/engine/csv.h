#ifndef FDB_ENGINE_CSV_H_
#define FDB_ENGINE_CSV_H_

#include <iosfwd>
#include <string>

#include "fdb/engine/database.h"

namespace fdb {

/// Reads a relation from simple CSV: the first line is the header (attribute
/// names, interned into `db`'s registry), subsequent lines are rows. Values
/// are inferred per cell: integer if it parses as one, else double, else
/// string; the literal `NULL` (and an empty cell) becomes the null value.
/// Whitespace around cells is trimmed. Quoting/escaping is not supported —
/// the format targets the benchmark data files, not arbitrary CSV.
/// Throws std::invalid_argument on ragged rows or a missing header.
Relation ReadCsv(std::istream& in, Database* db);

/// Reads a CSV file and registers it as base relation `name`.
void LoadCsvRelation(Database* db, const std::string& name,
                     const std::string& path);

/// Writes a relation as CSV (header + rows) in the format ReadCsv accepts.
void WriteCsv(const Relation& rel, const AttributeRegistry& reg,
              std::ostream& out);

/// Writes a relation to a CSV file.
void SaveCsvRelation(const Relation& rel, const AttributeRegistry& reg,
                     const std::string& path);

}  // namespace fdb

#endif  // FDB_ENGINE_CSV_H_
