#ifndef FDB_ENGINE_DATABASE_H_
#define FDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/relational/relation.h"
#include "fdb/relational/value_dict.h"

namespace fdb {

/// A database: an attribute registry shared by all relations, flat base
/// relations, and materialised views stored as factorisations (the
/// read-optimised scenario of §1/§6). Names are case-sensitive.
class Database {
 public:
  AttributeRegistry& registry() { return reg_; }
  const AttributeRegistry& registry() const { return reg_; }

  /// The value dictionary encoding this database's factorised singletons.
  /// Currently every database shares the process-default dictionary (codes
  /// are process-wide, so factorisations remain comparable across
  /// databases); the handle is the seam for per-database isolation later.
  ValueDict& dict() { return *dict_; }
  const ValueDict& dict() const { return *dict_; }

  /// Interns `name` in the registry (convenience).
  AttrId Attr(const std::string& name) { return reg_.Intern(name); }

  void AddRelation(const std::string& name, Relation rel);
  /// The named base relation, or nullptr.
  const Relation* relation(const std::string& name) const;

  void AddView(const std::string& name, Factorisation f);
  /// The named factorised view, or nullptr.
  const Factorisation* view(const std::string& name) const;

  std::vector<std::string> RelationNames() const;
  std::vector<std::string> ViewNames() const;

  /// Builds a flat relation from rows of int64 values (test/bench helper).
  Relation MakeRelation(const std::vector<std::string>& attrs,
                        const std::vector<std::vector<int64_t>>& rows);

 private:
  AttributeRegistry reg_;
  // Non-owning alias of the immortal process-default dictionary.
  std::shared_ptr<ValueDict> dict_{std::shared_ptr<ValueDict>(),
                                   &ValueDict::Default()};
  std::map<std::string, Relation> relations_;
  std::map<std::string, Factorisation> views_;
};

/// Chooses an f-tree for the natural join of `relations` (used when a query
/// runs on flat input and FDB must factorise it first, Experiment 2). The
/// tree is built recursively: attributes are split into independent
/// components (no relation spans two components), each component is rooted
/// at its most-shared attribute, giving branching wherever the join
/// structure allows it. Always satisfies the path constraint. Each
/// relation contributes one dependency hyperedge weighted by its size.
FTree ChooseFTree(const std::vector<const Relation*>& relations);

}  // namespace fdb

#endif  // FDB_ENGINE_DATABASE_H_
