#ifndef FDB_ENGINE_DATABASE_H_
#define FDB_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/relational/relation.h"
#include "fdb/relational/value_dict.h"

namespace fdb {

namespace storage {
class SnapshotMapping;
struct SnapshotState;
}  // namespace storage

/// A database: an attribute registry shared by all relations, flat base
/// relations, and materialised views stored as factorisations (the
/// read-optimised scenario of §1/§6). Names are case-sensitive.
///
/// Databases persist as single-file binary snapshots (storage/): Save()
/// writes the whole database, Open() mmaps a snapshot and materialises
/// views lazily and zero-copy on first access. Copying a Database is
/// cheap-ish and safe: factorisations share their arenas and an opened
/// database's copies share the snapshot mapping (each copy materialises
/// views independently). A view opened from a snapshot keeps the mapping
/// alive through its arena, and operators that derive new factorisations
/// from it adopt that arena — so results of ops on mapped views stay
/// valid after the Database (and the last mapped view) are gone.
class Database {
 public:
  AttributeRegistry& registry() { return reg_; }
  const AttributeRegistry& registry() const { return reg_; }

  /// The value dictionary encoding this database's factorised singletons.
  /// Currently every database shares the process-default dictionary (codes
  /// are process-wide, so factorisations remain comparable across
  /// databases); the handle is the seam for per-database isolation later.
  ValueDict& dict() { return *dict_; }
  const ValueDict& dict() const { return *dict_; }

  /// Interns `name` in the registry (convenience).
  AttrId Attr(const std::string& name) { return reg_.Intern(name); }

  void AddRelation(const std::string& name, Relation rel);
  /// The named base relation, or nullptr.
  const Relation* relation(const std::string& name) const;

  void AddView(const std::string& name, Factorisation f);
  /// The named factorised view, or nullptr. On a database opened from a
  /// snapshot this materialises the view on first access (one fix-up pass
  /// over the mapped segment; value data is served from the mapping).
  const Factorisation* view(const std::string& name) const;

  std::vector<std::string> RelationNames() const;
  std::vector<std::string> ViewNames() const;

  /// Writes the database as a binary snapshot (*.fdbs): registry, value
  /// dictionary, flat relations and all views. View segments contain only
  /// nodes reachable from the roots — saved data is always compacted.
  /// Throws std::invalid_argument on I/O failure.
  void Save(const std::string& path) const;

  /// Opens a snapshot written by Save(): mmaps the file, decodes catalog,
  /// registry, dictionary and flat relations eagerly, and defers view
  /// data to first access. Throws std::invalid_argument on corrupt input.
  static Database Open(const std::string& path);

  /// Open() on an already-constructed mapping (tests, in-memory buffers).
  static Database OpenSnapshot(
      std::shared_ptr<storage::SnapshotMapping> mapping);

  /// Builds a flat relation from rows of int64 values (test/bench helper).
  Relation MakeRelation(const std::vector<std::string>& attrs,
                        const std::vector<std::vector<int64_t>>& rows);

 private:
  AttributeRegistry reg_;
  // Non-owning alias of the immortal process-default dictionary.
  std::shared_ptr<ValueDict> dict_{std::shared_ptr<ValueDict>(),
                                   &ValueDict::Default()};
  std::map<std::string, Relation> relations_;
  // Materialised views; mutable so view() can lazily admit snapshot views.
  mutable std::map<std::string, Factorisation> views_;
  // Set when this database was opened from a snapshot; shared with copies.
  std::shared_ptr<storage::SnapshotState> snapshot_;
};

/// Chooses an f-tree for the natural join of `relations` (used when a query
/// runs on flat input and FDB must factorise it first, Experiment 2). The
/// tree is built recursively: attributes are split into independent
/// components (no relation spans two components), each component is rooted
/// at its most-shared attribute, giving branching wherever the join
/// structure allows it. Always satisfies the path constraint. Each
/// relation contributes one dependency hyperedge weighted by its size.
FTree ChooseFTree(const std::vector<const Relation*>& relations);

}  // namespace fdb

#endif  // FDB_ENGINE_DATABASE_H_
