#ifndef FDB_ENGINE_DATABASE_H_
#define FDB_ENGINE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "fdb/base/thread_annotations.h"
#include "fdb/core/factorisation.h"
#include "fdb/relational/relation.h"
#include "fdb/relational/value_dict.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"

namespace fdb {

namespace obs {
class MetricsSampler;
}  // namespace obs

namespace storage {
class SnapshotMapping;
struct SnapshotState;
}  // namespace storage

/// A database: an attribute registry shared by all relations, flat base
/// relations, and materialised views stored as factorisations (the
/// read-optimised scenario of §1/§6). Names are case-sensitive.
///
/// Databases persist as single-file binary snapshots (storage/): Save()
/// writes the whole database, Open() mmaps a snapshot and materialises
/// views lazily and zero-copy on first access. Copying a Database is
/// cheap-ish and safe: factorisations share their arenas and an opened
/// database's copies share the snapshot mapping (each copy materialises
/// views independently). A view opened from a snapshot keeps the mapping
/// alive through its arena, and operators that derive new factorisations
/// from it adopt that arena — so results of ops on mapped views stay
/// valid after the Database (and the last mapped view) are gone.
///
/// Concurrency: views live in an epoch-style versioned map. The map is an
/// immutable std::map published through a shared_ptr; readers grab the
/// current epoch (ViewSnapshot / view) with one brief pointer-copy lock
/// and then never block, no matter how long they enumerate. Writers
/// (AddView, UpdateView) build the new factorisation off-line, copy the
/// map, and swap the pointer — queries running against older epochs keep
/// their Factorisation (and, through its arena chain, every node they
/// can reach) alive until they drop it, so updates and generational
/// compaction proceed without ever invalidating an in-flight reader.
/// Many threads may query one Database while one or more threads update
/// its views. Base relations and the registry are not versioned: load
/// them before spinning up concurrent readers (AddRelation concurrent
/// with queries on the *same relation name* is not supported).
class Database {
 public:
  Database() = default;
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  AttributeRegistry& registry() { return reg_; }
  const AttributeRegistry& registry() const { return reg_; }

  /// The value dictionary encoding this database's factorised singletons.
  /// Currently every database shares the process-default dictionary (codes
  /// are process-wide, so factorisations remain comparable across
  /// databases); the handle is the seam for per-database isolation later.
  ValueDict& dict() { return *dict_; }
  const ValueDict& dict() const { return *dict_; }

  /// Interns `name` in the registry (convenience).
  AttrId Attr(const std::string& name) { return reg_.Intern(name); }

  void AddRelation(const std::string& name, Relation rel);
  /// The named base relation, or nullptr.
  const Relation* relation(const std::string& name) const;
  /// How many times the named relation has been (re)published via
  /// AddRelation — the change detector incremental checkpoints use to
  /// decide whether a relation needs re-dumping. 0 if absent.
  uint64_t relation_version(const std::string& name) const;

  /// Publishes `f` as the new version of view `name` (a new epoch of the
  /// view map). Readers holding the previous version keep it alive.
  void AddView(const std::string& name, Factorisation f);
  /// The named factorised view, or nullptr. On a database opened from a
  /// snapshot this materialises the view on first access (one fix-up pass
  /// over the mapped segment; value data is served from the mapping).
  /// The pointer stays valid until this name is re-published (AddView /
  /// UpdateView) — concurrent readers should hold a ViewSnapshot instead.
  const Factorisation* view(const std::string& name) const;

  /// The current version of view `name` as a shared snapshot (nullptr if
  /// absent): never blocks on writers, and keeps that version — arenas,
  /// nodes, mapped segments — alive for as long as the caller holds it,
  /// across any number of subsequent updates, swaps and compactions.
  std::shared_ptr<const Factorisation> ViewSnapshot(
      const std::string& name) const;

  /// Read-copy-update on one view: copies the current version (cheap —
  /// arenas are shared; mutators allocate into a fresh arena via
  /// ArenaForWrite), applies `mutate` to the private copy off-line, then
  /// publishes it. Writers are serialised among themselves; readers are
  /// never blocked and keep whichever version they hold. Returns false
  /// (without calling `mutate`) if the view does not exist.
  bool UpdateView(const std::string& name,
                  const std::function<void(Factorisation*)>& mutate);

  std::vector<std::string> RelationNames() const;
  std::vector<std::string> ViewNames() const;

  /// Writes the database as a binary snapshot (*.fdbs): registry, value
  /// dictionary, flat relations and all views. View segments contain only
  /// nodes reachable from the roots — saved data is always compacted.
  /// Streams with bounded buffers (peak memory is the writer's node
  /// bookkeeping, not the file size) and publishes crash-safely:
  /// write-to-temp, fsync, rename, fsync the directory. Any delta files
  /// a previous Checkpoint() left next to `path` are superseded and
  /// removed. Throws std::invalid_argument on I/O failure.
  void Save(const std::string& path) const;

  /// Incremental persistence: appends a delta file
  /// (`path.delta-1`, `-2`, ...) holding only what changed since the
  /// last Save/Checkpoint of `path` from this Database — new view nodes
  /// (by arena generation: updates append nodes next to the persisted
  /// ones), dictionary/registry growth, and re-published relations — so
  /// a checkpoint costs O(changes), not O(database). Falls back to a
  /// fresh base when there is nothing to delta against (first call, a
  /// different path, a rebuild) or when the chain trips the fold
  /// threshold (storage::kMaxDeltaChain deltas or half the base's size).
  /// Open() replays the chain. Between checkpoints the Database retains
  /// the persisted node index and pins the last persisted view versions
  /// (memory traded for O(changes) I/O; dropped at each fold). Throws
  /// std::invalid_argument on I/O failure.
  storage::CheckpointInfo Checkpoint(const std::string& path) const;

  // --- durability: write-ahead logging and transactions ------------------
  //
  // EnableWal(path) binds a write-ahead log (`<path>.wal`) to the
  // snapshot chain at `path`: the current state is checkpointed into the
  // chain, and every committed mutation is then made durable by a single
  // appended, CRC32-framed log record (one write + one fsync per commit
  // group) before it is applied in memory. Open(path) replays the chain
  // and then the log, so a crash loses at most the in-flight commit and
  // never an acknowledged one. Save/Checkpoint of `path` fold the logged
  // groups into the chain and reset the log.
  //
  // Scope: the log records view tuple mutations (Insert/Delete) only.
  // Schema changes — AddRelation, AddView, a view's shape — are not
  // logged; checkpoint after DDL, and only mutate views that exist in
  // the chain. Commit groups are durably atomic; concurrent readers see
  // each view's update as it is published (per-view visibility).

  /// Binds the WAL as described above. Checkpoints into `path` first
  /// (throws on I/O failure, leaving durability as it was). Must not be
  /// called inside an open transaction.
  void EnableWal(const std::string& path);
  /// Folds any logged groups into the chain, then unbinds and removes
  /// the (now empty) log file.
  void DisableWal();
  bool wal_enabled() const;
  /// Transaction/log state (pending ops, durable groups, log size).
  storage::WalStatus WalStatus() const;

  /// Opens a transaction: subsequent Insert/Delete calls buffer into one
  /// commit group. Throws if one is already open (no nesting).
  void Begin();
  /// Makes the buffered group durable (one WAL frame, one fsync), then
  /// applies it — each affected view updated in a single batch. Returns
  /// the group's log sequence number (0 when nothing was pending or no
  /// WAL is bound). On a log I/O failure throws and leaves the
  /// transaction open, nothing applied: retry Commit() or Rollback().
  uint64_t Commit();
  /// Discards the buffered group.
  void Rollback();

  /// Inserts `tuple` into view `view` — buffered if a transaction is
  /// open, otherwise an autocommitted single-op group. Validates
  /// eagerly: throws std::invalid_argument if the view does not exist or
  /// the tuple does not fit its shape (so Commit cannot fail on apply).
  /// Inserting an existing tuple is a no-op.
  void Insert(const std::string& view, const Tuple& tuple);
  /// Deletes `tuple` from view `view`; same buffering and validation as
  /// Insert. Deleting an absent tuple is a no-op.
  void Delete(const std::string& view, const Tuple& tuple);

  /// Opens a snapshot written by Save(): mmaps the file, decodes catalog,
  /// registry, dictionary and flat relations eagerly, and defers view
  /// data to first access. Then replays the delta chain and finally the
  /// WAL (committed groups only — recovery is prefix-consistent). Throws
  /// std::invalid_argument on corrupt input.
  static Database Open(const std::string& path);

  /// Open() on an already-constructed mapping (tests, in-memory buffers).
  static Database OpenSnapshot(
      std::shared_ptr<storage::SnapshotMapping> mapping);

  /// Builds a flat relation from rows of int64 values (test/bench helper).
  Relation MakeRelation(const std::vector<std::string>& attrs,
                        const std::vector<std::vector<int64_t>>& rows);

  /// A copy of the incremental-checkpoint retention state, or nullopt
  /// before any Save/Checkpoint. The deep invariant checker (fdb/check)
  /// validates it against the live database and the on-disk chain.
  std::optional<storage::PersistState> PersistSnapshot() const
      EXCLUDES(persist_mu_);

  // --- queryable introspection -------------------------------------------
  //
  // Virtual system tables under the reserved "fdb." prefix surface the
  // process-wide observability state (statement statistics, the event
  // log, sampled metrics history) to ordinary SELECTs on either engine.
  // Each table is materialised fresh per query — a consistent snapshot
  // of the store at resolution time, never a live reference.

  /// True when `name` names a system table (fdb.statements, fdb.events,
  /// fdb.metrics_history).
  static bool IsSystemTable(const std::string& name);
  /// Materialises the named system table (interning its column names in
  /// this database's registry), or nullopt if `name` is not one.
  std::optional<Relation> SystemTable(const std::string& name);

  /// Starts the background metrics-history sampler feeding
  /// fdb.metrics_history (idempotent; restarts with the new interval if
  /// already running). The sampler is owned by this Database and joined
  /// on destruction — no leaked thread.
  void StartMetricsSampler(int64_t interval_ms = 1000);
  /// Stops and joins the sampler (no-op when not running).
  void StopMetricsSampler();
  /// The sampler, if one was started (shared so shell/tests can poke it).
  std::shared_ptr<obs::MetricsSampler> metrics_sampler() const;

 private:
  // One epoch of the versioned view map: an immutable name → version
  // mapping. Epochs share the Factorisation objects of untouched views.
  using ViewMap = std::map<std::string, std::shared_ptr<const Factorisation>>;

  // Finds the current version, lazily admitting snapshot views
  // (materialised outside mu_, published under it); shared by view(),
  // ViewSnapshot() and UpdateView().
  std::shared_ptr<const Factorisation> FindOrAdmit(
      const std::string& name) const;

  // Swaps `fp` in as the new epoch's version of `name`. Callers must
  // hold writer_mu_ (AddView takes it; UpdateView already holds it).
  void PublishView(const std::string& name,
                   std::shared_ptr<const Factorisation> fp);

  // Validates `op` against the live view (throws), then buffers it into
  // the open transaction or autocommits it as a one-op group.
  void BufferOpLocked(storage::WalOp op) REQUIRES(txn_mu_);
  // Appends `ops` as one WAL frame (when a log is bound) and applies
  // them, one ApplyBatch per affected view; clears `ops`. Throws without
  // applying if the log append fails.
  uint64_t CommitGroupLocked(std::vector<storage::WalOp>* ops)
      REQUIRES(txn_mu_);
  // Save/Checkpoint internals, callable with txn_mu_ already held
  // (EnableWal checkpoints under it). Lock order: txn_mu_ → persist_mu_,
  // txn_mu_ → writer_mu_.
  void SaveLocked(const std::string& path,
                  storage::SaveStats* stats = nullptr) const
      REQUIRES(txn_mu_) EXCLUDES(persist_mu_);
  storage::CheckpointInfo CheckpointLocked(const std::string& path) const
      REQUIRES(txn_mu_) EXCLUDES(persist_mu_);
  // Re-stamps a WAL bound to `path` after a fold made its contents
  // durable in the chain.
  void ResetWalAfterFoldLocked(const std::string& path) const
      REQUIRES(txn_mu_);

  AttributeRegistry reg_;
  // Non-owning alias of the immortal process-default dictionary.
  std::shared_ptr<ValueDict> dict_{std::shared_ptr<ValueDict>(),
                                   &ValueDict::Default()};
  std::map<std::string, Relation> relations_;
  std::map<std::string, uint64_t> relation_versions_;
  // Guards the views_ pointer (epoch swaps, snapshot admissions). Held
  // only for pointer copies and map clones — never across query work.
  mutable base::Mutex mu_ ACQUIRED_AFTER(writer_mu_);
  // Serialises UpdateView writers (their off-line build phases).
  base::Mutex writer_mu_;
  // Current epoch; mutable so view() can lazily admit snapshot views.
  mutable std::shared_ptr<const ViewMap> views_ GUARDED_BY(mu_) =
      std::make_shared<const ViewMap>();
  // Set when this database was opened from a snapshot; shared with copies.
  std::shared_ptr<storage::SnapshotState> snapshot_;
  // Incremental-checkpoint state (Save/Checkpoint): the retained node
  // index and pinned versions of the last base/delta written. Mutable
  // cache — the logical database is untouched. Not shared with copies
  // (each Database owns its own checkpoint chain).
  mutable base::Mutex persist_mu_;
  mutable std::shared_ptr<storage::PersistState> persist_
      GUARDED_BY(persist_mu_);
  // Transaction/WAL state. txn_mu_ serialises Begin/Commit/Rollback,
  // autocommits, EnableWal/DisableWal and the public Save/Checkpoint (a
  // fold must not interleave with a commit's log append). The log itself
  // is mutable because a (const) Save/Checkpoint folds and re-stamps it
  // — like persist_, it is durability bookkeeping, not logical state.
  // Not copied (two databases appending to one log would corrupt it);
  // moves transfer it.
  mutable base::Mutex txn_mu_ ACQUIRED_BEFORE(persist_mu_, writer_mu_);
  mutable std::unique_ptr<storage::Wal> wal_ GUARDED_BY(txn_mu_);
  /// Canonical snapshot path the log is bound to.
  std::string wal_base_ GUARDED_BY(txn_mu_);
  bool in_txn_ GUARDED_BY(txn_mu_) = false;
  std::vector<storage::WalOp> pending_ GUARDED_BY(txn_mu_);
  // Metrics-history sampler (StartMetricsSampler). The shared_ptr's
  // destructor stops and joins the thread, so dropping the last owner —
  // including Database destruction — shuts it down cleanly. Not copied
  // (a copy can start its own); moves transfer it.
  mutable base::Mutex sampler_mu_;
  std::shared_ptr<obs::MetricsSampler> sampler_ GUARDED_BY(sampler_mu_);
};

/// Chooses an f-tree for the natural join of `relations` (used when a query
/// runs on flat input and FDB must factorise it first, Experiment 2). The
/// tree is built recursively: attributes are split into independent
/// components (no relation spans two components), each component is rooted
/// at its most-shared attribute, giving branching wherever the join
/// structure allows it. Always satisfies the path constraint. Each
/// relation contributes one dependency hyperedge weighted by its size.
FTree ChooseFTree(const std::vector<const Relation*>& relations);

}  // namespace fdb

#endif  // FDB_ENGINE_DATABASE_H_
