#include "fdb/engine/database.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "fdb/storage/snapshot.h"

namespace fdb {

void Database::AddRelation(const std::string& name, Relation rel) {
  // Bulk-intern incoming string cells in sorted order so dictionary codes
  // stay (mostly) rank-append-only when views are factorised later.
  std::vector<std::string_view> strs;
  for (const Tuple& row : rel.rows()) {
    for (const Value& v : row) {
      if (v.is_string()) strs.push_back(v.as_string());
    }
  }
  if (!strs.empty()) dict_->InternBulk(std::move(strs));
  relations_.insert_or_assign(name, std::move(rel));
}

const Relation* Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

void Database::AddView(const std::string& name, Factorisation f) {
  views_.insert_or_assign(name, std::move(f));
}

const Factorisation* Database::view(const std::string& name) const {
  auto it = views_.find(name);
  if (it != views_.end()) return &it->second;
  if (snapshot_ != nullptr) {
    std::optional<Factorisation> f =
        storage::MaterialiseSnapshotView(*snapshot_, name);
    if (f.has_value()) {
      return &views_.emplace(name, *std::move(f)).first->second;
    }
  }
  return nullptr;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> out;
  for (const auto& [name, f] : views_) out.push_back(name);
  if (snapshot_ != nullptr) {
    for (const auto& [name, desc] : snapshot_->views) {
      if (views_.find(name) == views_.end()) out.push_back(name);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

Relation Database::MakeRelation(
    const std::vector<std::string>& attrs,
    const std::vector<std::vector<int64_t>>& rows) {
  std::vector<AttrId> ids;
  for (const std::string& a : attrs) ids.push_back(reg_.Intern(a));
  Relation rel{RelSchema(std::move(ids))};
  for (const auto& row : rows) {
    Tuple t;
    t.reserve(row.size());
    for (int64_t v : row) t.push_back(Value(v));
    rel.Add(std::move(t));
  }
  return rel;
}

namespace {

// Recursively builds the subtree for the attribute set `attrs`, whose
// members are mutually connected only through `relations`.
void BuildComponent(FTree* tree, int parent, std::vector<AttrId> attrs,
                    const std::vector<const Relation*>& relations) {
  if (attrs.empty()) return;

  // Pick the attribute shared by the most relations as the component root;
  // ties broken by smaller id for determinism.
  auto degree = [&](AttrId a) {
    int d = 0;
    for (const Relation* r : relations) {
      if (r->schema().Contains(a)) ++d;
    }
    return d;
  };
  AttrId best = attrs[0];
  for (AttrId a : attrs) {
    if (degree(a) > degree(best) || (degree(a) == degree(best) && a < best)) {
      best = a;
    }
  }
  int node = tree->AddNode({best}, parent);

  // Partition the remaining attributes into connected components of the
  // "co-occur in some relation" graph restricted to them; each component is
  // independent of the others given the ancestors, so they become siblings.
  std::vector<AttrId> rest;
  for (AttrId a : attrs) {
    if (a != best) rest.push_back(a);
  }
  std::unordered_map<AttrId, int> comp;
  int ncomp = 0;
  for (AttrId a : rest) {
    if (comp.count(a)) continue;
    // BFS over co-occurrence.
    std::vector<AttrId> frontier = {a};
    comp[a] = ncomp;
    while (!frontier.empty()) {
      AttrId x = frontier.back();
      frontier.pop_back();
      for (const Relation* r : relations) {
        if (!r->schema().Contains(x)) continue;
        for (AttrId y : r->schema().attrs()) {
          if (comp.count(y) ||
              std::find(rest.begin(), rest.end(), y) == rest.end()) {
            continue;
          }
          comp[y] = ncomp;
          frontier.push_back(y);
        }
      }
    }
    ++ncomp;
  }
  for (int c = 0; c < ncomp; ++c) {
    std::vector<AttrId> sub;
    for (AttrId a : rest) {
      if (comp[a] == c) sub.push_back(a);
    }
    BuildComponent(tree, node, std::move(sub), relations);
  }
}

}  // namespace

FTree ChooseFTree(const std::vector<const Relation*>& relations) {
  FTree tree;
  std::vector<AttrId> all;
  for (const Relation* r : relations) {
    for (AttrId a : r->schema().attrs()) {
      if (std::find(all.begin(), all.end(), a) == all.end()) all.push_back(a);
    }
  }
  // Top-level components become separate trees of the forest.
  std::unordered_map<AttrId, int> comp;
  int ncomp = 0;
  for (AttrId a : all) {
    if (comp.count(a)) continue;
    std::vector<AttrId> frontier = {a};
    comp[a] = ncomp;
    while (!frontier.empty()) {
      AttrId x = frontier.back();
      frontier.pop_back();
      for (const Relation* r : relations) {
        if (!r->schema().Contains(x)) continue;
        for (AttrId y : r->schema().attrs()) {
          if (!comp.count(y)) {
            comp[y] = ncomp;
            frontier.push_back(y);
          }
        }
      }
    }
    ++ncomp;
  }
  for (int c = 0; c < ncomp; ++c) {
    std::vector<AttrId> sub;
    for (AttrId a : all) {
      if (comp[a] == c) sub.push_back(a);
    }
    BuildComponent(&tree, -1, std::move(sub), relations);
  }
  for (size_t i = 0; i < relations.size(); ++i) {
    Hyperedge e;
    e.attrs = relations[i]->schema().attrs();
    std::sort(e.attrs.begin(), e.attrs.end());
    e.attrs.erase(std::unique(e.attrs.begin(), e.attrs.end()), e.attrs.end());
    e.weight = static_cast<double>(std::max<int64_t>(1, relations[i]->size()));
    e.name = "R" + std::to_string(i);
    tree.AddEdge(std::move(e));
  }
  return tree;
}

}  // namespace fdb
