#include "fdb/engine/database.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "fdb/core/update.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/sampler.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"

namespace fdb {

// Copies do not share checkpoint state (persist_) or the WAL: the
// retained node index is mutated by Checkpoint, and two databases
// appending to one delta chain or one log would corrupt it. A copy
// starts a fresh chain on its first Checkpoint and logs nothing until
// EnableWal.
Database::Database(const Database& other)
    : reg_(other.reg_),
      dict_(other.dict_),
      relations_(other.relations_),
      relation_versions_(other.relation_versions_),
      snapshot_(other.snapshot_) {
  base::MutexLock g(&other.mu_);
  views_ = other.views_;
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  reg_ = other.reg_;
  dict_ = other.dict_;
  relations_ = other.relations_;
  relation_versions_ = other.relation_versions_;
  {
    base::MutexLock g(&persist_mu_);
    persist_.reset();
  }
  {
    // The old logical state is being replaced wholesale: a log bound to
    // it must not keep recording on behalf of the new one.
    base::MutexLock g(&txn_mu_);
    wal_.reset();
    wal_base_.clear();
    in_txn_ = false;
    pending_.clear();
  }
  snapshot_ = other.snapshot_;
  std::shared_ptr<const ViewMap> v;
  {
    base::MutexLock g(&other.mu_);
    v = other.views_;
  }
  base::MutexLock g(&mu_);
  views_ = std::move(v);
  return *this;
}

namespace {

// The member default: a non-owning alias of the process dictionary.
// Moved-from databases are restored to it so they stay valid.
std::shared_ptr<ValueDict> DefaultDictAlias() {
  return {std::shared_ptr<ValueDict>(), &ValueDict::Default()};
}

}  // namespace

Database::Database(Database&& other) noexcept
    : reg_(std::move(other.reg_)),
      dict_(std::exchange(other.dict_, DefaultDictAlias())),
      relations_(std::move(other.relations_)),
      relation_versions_(std::move(other.relation_versions_)),
      snapshot_(std::move(other.snapshot_)) {
  {
    base::MutexLock g(&other.persist_mu_);
    persist_ = std::move(other.persist_);
  }
  {
    base::MutexLock g(&other.txn_mu_);
    wal_ = std::move(other.wal_);
    wal_base_ = std::exchange(other.wal_base_, {});
    in_txn_ = std::exchange(other.in_txn_, false);
    pending_ = std::move(other.pending_);
    other.pending_.clear();
  }
  {
    base::MutexLock g(&other.sampler_mu_);
    sampler_ = std::move(other.sampler_);
  }
  base::MutexLock g(&other.mu_);
  views_ = std::exchange(other.views_,
                         std::make_shared<const ViewMap>());
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  reg_ = std::move(other.reg_);
  dict_ = std::exchange(other.dict_, DefaultDictAlias());
  relations_ = std::move(other.relations_);
  relation_versions_ = std::move(other.relation_versions_);
  {
    std::shared_ptr<storage::PersistState> p;
    {
      base::MutexLock g(&other.persist_mu_);
      p = std::move(other.persist_);
    }
    base::MutexLock g(&persist_mu_);
    persist_ = std::move(p);
  }
  {
    std::unique_ptr<storage::Wal> w;
    std::string base;
    bool in_txn = false;
    std::vector<storage::WalOp> pending;
    {
      base::MutexLock g(&other.txn_mu_);
      w = std::move(other.wal_);
      base = std::exchange(other.wal_base_, {});
      in_txn = std::exchange(other.in_txn_, false);
      pending = std::move(other.pending_);
      other.pending_.clear();
    }
    base::MutexLock g(&txn_mu_);
    wal_ = std::move(w);
    wal_base_ = std::move(base);
    in_txn_ = in_txn;
    pending_ = std::move(pending);
  }
  snapshot_ = std::move(other.snapshot_);
  {
    std::shared_ptr<obs::MetricsSampler> s;
    {
      base::MutexLock g(&other.sampler_mu_);
      s = std::move(other.sampler_);
    }
    base::MutexLock g(&sampler_mu_);
    sampler_ = std::move(s);
  }
  std::shared_ptr<const ViewMap> v;
  {
    base::MutexLock g(&other.mu_);
    // Leave the moved-from database as a valid empty one (views_ is
    // dereferenced unconditionally by every accessor).
    v = std::exchange(other.views_, std::make_shared<const ViewMap>());
  }
  base::MutexLock g(&mu_);
  views_ = std::move(v);
  return *this;
}

void Database::AddRelation(const std::string& name, Relation rel) {
  // Bulk-intern incoming string cells in sorted order so dictionary codes
  // stay (mostly) rank-append-only when views are factorised later.
  std::vector<std::string_view> strs;
  for (const Tuple& row : rel.rows()) {
    for (const Value& v : row) {
      if (v.is_string()) strs.push_back(v.as_string());
    }
  }
  if (!strs.empty()) dict_->InternBulk(std::move(strs));
  relations_.insert_or_assign(name, std::move(rel));
  ++relation_versions_[name];
}

const Relation* Database::relation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

uint64_t Database::relation_version(const std::string& name) const {
  auto it = relation_versions_.find(name);
  return it == relation_versions_.end() ? 0 : it->second;
}

void Database::PublishView(const std::string& name,
                           std::shared_ptr<const Factorisation> fp) {
  base::MutexLock g(&mu_);
  auto next = std::make_shared<ViewMap>(*views_);
  (*next)[name] = std::move(fp);
  views_ = std::move(next);
}

void Database::AddView(const std::string& name, Factorisation f) {
  auto fp = std::make_shared<const Factorisation>(std::move(f));
  // Serialised with UpdateView: a direct AddView must not land inside
  // another writer's read-modify-publish window and get overwritten.
  base::MutexLock wg(&writer_mu_);
  PublishView(name, std::move(fp));
}

std::shared_ptr<const Factorisation> Database::FindOrAdmit(
    const std::string& name) const {
  std::shared_ptr<const ViewMap> epoch;
  {
    base::MutexLock g(&mu_);
    epoch = views_;
  }
  auto it = epoch->find(name);
  if (it != epoch->end()) return it->second;
  if (snapshot_ == nullptr) return nullptr;
  // Lazy snapshot admission. The materialisation pass runs *outside*
  // mu_ (snapshot_->mu serialises the one-time segment fix-up), so
  // readers of other views never stall behind it; mu_ is retaken only
  // to publish, and a racing admitter's copy wins harmlessly.
  std::optional<Factorisation> f =
      storage::MaterialiseSnapshotView(*snapshot_, name);
  if (!f.has_value()) return nullptr;
  auto fp = std::make_shared<const Factorisation>(*std::move(f));
  base::MutexLock g(&mu_);
  it = views_->find(name);
  if (it != views_->end()) return it->second;
  auto next = std::make_shared<ViewMap>(*views_);
  next->emplace(name, fp);
  views_ = std::move(next);
  return fp;
}

const Factorisation* Database::view(const std::string& name) const {
  return FindOrAdmit(name).get();
}

std::shared_ptr<const Factorisation> Database::ViewSnapshot(
    const std::string& name) const {
  return FindOrAdmit(name);
}

bool Database::UpdateView(const std::string& name,
                          const std::function<void(Factorisation*)>& mutate) {
  base::MutexLock wg(&writer_mu_);
  std::shared_ptr<const Factorisation> cur = FindOrAdmit(name);
  if (cur == nullptr) return false;
  // Build off-line on a private copy: the copy shares the current arenas,
  // so mutators allocating through ArenaForWrite land in a fresh arena
  // that adopts them — concurrent readers of `cur` are never touched.
  Factorisation next = *cur;
  mutate(&next);
  PublishView(name, std::make_shared<const Factorisation>(std::move(next)));
  return true;
}

// --- transactions / write-ahead logging -----------------------------------

void Database::EnableWal(const std::string& raw_path) {
  std::string path = storage::CanonicalSnapshotPath(raw_path);
  base::MutexLock t(&txn_mu_);
  if (in_txn_) {
    throw std::invalid_argument(
        "txn: cannot enable the WAL inside an open transaction");
  }
  // Fold the current state (including anything a previous log replay
  // contributed) into the chain first, so the fresh log applies on top
  // of exactly what is durable.
  CheckpointLocked(path);
  uint64_t epoch = 0;
  uint64_t chain_pos = 0;
  {
    base::MutexLock g(&persist_mu_);
    epoch = persist_->epoch;
    chain_pos = persist_->next_seq - 1;
  }
  wal_ = storage::Wal::Create(path, epoch, chain_pos);
  wal_base_ = path;
}

void Database::DisableWal() {
  base::MutexLock t(&txn_mu_);
  if (in_txn_) {
    throw std::invalid_argument(
        "txn: cannot disable the WAL inside an open transaction");
  }
  if (wal_ == nullptr) return;
  // Fold outstanding groups into the chain; after that the log holds
  // nothing the chain does not, so the file can go.
  CheckpointLocked(wal_base_);
  std::string wp = wal_->path();
  wal_.reset();
  wal_base_.clear();
  std::remove(wp.c_str());
}

bool Database::wal_enabled() const {
  base::MutexLock t(&txn_mu_);
  return wal_ != nullptr;
}

storage::WalStatus Database::WalStatus() const {
  base::MutexLock t(&txn_mu_);
  storage::WalStatus s;
  s.enabled = wal_ != nullptr;
  s.in_txn = in_txn_;
  if (wal_ != nullptr) {
    s.broken = wal_->broken();
    s.path = wal_->path();
    s.committed_groups = wal_->last_seq();
    s.wal_bytes = wal_->bytes();
  }
  s.pending_ops = pending_.size();
  s.pending_bytes = storage::Wal::PayloadBytes(pending_);
  return s;
}

std::optional<storage::PersistState> Database::PersistSnapshot() const {
  base::MutexLock g(&persist_mu_);
  if (persist_ == nullptr) return std::nullopt;
  return *persist_;
}

void Database::Begin() {
  base::MutexLock t(&txn_mu_);
  if (in_txn_) {
    throw std::invalid_argument("txn: a transaction is already open");
  }
  in_txn_ = true;
}

uint64_t Database::Commit() {
  base::MutexLock t(&txn_mu_);
  if (!in_txn_) throw std::invalid_argument("txn: no open transaction");
  uint64_t seq = CommitGroupLocked(&pending_);  // throws → txn stays open
  in_txn_ = false;
  return seq;
}

void Database::Rollback() {
  base::MutexLock t(&txn_mu_);
  if (!in_txn_) throw std::invalid_argument("txn: no open transaction");
  pending_.clear();
  in_txn_ = false;
}

void Database::Insert(const std::string& view, const Tuple& tuple) {
  base::MutexLock t(&txn_mu_);
  BufferOpLocked(storage::WalOp{storage::WalOp::kInsert, view, tuple});
}

void Database::Delete(const std::string& view, const Tuple& tuple) {
  base::MutexLock t(&txn_mu_);
  BufferOpLocked(storage::WalOp{storage::WalOp::kDelete, view, tuple});
}

void Database::BufferOpLocked(storage::WalOp op) {
  std::shared_ptr<const Factorisation> f = ViewSnapshot(op.view);
  if (f == nullptr) {
    throw std::invalid_argument("txn: no view named '" + op.view + "'");
  }
  // Shape/arity validation up front, so Commit's apply cannot fail after
  // the group is already durable in the log.
  ContainsTuple(*f, op.tuple);
  if (in_txn_) {
    pending_.push_back(std::move(op));
    return;
  }
  std::vector<storage::WalOp> one;
  one.push_back(std::move(op));
  CommitGroupLocked(&one);  // autocommit: a one-op durable group
}

uint64_t Database::CommitGroupLocked(std::vector<storage::WalOp>* ops) {
  if (ops->empty()) return 0;
  static obs::Counter& commit_groups = obs::Registry::Instance().GetCounter(
      "wal.commit_groups", "groups", "commit groups applied");
  static obs::Histogram& group_ops = obs::Registry::Instance().GetHistogram(
      "wal.commit_group_ops", "ops", "operations per commit group");
  static obs::Histogram& append_hist = obs::Registry::Instance().GetHistogram(
      "wal.append_ns", "ns", "WAL frame append+fsync wall time");
  commit_groups.Inc();
  group_ops.Record(ops->size());
  // Durable first: the group is acknowledged only once its frame is
  // fsync'd. A log failure throws here, before any in-memory change.
  uint64_t seq = 0;
  if (wal_ != nullptr) {
    // Timed only when the event log is live — the latency histogram has
    // its own clock reads inside ScopedLatency, and the common disabled
    // path must stay clock-free beyond those.
    int64_t t0 = obs::LogEnabled() ? obs::NowNs() : -1;
    {
      obs::ScopedLatency latency(append_hist);
      seq = wal_->Append(*ops);
    }
    if (t0 >= 0) {
      int64_t dur = obs::NowNs() - t0;
      obs::EventLog& log = obs::EventLog::Instance();
      if (dur >= log.wal_stall_ns()) {
        log.Emit(obs::EventType::kWalStall,
                 {obs::F("seq", seq), obs::F("ops", ops->size()),
                  obs::F("stall_ms", static_cast<double>(dur) / 1e6)});
      }
    }
  }
  // Apply, one batch per affected view: each union along the touched
  // paths is rebuilt once per group, not once per tuple, and the delta
  // checkpointer later sees one coalesced diff.
  std::map<std::string, std::vector<BatchOp>> per_view;
  for (storage::WalOp& op : *ops) {
    per_view[op.view].push_back(
        BatchOp{op.kind == storage::WalOp::kInsert, std::move(op.tuple)});
  }
  for (auto& [name, batch] : per_view) {
    UpdateView(name, [&batch](Factorisation* f) { ApplyBatch(f, batch); });
  }
  ops->clear();
  return seq;
}

void Database::StartMetricsSampler(int64_t interval_ms) {
  obs::MetricsSampler::Options opts;
  opts.interval_ms = interval_ms;
  auto sampler = std::make_shared<obs::MetricsSampler>(opts);
  sampler->Start();
  std::shared_ptr<obs::MetricsSampler> old;
  {
    base::MutexLock g(&sampler_mu_);
    old = std::exchange(sampler_, std::move(sampler));
  }
  // The old sampler (if any) stops and joins here, outside the lock.
  if (old != nullptr) old->Stop();
}

void Database::StopMetricsSampler() {
  std::shared_ptr<obs::MetricsSampler> s;
  {
    base::MutexLock g(&sampler_mu_);
    s = std::move(sampler_);
  }
  if (s != nullptr) s->Stop();
}

std::shared_ptr<obs::MetricsSampler> Database::metrics_sampler() const {
  base::MutexLock g(&sampler_mu_);
  return sampler_;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::ViewNames() const {
  std::shared_ptr<const ViewMap> epoch;
  {
    base::MutexLock g(&mu_);
    epoch = views_;
  }
  std::vector<std::string> out;
  for (const auto& [name, f] : *epoch) out.push_back(name);
  if (snapshot_ != nullptr) {
    for (const auto& [name, desc] : snapshot_->views) {
      if (epoch->find(name) == epoch->end()) out.push_back(name);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

Relation Database::MakeRelation(
    const std::vector<std::string>& attrs,
    const std::vector<std::vector<int64_t>>& rows) {
  std::vector<AttrId> ids;
  for (const std::string& a : attrs) ids.push_back(reg_.Intern(a));
  Relation rel{RelSchema(std::move(ids))};
  for (const auto& row : rows) {
    Tuple t;
    t.reserve(row.size());
    for (int64_t v : row) t.push_back(Value(v));
    rel.Add(std::move(t));
  }
  return rel;
}

namespace {

// Recursively builds the subtree for the attribute set `attrs`, whose
// members are mutually connected only through `relations`.
void BuildComponent(FTree* tree, int parent, std::vector<AttrId> attrs,
                    const std::vector<const Relation*>& relations) {
  if (attrs.empty()) return;

  // Pick the attribute shared by the most relations as the component root;
  // ties broken by smaller id for determinism.
  auto degree = [&](AttrId a) {
    int d = 0;
    for (const Relation* r : relations) {
      if (r->schema().Contains(a)) ++d;
    }
    return d;
  };
  AttrId best = attrs[0];
  for (AttrId a : attrs) {
    if (degree(a) > degree(best) || (degree(a) == degree(best) && a < best)) {
      best = a;
    }
  }
  int node = tree->AddNode({best}, parent);

  // Partition the remaining attributes into connected components of the
  // "co-occur in some relation" graph restricted to them; each component is
  // independent of the others given the ancestors, so they become siblings.
  std::vector<AttrId> rest;
  for (AttrId a : attrs) {
    if (a != best) rest.push_back(a);
  }
  std::unordered_map<AttrId, int> comp;
  int ncomp = 0;
  for (AttrId a : rest) {
    if (comp.count(a)) continue;
    // BFS over co-occurrence.
    std::vector<AttrId> frontier = {a};
    comp[a] = ncomp;
    while (!frontier.empty()) {
      AttrId x = frontier.back();
      frontier.pop_back();
      for (const Relation* r : relations) {
        if (!r->schema().Contains(x)) continue;
        for (AttrId y : r->schema().attrs()) {
          if (comp.count(y) ||
              std::find(rest.begin(), rest.end(), y) == rest.end()) {
            continue;
          }
          comp[y] = ncomp;
          frontier.push_back(y);
        }
      }
    }
    ++ncomp;
  }
  for (int c = 0; c < ncomp; ++c) {
    std::vector<AttrId> sub;
    for (AttrId a : rest) {
      if (comp[a] == c) sub.push_back(a);
    }
    BuildComponent(tree, node, std::move(sub), relations);
  }
}

}  // namespace

FTree ChooseFTree(const std::vector<const Relation*>& relations) {
  FTree tree;
  std::vector<AttrId> all;
  for (const Relation* r : relations) {
    for (AttrId a : r->schema().attrs()) {
      if (std::find(all.begin(), all.end(), a) == all.end()) all.push_back(a);
    }
  }
  // Top-level components become separate trees of the forest.
  std::unordered_map<AttrId, int> comp;
  int ncomp = 0;
  for (AttrId a : all) {
    if (comp.count(a)) continue;
    std::vector<AttrId> frontier = {a};
    comp[a] = ncomp;
    while (!frontier.empty()) {
      AttrId x = frontier.back();
      frontier.pop_back();
      for (const Relation* r : relations) {
        if (!r->schema().Contains(x)) continue;
        for (AttrId y : r->schema().attrs()) {
          if (!comp.count(y)) {
            comp[y] = ncomp;
            frontier.push_back(y);
          }
        }
      }
    }
    ++ncomp;
  }
  for (int c = 0; c < ncomp; ++c) {
    std::vector<AttrId> sub;
    for (AttrId a : all) {
      if (comp[a] == c) sub.push_back(a);
    }
    BuildComponent(&tree, -1, std::move(sub), relations);
  }
  for (size_t i = 0; i < relations.size(); ++i) {
    Hyperedge e;
    e.attrs = relations[i]->schema().attrs();
    std::sort(e.attrs.begin(), e.attrs.end());
    e.attrs.erase(std::unique(e.attrs.begin(), e.attrs.end()), e.attrs.end());
    e.weight = static_cast<double>(std::max<int64_t>(1, relations[i]->size()));
    e.name = "R" + std::to_string(i);
    tree.AddEdge(std::move(e));
  }
  return tree;
}

}  // namespace fdb
