#ifndef FDB_ENGINE_RDB_ENGINE_H_
#define FDB_ENGINE_RDB_ENGINE_H_

#include <string>

#include "fdb/engine/database.h"
#include "fdb/query/binder.h"

namespace fdb {

/// Options for the RDB baseline engine.
struct RdbOptions {
  /// Sort-based grouping mirrors SQLite; hash-based mirrors PostgreSQL
  /// (Experiment 1 / Experiment 5).
  enum class Grouping { kSort, kHash };
  Grouping grouping = Grouping::kSort;
  /// Use the manually optimised eager-aggregation plan (Yan–Larson [31])
  /// instead of join-then-aggregate (Experiment 2, "man" bars of Fig. 6).
  bool eager = false;
};

/// Result of RDB evaluation.
struct RdbResult {
  Relation flat;
  double seconds = 0.0;
};

/// The flat relational baseline engine standing in for SQLite/PostgreSQL:
/// pushes constant selections below the joins, natural-joins the inputs
/// with hash joins, then groups/aggregates, sorts and limits.
class RdbEngine {
 public:
  explicit RdbEngine(Database* db) : db_(db) {}

  RdbResult Execute(const BoundQuery& q, const RdbOptions& options = {});

  /// Convenience: parse + bind + execute.
  RdbResult ExecuteSql(const std::string& sql, const RdbOptions& options = {});

 private:
  Database* db_;
};

}  // namespace fdb

#endif  // FDB_ENGINE_RDB_ENGINE_H_
