#ifndef FDB_ENGINE_RDB_ENGINE_H_
#define FDB_ENGINE_RDB_ENGINE_H_

#include <memory>
#include <string>

#include "fdb/engine/database.h"
#include "fdb/query/binder.h"

namespace fdb {

namespace obs {
class Trace;
}  // namespace obs

/// Options for the RDB baseline engine.
struct RdbOptions {
  /// Sort-based grouping mirrors SQLite; hash-based mirrors PostgreSQL
  /// (Experiment 1 / Experiment 5).
  enum class Grouping { kSort, kHash };
  Grouping grouping = Grouping::kSort;
  /// Use the manually optimised eager-aggregation plan (Yan–Larson [31])
  /// instead of join-then-aggregate (Experiment 2, "man" bars of Fig. 6).
  bool eager = false;
  /// Record per-phase spans into this trace (null = off). ExecuteSql
  /// creates one automatically for EXPLAIN ANALYZE queries.
  obs::Trace* trace = nullptr;
};

/// Result of RDB evaluation.
struct RdbResult {
  Relation flat;
  double seconds = 0.0;
  /// The execution trace for EXPLAIN ANALYZE queries (null otherwise).
  std::shared_ptr<obs::Trace> trace;
};

/// The flat relational baseline engine standing in for SQLite/PostgreSQL:
/// pushes constant selections below the joins, natural-joins the inputs
/// with hash joins, then groups/aggregates, sorts and limits.
class RdbEngine {
 public:
  explicit RdbEngine(Database* db) : db_(db) {}

  /// Evaluates `q`. Reports the completion (latency, rows, errors) to the
  /// statement store when metrics are enabled, mirroring FdbEngine.
  RdbResult Execute(const BoundQuery& q, const RdbOptions& options = {});

  /// Convenience: parse + bind + execute.
  RdbResult ExecuteSql(const std::string& sql, const RdbOptions& options = {});

 private:
  RdbResult ExecuteImpl(const BoundQuery& q, const RdbOptions& options);

  Database* db_;
};

}  // namespace fdb

#endif  // FDB_ENGINE_RDB_ENGINE_H_
