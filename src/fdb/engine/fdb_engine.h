#ifndef FDB_ENGINE_FDB_ENGINE_H_
#define FDB_ENGINE_FDB_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "fdb/core/enumerate.h"
#include "fdb/core/stats.h"
#include "fdb/engine/database.h"
#include "fdb/optimizer/exhaustive.h"
#include "fdb/optimizer/greedy.h"
#include "fdb/query/binder.h"

namespace fdb {

namespace obs {
class Trace;
}  // namespace obs

/// Options controlling FDB query evaluation.
struct FdbOptions {
  enum class Planner { kGreedy, kExhaustive };
  Planner planner = Planner::kGreedy;
  /// FDB f/o: keep the result factorised instead of enumerating tuples
  /// (Fig. 5). Only meaningful for aggregate/SPJ queries without limit.
  bool factorised_output = false;
  /// State cap for the exhaustive planner before falling back to greedy.
  int exhaustive_max_states = 20000;
  /// Record per-operator statistics (op_stats, result_singletons). Off by
  /// default: counting singletons after every operator costs a full walk of
  /// the factorisation, which would mask the benefit of partial
  /// restructuring on limit queries.
  bool collect_stats = false;
  /// Share structurally identical subexpressions in the factorised output
  /// (CompressInPlace): a step toward the §8 "beyond f-trees"
  /// representations. Only meaningful with factorised_output.
  bool compress_output = false;
  /// Record per-phase spans (with cardinalities and factorisation stats)
  /// into this trace. Null = tracing off: the execution path pays nothing.
  /// ExecuteSql creates and attaches one automatically for
  /// EXPLAIN ANALYZE queries.
  obs::Trace* trace = nullptr;
};

/// The result of FDB evaluation: a flat relation (default) or the result
/// factorisation (f/o mode), plus plan and execution statistics.
struct FdbResult {
  Relation flat;
  std::optional<Factorisation> factorised;
  FPlan plan;
  std::vector<FOpStats> op_stats;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;   ///< f-plan operator execution
  double enum_seconds = 0.0;   ///< result enumeration
  int64_t result_singletons = 0;
  bool used_exhaustive = false;
  /// The execution trace for EXPLAIN ANALYZE queries (null otherwise).
  /// Render with obs::ExplainReport or obs::Trace::ToChromeJson.
  std::shared_ptr<obs::Trace> trace;
  /// Footprint of the input factorisation. Captured only on traced runs
  /// (ComputeFootprint walks the whole DAG); also sampled into the
  /// statement store.
  std::optional<FactFootprint> input_footprint;
};

/// The FDB query engine (paper §1–§5): evaluates bound queries over
/// factorised materialised views, or over flat relations by factorising
/// their natural join first (Experiment 2).
class FdbEngine {
 public:
  explicit FdbEngine(Database* db) : db_(db) {}

  /// Evaluates `q`. FROM must name either a single factorised view, a set
  /// of base relations, or a system table (fdb.statements, ...). Reports
  /// the completion (latency, rows, errors) to the statement store when
  /// metrics are enabled.
  FdbResult Execute(const BoundQuery& q, const FdbOptions& options = {});

  /// Convenience: parse + bind + execute.
  FdbResult ExecuteSql(const std::string& sql, const FdbOptions& options = {});

 private:
  FdbResult ExecuteImpl(const BoundQuery& q, const FdbOptions& options);
  Factorisation InputFactorisation(const BoundQuery& q);

  Database* db_;
};

}  // namespace fdb

#endif  // FDB_ENGINE_FDB_ENGINE_H_
