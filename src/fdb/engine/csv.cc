#include "fdb/engine/csv.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fdb {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(Trim(cell));
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

Value ParseCell(const std::string& cell) {
  if (cell.empty() || cell == "NULL") return Value();
  errno = 0;
  char* end = nullptr;
  long long i = std::strtoll(cell.c_str(), &end, 10);
  if (errno == 0 && end == cell.c_str() + cell.size()) {
    return Value(static_cast<int64_t>(i));
  }
  errno = 0;
  double d = std::strtod(cell.c_str(), &end);
  if (errno == 0 && end == cell.c_str() + cell.size()) return Value(d);
  return Value(cell);
}

}  // namespace

Relation ReadCsv(std::istream& in, Database* db) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("ReadCsv: missing header line");
  }
  std::vector<std::string> header = SplitLine(line);
  if (header.empty()) {
    throw std::invalid_argument("ReadCsv: empty header");
  }
  std::vector<AttrId> attrs;
  for (const std::string& name : header) {
    if (name.empty()) {
      throw std::invalid_argument("ReadCsv: empty attribute name");
    }
    attrs.push_back(db->registry().Intern(name));
  }
  Relation rel{RelSchema(std::move(attrs))};
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != header.size()) {
      throw std::invalid_argument("ReadCsv: line " + std::to_string(lineno) +
                                  " has " + std::to_string(cells.size()) +
                                  " cells, expected " +
                                  std::to_string(header.size()));
    }
    Tuple row;
    row.reserve(cells.size());
    for (const std::string& c : cells) row.push_back(ParseCell(c));
    rel.Add(std::move(row));
  }
  // String cells are bulk-interned downstream (Database::AddRelation and
  // the trie builder both pre-intern in sorted order), so no per-cell
  // dictionary work happens here.
  return rel;
}

void LoadCsvRelation(Database* db, const std::string& name,
                     const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("LoadCsvRelation: cannot open " + path);
  }
  db->AddRelation(name, ReadCsv(in, db));
}

void WriteCsv(const Relation& rel, const AttributeRegistry& reg,
              std::ostream& out) {
  for (int i = 0; i < rel.schema().arity(); ++i) {
    if (i) out << ",";
    out << reg.Name(rel.schema().attr(i));
  }
  out << "\n";
  for (const Tuple& row : rel.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << row[i].ToString();
    }
    out << "\n";
  }
}

void SaveCsvRelation(const Relation& rel, const AttributeRegistry& reg,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::invalid_argument("SaveCsvRelation: cannot open " + path);
  }
  WriteCsv(rel, reg, out);
}

}  // namespace fdb
