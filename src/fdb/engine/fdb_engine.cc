#include "fdb/engine/fdb_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/project.h"
#include "fdb/query/parser.h"
#include "fdb/relational/rdb_ops.h"

namespace fdb {
namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// True if any order-by key references a task output (an aggregate alias):
// those orders are realised by factorising and restructuring the (small)
// aggregated result instead (Q7 in Experiment 3).
bool OrderNeedsResult(const BoundQuery& q) {
  for (const SortKey& k : q.order_by) {
    for (AttrId id : q.task_ids) {
      if (k.attr == id) return true;
    }
  }
  return false;
}

// Visit order over the grouping nodes: order-by nodes first (in order-by
// sequence), then the remaining grouping nodes in topological order.
void GroupVisitOrder(const FTree& tree, const std::vector<AttrId>& group,
                     const std::vector<SortKey>& order,
                     std::vector<int>* visit, std::vector<SortDir>* dirs) {
  std::unordered_set<int> seen;
  for (const SortKey& k : order) {
    int n = tree.NodeOfAttr(k.attr);
    if (n < 0) {
      throw std::logic_error("GroupVisitOrder: order attribute not in tree");
    }
    if (seen.insert(n).second) {
      visit->push_back(n);
      dirs->push_back(k.dir);
    }
  }
  std::unordered_set<int> g_nodes;
  for (AttrId a : group) {
    int n = tree.NodeOfAttr(a);
    if (n < 0) {
      throw std::logic_error("GroupVisitOrder: group attribute not in tree");
    }
    g_nodes.insert(n);
  }
  for (int n : tree.TopologicalOrder()) {
    if (g_nodes.count(n) && seen.insert(n).second) {
      visit->push_back(n);
      dirs->push_back(SortDir::kAsc);
    }
  }
}

// Single-row result of a full aggregation (empty GROUP BY): SQL semantics
// on empty input are count = 0 and NULL for sum/min/max.
Relation FullAggregation(const Factorisation& f, const BoundQuery& q) {
  std::vector<AttrId> attrs = q.task_ids;
  Relation raw{RelSchema(std::move(attrs))};
  Tuple row;
  if (f.empty()) {
    for (const AggTask& t : q.tasks) {
      row.push_back(t.fn == AggFn::kCount ? Value(static_cast<int64_t>(0))
                                          : Value());
    }
  } else {
    std::vector<std::pair<int, const FactNode*>> parts;
    for (size_t r = 0; r < f.roots().size(); ++r) {
      parts.emplace_back(f.tree().roots()[r], f.roots()[r]);
    }
    for (const AggTask& t : q.tasks) {
      row.push_back(EvalAggregateProduct(f.tree(), parts, t));
    }
  }
  raw.Add(std::move(row));
  return raw;
}

}  // namespace

Factorisation FdbEngine::InputFactorisation(const BoundQuery& q) {
  if (q.from.size() == 1) {
    // Hold the snapshot while copying: a concurrent UpdateView swap must
    // not retire this version under us (the copy then co-owns the arenas).
    if (std::shared_ptr<const Factorisation> v =
            db_->ViewSnapshot(q.from[0])) {
      return *v;  // cheap: shares all union nodes
    }
  }
  std::vector<const Relation*> rels;
  for (const std::string& name : q.from) {
    const Relation* r = db_->relation(name);
    if (r == nullptr) {
      if (db_->ViewSnapshot(name) != nullptr) {
        throw std::invalid_argument(
            "FdbEngine: views can only be queried alone: '" + name + "'");
      }
      throw std::invalid_argument("FdbEngine: unknown relation '" + name +
                                  "'");
    }
    rels.push_back(r);
  }
  FTree tree = ChooseFTree(rels);
  return FactoriseJoin(tree, rels);
}

FdbResult FdbEngine::ExecuteSql(const std::string& sql,
                                const FdbOptions& options) {
  return Execute(Bind(ParseSql(sql), db_), options);
}

FdbResult FdbEngine::Execute(const BoundQuery& q, const FdbOptions& options) {
  FdbResult result;
  Factorisation fact = InputFactorisation(q);
  AttributeRegistry* reg = &db_->registry();

  // --- plan ---------------------------------------------------------------
  auto t0 = Clock::now();
  PlannerQuery pq;
  pq.eq_selections = q.eq_selections;
  pq.const_selections = q.const_selections;
  pq.group = q.group;
  pq.tasks = q.tasks;
  bool order_via_result = OrderNeedsResult(q);
  if (!order_via_result) {
    for (const SortKey& k : q.order_by) pq.order.push_back(k.attr);
  }
  if (options.planner == FdbOptions::Planner::kExhaustive) {
    auto ex = ExhaustivePlan(fact.tree(), *reg, pq,
                             options.exhaustive_max_states);
    if (ex.has_value()) {
      result.plan = std::move(ex->plan);
      result.used_exhaustive = true;
    }
  }
  if (!result.used_exhaustive) {
    result.plan = GreedyPlan(fact.tree(), *reg, pq);
  }
  result.plan_seconds = Since(t0);

  // --- execute the f-plan --------------------------------------------------
  t0 = Clock::now();
  ExecutePlan(&fact, reg, result.plan,
              options.collect_stats ? &result.op_stats : nullptr);
  result.exec_seconds = Since(t0);

  if (options.factorised_output) {
    if (!q.has_aggregates() && q.distinct_projection) {
      // Distinct projections materialise as the projected top fragment.
      std::vector<int> keep;
      for (AttrId a : q.group) {
        int n = fact.tree().NodeOfAttr(a);
        if (std::find(keep.begin(), keep.end(), n) == keep.end()) {
          keep.push_back(n);
        }
      }
      fact = ProjectToTopFragment(fact, keep);
    }
    if (options.compress_output) {
      CompressInPlace(&fact);
      result.result_singletons = CountStoredSingletons(fact);
    } else {
      result.result_singletons = fact.CountSingletons();
    }
    result.factorised = std::move(fact);
    return result;
  }

  // --- enumerate -----------------------------------------------------------
  t0 = Clock::now();
  // Enumeration may stop early at LIMIT only when no HAVING filter runs
  // afterwards (HAVING drops rows, so the limit must apply post-filter).
  std::optional<int64_t> enum_limit =
      q.having.empty() ? q.limit : std::nullopt;

  if (q.has_aggregates() || q.distinct_projection) {
    Relation raw;
    if (q.group.empty() && q.has_aggregates()) {
      raw = FullAggregation(fact, q);
    } else {
      std::vector<int> visit;
      std::vector<SortDir> dirs;
      GroupVisitOrder(fact.tree(), q.group,
                      order_via_result ? std::vector<SortKey>{} : q.order_by,
                      &visit, &dirs);
      std::optional<int64_t> raw_limit;
      if (!order_via_result) raw_limit = enum_limit;
      // Unlimited group enumerations fork per root-union chunk on the
      // default pool (see GroupAggToRelation).
      raw = GroupAggToRelation(fact, visit, dirs, q.tasks, q.task_ids,
                               raw_limit);
    }
    Relation out = AssembleOutputs(q, raw, order_via_result
                                               ? std::nullopt
                                               : q.limit);
    if (order_via_result) {
      // Factorise the (small) result grouped by the order-by list and
      // enumerate it back in order — the paper's restructuring of the
      // aggregated result (Q7).
      std::vector<AttrId> path;
      for (const SortKey& k : q.order_by) {
        if (std::find(path.begin(), path.end(), k.attr) == path.end()) {
          path.push_back(k.attr);
        }
      }
      for (AttrId a : out.schema().attrs()) {
        if (std::find(path.begin(), path.end(), a) == path.end()) {
          path.push_back(a);
        }
      }
      Factorisation rf = FactoriseRelation(out, path);
      std::vector<int> visit = rf.tree().TopologicalOrder();
      std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
      for (const SortKey& k : q.order_by) {
        int n = rf.tree().NodeOfAttr(k.attr);
        for (size_t i = 0; i < visit.size(); ++i) {
          if (visit[i] == n) dirs[i] = k.dir;
        }
      }
      Relation ordered = EnumerateToRelation(rf, visit, dirs, q.limit);
      // Project back to SELECT column order.
      std::vector<AttrId> want = out.schema().attrs();
      out = Project(ordered, want, /*dedup=*/false);
    }
    result.flat = std::move(out);
  } else {
    // SELECT * over an SPJ query: ordered full enumeration.
    std::vector<int> o_nodes;
    for (const SortKey& k : q.order_by) {
      int n = fact.tree().NodeOfAttr(k.attr);
      if (n < 0) {
        throw std::logic_error("FdbEngine: order attribute not in tree");
      }
      if (std::find(o_nodes.begin(), o_nodes.end(), n) == o_nodes.end()) {
        o_nodes.push_back(n);
      }
    }
    std::vector<int> visit = OrderedVisitSequence(fact.tree(), o_nodes);
    std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
    for (const SortKey& k : q.order_by) {
      int n = fact.tree().NodeOfAttr(k.attr);
      for (size_t i = 0; i < visit.size(); ++i) {
        if (visit[i] == n) dirs[i] = k.dir;
      }
    }
    Relation rows = EnumerateToRelation(fact, visit, dirs, enum_limit);
    std::vector<AttrId> want;
    for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
    result.flat = Project(rows, want, /*dedup=*/false);
  }
  result.enum_seconds = Since(t0);
  if (options.collect_stats) {
    result.result_singletons = fact.CountSingletons();
  }
  return result;
}

}  // namespace fdb
