#include "fdb/engine/fdb_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/project.h"
#include "fdb/core/stats.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/statements.h"
#include "fdb/obs/trace.h"
#include "fdb/query/parser.h"
#include "fdb/relational/rdb_ops.h"

namespace fdb {
namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* FOpKindName(FOpKind k) {
  switch (k) {
    case FOpKind::kSwap:
      return "swap";
    case FOpKind::kMerge:
      return "merge";
    case FOpKind::kAbsorb:
      return "absorb";
    case FOpKind::kSelectConst:
      return "select";
    case FOpKind::kAggregate:
      return "aggregate";
    case FOpKind::kRename:
      return "rename";
  }
  return "?";
}

// Attaches a factorisation size summary to a trace span — the paper's
// per-query size gap (factorised vs. flat), visible in EXPLAIN ANALYZE.
void NoteFootprint(obs::SpanScope& span, const FactFootprint& fp) {
  if (span.trace() == nullptr) return;
  span.NoteInt("unions", fp.unions);
  span.NoteInt("singletons", fp.singletons);
  span.NoteInt("flat_tuples", fp.tuples);
  span.NoteInt("flat_values", fp.flat_values);
  span.NoteInt("arena_bytes", fp.arena_bytes);
  span.NoteDouble("compression", fp.CompressionRatio());
}

// True if any order-by key references a task output (an aggregate alias):
// those orders are realised by factorising and restructuring the (small)
// aggregated result instead (Q7 in Experiment 3).
bool OrderNeedsResult(const BoundQuery& q) {
  for (const SortKey& k : q.order_by) {
    for (AttrId id : q.task_ids) {
      if (k.attr == id) return true;
    }
  }
  return false;
}

// Visit order over the grouping nodes: order-by nodes first (in order-by
// sequence), then the remaining grouping nodes in topological order.
void GroupVisitOrder(const FTree& tree, const std::vector<AttrId>& group,
                     const std::vector<SortKey>& order,
                     std::vector<int>* visit, std::vector<SortDir>* dirs) {
  std::unordered_set<int> seen;
  for (const SortKey& k : order) {
    int n = tree.NodeOfAttr(k.attr);
    if (n < 0) {
      throw std::logic_error("GroupVisitOrder: order attribute not in tree");
    }
    if (seen.insert(n).second) {
      visit->push_back(n);
      dirs->push_back(k.dir);
    }
  }
  std::unordered_set<int> g_nodes;
  for (AttrId a : group) {
    int n = tree.NodeOfAttr(a);
    if (n < 0) {
      throw std::logic_error("GroupVisitOrder: group attribute not in tree");
    }
    g_nodes.insert(n);
  }
  for (int n : tree.TopologicalOrder()) {
    if (g_nodes.count(n) && seen.insert(n).second) {
      visit->push_back(n);
      dirs->push_back(SortDir::kAsc);
    }
  }
}

// Single-row result of a full aggregation (empty GROUP BY): SQL semantics
// on empty input are count = 0 and NULL for sum/min/max.
Relation FullAggregation(const Factorisation& f, const BoundQuery& q) {
  std::vector<AttrId> attrs = q.task_ids;
  Relation raw{RelSchema(std::move(attrs))};
  Tuple row;
  if (f.empty()) {
    for (const AggTask& t : q.tasks) {
      row.push_back(t.fn == AggFn::kCount ? Value(static_cast<int64_t>(0))
                                          : Value());
    }
  } else {
    std::vector<std::pair<int, const FactNode*>> parts;
    for (size_t r = 0; r < f.roots().size(); ++r) {
      parts.emplace_back(f.tree().roots()[r], f.roots()[r]);
    }
    for (const AggTask& t : q.tasks) {
      row.push_back(EvalAggregateProduct(f.tree(), parts, t));
    }
  }
  raw.Add(std::move(row));
  return raw;
}

}  // namespace

Factorisation FdbEngine::InputFactorisation(const BoundQuery& q) {
  if (q.from.size() == 1) {
    // Hold the snapshot while copying: a concurrent UpdateView swap must
    // not retire this version under us (the copy then co-owns the arenas).
    if (std::shared_ptr<const Factorisation> v =
            db_->ViewSnapshot(q.from[0])) {
      return *v;  // cheap: shares all union nodes
    }
  }
  std::vector<const Relation*> rels;
  // System tables materialise fresh per query; FactoriseJoin copies their
  // data into its own arena, so the owned relations may die on return.
  std::vector<std::unique_ptr<Relation>> owned;
  for (const std::string& name : q.from) {
    const Relation* r = db_->relation(name);
    if (r == nullptr) {
      if (db_->ViewSnapshot(name) != nullptr) {
        throw std::invalid_argument(
            "FdbEngine: views can only be queried alone: '" + name + "'");
      }
      if (std::optional<Relation> sys = db_->SystemTable(name)) {
        owned.push_back(std::make_unique<Relation>(std::move(*sys)));
        rels.push_back(owned.back().get());
        continue;
      }
      throw std::invalid_argument("FdbEngine: unknown relation '" + name +
                                  "'");
    }
    rels.push_back(r);
  }
  FTree tree = ChooseFTree(rels);
  return FactoriseJoin(tree, rels);
}

FdbResult FdbEngine::ExecuteSql(const std::string& sql,
                                const FdbOptions& options) {
  int64_t parse_t0 = obs::NowNs();
  ParsedQuery pq = ParseSql(sql);
  int64_t parse_dur = obs::NowNs() - parse_t0;

  FdbOptions opts = options;
  std::shared_ptr<obs::Trace> owned;
  if (pq.explain_analyze && opts.trace == nullptr) {
    owned = std::make_shared<obs::Trace>();
    opts.trace = owned.get();
  }
  if (opts.trace != nullptr) {
    // The parse span is recorded retroactively: whether this query wants
    // a trace is only known after parsing it.
    opts.trace->AddComplete("parse", parse_t0, parse_dur);
  }

  BoundQuery bq;
  {
    obs::SpanScope span(opts.trace, "bind");
    bq = Bind(pq, db_);
  }
  FdbResult result = Execute(bq, opts);
  if (owned != nullptr) result.trace = std::move(owned);
  return result;
}

FdbResult FdbEngine::Execute(const BoundQuery& q, const FdbOptions& options) {
  static obs::Histogram& query_hist = obs::Registry::Instance().GetHistogram(
      "engine.query_ns", "ns", "FDB query end-to-end latency");
  obs::ScopedLatency query_latency(query_hist);

  // Statement-store / slow-query reporting. Queries over the system
  // tables are excluded: introspecting the store must not mutate it (and
  // both engines must see identical system-table contents).
  bool track = (obs::MetricsEnabled() || obs::LogEnabled()) &&
               q.fingerprint != 0;
  if (track) {
    for (const std::string& name : q.from) {
      if (Database::IsSystemTable(name)) {
        track = false;
        break;
      }
    }
  }
  if (!track) return ExecuteImpl(q, options);

  int64_t t0 = obs::NowNs();
  try {
    FdbResult result = ExecuteImpl(q, options);
    uint64_t dur = static_cast<uint64_t>(obs::NowNs() - t0);
    obs::StatementFootprint fp;
    if (result.input_footprint.has_value()) {
      fp.valid = true;
      fp.singletons = result.input_footprint->singletons;
      fp.flat_values = result.input_footprint->flat_values;
      fp.compression = result.input_footprint->CompressionRatio();
    }
    uint64_t rows = result.factorised.has_value()
                        ? static_cast<uint64_t>(result.result_singletons)
                        : result.flat.size();
    obs::ReportQueryCompletion(q.fingerprint, q.normalized_sql,
                               /*via_fdb=*/true, dur, rows, /*error=*/false,
                               fp);
    return result;
  } catch (...) {
    obs::ReportQueryCompletion(q.fingerprint, q.normalized_sql,
                               /*via_fdb=*/true,
                               static_cast<uint64_t>(obs::NowNs() - t0),
                               /*rows=*/0, /*error=*/true);
    throw;
  }
}

FdbResult FdbEngine::ExecuteImpl(const BoundQuery& q,
                                 const FdbOptions& options) {
  obs::Trace* tr = options.trace;
  std::shared_ptr<obs::Trace> owned;
  if (q.explain_analyze && tr == nullptr) {
    owned = std::make_shared<obs::Trace>();
    tr = owned.get();
  }

  FdbResult result;
  Factorisation fact;
  {
    obs::SpanScope span(tr, "input");
    fact = InputFactorisation(q);
    if (tr != nullptr) {
      std::string from;
      for (const std::string& name : q.from) {
        if (!from.empty()) from += ",";
        from += name;
      }
      span.NoteStr("from", from);
      // ComputeFootprint walks the whole DAG, so it runs only on traced
      // queries; the sample doubles as the statement store's footprint.
      result.input_footprint = ComputeFootprint(fact);
      NoteFootprint(span, *result.input_footprint);
    }
  }
  AttributeRegistry* reg = &db_->registry();

  // --- plan ---------------------------------------------------------------
  int plan_span = tr != nullptr ? tr->Begin("optimise") : -1;
  auto t0 = Clock::now();
  PlannerQuery pq;
  pq.eq_selections = q.eq_selections;
  pq.const_selections = q.const_selections;
  pq.group = q.group;
  pq.tasks = q.tasks;
  bool order_via_result = OrderNeedsResult(q);
  if (!order_via_result) {
    for (const SortKey& k : q.order_by) pq.order.push_back(k.attr);
  }
  if (options.planner == FdbOptions::Planner::kExhaustive) {
    auto ex = ExhaustivePlan(fact.tree(), *reg, pq,
                             options.exhaustive_max_states);
    if (ex.has_value()) {
      result.plan = std::move(ex->plan);
      result.used_exhaustive = true;
    }
  }
  if (!result.used_exhaustive) {
    result.plan = GreedyPlan(fact.tree(), *reg, pq);
  }
  result.plan_seconds = Since(t0);
  if (tr != nullptr) {
    tr->NoteStr(plan_span, "planner",
                result.used_exhaustive ? "exhaustive" : "greedy");
    tr->NoteInt(plan_span, "plan_ops",
                static_cast<int64_t>(result.plan.size()));
    tr->NoteStr(plan_span, "plan", PlanToString(result.plan, *reg));
    tr->End(plan_span);
  }

  // --- execute the f-plan --------------------------------------------------
  {
    obs::SpanScope ops_span(tr, "ops");
    int64_t ops_t0 = tr != nullptr ? obs::NowNs() : 0;
    t0 = Clock::now();
    // EXPLAIN ANALYZE always collects per-operator stats — that is the
    // point of running it, even though the per-op singleton counts cost
    // extra walks.
    ExecutePlan(&fact, reg, result.plan,
                options.collect_stats || tr != nullptr ? &result.op_stats
                                                       : nullptr);
    result.exec_seconds = Since(t0);
    if (tr != nullptr) {
      // Per-op child spans reconstructed from the operator stats: the ops
      // ran sequentially, so chain their durations from the phase start.
      int64_t cursor = ops_t0;
      for (const FOpStats& s : result.op_stats) {
        int64_t dur = static_cast<int64_t>(s.seconds * 1e9);
        int id = tr->AddComplete(FOpKindName(s.kind), cursor, dur);
        tr->NoteInt(id, "singletons_after", s.singletons_after);
        cursor += dur;
      }
    }
  }

  if (options.factorised_output) {
    obs::SpanScope span(tr, "factorised-output");
    if (!q.has_aggregates() && q.distinct_projection) {
      // Distinct projections materialise as the projected top fragment.
      std::vector<int> keep;
      for (AttrId a : q.group) {
        int n = fact.tree().NodeOfAttr(a);
        if (std::find(keep.begin(), keep.end(), n) == keep.end()) {
          keep.push_back(n);
        }
      }
      fact = ProjectToTopFragment(fact, keep);
    }
    if (options.compress_output) {
      CompressInPlace(&fact);
      result.result_singletons = CountStoredSingletons(fact);
    } else {
      result.result_singletons = fact.CountSingletons();
    }
    if (tr != nullptr) {
      span.NoteInt("result_singletons", result.result_singletons);
      NoteFootprint(span, ComputeFootprint(fact));
    }
    result.factorised = std::move(fact);
    if (owned != nullptr) result.trace = std::move(owned);
    return result;
  }

  // --- enumerate -----------------------------------------------------------
  obs::SpanScope enum_span(tr, q.has_aggregates() ? "aggregate" : "enumerate");
  t0 = Clock::now();
  // Enumeration may stop early at LIMIT only when no HAVING filter runs
  // afterwards (HAVING drops rows, so the limit must apply post-filter).
  std::optional<int64_t> enum_limit =
      q.having.empty() ? q.limit : std::nullopt;

  if (q.has_aggregates() || q.distinct_projection) {
    Relation raw;
    if (q.group.empty() && q.has_aggregates()) {
      raw = FullAggregation(fact, q);
    } else {
      std::vector<int> visit;
      std::vector<SortDir> dirs;
      GroupVisitOrder(fact.tree(), q.group,
                      order_via_result ? std::vector<SortKey>{} : q.order_by,
                      &visit, &dirs);
      std::optional<int64_t> raw_limit;
      if (!order_via_result) raw_limit = enum_limit;
      // Unlimited group enumerations fork per root-union chunk on the
      // default pool (see GroupAggToRelation).
      raw = GroupAggToRelation(fact, visit, dirs, q.tasks, q.task_ids,
                               raw_limit);
    }
    Relation out = AssembleOutputs(q, raw, order_via_result
                                               ? std::nullopt
                                               : q.limit);
    if (order_via_result) {
      // Factorise the (small) result grouped by the order-by list and
      // enumerate it back in order — the paper's restructuring of the
      // aggregated result (Q7).
      std::vector<AttrId> path;
      for (const SortKey& k : q.order_by) {
        if (std::find(path.begin(), path.end(), k.attr) == path.end()) {
          path.push_back(k.attr);
        }
      }
      for (AttrId a : out.schema().attrs()) {
        if (std::find(path.begin(), path.end(), a) == path.end()) {
          path.push_back(a);
        }
      }
      Factorisation rf = FactoriseRelation(out, path);
      std::vector<int> visit = rf.tree().TopologicalOrder();
      std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
      for (const SortKey& k : q.order_by) {
        int n = rf.tree().NodeOfAttr(k.attr);
        for (size_t i = 0; i < visit.size(); ++i) {
          if (visit[i] == n) dirs[i] = k.dir;
        }
      }
      Relation ordered = EnumerateToRelation(rf, visit, dirs, q.limit);
      // Project back to SELECT column order.
      std::vector<AttrId> want = out.schema().attrs();
      out = Project(ordered, want, /*dedup=*/false);
    }
    result.flat = std::move(out);
  } else {
    // SELECT * over an SPJ query: ordered full enumeration.
    std::vector<int> o_nodes;
    for (const SortKey& k : q.order_by) {
      int n = fact.tree().NodeOfAttr(k.attr);
      if (n < 0) {
        throw std::logic_error("FdbEngine: order attribute not in tree");
      }
      if (std::find(o_nodes.begin(), o_nodes.end(), n) == o_nodes.end()) {
        o_nodes.push_back(n);
      }
    }
    std::vector<int> visit = OrderedVisitSequence(fact.tree(), o_nodes);
    std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
    for (const SortKey& k : q.order_by) {
      int n = fact.tree().NodeOfAttr(k.attr);
      for (size_t i = 0; i < visit.size(); ++i) {
        if (visit[i] == n) dirs[i] = k.dir;
      }
    }
    Relation rows = EnumerateToRelation(fact, visit, dirs, enum_limit);
    std::vector<AttrId> want;
    for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
    result.flat = Project(rows, want, /*dedup=*/false);
  }
  result.enum_seconds = Since(t0);
  if (tr != nullptr) {
    enum_span.NoteInt("rows", result.flat.size());
    if (q.limit.has_value()) enum_span.NoteInt("limit", *q.limit);
  }
  if (options.collect_stats || tr != nullptr) {
    result.result_singletons = fact.CountSingletons();
  }
  if (owned != nullptr) result.trace = std::move(owned);
  return result;
}

}  // namespace fdb
