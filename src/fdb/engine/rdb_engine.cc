#include "fdb/engine/rdb_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "fdb/query/parser.h"
#include "fdb/relational/eager.h"
#include "fdb/relational/rdb_ops.h"

namespace fdb {

RdbResult RdbEngine::ExecuteSql(const std::string& sql,
                                const RdbOptions& options) {
  return Execute(Bind(ParseSql(sql), db_), options);
}

RdbResult RdbEngine::Execute(const BoundQuery& q, const RdbOptions& options) {
  auto t0 = std::chrono::steady_clock::now();

  // Materialise the inputs (flattening factorised views if named).
  std::vector<Relation> inputs;
  for (const std::string& name : q.from) {
    if (const Relation* r = db_->relation(name)) {
      inputs.push_back(*r);
    } else if (std::shared_ptr<const Factorisation> v =
                   db_->ViewSnapshot(name)) {
      // Snapshot held across Flatten: concurrent view swaps cannot
      // retire this version mid-enumeration.
      inputs.push_back(v->Flatten());
    } else {
      throw std::invalid_argument("RdbEngine: unknown relation '" + name +
                                  "'");
    }
  }

  // Push constant selections below the joins.
  for (Relation& rel : inputs) {
    for (const auto& [attr, op, c] : q.const_selections) {
      if (rel.schema().Contains(attr)) {
        rel = SelectConst(rel, attr, op, c);
      }
    }
  }

  Relation raw;
  bool raw_is_final_agg = false;
  std::vector<const Relation*> ptrs;
  for (const Relation& r : inputs) ptrs.push_back(&r);

  if (options.eager && q.has_aggregates() && q.eq_selections.empty()) {
    raw = EagerAggregateJoin(ptrs, q.group, q.tasks, q.task_ids,
                             &db_->registry());
    raw_is_final_agg = true;
  } else {
    raw = inputs.size() == 1 ? std::move(inputs[0]) : NaturalJoinAll(ptrs);
    for (const auto& [a, b] : q.eq_selections) {
      raw = SelectAttrEq(raw, a, b);
    }
  }

  Relation out;
  if (q.has_aggregates()) {
    if (!raw_is_final_agg) {
      raw = options.grouping == RdbOptions::Grouping::kSort
                ? SortGroupAggregate(raw, q.group, q.tasks, q.task_ids)
                : HashGroupAggregate(raw, q.group, q.tasks, q.task_ids);
    }
    out = AssembleOutputs(q, raw);
  } else if (q.distinct_projection) {
    std::vector<AttrId> want;
    for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
    out = Project(raw, want, /*dedup=*/true);
  } else {
    std::vector<AttrId> want;
    for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
    out = Project(raw, want, /*dedup=*/false);
  }

  // Reuse an existing order when the input happens to be sorted already
  // (a pre-sorted materialised view needs only a scan, Experiment 4 / Q10).
  if (!q.order_by.empty() && !out.IsSortedBy(q.order_by)) {
    out.SortBy(q.order_by);
  }
  if (q.limit.has_value()) out = Limit(out, *q.limit);

  RdbResult result;
  result.flat = std::move(out);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace fdb
