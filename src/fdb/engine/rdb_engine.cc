#include "fdb/engine/rdb_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/statements.h"
#include "fdb/obs/trace.h"
#include "fdb/query/parser.h"
#include "fdb/relational/eager.h"
#include "fdb/relational/rdb_ops.h"

namespace fdb {

RdbResult RdbEngine::ExecuteSql(const std::string& sql,
                                const RdbOptions& options) {
  int64_t parse_t0 = obs::NowNs();
  ParsedQuery pq = ParseSql(sql);
  int64_t parse_dur = obs::NowNs() - parse_t0;

  RdbOptions opts = options;
  std::shared_ptr<obs::Trace> owned;
  if (pq.explain_analyze && opts.trace == nullptr) {
    owned = std::make_shared<obs::Trace>();
    opts.trace = owned.get();
  }
  if (opts.trace != nullptr) {
    opts.trace->AddComplete("parse", parse_t0, parse_dur);
  }

  BoundQuery bq;
  {
    obs::SpanScope span(opts.trace, "bind");
    bq = Bind(pq, db_);
  }
  RdbResult result = Execute(bq, opts);
  if (owned != nullptr) result.trace = std::move(owned);
  return result;
}

RdbResult RdbEngine::Execute(const BoundQuery& q, const RdbOptions& options) {
  static obs::Histogram& query_hist = obs::Registry::Instance().GetHistogram(
      "engine.rdb_query_ns", "ns", "RDB baseline query end-to-end latency");
  obs::ScopedLatency query_latency(query_hist);

  // Statement-store / slow-query reporting, mirroring FdbEngine::Execute
  // (system-table queries excluded: introspection must not self-pollute).
  bool track = (obs::MetricsEnabled() || obs::LogEnabled()) &&
               q.fingerprint != 0;
  if (track) {
    for (const std::string& name : q.from) {
      if (Database::IsSystemTable(name)) {
        track = false;
        break;
      }
    }
  }
  if (!track) return ExecuteImpl(q, options);

  int64_t t0 = obs::NowNs();
  try {
    RdbResult result = ExecuteImpl(q, options);
    obs::ReportQueryCompletion(q.fingerprint, q.normalized_sql,
                               /*via_fdb=*/false,
                               static_cast<uint64_t>(obs::NowNs() - t0),
                               result.flat.size(), /*error=*/false);
    return result;
  } catch (...) {
    obs::ReportQueryCompletion(q.fingerprint, q.normalized_sql,
                               /*via_fdb=*/false,
                               static_cast<uint64_t>(obs::NowNs() - t0),
                               /*rows=*/0, /*error=*/true);
    throw;
  }
}

RdbResult RdbEngine::ExecuteImpl(const BoundQuery& q,
                                 const RdbOptions& options) {
  obs::Trace* tr = options.trace;
  std::shared_ptr<obs::Trace> owned;
  if (q.explain_analyze && tr == nullptr) {
    owned = std::make_shared<obs::Trace>();
    tr = owned.get();
  }

  auto t0 = std::chrono::steady_clock::now();

  // Materialise the inputs (flattening factorised views if named).
  std::vector<Relation> inputs;
  {
    obs::SpanScope span(tr, "materialise-inputs");
    for (const std::string& name : q.from) {
      if (const Relation* r = db_->relation(name)) {
        inputs.push_back(*r);
      } else if (std::shared_ptr<const Factorisation> v =
                     db_->ViewSnapshot(name)) {
        // Snapshot held across Flatten: concurrent view swaps cannot
        // retire this version mid-enumeration.
        inputs.push_back(v->Flatten());
      } else if (std::optional<Relation> sys = db_->SystemTable(name)) {
        inputs.push_back(std::move(*sys));
      } else {
        throw std::invalid_argument("RdbEngine: unknown relation '" + name +
                                    "'");
      }
    }
    if (tr != nullptr) {
      int64_t rows = 0;
      for (const Relation& r : inputs) rows += r.size();
      span.NoteInt("inputs", static_cast<int64_t>(inputs.size()));
      span.NoteInt("input_rows", rows);
    }
  }

  Relation raw;
  bool raw_is_final_agg = false;
  {
    obs::SpanScope span(tr, "join");
    // Push constant selections below the joins.
    for (Relation& rel : inputs) {
      for (const auto& [attr, op, c] : q.const_selections) {
        if (rel.schema().Contains(attr)) {
          rel = SelectConst(rel, attr, op, c);
        }
      }
    }

    std::vector<const Relation*> ptrs;
    for (const Relation& r : inputs) ptrs.push_back(&r);

    if (options.eager && q.has_aggregates() && q.eq_selections.empty()) {
      raw = EagerAggregateJoin(ptrs, q.group, q.tasks, q.task_ids,
                               &db_->registry());
      raw_is_final_agg = true;
      span.NoteStr("strategy", "eager-aggregate");
    } else {
      raw = inputs.size() == 1 ? std::move(inputs[0]) : NaturalJoinAll(ptrs);
      for (const auto& [a, b] : q.eq_selections) {
        raw = SelectAttrEq(raw, a, b);
      }
    }
    if (tr != nullptr) span.NoteInt("join_rows", raw.size());
  }

  Relation out;
  {
    obs::SpanScope span(tr, q.has_aggregates() ? "aggregate" : "project");
    if (q.has_aggregates()) {
      if (!raw_is_final_agg) {
        raw = options.grouping == RdbOptions::Grouping::kSort
                  ? SortGroupAggregate(raw, q.group, q.tasks, q.task_ids)
                  : HashGroupAggregate(raw, q.group, q.tasks, q.task_ids);
      }
      out = AssembleOutputs(q, raw);
    } else if (q.distinct_projection) {
      std::vector<AttrId> want;
      for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
      out = Project(raw, want, /*dedup=*/true);
    } else {
      std::vector<AttrId> want;
      for (const OutputColumn& c : q.outputs) want.push_back(c.attr);
      out = Project(raw, want, /*dedup=*/false);
    }
    if (tr != nullptr) span.NoteInt("rows", out.size());
  }

  {
    obs::SpanScope span(tr, "sort-limit");
    // Reuse an existing order when the input happens to be sorted already
    // (a pre-sorted materialised view needs only a scan, Experiment 4 /
    // Q10).
    if (!q.order_by.empty() && !out.IsSortedBy(q.order_by)) {
      out.SortBy(q.order_by);
    }
    if (q.limit.has_value()) out = Limit(out, *q.limit);
  }

  RdbResult result;
  result.flat = std::move(out);
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  if (owned != nullptr) result.trace = std::move(owned);
  return result;
}

}  // namespace fdb
