#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "fdb/engine/database.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/sampler.h"
#include "fdb/obs/statements.h"
#include "fdb/serve/session_registry.h"

namespace fdb {

// Virtual system tables: process-wide observability state served to
// ordinary SELECTs under the reserved "fdb." prefix. Each builder
// materialises a fresh Relation from a consistent snapshot of its store;
// rows carry a unique key column (fingerprint / seq / metric+tick), so
// the factorised engine's set semantics and the flat engine's bag
// semantics agree on every projection of them.

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

// Round nanoseconds to whole microseconds-as-double so the value both
// survives the NaN-boxed double encoding exactly and stays readable.
double NsToUs(uint64_t ns) {
  return static_cast<double>(ns / 1000);
}

Relation StatementsTable(Database& db) {
  AttributeRegistry& reg = db.registry();
  std::vector<AttrId> attrs = {
      reg.Intern("fingerprint"),   reg.Intern("query"),
      reg.Intern("calls"),         reg.Intern("errors"),
      reg.Intern("calls_fdb"),     reg.Intern("calls_rdb"),
      reg.Intern("rows_returned"), reg.Intern("total_us"),
      reg.Intern("min_us"),        reg.Intern("max_us"),
      reg.Intern("mean_us"),       reg.Intern("p50_us"),
      reg.Intern("p99_us"),        reg.Intern("footprint_samples"),
      reg.Intern("fp_singletons"), reg.Intern("fp_flat_values"),
      reg.Intern("fp_compression")};
  Relation out{RelSchema(std::move(attrs))};
  for (const obs::StatementRow& s : obs::StatementStore::Instance().Snapshot()) {
    Tuple t;
    t.reserve(17);
    t.push_back(Value(HexFingerprint(s.fingerprint)));
    t.push_back(Value(s.text));
    t.push_back(Value(static_cast<int64_t>(s.calls)));
    t.push_back(Value(static_cast<int64_t>(s.errors)));
    t.push_back(Value(static_cast<int64_t>(s.calls_fdb)));
    t.push_back(Value(static_cast<int64_t>(s.calls_rdb)));
    t.push_back(Value(static_cast<int64_t>(s.rows)));
    t.push_back(Value(NsToUs(s.total_ns)));
    t.push_back(Value(NsToUs(s.min_ns)));
    t.push_back(Value(NsToUs(s.max_ns)));
    t.push_back(Value(NsToUs(static_cast<uint64_t>(s.latency.Mean()))));
    t.push_back(Value(NsToUs(static_cast<uint64_t>(s.latency.Percentile(0.50)))));
    t.push_back(Value(NsToUs(static_cast<uint64_t>(s.latency.Percentile(0.99)))));
    t.push_back(Value(static_cast<int64_t>(s.footprint_samples)));
    t.push_back(Value(static_cast<int64_t>(s.last_singletons)));
    t.push_back(Value(static_cast<int64_t>(s.last_flat_values)));
    t.push_back(Value(s.last_compression));
    out.Add(std::move(t));
  }
  return out;
}

Relation EventsTable(Database& db) {
  AttributeRegistry& reg = db.registry();
  std::vector<AttrId> attrs = {reg.Intern("seq"), reg.Intern("wall_us"),
                               reg.Intern("event_type"),
                               reg.Intern("detail")};
  Relation out{RelSchema(std::move(attrs))};
  for (const obs::Event& e : obs::EventLog::Instance().Snapshot()) {
    Tuple t;
    t.reserve(4);
    t.push_back(Value(static_cast<int64_t>(e.seq)));
    t.push_back(Value(e.wall_us));
    t.push_back(Value(obs::EventTypeName(e.type)));
    t.push_back(Value(e.DetailString()));
    out.Add(std::move(t));
  }
  return out;
}

Relation MetricsHistoryTable(Database& db) {
  AttributeRegistry& reg = db.registry();
  std::vector<AttrId> attrs = {
      reg.Intern("metric"),     reg.Intern("tick"),
      reg.Intern("ts_ns"),      reg.Intern("metric_kind"),
      reg.Intern("value"),      reg.Intern("hist_count"),
      reg.Intern("p50"),        reg.Intern("p99")};
  Relation out{RelSchema(std::move(attrs))};
  std::shared_ptr<obs::MetricsSampler> sampler = db.metrics_sampler();
  if (sampler == nullptr) return out;  // empty, with schema
  for (const auto& [name, points] : sampler->History()) {
    for (const obs::MetricsSampler::Point& p : points) {
      Tuple t;
      t.reserve(8);
      t.push_back(Value(name));
      t.push_back(Value(static_cast<int64_t>(p.tick)));
      t.push_back(Value(p.ts_ns));
      t.push_back(Value(p.is_hist ? "histogram" : "scalar"));
      t.push_back(Value(p.value));
      t.push_back(Value(static_cast<int64_t>(p.hist_count)));
      t.push_back(Value(p.p50));
      t.push_back(Value(p.p99));
      out.Add(std::move(t));
    }
  }
  return out;
}

Relation SessionsTable(Database& db) {
  AttributeRegistry& reg = db.registry();
  std::vector<AttrId> attrs = {
      reg.Intern("session_id"), reg.Intern("peer"),
      reg.Intern("age_us"),     reg.Intern("active"),
      reg.Intern("queries"),    reg.Intern("rows_sent"),
      reg.Intern("errors"),     reg.Intern("killed"),
      reg.Intern("rejected"),   reg.Intern("writes"),
      reg.Intern("commits"),    reg.Intern("rollbacks"),
      reg.Intern("in_txn"),     reg.Intern("txn_ops")};
  Relation out{RelSchema(std::move(attrs))};
  int64_t now = obs::NowNs();
  for (const auto& s : serve::SessionRegistry::Instance().Snapshot()) {
    Tuple t;
    t.reserve(14);
    t.push_back(Value(static_cast<int64_t>(s->id)));
    t.push_back(Value(s->peer));
    t.push_back(Value(NsToUs(static_cast<uint64_t>(
        std::max<int64_t>(0, now - s->opened_ns)))));
    t.push_back(Value(static_cast<int64_t>(
        s->active.load(std::memory_order_relaxed) ? 1 : 0)));
    t.push_back(Value(s->queries.load(std::memory_order_relaxed)));
    t.push_back(Value(s->rows_sent.load(std::memory_order_relaxed)));
    t.push_back(Value(s->errors.load(std::memory_order_relaxed)));
    t.push_back(Value(s->killed.load(std::memory_order_relaxed)));
    t.push_back(Value(s->rejected.load(std::memory_order_relaxed)));
    t.push_back(Value(s->writes.load(std::memory_order_relaxed)));
    t.push_back(Value(s->commits.load(std::memory_order_relaxed)));
    t.push_back(Value(s->rollbacks.load(std::memory_order_relaxed)));
    t.push_back(Value(static_cast<int64_t>(
        s->in_txn.load(std::memory_order_relaxed) ? 1 : 0)));
    t.push_back(Value(s->txn_ops.load(std::memory_order_relaxed)));
    out.Add(std::move(t));
  }
  return out;
}

struct SysTab {
  const char* name;
  Relation (*build)(Database&);
};

constexpr SysTab kSystemTables[] = {
    {"fdb.statements", &StatementsTable},
    {"fdb.events", &EventsTable},
    {"fdb.metrics_history", &MetricsHistoryTable},
    {"fdb.sessions", &SessionsTable},
};

}  // namespace

bool Database::IsSystemTable(const std::string& name) {
  for (const SysTab& t : kSystemTables) {
    if (name == t.name) return true;
  }
  return false;
}

std::optional<Relation> Database::SystemTable(const std::string& name) {
  for (const SysTab& t : kSystemTables) {
    if (name == t.name) return t.build(*this);
  }
  return std::nullopt;
}

}  // namespace fdb
