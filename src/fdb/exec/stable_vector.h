#ifndef FDB_EXEC_STABLE_VECTOR_H_
#define FDB_EXEC_STABLE_VECTOR_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace fdb {
namespace exec {

/// An append-only sequence with stable element addresses and lock-free
/// reads of published elements.
///
/// Storage is a fixed ladder of geometrically growing blocks (1 KiB
/// elements, then 2 KiB, 4 KiB, …), so elements never move and a block
/// pointer, once published with release ordering, is immutable. The
/// single-writer contract matches ValueDict's intern path: all mutations
/// (push_back, and in-place updates the element type itself allows, e.g.
/// std::atomic members) happen under the owner's exclusive lock, while
/// any number of readers call operator[] / size() with no lock at all.
/// A reader may only index elements at positions < a size() value it has
/// observed (or codes received from data published to it, which the
/// release/acquire pair on size_ orders after the element write).
template <typename T>
class StableVector {
 public:
  StableVector() = default;
  ~StableVector() {
    size_t remaining = size_.load(std::memory_order_relaxed);
    for (int b = 0; b < kMaxBlocks && remaining > 0; ++b) {
      T* block = blocks_[b].load(std::memory_order_relaxed);
      if (block == nullptr) break;
      size_t cap = BlockCap(b);
      size_t used = remaining < cap ? remaining : cap;
      for (size_t i = 0; i < used; ++i) block[i].~T();
      ::operator delete[](block, std::align_val_t(alignof(T)));
      remaining -= used;
    }
  }
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Appends (single writer). The element is fully constructed before the
  /// new size is published, so readers never observe a half-built slot.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    size_t i = size_.load(std::memory_order_relaxed);
    int b = BlockOf(i);
    T* block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = static_cast<T*>(::operator new[](BlockCap(b) * sizeof(T),
                                               std::align_val_t(alignof(T))));
      blocks_[b].store(block, std::memory_order_release);
    }
    T* slot = block + (i - BlockStart(b));
    ::new (slot) T(std::forward<Args>(args)...);
    size_.store(i + 1, std::memory_order_release);
    return *slot;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  /// Lock-free read of a published element.
  const T& operator[](size_t i) const {
    int b = BlockOf(i);
    return blocks_[b].load(std::memory_order_acquire)[i - BlockStart(b)];
  }
  T& operator[](size_t i) {
    int b = BlockOf(i);
    return blocks_[b].load(std::memory_order_acquire)[i - BlockStart(b)];
  }

  const T& back() const { return (*this)[size() - 1]; }
  bool empty() const { return size() == 0; }

 private:
  static constexpr size_t kFirstBlock = size_t{1} << 10;
  static constexpr int kMaxBlocks = 44;  // kFirstBlock << 43 overflows any use

  // Block b covers [kFirstBlock·(2^b − 1), kFirstBlock·(2^{b+1} − 1)).
  static int BlockOf(size_t i) {
    return std::bit_width(i / kFirstBlock + 1) - 1;
  }
  static size_t BlockStart(int b) {
    return kFirstBlock * ((size_t{1} << b) - 1);
  }
  static size_t BlockCap(int b) { return kFirstBlock << b; }

  std::atomic<T*> blocks_[kMaxBlocks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace exec
}  // namespace fdb

#endif  // FDB_EXEC_STABLE_VECTOR_H_
