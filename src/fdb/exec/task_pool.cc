#include "fdb/exec/task_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "fdb/exec/cancel.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"

namespace fdb {
namespace exec {
namespace {

// A single worker deque this deep marks the pool as saturated (the
// kPoolSaturation event's trigger).
constexpr size_t kSaturationDepth = 64;

// Pool-wide metrics (shared across Default() pool rebuilds — the registry
// outlives every pool instance).
obs::Counter& TasksRunCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "taskpool.tasks_run", "tasks", "tasks executed by pool workers");
  return c;
}

obs::Counter& StealsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "taskpool.steals", "tasks", "tasks taken from another worker's deque");
  return c;
}

obs::Gauge& QueueDepthHwm() {
  static obs::Gauge& g = obs::Registry::Instance().GetGauge(
      "taskpool.queue_depth_hwm", "tasks",
      "high-water mark of a single worker deque");
  return g;
}

obs::Counter& IdleNsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "taskpool.worker_idle_ns", "ns",
      "total time workers spent asleep waiting for work");
  return c;
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("FDB_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex& DefaultPoolMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::unique_ptr<TaskPool>& DefaultPoolSlot() {
  static std::unique_ptr<TaskPool>* slot = new std::unique_ptr<TaskPool>();
  return *slot;
}

// One ParallelFor invocation: chunks are claimed off `next_chunk`, so the
// partition is fixed by (n, grain) while the assignment of chunks to
// threads is dynamic. Helpers submitted to the pool may outlive the
// ParallelFor call (waking after every chunk is claimed); the shared_ptr
// keeps the job alive for them, and they touch `body` only while running
// a claimed chunk, which the caller's completion wait covers.
struct ForJob {
  const std::function<void(int, int64_t, int64_t)>* body = nullptr;
  CancelToken* token = nullptr;  // caller's token, re-installed per chunk
  int64_t n = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  std::atomic<int> next_part{0};
  std::mutex mu;
  std::condition_variable cv;
  bool all_done = false;
  std::exception_ptr error;

  void RunChunks() {
    int part = -1;
    for (;;) {
      int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      if (part < 0) part = next_part.fetch_add(1, std::memory_order_relaxed);
      int64_t lo = c * grain;
      int64_t hi = std::min(n, lo + grain);
      // A tripped token short-circuits remaining chunks: they are still
      // claimed and counted (the completion wait needs every chunk
      // accounted for) but their bodies never run.
      if (token == nullptr || !token->cancelled()) {
        try {
          CancelScope scope(token);
          (*body)(part, lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> g(mu);
          if (error == nullptr) error = std::current_exception();
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> g(mu);
        all_done = true;
        cv.notify_all();
      }
    }
  }
};

}  // namespace

TaskPool::TaskPool(int threads) {
  int workers = std::max(1, threads) - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    base::MutexLock g(&sleep_mu_);
    stop_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

TaskPool& TaskPool::Default() {
  std::lock_guard<std::mutex> g(DefaultPoolMutex());
  std::unique_ptr<TaskPool>& slot = DefaultPoolSlot();
  if (slot == nullptr) slot = std::make_unique<TaskPool>(DefaultThreadCount());
  return *slot;
}

void TaskPool::SetDefaultThreads(int threads) {
  std::lock_guard<std::mutex> g(DefaultPoolMutex());
  // Destroys the old pool first (joining its workers), then installs the
  // resized one — callers must have no parallel work in flight.
  DefaultPoolSlot() = nullptr;
  DefaultPoolSlot() = std::make_unique<TaskPool>(threads);
}

void TaskPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  unsigned w;
  {
    base::MutexLock g(&sleep_mu_);
    w = next_queue_++ % static_cast<unsigned>(workers_.size());
  }
  size_t depth;
  {
    base::MutexLock g(&workers_[w]->mu);
    workers_[w]->tasks.push_back(std::move(task));
    depth = workers_[w]->tasks.size();
    QueueDepthHwm().UpdateMax(static_cast<int64_t>(depth));
  }
  // Saturation event: a worker queue this deep means submitters are
  // outrunning the pool (the network-service admission layer's signal).
  // Rate-limited to one event per second so a saturated burst cannot
  // flood the ring.
  if (depth >= kSaturationDepth && obs::LogEnabled()) {
    static std::atomic<int64_t> last_emit_ns{0};
    int64_t now = obs::NowNs();
    int64_t last = last_emit_ns.load(std::memory_order_relaxed);
    if (now - last >= 1'000'000'000 &&
        last_emit_ns.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
      obs::EventLog::Instance().Emit(
          obs::EventType::kPoolSaturation,
          {obs::F("queue_depth", depth),
           obs::F("workers", workers_.size())});
    }
  }
  {
    // Publish under the sleep lock: a worker between a failed sweep and
    // its wait re-evaluates pending_ there, so the wakeup cannot be lost.
    base::MutexLock g(&sleep_mu_);
    ++pending_;
  }
  wake_.NotifyOne();
}

bool TaskPool::RunOneTask(int self) {
  int w = static_cast<int>(workers_.size());
  std::function<void()> task;
  bool stolen = false;
  // Own deque from the back (LIFO: newest fork, hottest cache), then
  // sweep the other deques from the front (FIFO steal: oldest, largest
  // remaining work first).
  for (int i = 0; i < w && task == nullptr; ++i) {
    Worker& v = *workers_[(self + i) % w];
    base::MutexLock g(&v.mu);
    if (v.tasks.empty()) continue;
    if (i == 0) {
      task = std::move(v.tasks.back());
      v.tasks.pop_back();
    } else {
      task = std::move(v.tasks.front());
      v.tasks.pop_front();
      stolen = true;
    }
  }
  if (task == nullptr) return false;
  TasksRunCounter().Inc();
  if (stolen) StealsCounter().Inc();
  {
    base::MutexLock g(&sleep_mu_);
    --pending_;
  }
  task();
  return true;
}

void TaskPool::WorkerLoop(int self) {
  for (;;) {
    if (RunOneTask(self)) continue;
    int64_t idle_t0 = obs::MetricsEnabled() ? obs::NowNs() : -1;
    {
      base::MutexLock lk(&sleep_mu_);
      // pending_ > 0 covers the race where a task landed after our failed
      // sweep: the predicate is re-evaluated under the lock Submit
      // publishes under, so sleeps never miss work and idle workers wake
      // only on notify (no polling).
      while (!stop_ && pending_ <= 0) wake_.Wait(sleep_mu_);
      if (stop_) return;
    }
    if (idle_t0 >= 0) {
      IdleNsCounter().Inc(static_cast<uint64_t>(obs::NowNs() - idle_t0));
    }
  }
}

void TaskPool::ParallelFor(
    int64_t n, int64_t grain,
    const std::function<void(int part, int64_t lo, int64_t hi)>& body) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  auto job = std::make_shared<ForJob>();
  job->body = &body;
  job->token = CurrentCancelToken();
  job->n = n;
  job->grain = grain;
  job->num_chunks = (n + grain - 1) / grain;
  int helpers = std::min<int64_t>(static_cast<int64_t>(workers_.size()),
                                  job->num_chunks - 1);
  for (int i = 0; i < helpers; ++i) {
    Submit([job] { job->RunChunks(); });
  }
  job->RunChunks();
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->cv.wait(lk, [&] { return job->all_done; });
    if (job->error != nullptr) std::rethrow_exception(job->error);
  }
}

int64_t TaskPool::ApproxPendingTasks() const {
  base::MutexLock g(&sleep_mu_);
  return pending_;
}

int ParallelForOrSerial(
    int64_t n, int64_t grain, int64_t min_n,
    const std::function<void(int, int64_t, int64_t)>& body) {
  TaskPool& pool = TaskPool::Default();
  int threads = pool.num_threads();
  if (threads > 1 && n >= min_n) {
    pool.ParallelFor(n, grain, body);
    return threads;
  }
  grain = std::max<int64_t>(1, grain);
  // Same chunk boundaries as the parallel path, executed in order on the
  // caller: chunk-ordered reductions give identical results either way.
  for (int64_t lo = 0; lo < n; lo += grain) {
    body(0, lo, std::min(n, lo + grain));
  }
  return 1;
}

}  // namespace exec
}  // namespace fdb
