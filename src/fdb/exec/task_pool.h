#ifndef FDB_EXEC_TASK_POOL_H_
#define FDB_EXEC_TASK_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "fdb/base/thread_annotations.h"

namespace fdb {
namespace exec {

/// A work-stealing thread pool with structured fork/join.
///
/// The pool owns `threads - 1` worker threads; the thread that calls
/// ParallelFor always participates as well, so `threads == 1` means no
/// workers at all and every parallel construct degenerates to a plain
/// sequential loop on the caller — the hot paths gate on num_threads()
/// and stay byte-identical to their pre-parallel behaviour in that case.
///
/// Scheduling: each worker owns a deque of tasks (LIFO for its own pops,
/// so nested forks run hot in cache) and steals FIFO from a random victim
/// when its deque runs dry. Submit() distributes round-robin. ParallelFor
/// partitions an index range into fixed-size chunks claimed off one shared
/// atomic cursor — dynamic load balancing without splitting state per
/// thread count, so chunk boundaries (and therefore any chunk-ordered
/// reduction) are identical no matter how many threads execute them.
class TaskPool {
 public:
  /// A pool executing on `threads` threads total (callers + workers);
  /// values < 1 are clamped to 1.
  explicit TaskPool(int threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total execution width: worker threads + the participating caller.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// The process-default pool used by the engine hot paths. Sized by the
  /// FDB_THREADS environment variable when set, else by
  /// std::thread::hardware_concurrency().
  static TaskPool& Default();

  /// Re-sizes the default pool (e.g. the shell's \threads command, bench
  /// sweeps). Must not be called while parallel work is in flight.
  static void SetDefaultThreads(int threads);

  /// Fire-and-forget: enqueues `task` for any worker (or runs it inline
  /// when the pool has no workers). The caller is responsible for its own
  /// completion tracking.
  void Submit(std::function<void()> task);

  /// Structured fork/join over [0, n): invokes `body(part, lo, hi)` for
  /// consecutive chunks of at most `grain` indices until the range is
  /// exhausted, on up to num_threads() threads including the caller, and
  /// returns when every chunk has finished. `part` is a dense slot in
  /// [0, num_threads()) stable for one participating thread within this
  /// call — use it to index per-worker state (arenas, scratch buffers).
  /// Chunk boundaries depend only on (n, grain), never on the thread
  /// count. The first exception thrown by any chunk is rethrown on the
  /// caller after all chunks drain. Nested calls are safe: the inner
  /// caller participates in its own range, so progress never depends on
  /// the pool having idle workers.
  ///
  /// Cancellation: the caller's current exec::CancelToken (if any) is
  /// captured and installed around every chunk execution, so cooperative
  /// limit polls inside `body` see it on whichever worker runs the
  /// chunk; once the token trips, remaining unclaimed chunks are skipped.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int part, int64_t lo, int64_t hi)>&
                       body);

  /// Queued-but-unclaimed task count — the admission layer's
  /// backpressure probe. Approximate by nature (tasks land and drain
  /// concurrently), exact at any quiescent moment.
  int64_t ApproxPendingTasks() const;

 private:
  struct Worker {
    base::Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(int self);
  bool RunOneTask(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  mutable base::Mutex sleep_mu_;
  base::CondVar wake_;
  bool stop_ GUARDED_BY(sleep_mu_) = false;
  /// Queued-but-unclaimed tasks.
  int64_t pending_ GUARDED_BY(sleep_mu_) = 0;
  /// Round-robin Submit target.
  unsigned next_queue_ GUARDED_BY(sleep_mu_) = 0;
};

/// Convenience wrapper over TaskPool::Default() for the common reduction
/// shape: when the default pool is wider than one thread and `n` is at
/// least `min_n`, runs `body` chunked in parallel; otherwise runs the
/// same chunks sequentially in order with part 0, so chunk-ordered
/// reductions produce identical results either way. Returns the number
/// of threads used (size per-part state with Default().num_threads()
/// before calling).
int ParallelForOrSerial(int64_t n, int64_t grain, int64_t min_n,
                        const std::function<void(int, int64_t, int64_t)>& body);

}  // namespace exec
}  // namespace fdb

#endif  // FDB_EXEC_TASK_POOL_H_
