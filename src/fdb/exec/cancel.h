#ifndef FDB_EXEC_CANCEL_H_
#define FDB_EXEC_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace fdb {
namespace exec {

/// Cooperative per-query cancellation and resource limits.
///
/// A CancelToken carries three independent trip conditions — an external
/// Cancel() (shutdown, client disconnect), a wall-clock deadline, and an
/// arena-memory budget — and is checked *cooperatively*: the enumeration
/// and build loops poll it every few hundred iterations, and FactArena
/// charges every allocation against it. When a condition trips, the next
/// poll throws QueryCancelled, which unwinds the query (through
/// ParallelFor's first-exception rethrow on parallel paths) while leaving
/// the Database, the session and every other in-flight query untouched.
///
/// Threading: the current token is a thread-local pointer installed by
/// CancelScope. TaskPool::ParallelFor captures the caller's token and
/// re-installs it inside every chunk execution, so a limit armed on the
/// serving thread is enforced on every worker that runs part of the
/// query. One token may be shared by any number of threads: all state is
/// relaxed atomics, and tripping is idempotent.
///
/// Cost discipline: with no token installed (every non-served code path)
/// a poll is one thread-local load and a predicted-taken branch; the
/// arena charge hook is the same. Deadline checks read the clock only
/// once per poll interval, never per row.

/// Why a query was cancelled.
enum class CancelReason : uint8_t {
  kNone = 0,
  kCancelled,  ///< external Cancel() — shutdown or client disconnect
  kTimeout,    ///< wall-clock deadline exceeded
  kMemory,     ///< arena-memory budget exceeded
};

/// Stable lowercase name ("cancelled", "timeout", "memory").
const char* CancelReasonName(CancelReason r);

/// Thrown by CancelToken::Check (and ChargeMemory) when a token trips.
class QueryCancelled : public std::runtime_error {
 public:
  QueryCancelled(CancelReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Re-arms the token for one query: clears any previous trip and
  /// installs the limits. `deadline_ns` is an absolute obs::NowNs()
  /// timestamp (<= 0 = no deadline); `mem_limit_bytes` caps the arena
  /// bytes charged while armed (<= 0 = no cap).
  void Arm(int64_t deadline_ns, int64_t mem_limit_bytes);

  /// Trips the token externally (graceful shutdown, disconnect).
  /// Idempotent; never overrides an earlier trip reason.
  void Cancel();

  /// True once any condition tripped (one relaxed load).
  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(CancelReason::kNone);
  }
  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Arena bytes charged since the last Arm().
  int64_t memory_used() const {
    return mem_used_.load(std::memory_order_relaxed);
  }

  /// Throws QueryCancelled if tripped; otherwise reads the clock and
  /// trips (then throws) when past the deadline. The poll primitive.
  void Check();

  /// Accounts `bytes` of arena allocation against the budget; trips and
  /// throws when the budget is newly exceeded. Called from
  /// FactArena::Allocate via the current-token hook.
  void ChargeMemory(int64_t bytes);

 private:
  void Trip(CancelReason r);
  [[noreturn]] void ThrowTripped();

  std::atomic<uint8_t> reason_{static_cast<uint8_t>(CancelReason::kNone)};
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<int64_t> mem_limit_{0};
  std::atomic<int64_t> mem_used_{0};
};

/// The calling thread's current token (null = nothing to enforce).
CancelToken* CurrentCancelToken();

/// Installs `token` as the current token for this scope; restores the
/// previous one on destruction (scopes nest).
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* prev_;
};

/// The hot-loop poll: bumps `*counter` and, every `mask + 1` calls,
/// checks the current token (if any). `mask` must be 2^k - 1. With no
/// token installed the periodic check is one thread-local load.
inline void PollCancel(uint32_t* counter, uint32_t mask = 255) {
  if ((++*counter & mask) != 0) return;
  if (CancelToken* t = CurrentCancelToken()) t->Check();
}

}  // namespace exec
}  // namespace fdb

#endif  // FDB_EXEC_CANCEL_H_
