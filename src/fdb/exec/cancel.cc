#include "fdb/exec/cancel.h"

#include "fdb/obs/metrics.h"

namespace fdb {
namespace exec {
namespace {

thread_local CancelToken* t_current = nullptr;

}  // namespace

const char* CancelReasonName(CancelReason r) {
  switch (r) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kCancelled:
      return "cancelled";
    case CancelReason::kTimeout:
      return "timeout";
    case CancelReason::kMemory:
      return "memory";
  }
  return "?";
}

void CancelToken::Arm(int64_t deadline_ns, int64_t mem_limit_bytes) {
  deadline_ns_.store(deadline_ns > 0 ? deadline_ns : 0,
                     std::memory_order_relaxed);
  mem_limit_.store(mem_limit_bytes > 0 ? mem_limit_bytes : 0,
                   std::memory_order_relaxed);
  mem_used_.store(0, std::memory_order_relaxed);
  reason_.store(static_cast<uint8_t>(CancelReason::kNone),
                std::memory_order_relaxed);
}

void CancelToken::Trip(CancelReason r) {
  uint8_t expected = static_cast<uint8_t>(CancelReason::kNone);
  // First trip wins; later conditions keep the original reason.
  reason_.compare_exchange_strong(expected, static_cast<uint8_t>(r),
                                  std::memory_order_relaxed);
}

void CancelToken::Cancel() { Trip(CancelReason::kCancelled); }

void CancelToken::ThrowTripped() {
  CancelReason r = reason();
  switch (r) {
    case CancelReason::kTimeout:
      throw QueryCancelled(r, "query cancelled: wall-time limit exceeded");
    case CancelReason::kMemory:
      throw QueryCancelled(
          r, "query cancelled: arena-memory limit exceeded (" +
                 std::to_string(memory_used()) + " bytes charged)");
    default:
      throw QueryCancelled(CancelReason::kCancelled,
                           "query cancelled: server shutting down or "
                           "connection closed");
  }
}

void CancelToken::Check() {
  if (cancelled()) ThrowTripped();
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline > 0 && obs::NowNs() > deadline) {
    Trip(CancelReason::kTimeout);
    ThrowTripped();
  }
}

void CancelToken::ChargeMemory(int64_t bytes) {
  int64_t used = mem_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t limit = mem_limit_.load(std::memory_order_relaxed);
  if (limit > 0 && used > limit) {
    Trip(CancelReason::kMemory);
    // Throw only for the memory trip itself: an earlier external cancel
    // or timeout surfaces at the next poll, not mid-allocation.
    if (reason() == CancelReason::kMemory) ThrowTripped();
  }
}

CancelToken* CurrentCancelToken() { return t_current; }

CancelScope::CancelScope(CancelToken* token) : prev_(t_current) {
  t_current = token;
}

CancelScope::~CancelScope() { t_current = prev_; }

}  // namespace exec
}  // namespace fdb
