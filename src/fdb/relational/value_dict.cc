#include "fdb/relational/value_dict.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <ostream>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace {

obs::Counter& InternsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "dict.interns", "strings", "new strings added to the value dictionary");
  return c;
}

obs::Counter& OutOfOrderCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "dict.interns_out_of_order", "strings",
      "interns that had to splice the rank permutation");
  return c;
}

obs::Counter& ExclusiveLockCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "dict.lock_exclusive", "acquisitions",
      "exclusive (writer) acquisitions of the dictionary lock");
  return c;
}

std::strong_ordering OrderDoubles(double a, double b) {
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

// --- ValueRef --------------------------------------------------------------

Value ValueRef::ToValue() const { return ValueDict::Default().Decode(*this); }

size_t ValueRef::Hash() const {
  if (is_null()) return value_hash::OfNull();
  if (is_int()) return value_hash::OfInt(as_int());
  if (is_double()) return value_hash::OfDouble(as_double());
  return value_hash::OfString(as_string());
}

std::ostream& operator<<(std::ostream& os, const ValueRef& v) {
  return os << v.ToString();
}

bool EvalCmpRef(const ValueRef& a, CmpOp op, const ValueRef& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return !(a == b);
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

// --- ValueDict -------------------------------------------------------------

std::optional<uint32_t> ValueDict::Find(std::string_view s) const {
  base::ReaderMutexLock lk(&mu_);
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

uint32_t ValueDict::Intern(std::string_view s) {
  {
    // Fast path: already interned (the common case on query paths).
    base::ReaderMutexLock lk(&mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  ExclusiveLockCounter().Inc();
  base::WriterMutexLock lk(&mu_);
  auto it = index_.find(s);  // re-check: another writer may have won
  if (it != index_.end()) return it->second;
  return InternInOrder(s);
}

uint32_t ValueDict::InternInOrder(std::string_view s) {
  InternsCounter().Inc();
  uint32_t code = static_cast<uint32_t>(strings_.size());
  const std::string& stored = strings_.emplace_back(s.data(), s.size());
  index_.emplace(stored, code);
  if (by_rank_.empty() || strings_[by_rank_.back()] < s) {
    // Common case (bulk-sorted loading): append rank.
    by_rank_.push_back(code);
    rank_.emplace_back(static_cast<uint32_t>(by_rank_.size()) - 1);
    return code;
  }
  // Out-of-order insertion: splice into the rank order and shift the ranks
  // of everything after the insertion point. The seqlock generation goes
  // odd for the duration so concurrent CompareStringRanks readers retry
  // instead of observing a half-shifted permutation.
  OutOfOrderCounter().Inc();
  auto pos = std::lower_bound(
      by_rank_.begin(), by_rank_.end(), s,
      [this](uint32_t c, std::string_view v) { return strings_[c] < v; });
  size_t p = static_cast<size_t>(pos - by_rank_.begin());
  by_rank_.insert(pos, code);
  rank_.emplace_back(0u);
  uint32_t gen = rank_gen_.load(std::memory_order_relaxed);
  rank_gen_.store(gen + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = p; i < by_rank_.size(); ++i) {
    rank_[by_rank_[i]].store(static_cast<uint32_t>(i),
                             std::memory_order_relaxed);
  }
  rank_gen_.store(gen + 2, std::memory_order_release);
  return code;
}

void ValueDict::InternBulk(std::vector<std::string_view> strs) {
  std::sort(strs.begin(), strs.end());
  strs.erase(std::unique(strs.begin(), strs.end()), strs.end());
  ExclusiveLockCounter().Inc();
  base::WriterMutexLock lk(&mu_);
  // Append all new strings first, then rebuild the rank permutation once:
  // a single O(old + new) merge instead of one O(#strings) rank shift per
  // out-of-order insertion.
  std::vector<uint32_t> fresh;
  for (std::string_view s : strs) {
    if (index_.find(s) != index_.end()) continue;
    uint32_t code = static_cast<uint32_t>(strings_.size());
    const std::string& stored = strings_.emplace_back(s.data(), s.size());
    index_.emplace(stored, code);
    rank_.emplace_back(0u);
    fresh.push_back(code);  // sorted by string, since strs is
  }
  if (fresh.empty()) return;
  InternsCounter().Inc(fresh.size());
  std::vector<uint32_t> merged;
  merged.reserve(by_rank_.size() + fresh.size());
  std::merge(by_rank_.begin(), by_rank_.end(), fresh.begin(), fresh.end(),
             std::back_inserter(merged), [this](uint32_t a, uint32_t b) {
               return strings_[a] < strings_[b];
             });
  by_rank_ = std::move(merged);
  uint32_t gen = rank_gen_.load(std::memory_order_relaxed);
  rank_gen_.store(gen + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < by_rank_.size(); ++i) {
    rank_[by_rank_[i]].store(static_cast<uint32_t>(i),
                             std::memory_order_relaxed);
  }
  rank_gen_.store(gen + 2, std::memory_order_release);
}

uint32_t ValueDict::InternBigInt(int64_t v) {
  {
    base::ReaderMutexLock lk(&mu_);
    auto it = big_index_.find(v);
    if (it != big_index_.end()) return it->second;
  }
  ExclusiveLockCounter().Inc();
  base::WriterMutexLock lk(&mu_);
  auto it = big_index_.find(v);
  if (it != big_index_.end()) return it->second;
  uint32_t slot = static_cast<uint32_t>(big_ints_.size());
  big_ints_.push_back(v);
  big_index_.emplace(v, slot);
  return slot;
}

ValueRef ValueDict::Encode(const Value& v) {
  if (v.is_null()) return ValueRef();
  if (v.is_int()) {
    int64_t i = v.as_int();
    if (i >= ValueRef::kInlineIntMin && i <= ValueRef::kInlineIntMax) {
      return ValueRef::Boxed(ValueRef::kTagInt, static_cast<uint64_t>(i));
    }
    return ValueRef::Boxed(ValueRef::kTagBigInt, InternBigInt(i));
  }
  if (v.is_double()) {
    double d = v.as_double();
    if (d != d) return ValueRef::Boxed(ValueRef::kTagNaN, 0);
    if (d == 0.0) d = 0.0;  // canonicalise -0.0 (equal values, equal bits)
    return ValueRef::FromBits(std::bit_cast<uint64_t>(d));
  }
  return ValueRef::Boxed(ValueRef::kTagStr, Intern(v.as_string()));
}

std::optional<ValueRef> ValueDict::TryEncode(const Value& v) const {
  if (v.is_null()) return ValueRef();
  if (v.is_int()) {
    int64_t i = v.as_int();
    if (i >= ValueRef::kInlineIntMin && i <= ValueRef::kInlineIntMax) {
      return ValueRef::Boxed(ValueRef::kTagInt, static_cast<uint64_t>(i));
    }
    base::ReaderMutexLock lk(&mu_);
    auto it = big_index_.find(i);
    if (it == big_index_.end()) return std::nullopt;
    return ValueRef::Boxed(ValueRef::kTagBigInt, it->second);
  }
  if (v.is_double()) {
    double d = v.as_double();
    if (d != d) return ValueRef::Boxed(ValueRef::kTagNaN, 0);
    if (d == 0.0) d = 0.0;  // canonicalise -0.0 (equal values, equal bits)
    return ValueRef::FromBits(std::bit_cast<uint64_t>(d));
  }
  base::ReaderMutexLock lk(&mu_);
  auto it = index_.find(v.as_string());
  if (it == index_.end()) return std::nullopt;
  return ValueRef::Boxed(ValueRef::kTagStr, it->second);
}

Value ValueDict::Decode(const ValueRef& r) const {
  switch (r.top16()) {
    case ValueRef::kTagNull:
      return Value();
    case ValueRef::kTagInt:
      return Value(r.inline_int());
    case ValueRef::kTagStr:
      return Value(str(r.payload32()));
    case ValueRef::kTagBigInt:
      return Value(big_int(r.payload32()));
    case ValueRef::kTagNaN:
      return Value(std::numeric_limits<double>::quiet_NaN());
    default:
      return Value(std::bit_cast<double>(r.bits()));
  }
}

std::strong_ordering ValueDict::Compare(const ValueRef& a,
                                        const ValueRef& b) const {
  int ra = a.TypeRank(), rb = b.TypeRank();
  if (ra != rb) return ra <=> rb;
  if (ra == 0) return std::strong_ordering::equal;
  if (ra == 2) {
    if (a.bits() == b.bits()) return std::strong_ordering::equal;
    return CompareStringRanks(a.payload32(), b.payload32());
  }
  // Numeric: resolve big integers through *this* pool, not Default().
  auto int_of = [this](const ValueRef& r) {
    return r.top16() == ValueRef::kTagBigInt ? big_int(r.payload32())
                                             : r.inline_int();
  };
  if (a.is_int() && b.is_int()) return int_of(a) <=> int_of(b);
  double da = a.is_int() ? static_cast<double>(int_of(a)) : a.as_double();
  double db = b.is_int() ? static_cast<double>(int_of(b)) : b.as_double();
  return OrderDoubles(da, db);
}

}  // namespace fdb
