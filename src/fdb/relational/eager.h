#ifndef FDB_RELATIONAL_EAGER_H_
#define FDB_RELATIONAL_EAGER_H_

#include <vector>

#include "fdb/relational/rdb_ops.h"

namespace fdb {

/// Eager (partial) aggregation plans in the style of Yan & Larson [31] —
/// the "manually crafted optimised query plans" given to the relational
/// engines in Experiment 2 (Fig. 6).
///
/// Evaluates ̟_{G; out_ids ← tasks}(R₁ ⋈ … ⋈ R_n) by pushing partial
/// aggregation below the joins: a running (partial-aggregate, count) state
/// is reduced to the attributes still needed (group attributes and pending
/// join attributes) after every join, so no intermediate result is larger
/// than the aggregated inputs.
///
/// Requirements: the relations are natural-joined; every pair of relations
/// sharing an attribute is joined on it; sum/min/max tasks must all draw
/// their source from the same relation (true of all the paper's queries).
Relation EagerAggregateJoin(const std::vector<const Relation*>& rels,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids,
                            AttributeRegistry* reg);

}  // namespace fdb

#endif  // FDB_RELATIONAL_EAGER_H_
