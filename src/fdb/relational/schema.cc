#include "fdb/relational/schema.h"

namespace fdb {

AttrId AttributeRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<AttrId> AttributeRegistry::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

int RelSchema::IndexOf(AttrId a) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == a) return static_cast<int>(i);
  }
  return -1;
}

std::string RelSchema::ToString(const AttributeRegistry& reg) const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ", ";
    out += reg.Name(attrs_[i]);
  }
  out += ")";
  return out;
}

}  // namespace fdb
