#include "fdb/relational/schema.h"

namespace fdb {

AttributeRegistry::AttributeRegistry(const AttributeRegistry& other) {
  base::ReaderMutexLock lk(&other.mu_);
  names_ = other.names_;
  ids_ = other.ids_;
}

AttributeRegistry& AttributeRegistry::operator=(
    const AttributeRegistry& other) {
  if (this == &other) return *this;
  std::deque<std::string> names;
  std::unordered_map<std::string, AttrId> ids;
  {
    base::ReaderMutexLock lk(&other.mu_);
    names = other.names_;
    ids = other.ids_;
  }
  base::WriterMutexLock lk(&mu_);
  names_ = std::move(names);
  ids_ = std::move(ids);
  return *this;
}

AttributeRegistry::AttributeRegistry(AttributeRegistry&& other) noexcept {
  base::WriterMutexLock lk(&other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  other.names_.clear();
  other.ids_.clear();
}

AttributeRegistry& AttributeRegistry::operator=(
    AttributeRegistry&& other) noexcept {
  if (this == &other) return *this;
  std::deque<std::string> names;
  std::unordered_map<std::string, AttrId> ids;
  {
    base::WriterMutexLock lk(&other.mu_);
    names = std::move(other.names_);
    ids = std::move(other.ids_);
    other.names_.clear();
    other.ids_.clear();
  }
  base::WriterMutexLock lk(&mu_);
  names_ = std::move(names);
  ids_ = std::move(ids);
  return *this;
}

AttrId AttributeRegistry::Intern(const std::string& name) {
  {
    // Fast path: already interned (the common case when binding).
    base::ReaderMutexLock lk(&mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  base::WriterMutexLock lk(&mu_);
  auto it = ids_.find(name);  // re-check: another binder may have won
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<AttrId> AttributeRegistry::Find(const std::string& name) const {
  base::ReaderMutexLock lk(&mu_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

int RelSchema::IndexOf(AttrId a) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == a) return static_cast<int>(i);
  }
  return -1;
}

std::string RelSchema::ToString(const AttributeRegistry& reg) const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ", ";
    out += reg.Name(attrs_[i]);
  }
  out += ")";
  return out;
}

}  // namespace fdb
