#ifndef FDB_RELATIONAL_AGG_H_
#define FDB_RELATIONAL_AGG_H_

#include <string>

#include "fdb/relational/schema.h"

namespace fdb {

/// Aggregation functions supported by both engines (paper §2): sum, count,
/// min, max; avg is recovered as the pair (sum, count), see §3.2.4.
enum class AggFn { kCount, kSum, kMin, kMax };

inline std::string AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

/// One aggregation function to evaluate: count, or sum/min/max over the
/// atomic attribute `source`. Composite aggregates (avg, multi-aggregate
/// queries) are lists of AggTasks evaluated together.
struct AggTask {
  AggFn fn = AggFn::kCount;
  AttrId source = kInvalidAttr;
  bool operator==(const AggTask& o) const = default;
};

}  // namespace fdb

#endif  // FDB_RELATIONAL_AGG_H_
