#ifndef FDB_RELATIONAL_RDB_OPS_H_
#define FDB_RELATIONAL_RDB_OPS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fdb/relational/agg.h"
#include "fdb/relational/relation.h"

namespace fdb {

// The RDB baseline: a basic main-memory relational engine with the standard
// physical operators (paper §6, Experiment 5: the authors' RDB performs
// "very close to SQLite"). It stands in for SQLite/PostgreSQL in the
// reproduced experiments: sort-based grouping mirrors SQLite, hash-based
// grouping mirrors PostgreSQL.

/// σ_{A θ c}: keeps rows whose attribute `attr` satisfies the comparison.
Relation SelectConst(const Relation& in, AttrId attr, CmpOp op,
                     const Value& c);

/// σ_{A = B} for two attributes of the same relation.
Relation SelectAttrEq(const Relation& in, AttrId a, AttrId b);

/// π with optional duplicate elimination.
Relation Project(const Relation& in, const std::vector<AttrId>& attrs,
                 bool dedup);

/// Natural join: equates all attributes the two schemas share. The output
/// schema is the left schema followed by the right-only attributes.
/// Implemented as a hash join, building on the smaller input.
Relation NaturalJoin(const Relation& left, const Relation& right);

/// Natural join of several relations, joined left to right.
Relation NaturalJoinAll(const std::vector<const Relation*>& rels);

/// Sort-merge implementation of the natural join (used by tests as a
/// differential oracle for the hash join).
Relation SortMergeJoin(const Relation& left, const Relation& right);

/// Grouping and aggregation ̟_{G; α₁←F₁,…}: one output row per group,
/// grouping columns first, then one column per task named by `out_ids`.
/// When `group` is empty, emits exactly one row even on empty input
/// (count = 0, sum/min/max = NULL), matching SQL semantics.
/// Sort-based implementation: sorts by G, then aggregates in one scan.
Relation SortGroupAggregate(const Relation& in,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids);

/// Hash-based implementation of the same operator (rows emitted in
/// first-seen group order).
Relation HashGroupAggregate(const Relation& in,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids);

/// λ_k: the first `k` rows in input order.
Relation Limit(const Relation& in, int64_t k);

}  // namespace fdb

#endif  // FDB_RELATIONAL_RDB_OPS_H_
