#include "fdb/relational/eager.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fdb {
namespace {

AttrId TempAttr(AttributeRegistry* reg, const std::string& base) {
  if (!reg->Find(base).has_value()) return reg->Intern(base);
  for (int i = 2;; ++i) {
    std::string name = base + "#" + std::to_string(i);
    if (!reg->Find(name).has_value()) return reg->Intern(name);
  }
}

// Attributes of `schema` still needed: group attributes plus attributes
// shared with any unprocessed relation.
std::vector<AttrId> NeededAttrs(const RelSchema& schema,
                                const std::vector<AttrId>& group,
                                const std::vector<const Relation*>& rels,
                                const std::vector<bool>& done) {
  std::vector<AttrId> needed;
  for (AttrId a : schema.attrs()) {
    bool keep = std::find(group.begin(), group.end(), a) != group.end();
    for (size_t r = 0; r < rels.size() && !keep; ++r) {
      if (!done[r] && rels[r]->schema().Contains(a)) keep = true;
    }
    if (keep) needed.push_back(a);
  }
  return needed;
}

}  // namespace

Relation EagerAggregateJoin(const std::vector<const Relation*>& rels,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids,
                            AttributeRegistry* reg) {
  if (rels.empty()) {
    throw std::invalid_argument("EagerAggregateJoin: no relations");
  }
  if (tasks.size() != out_ids.size()) {
    throw std::invalid_argument("EagerAggregateJoin: tasks/out_ids mismatch");
  }

  // Partial-state columns: one shared count, one value column per
  // sum/min/max task (created when its source relation is processed).
  AttrId pc = TempAttr(reg, "__eager_cnt");
  std::vector<AttrId> pcol(tasks.size(), kInvalidAttr);
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].fn != AggFn::kCount) {
      pcol[t] = TempAttr(reg, "__eager_p" + std::to_string(t));
    }
  }

  std::vector<bool> done(rels.size(), false);

  // Start from the first relation; reduce it to (needed, partials).
  // Intermediate reductions are an optimisation, not needed for
  // correctness (the final aggregate re-combines the partial columns), so
  // they are skipped when the grouping keys cover every payload column —
  // then grouping cannot shrink the relation and would only add a sort.
  done[0] = true;
  auto reduce = [&](const Relation& in, bool force) {
    std::vector<AttrId> needed =
        NeededAttrs(in.schema(), group, rels, done);
    if (!force) {
      int payload = 0;
      for (AttrId a : in.schema().attrs()) {
        bool is_partial = a == pc;
        for (AttrId pcol_id : pcol) is_partial |= a == pcol_id;
        if (!is_partial) ++payload;
      }
      if (static_cast<int>(needed.size()) >= payload) return in;
    }
    std::vector<AggTask> gtasks;
    std::vector<AttrId> gids;
    gtasks.push_back({AggFn::kCount, kInvalidAttr});
    gids.push_back(pc);
    for (size_t t = 0; t < tasks.size(); ++t) {
      if (pcol[t] == kInvalidAttr) continue;
      // Re-aggregate an existing partial column, or initialise from the
      // source column if this step introduced it.
      AttrId src = in.schema().Contains(pcol[t]) ? pcol[t] : tasks[t].source;
      if (!in.schema().Contains(src)) continue;  // source not yet joined in
      AggFn fn = tasks[t].fn == AggFn::kSum ? AggFn::kSum : tasks[t].fn;
      gtasks.push_back({fn, src});
      gids.push_back(pcol[t]);
    }
    // Re-aggregating the running count: sum of partial counts. On the very
    // first reduction there is no pc column yet, so count(*) is correct.
    if (in.schema().Contains(pc)) {
      gtasks[0] = {AggFn::kSum, pc};
    }
    return SortGroupAggregate(in, needed, gtasks, gids);
  };

  // When a task's source relation is joined in after the first step, its
  // partial column is materialised from the source column: for sums, scaled
  // by the running count (each of the `pc` partially aggregated originals
  // pairs with that source row); for min/max, copied as-is.
  auto init_new_partials = [&](Relation in,
                               const std::vector<size_t>& new_tasks) {
    if (new_tasks.empty()) return in;
    int pc_pos = in.schema().IndexOf(pc);
    std::vector<AttrId> attrs = in.schema().attrs();
    std::vector<std::pair<int, bool>> cols;  // (source pos, scale by count)
    for (size_t t : new_tasks) {
      attrs.push_back(pcol[t]);
      cols.emplace_back(in.schema().IndexOf(tasks[t].source),
                        tasks[t].fn == AggFn::kSum);
    }
    Relation out((RelSchema(std::move(attrs))));
    for (const Tuple& row : in.rows()) {
      Tuple r = row;
      for (const auto& [sp, scale] : cols) {
        r.push_back(scale ? MulByCount(row[sp], row[pc_pos].as_int())
                          : row[sp]);
      }
      out.Add(std::move(r));
    }
    return out;
  };

  Relation cur = reduce(*rels[0], /*force=*/true);

  for (size_t step = 1; step < rels.size(); ++step) {
    // Pick an unprocessed relation sharing an attribute with `cur`.
    int next = -1;
    for (size_t r = 0; r < rels.size(); ++r) {
      if (done[r]) continue;
      for (AttrId a : rels[r]->schema().attrs()) {
        if (cur.schema().Contains(a)) next = static_cast<int>(r);
      }
      if (next >= 0) break;
    }
    if (next < 0) {
      throw std::invalid_argument(
          "EagerAggregateJoin: join graph is disconnected");
    }
    done[next] = true;

    std::vector<size_t> new_tasks;
    for (size_t t = 0; t < tasks.size(); ++t) {
      if (tasks[t].fn != AggFn::kCount && !cur.schema().Contains(pcol[t]) &&
          rels[next]->schema().Contains(tasks[t].source)) {
        new_tasks.push_back(t);
      }
    }
    cur = init_new_partials(NaturalJoin(cur, *rels[next]), new_tasks);
    // The reduction after the last join is subsumed by the final aggregate.
    if (step + 1 < rels.size()) cur = reduce(cur, /*force=*/false);
  }

  // Final aggregate over the group attributes.
  std::vector<AggTask> ftasks;
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].fn == AggFn::kCount) {
      ftasks.push_back({AggFn::kSum, pc});
    } else if (tasks[t].fn == AggFn::kSum) {
      ftasks.push_back({AggFn::kSum, pcol[t]});
    } else {
      ftasks.push_back({tasks[t].fn, pcol[t]});
    }
  }
  Relation out = SortGroupAggregate(cur, group, ftasks, out_ids);
  // SQL count over an empty input is 0, not NULL.
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].fn != AggFn::kCount) continue;
    int pos = out.schema().IndexOf(out_ids[t]);
    for (Tuple& row : out.mutable_rows()) {
      if (row[pos].is_null()) row[pos] = Value(static_cast<int64_t>(0));
    }
  }
  return out;
}

}  // namespace fdb
