#include "fdb/relational/relation.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fdb {

int CompareTuples(const Tuple& a, const Tuple& b,
                  const std::vector<std::pair<int, SortDir>>& key_positions) {
  for (const auto& [pos, dir] : key_positions) {
    auto c = a[pos] <=> b[pos];
    if (c != std::strong_ordering::equal) {
      bool less = c == std::strong_ordering::less;
      if (dir == SortDir::kDesc) less = !less;
      return less ? -1 : 1;
    }
  }
  return 0;
}

std::vector<std::pair<int, SortDir>> ResolveKeys(
    const RelSchema& schema, const std::vector<SortKey>& keys) {
  std::vector<std::pair<int, SortDir>> out;
  out.reserve(keys.size());
  for (const SortKey& k : keys) {
    int pos = schema.IndexOf(k.attr);
    if (pos < 0) {
      throw std::invalid_argument("ResolveKeys: attribute not in schema");
    }
    out.emplace_back(pos, k.dir);
  }
  return out;
}

void Relation::SortBy(const std::vector<SortKey>& keys) {
  auto pos = ResolveKeys(schema_, keys);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&pos](const Tuple& a, const Tuple& b) {
                     return CompareTuples(a, b, pos) < 0;
                   });
}

void Relation::SortAndDedup() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Relation::IsSortedBy(const std::vector<SortKey>& keys) const {
  auto pos = ResolveKeys(schema_, keys);
  for (size_t i = 1; i < rows_.size(); ++i) {
    if (CompareTuples(rows_[i - 1], rows_[i], pos) > 0) return false;
  }
  return true;
}

bool Relation::SetEquals(const Relation& o) const {
  if (schema_ != o.schema_) return false;
  std::vector<Tuple> a = rows_, b = o.rows_;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return a == b;
}

bool Relation::BagEquals(const Relation& o) const {
  if (schema_ != o.schema_) return false;
  std::vector<Tuple> a = rows_, b = o.rows_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

std::string Relation::ToString(const AttributeRegistry& reg,
                               int max_rows) const {
  std::ostringstream os;
  os << schema_.ToString(reg) << " [" << rows_.size() << " rows]\n";
  int n = 0;
  for (const Tuple& t : rows_) {
    if (n++ >= max_rows) {
      os << "  ...\n";
      break;
    }
    os << "  (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) os << ", ";
      os << t[i];
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace fdb
