#ifndef FDB_RELATIONAL_RELATION_H_
#define FDB_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/relational/schema.h"
#include "fdb/relational/value.h"

namespace fdb {

/// A tuple of values; positions correspond to a RelSchema.
using Tuple = std::vector<Value>;

/// Sort direction for one attribute of an order-by list.
enum class SortDir { kAsc, kDesc };

/// One element of an order-by list: attribute plus direction.
struct SortKey {
  AttrId attr = kInvalidAttr;
  SortDir dir = SortDir::kAsc;
  bool operator==(const SortKey& o) const = default;
};

/// A flat in-memory relation: a schema and a vector of rows. Rows are a bag
/// (duplicates allowed) unless deduplicated explicitly; base relations and
/// all paper workloads are duplicate-free.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelSchema schema) : schema_(std::move(schema)) {}
  Relation(RelSchema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const RelSchema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>& mutable_rows() { return rows_; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  void Add(Tuple t) { rows_.push_back(std::move(t)); }

  /// Sorts rows lexicographically by `keys` (other attributes break no ties).
  void SortBy(const std::vector<SortKey>& keys);

  /// Sorts rows by all attributes ascending and removes exact duplicates.
  void SortAndDedup();

  /// True if rows are sorted lexicographically by `keys` (ties arbitrary).
  bool IsSortedBy(const std::vector<SortKey>& keys) const;

  /// Set equality: same schema attribute list and same set of rows
  /// (both sides compared after sort+dedup; inputs are not modified).
  bool SetEquals(const Relation& o) const;

  /// Bag equality: same schema and same multiset of rows.
  bool BagEquals(const Relation& o) const;

  /// Renders at most `max_rows` rows for debugging.
  std::string ToString(const AttributeRegistry& reg, int max_rows = 20) const;

 private:
  RelSchema schema_;
  std::vector<Tuple> rows_;
};

/// Three-way lexicographic comparison of two tuples under sort keys, given
/// the positions of each key attribute in the tuple's schema.
int CompareTuples(const Tuple& a, const Tuple& b,
                  const std::vector<std::pair<int, SortDir>>& key_positions);

/// Resolves sort keys to (position, direction) pairs for `schema`.
/// Throws std::invalid_argument if a key attribute is missing.
std::vector<std::pair<int, SortDir>> ResolveKeys(
    const RelSchema& schema, const std::vector<SortKey>& keys);

}  // namespace fdb

#endif  // FDB_RELATIONAL_RELATION_H_
