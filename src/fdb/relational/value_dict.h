#ifndef FDB_RELATIONAL_VALUE_DICT_H_
#define FDB_RELATIONAL_VALUE_DICT_H_

#include <atomic>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fdb/base/thread_annotations.h"
#include "fdb/exec/stable_vector.h"
#include "fdb/relational/value.h"

namespace fdb {

class ValueDict;

/// An 8-byte NaN-boxed handle to a database value: the compact physical
/// representation stored inside factorisations (one ValueRef per singleton).
///
/// Layout: plain doubles are stored as their IEEE-754 bits (NaNs are
/// canonicalised on encode), and everything else lives in the quiet-NaN
/// space, discriminated by the top 16 bits:
///
///   0x7FF9  null
///   0x7FFA  integer, payload = low 48 bits sign-extended
///   0x7FFB  string, payload = dictionary code (ValueDict)
///   0x7FFC  big integer (|i| >= 2^47), payload = dictionary pool slot
///   0x7FFD  canonical NaN double
///
/// ValueRefs order and hash exactly like the boxed `Value` they encode:
/// null < numeric < string, integers and doubles compared numerically,
/// strings by dictionary rank (the dictionary assigns order-preserving
/// ranks, so no string comparison happens on the hot paths). Strings and
/// big integers resolve through the process-default `ValueDict`; refs from
/// explicitly constructed dictionaries must be compared/decoded through
/// that dictionary's own API.
class ValueRef {
 public:
  /// Null.
  constexpr ValueRef() = default;

  static ValueRef FromBits(uint64_t bits) { return ValueRef(bits); }
  uint64_t bits() const { return bits_; }

  bool is_null() const { return top16() == kTagNull; }
  bool is_int() const { return top16() == kTagInt || top16() == kTagBigInt; }
  bool is_double() const { return !is_boxed() || top16() == kTagNaN; }
  bool is_string() const { return top16() == kTagStr; }
  bool is_numeric() const { return is_int() || is_double(); }
  /// True for pooled integers (|i| >= 2^47); a subset of is_int().
  bool is_big_int() const { return top16() == kTagBigInt; }

  /// The integer payload. Requires is_int(). Big integers resolve through
  /// the default dictionary's pool.
  int64_t as_int() const;  // inline below
  /// The double payload. Requires is_double().
  double as_double() const;  // inline below
  /// The string payload (default dictionary). Requires is_string().
  const std::string& as_string() const;  // inline below
  /// The dictionary code of a string ref. Requires is_string().
  uint32_t string_code() const { return payload32(); }
  /// The big-int pool slot of a pooled integer ref. Requires is_big_int().
  uint32_t big_int_slot() const { return payload32(); }

  /// Rebuilds a string ref from a dictionary code / a pooled-integer ref
  /// from a pool slot (the storage layer's code-remapping path; everything
  /// else goes through ValueDict::Encode).
  static ValueRef StringRef(uint32_t code) { return Boxed(kTagStr, code); }
  static ValueRef BigIntRef(uint32_t slot) { return Boxed(kTagBigInt, slot); }

  /// Numeric view (int widened to double). Requires is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Rehydrates to a boxed Value (default dictionary).
  Value ToValue() const;
  std::string ToString() const { return ToValue().ToString(); }

  /// Hash with the same equality contract as Value::Hash (hash(2.0) ==
  /// hash(2); strings hash by content).
  size_t Hash() const;

  /// A mostly order-preserving 64-bit sort key: key(a) < key(b) implies
  /// a < b, and distinct values collide only for numerics within 4 ulps
  /// (doubles / big integers) — callers must break key ties with the exact
  /// comparison. String keys use the dictionary rank, so a key is only
  /// valid until the next out-of-order insertion; compute keys after bulk
  /// interning, use them within one sort, and discard.
  uint64_t OrderKey() const;  // inline below

  bool operator==(const ValueRef& o) const;              // inline below
  std::strong_ordering operator<=>(const ValueRef& o) const;  // inline below

 private:
  friend class ValueDict;

  static constexpr uint64_t kTagNull = 0x7FF9;
  static constexpr uint64_t kTagInt = 0x7FFA;
  static constexpr uint64_t kTagStr = 0x7FFB;
  static constexpr uint64_t kTagBigInt = 0x7FFC;
  static constexpr uint64_t kTagNaN = 0x7FFD;
  static constexpr uint64_t kPayloadMask = 0x0000FFFFFFFFFFFFull;
  static constexpr int64_t kInlineIntMax = (int64_t{1} << 47) - 1;
  static constexpr int64_t kInlineIntMin = -(int64_t{1} << 47);

  constexpr explicit ValueRef(uint64_t bits) : bits_(bits) {}
  static constexpr ValueRef Boxed(uint64_t tag, uint64_t payload) {
    return ValueRef((tag << 48) | (payload & kPayloadMask));
  }

  uint32_t top16() const { return static_cast<uint32_t>(bits_ >> 48); }
  bool is_boxed() const { return top16() - kTagNull <= kTagNaN - kTagNull; }
  uint32_t payload32() const { return static_cast<uint32_t>(bits_); }
  int64_t inline_int() const {
    return static_cast<int64_t>(bits_ << 16) >> 16;
  }
  // 0 = null, 1 = numeric, 2 = string (cross-type ordering rank).
  int TypeRank() const {
    if (is_null()) return 0;
    return is_string() ? 2 : 1;
  }

  uint64_t bits_ = kTagNull << 48;
};

std::ostream& operator<<(std::ostream& os, const ValueRef& v);

struct ValueRefHash {
  size_t operator()(const ValueRef& v) const { return v.Hash(); }
};

/// Evaluates `a op b` under the total value order (ref-native; no boxing).
bool EvalCmpRef(const ValueRef& a, CmpOp op, const ValueRef& b);

/// An order-preserving value dictionary: interns strings to stable 32-bit
/// codes and maintains a rank permutation so two codes compare in string
/// order with two array loads. Codes never change once assigned (they are
/// embedded in immutable factorisation nodes); an out-of-order insertion
/// shifts the *ranks* of all larger strings instead (O(#strings) worst
/// case, amortised to O(1) by the bulk-loading paths which pre-intern in
/// sorted order). Also pools integers too large to inline in a ValueRef.
///
/// `Default()` is the process-wide dictionary used by all ValueRef
/// accessors and comparisons; `Database` hands out a shared handle to it.
///
/// Thread safety: the intern path is exclusive (one writer at a time,
/// serialised on an internal shared_mutex), lookups that walk the hash
/// indexes (Find, TryEncode, the found-fast-path of Intern) take a shared
/// lock, and the hot code→value reads — str(), rank(), big_int(),
/// Decode(), Compare() and every ValueRef comparison — are lock-free:
/// strings and pool slots live in append-only stable storage, and rank
/// entries are atomics. An *out-of-order* intern (a new string that is
/// not last in sort order — e.g. an InsertTuple racing readers) shifts
/// the ranks of larger strings; pairwise string comparisons stay correct
/// through a seqlock (CompareStringRanks retries while a shift is in
/// flight), so concurrent queries never observe a misordering. Only the
/// single-value rank() accessor and OrderKey() sort keys are
/// shift-transient, as their contracts already state: compute keys after
/// bulk interning and use them within one sort.
class ValueDict {
 public:
  ValueDict() = default;
  ValueDict(const ValueDict&) = delete;
  ValueDict& operator=(const ValueDict&) = delete;

  /// The process-default dictionary (never destroyed).
  static ValueDict& Default() {
    static ValueDict* dict = new ValueDict();  // immortal
    return *dict;
  }

  // --- strings ------------------------------------------------------------

  /// Interns `s`, returning its stable code (existing code if present).
  uint32_t Intern(std::string_view s);
  /// The code of `s` if already interned (never inserts).
  std::optional<uint32_t> Find(std::string_view s) const;
  /// Interns a batch; sorts it first so appends dominate and at most one
  /// rank rebuild happens. Use on bulk-load paths (CSV, relation encoding).
  void InternBulk(std::vector<std::string_view> strs);
  const std::string& str(uint32_t code) const { return strings_[code]; }
  /// A single rank read: lock-free, but transient while an out-of-order
  /// intern shifts ranks. Use CompareStringRanks for ordering decisions.
  uint32_t rank(uint32_t code) const {
    return rank_[code].load(std::memory_order_relaxed);
  }
  /// Orders two string codes by rank, consistently even while a
  /// concurrent out-of-order intern is shifting the rank permutation:
  /// seqlock reads retry on instability, falling back to a shared lock
  /// (i.e. waiting out the writer) after a bounded spin.
  std::strong_ordering CompareStringRanks(uint32_t a, uint32_t b) const;
  /// Blocks interning — and with it rank shifts — for the guard's
  /// lifetime (shared mode: other readers and freezers are unaffected).
  /// Hold around batch rank-key computations (OrderKey) together with
  /// the sorts consuming them, so all keys in the batch are mutually
  /// consistent even while concurrent updates intern new strings. The
  /// holder must not intern through this dictionary (self-deadlock).
  std::shared_lock<std::shared_mutex> FreezeRanks() const {
    return std::shared_lock<std::shared_mutex>(mu_.native());
  }
  size_t num_strings() const { return strings_.size(); }

  /// Overwrites one code's rank without touching by_rank_, deliberately
  /// desynchronising the permutation. Only for corruption-seeding in
  /// tests of the deep invariant checker (fdb/check).
  void TestOnlyCorruptRank(uint32_t code, uint32_t rank) {
    base::WriterMutexLock lk(&mu_);
    rank_[code].store(rank, std::memory_order_relaxed);
  }

  // --- big integer pool ---------------------------------------------------

  uint32_t InternBigInt(int64_t v);
  int64_t big_int(uint32_t slot) const { return big_ints_[slot]; }
  size_t num_big_ints() const { return big_ints_.size(); }

  // --- boxed <-> ref ------------------------------------------------------

  /// Encodes a boxed value, interning strings / pooling big integers.
  ValueRef Encode(const Value& v);
  /// Encodes without inserting: nullopt if the string (or big integer) is
  /// not in the dictionary — i.e. no stored singleton can equal `v`.
  std::optional<ValueRef> TryEncode(const Value& v) const;
  /// Rehydrates a ref produced by this dictionary.
  Value Decode(const ValueRef& r) const;

  /// Three-way comparison within *this* dictionary (for non-default
  /// instances; equivalent to operator<=> on Default()-encoded refs).
  std::strong_ordering Compare(const ValueRef& a, const ValueRef& b) const;

 private:
  uint32_t InternInOrder(std::string_view s) REQUIRES(mu_);

  // Guards the hash indexes and by_rank_, and serialises writers. The
  // stable vectors are written only under exclusive mu_ but read without
  // it (see the class comment).
  mutable base::SharedMutex mu_;
  // Element addresses are stable, so index_ keys can view into it and
  // readers resolve published codes lock-free.
  exec::StableVector<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_ GUARDED_BY(mu_);
  exec::StableVector<std::atomic<uint32_t>> rank_;  // code -> rank
  std::vector<uint32_t> by_rank_ GUARDED_BY(mu_);   // rank -> code
  // Seqlock generation for rank shifts: odd while a writer (holding mu_
  // exclusively) is rewriting existing rank entries.
  std::atomic<uint32_t> rank_gen_{0};
  exec::StableVector<int64_t> big_ints_;
  std::unordered_map<int64_t, uint32_t> big_index_ GUARDED_BY(mu_);
};

// --- hot-path inline definitions (ValueRef needs ValueDict) ----------------

inline std::strong_ordering ValueDict::CompareStringRanks(uint32_t a,
                                                          uint32_t b) const {
  for (int spin = 0; spin < 64; ++spin) {
    uint32_t g1 = rank_gen_.load(std::memory_order_acquire);
    if (g1 & 1u) continue;  // shift in flight
    uint32_t ra = rank_[a].load(std::memory_order_relaxed);
    uint32_t rb = rank_[b].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rank_gen_.load(std::memory_order_relaxed) == g1) return ra <=> rb;
  }
  // A shift writer persists (e.g. preempted mid-rebuild): wait it out on
  // the lock instead of spinning.
  std::shared_lock<std::shared_mutex> lk(mu_.native());
  return rank_[a].load(std::memory_order_relaxed) <=>
         rank_[b].load(std::memory_order_relaxed);
}

inline int64_t ValueRef::as_int() const {
  if (top16() == kTagInt) return inline_int();
  return ValueDict::Default().big_int(payload32());
}

inline double ValueRef::as_double() const {
  if (top16() == kTagNaN) return __builtin_nan("");
  return __builtin_bit_cast(double, bits_);
}

inline const std::string& ValueRef::as_string() const {
  return ValueDict::Default().str(payload32());
}

inline uint64_t ValueRef::OrderKey() const {
  uint32_t t = top16();
  if (t == kTagNull) return 0;
  if (t == kTagStr) {
    return (uint64_t{3} << 62) | ValueDict::Default().rank(payload32());
  }
  // Numeric band: the standard monotone double→uint64 mapping, truncated
  // by two bits to make room for the band tag. Integers below 2^51 stay
  // exact; everything else can collide within 4 ulps (tie-break needed).
  // +0.0 normalises -0.0 so the two equal zeros share one key.
  uint64_t u = __builtin_bit_cast(uint64_t, numeric() + 0.0);
  u = (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
  return (uint64_t{1} << 62) | (u >> 2);
}

inline std::strong_ordering ValueRef::operator<=>(const ValueRef& o) const {
  uint32_t ta = top16(), tb = o.top16();
  if (ta == kTagInt && tb == kTagInt) {
    return inline_int() <=> o.inline_int();
  }
  if (ta == kTagStr && tb == kTagStr) {
    if (bits_ == o.bits_) return std::strong_ordering::equal;
    return ValueDict::Default().CompareStringRanks(payload32(),
                                                   o.payload32());
  }
  int ra = TypeRank(), rb = o.TypeRank();
  if (ra != rb) return ra <=> rb;
  if (ra == 0) return std::strong_ordering::equal;
  // Both numeric: exact for int/int (big ints included), else as doubles.
  if (is_int() && o.is_int()) return as_int() <=> o.as_int();
  double a = numeric(), b = o.numeric();
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

inline bool ValueRef::operator==(const ValueRef& o) const {
  if (bits_ == o.bits_) return true;
  // Same-tag strings/nulls with different bits are distinct; the remaining
  // cross-representation equalities (int vs double) go through the order.
  uint32_t ta = top16(), tb = o.top16();
  if (ta == tb && (ta == kTagStr || ta == kTagInt || ta == kTagNull)) {
    return false;
  }
  return (*this <=> o) == std::strong_ordering::equal;
}

}  // namespace fdb

#endif  // FDB_RELATIONAL_VALUE_DICT_H_
