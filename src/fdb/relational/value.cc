#include "fdb/relational/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fdb {
namespace {

// Rank used to order values of incomparable types: null < numeric < string.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}

std::strong_ordering OrderDoubles(double a, double b) {
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

bool Value::operator==(const Value& o) const {
  return (*this <=> o) == std::strong_ordering::equal;
}

std::strong_ordering Value::operator<=>(const Value& o) const {
  int ra = TypeRank(*this), rb = TypeRank(o);
  if (ra != rb) return ra <=> rb;
  switch (ra) {
    case 0:
      return std::strong_ordering::equal;
    case 1:
      if (is_int() && o.is_int()) return as_int() <=> o.as_int();
      return OrderDoubles(numeric(), o.numeric());
    default:
      return as_string().compare(o.as_string()) <=> 0;
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream os;
    os << as_double();
    return os.str();
  }
  return as_string();
}

size_t Value::Hash() const {
  if (is_null()) return value_hash::OfNull();
  if (is_int()) return value_hash::OfInt(as_int());
  if (is_double()) return value_hash::OfDouble(as_double());
  return value_hash::OfString(as_string());
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

Value AddValues(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    throw std::invalid_argument("AddValues: non-numeric operand");
  }
  if (a.is_int() && b.is_int()) return Value(a.as_int() + b.as_int());
  return Value(a.numeric() + b.numeric());
}

Value MulValues(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    throw std::invalid_argument("MulValues: non-numeric operand");
  }
  if (a.is_int() && b.is_int()) return Value(a.as_int() * b.as_int());
  return Value(a.numeric() * b.numeric());
}

Value MulByCount(const Value& a, int64_t count) {
  return MulValues(a, Value(count));
}

Value MinValue(const Value& a, const Value& b) { return a < b ? a : b; }
Value MaxValue(const Value& a, const Value& b) { return a < b ? b : a; }

bool EvalCmp(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return !(a == b);
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

std::string CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace fdb
