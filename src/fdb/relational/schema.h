#ifndef FDB_RELATIONAL_SCHEMA_H_
#define FDB_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fdb/base/thread_annotations.h"

namespace fdb {

/// Identifier of an attribute within an AttributeRegistry.
using AttrId = int32_t;
constexpr AttrId kInvalidAttr = -1;

/// Maps attribute names to dense AttrIds shared by all relations, f-trees
/// and queries of one database. Attribute names are case-sensitive.
///
/// Thread-safe like ValueDict's intern path: Intern is exclusive, Find /
/// Name / size take a shared lock — queries binding aliases (and
/// aggregate executions naming their outputs) may run from many threads.
/// Names live in a deque, so the reference Name() returns stays valid
/// after the lock drops, across any number of later interns.
class AttributeRegistry {
 public:
  AttributeRegistry() = default;
  AttributeRegistry(const AttributeRegistry& other);
  AttributeRegistry& operator=(const AttributeRegistry& other);
  AttributeRegistry(AttributeRegistry&& other) noexcept;
  AttributeRegistry& operator=(AttributeRegistry&& other) noexcept;

  /// Returns the id for `name`, creating it if necessary.
  AttrId Intern(const std::string& name);

  /// Returns the id for `name`, or nullopt if it was never interned.
  std::optional<AttrId> Find(const std::string& name) const;

  /// Name of an interned attribute id.
  const std::string& Name(AttrId id) const {
    base::ReaderMutexLock lk(&mu_);
    return names_.at(id);
  }

  int size() const {
    base::ReaderMutexLock lk(&mu_);
    return static_cast<int>(names_.size());
  }

 private:
  mutable base::SharedMutex mu_;
  // Stable element addresses (deque): Name() references never dangle.
  std::deque<std::string> names_ GUARDED_BY(mu_);
  std::unordered_map<std::string, AttrId> ids_ GUARDED_BY(mu_);
};

/// An ordered list of attributes, the schema of a relation or tuple.
class RelSchema {
 public:
  RelSchema() = default;
  explicit RelSchema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {}

  int arity() const { return static_cast<int>(attrs_.size()); }
  AttrId attr(int i) const { return attrs_[i]; }
  const std::vector<AttrId>& attrs() const { return attrs_; }

  /// Position of `a` in this schema, or -1 if absent.
  int IndexOf(AttrId a) const;
  bool Contains(AttrId a) const { return IndexOf(a) >= 0; }

  bool operator==(const RelSchema& o) const = default;

  /// Renders as "(A, B, C)" using `reg` for names.
  std::string ToString(const AttributeRegistry& reg) const;

 private:
  std::vector<AttrId> attrs_;
};

}  // namespace fdb

#endif  // FDB_RELATIONAL_SCHEMA_H_
