#include "fdb/relational/rdb_ops.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace fdb {
namespace {

size_t HashKey(const Tuple& row, const std::vector<int>& cols) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (int c : cols) {
    h ^= row[c].Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeysEqual(const Tuple& a, const std::vector<int>& ac, const Tuple& b,
               const std::vector<int>& bc) {
  for (size_t i = 0; i < ac.size(); ++i) {
    if (!(a[ac[i]] == b[bc[i]])) return false;
  }
  return true;
}

// Shared attributes of two schemas and their positions on both sides.
void SharedAttrs(const RelSchema& l, const RelSchema& r,
                 std::vector<int>* lc, std::vector<int>* rc) {
  for (int i = 0; i < l.arity(); ++i) {
    int j = r.IndexOf(l.attr(i));
    if (j >= 0) {
      lc->push_back(i);
      rc->push_back(j);
    }
  }
}

RelSchema JoinSchema(const RelSchema& l, const RelSchema& r,
                     std::vector<int>* r_only) {
  std::vector<AttrId> attrs = l.attrs();
  for (int j = 0; j < r.arity(); ++j) {
    if (l.IndexOf(r.attr(j)) < 0) {
      attrs.push_back(r.attr(j));
      r_only->push_back(j);
    }
  }
  return RelSchema(std::move(attrs));
}

}  // namespace

Relation SelectConst(const Relation& in, AttrId attr, CmpOp op,
                     const Value& c) {
  int pos = in.schema().IndexOf(attr);
  if (pos < 0) throw std::invalid_argument("SelectConst: unknown attribute");
  Relation out(in.schema());
  for (const Tuple& row : in.rows()) {
    if (EvalCmp(row[pos], op, c)) out.Add(row);
  }
  return out;
}

Relation SelectAttrEq(const Relation& in, AttrId a, AttrId b) {
  int pa = in.schema().IndexOf(a);
  int pb = in.schema().IndexOf(b);
  if (pa < 0 || pb < 0) {
    throw std::invalid_argument("SelectAttrEq: unknown attribute");
  }
  Relation out(in.schema());
  for (const Tuple& row : in.rows()) {
    if (row[pa] == row[pb]) out.Add(row);
  }
  return out;
}

Relation Project(const Relation& in, const std::vector<AttrId>& attrs,
                 bool dedup) {
  std::vector<int> cols;
  for (AttrId a : attrs) {
    int pos = in.schema().IndexOf(a);
    if (pos < 0) throw std::invalid_argument("Project: unknown attribute");
    cols.push_back(pos);
  }
  Relation out{RelSchema(attrs)};
  for (const Tuple& row : in.rows()) {
    Tuple t;
    t.reserve(cols.size());
    for (int c : cols) t.push_back(row[c]);
    out.Add(std::move(t));
  }
  if (dedup) out.SortAndDedup();
  return out;
}

Relation NaturalJoin(const Relation& left, const Relation& right) {
  // Build on the smaller side.
  if (right.size() < left.size()) {
    // Keep the documented output column order (left ++ right-only) by
    // projecting after the swapped join.
    Relation swapped = NaturalJoin(right, left);
    std::vector<int> r_only_tmp;
    RelSchema want = JoinSchema(left.schema(), right.schema(), &r_only_tmp);
    return Project(swapped, want.attrs(), /*dedup=*/false);
  }
  std::vector<int> lc, rc;
  SharedAttrs(left.schema(), right.schema(), &lc, &rc);
  std::vector<int> r_only;
  RelSchema out_schema = JoinSchema(left.schema(), right.schema(), &r_only);
  Relation out(out_schema);

  std::unordered_multimap<size_t, int> index;
  index.reserve(left.rows().size());
  for (size_t i = 0; i < left.rows().size(); ++i) {
    index.emplace(HashKey(left.rows()[i], lc), static_cast<int>(i));
  }
  for (const Tuple& rrow : right.rows()) {
    auto [b, e] = index.equal_range(HashKey(rrow, rc));
    for (auto it = b; it != e; ++it) {
      const Tuple& lrow = left.rows()[it->second];
      if (!KeysEqual(lrow, lc, rrow, rc)) continue;
      Tuple t = lrow;
      for (int j : r_only) t.push_back(rrow[j]);
      out.Add(std::move(t));
    }
  }
  return out;
}

Relation NaturalJoinAll(const std::vector<const Relation*>& rels) {
  if (rels.empty()) throw std::invalid_argument("NaturalJoinAll: no inputs");
  Relation acc = *rels[0];
  for (size_t i = 1; i < rels.size(); ++i) {
    acc = NaturalJoin(acc, *rels[i]);
  }
  return acc;
}

Relation SortMergeJoin(const Relation& left, const Relation& right) {
  std::vector<int> lc, rc;
  SharedAttrs(left.schema(), right.schema(), &lc, &rc);
  std::vector<int> r_only;
  RelSchema out_schema = JoinSchema(left.schema(), right.schema(), &r_only);
  Relation out(out_schema);

  auto key_less = [](const Tuple& a, const std::vector<int>& ac,
                     const Tuple& b, const std::vector<int>& bc) {
    for (size_t i = 0; i < ac.size(); ++i) {
      auto c = a[ac[i]] <=> b[bc[i]];
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
    }
    return false;
  };
  std::vector<Tuple> ls = left.rows(), rs = right.rows();
  std::sort(ls.begin(), ls.end(), [&](const Tuple& a, const Tuple& b) {
    return key_less(a, lc, b, lc);
  });
  std::sort(rs.begin(), rs.end(), [&](const Tuple& a, const Tuple& b) {
    return key_less(a, rc, b, rc);
  });
  size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    if (key_less(ls[i], lc, rs[j], rc)) {
      ++i;
    } else if (key_less(rs[j], rc, ls[i], lc)) {
      ++j;
    } else {
      size_t i2 = i, j2 = j;
      while (i2 < ls.size() && !key_less(ls[i], lc, ls[i2], lc) &&
             !key_less(ls[i2], lc, ls[i], lc)) {
        ++i2;
      }
      while (j2 < rs.size() && !key_less(rs[j], rc, rs[j2], rc) &&
             !key_less(rs[j2], rc, rs[j], rc)) {
        ++j2;
      }
      for (size_t x = i; x < i2; ++x) {
        for (size_t y = j; y < j2; ++y) {
          Tuple t = ls[x];
          for (int c : r_only) t.push_back(rs[y][c]);
          out.Add(std::move(t));
        }
      }
      i = i2;
      j = j2;
    }
  }
  return out;
}

namespace {

// Accumulator for one group and one task.
struct AggAcc {
  int64_t count = 0;
  Value acc;  // running sum / min / max; NULL until first row
};

void Accumulate(AggAcc* a, const AggTask& t, const Tuple& row, int src_pos) {
  a->count++;
  switch (t.fn) {
    case AggFn::kCount:
      return;
    case AggFn::kSum:
      a->acc = a->acc.is_null() ? row[src_pos]
                                : AddValues(a->acc, row[src_pos]);
      return;
    case AggFn::kMin:
      a->acc = a->acc.is_null() ? row[src_pos]
                                : MinValue(a->acc, row[src_pos]);
      return;
    case AggFn::kMax:
      a->acc = a->acc.is_null() ? row[src_pos]
                                : MaxValue(a->acc, row[src_pos]);
      return;
  }
}

Value Finish(const AggAcc& a, const AggTask& t) {
  if (t.fn == AggFn::kCount) return Value(a.count);
  return a.acc;  // NULL when the group was empty (global aggregates only)
}

struct GroupPlan {
  std::vector<int> gcols;
  std::vector<int> scols;  // source column per task (-1 for count)
  RelSchema out_schema;
};

GroupPlan PlanGrouping(const Relation& in, const std::vector<AttrId>& group,
                       const std::vector<AggTask>& tasks,
                       const std::vector<AttrId>& out_ids) {
  if (tasks.size() != out_ids.size()) {
    throw std::invalid_argument("GroupAggregate: tasks/out_ids mismatch");
  }
  GroupPlan p;
  for (AttrId g : group) {
    int pos = in.schema().IndexOf(g);
    if (pos < 0) {
      throw std::invalid_argument("GroupAggregate: unknown group attribute");
    }
    p.gcols.push_back(pos);
  }
  for (const AggTask& t : tasks) {
    if (t.fn == AggFn::kCount) {
      p.scols.push_back(-1);
    } else {
      int pos = in.schema().IndexOf(t.source);
      if (pos < 0) {
        throw std::invalid_argument(
            "GroupAggregate: unknown aggregate source");
      }
      p.scols.push_back(pos);
    }
  }
  std::vector<AttrId> attrs = group;
  attrs.insert(attrs.end(), out_ids.begin(), out_ids.end());
  p.out_schema = RelSchema(std::move(attrs));
  return p;
}

void EmitGroup(Relation* out, const Tuple& any_row, const GroupPlan& p,
               const std::vector<AggTask>& tasks,
               const std::vector<AggAcc>& accs) {
  Tuple t;
  t.reserve(p.gcols.size() + tasks.size());
  for (int c : p.gcols) t.push_back(any_row[c]);
  for (size_t i = 0; i < tasks.size(); ++i) {
    t.push_back(Finish(accs[i], tasks[i]));
  }
  out->Add(std::move(t));
}

}  // namespace

Relation SortGroupAggregate(const Relation& in,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids) {
  GroupPlan p = PlanGrouping(in, group, tasks, out_ids);
  Relation out(p.out_schema);

  if (group.empty()) {
    std::vector<AggAcc> accs(tasks.size());
    for (const Tuple& row : in.rows()) {
      for (size_t i = 0; i < tasks.size(); ++i) {
        Accumulate(&accs[i], tasks[i], row, p.scols[i]);
      }
    }
    EmitGroup(&out, Tuple{}, p, tasks, accs);
    return out;
  }

  std::vector<Tuple> rows = in.rows();
  std::sort(rows.begin(), rows.end(), [&](const Tuple& a, const Tuple& b) {
    for (int c : p.gcols) {
      auto cmp = a[c] <=> b[c];
      if (cmp != std::strong_ordering::equal) {
        return cmp == std::strong_ordering::less;
      }
    }
    return false;
  });
  size_t i = 0;
  while (i < rows.size()) {
    size_t j = i;
    std::vector<AggAcc> accs(tasks.size());
    auto same_group = [&](const Tuple& a, const Tuple& b) {
      for (int c : p.gcols) {
        if (!(a[c] == b[c])) return false;
      }
      return true;
    };
    while (j < rows.size() && same_group(rows[i], rows[j])) {
      for (size_t t = 0; t < tasks.size(); ++t) {
        Accumulate(&accs[t], tasks[t], rows[j], p.scols[t]);
      }
      ++j;
    }
    EmitGroup(&out, rows[i], p, tasks, accs);
    i = j;
  }
  return out;
}

Relation HashGroupAggregate(const Relation& in,
                            const std::vector<AttrId>& group,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& out_ids) {
  GroupPlan p = PlanGrouping(in, group, tasks, out_ids);
  if (group.empty()) return SortGroupAggregate(in, group, tasks, out_ids);

  Relation out(p.out_schema);
  struct GroupState {
    int first_row;
    std::vector<AggAcc> accs;
  };
  std::unordered_multimap<size_t, GroupState> table;
  table.reserve(in.rows().size());
  std::vector<GroupState*> emit_order;
  for (size_t r = 0; r < in.rows().size(); ++r) {
    const Tuple& row = in.rows()[r];
    size_t h = HashKey(row, p.gcols);
    GroupState* gs = nullptr;
    auto [b, e] = table.equal_range(h);
    for (auto it = b; it != e; ++it) {
      if (KeysEqual(in.rows()[it->second.first_row], p.gcols, row, p.gcols)) {
        gs = &it->second;
        break;
      }
    }
    if (gs == nullptr) {
      auto it = table.emplace(
          h, GroupState{static_cast<int>(r),
                        std::vector<AggAcc>(tasks.size())});
      gs = &it->second;
      emit_order.push_back(gs);
    }
    for (size_t t = 0; t < tasks.size(); ++t) {
      Accumulate(&gs->accs[t], tasks[t], row, p.scols[t]);
    }
  }
  for (GroupState* gs : emit_order) {
    EmitGroup(&out, in.rows()[gs->first_row], p, tasks, gs->accs);
  }
  return out;
}

Relation Limit(const Relation& in, int64_t k) {
  Relation out(in.schema());
  for (int64_t i = 0; i < k && i < in.size(); ++i) {
    out.Add(in.rows()[i]);
  }
  return out;
}

}  // namespace fdb
