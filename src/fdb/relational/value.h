#ifndef FDB_RELATIONAL_VALUE_H_
#define FDB_RELATIONAL_VALUE_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <variant>

namespace fdb {

/// Shared hash primitives: Value::Hash and ValueRef::Hash must produce the
/// same hash for equal values (including mixed int/double keys that compare
/// equal, e.g. hash(2.0) == hash(2)), so both implementations route through
/// these helpers.
namespace value_hash {
inline size_t OfNull() { return 0x9e3779b97f4a7c15ull; }
inline size_t OfInt(int64_t i) { return std::hash<int64_t>()(i); }
inline size_t OfDouble(double d) {
  // Make hash(2.0) == hash(2) so mixed int/double keys that compare equal
  // hash equally.
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    return OfInt(static_cast<int64_t>(d));
  }
  return std::hash<double>()(d);
}
inline size_t OfString(const std::string& s) {
  return std::hash<std::string>()(s);
}
}  // namespace value_hash

/// A single database value: null, 64-bit integer, double, or string.
///
/// Values are totally ordered. The order is defined within each type by the
/// natural order of that type; across types the order is
/// null < int/double (compared numerically against each other) < string.
/// Integers and doubles compare numerically so that mixed-type aggregates
/// (e.g. `sum` promoting to double) behave consistently.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  /// The integer payload. Requires is_int().
  int64_t as_int() const { return std::get<int64_t>(v_); }
  /// The double payload. Requires is_double().
  double as_double() const { return std::get<double>(v_); }
  /// The string payload. Requires is_string().
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view of the value (int widened to double). Requires is_numeric().
  double numeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  bool operator==(const Value& o) const;
  std::strong_ordering operator<=>(const Value& o) const;

  /// Renders the value for display ("NULL", "42", "1.5", "abc").
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Adds two numeric values; the result is an int iff both inputs are ints.
Value AddValues(const Value& a, const Value& b);
/// Multiplies two numeric values; int iff both inputs are ints.
Value MulValues(const Value& a, const Value& b);
/// Multiplies a numeric value by an integer count.
Value MulByCount(const Value& a, int64_t count);
/// Smaller / larger of two values under the total value order.
Value MinValue(const Value& a, const Value& b);
Value MaxValue(const Value& a, const Value& b);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Binary comparison operators usable in selection conditions.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `a op b` under the total value order.
bool EvalCmp(const Value& a, CmpOp op, const Value& b);

/// Renders an operator as SQL ("=", "<>", "<", ...).
std::string CmpOpName(CmpOp op);

}  // namespace fdb

#endif  // FDB_RELATIONAL_VALUE_H_
