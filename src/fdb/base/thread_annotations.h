#ifndef FDB_BASE_THREAD_ANNOTATIONS_H_
#define FDB_BASE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis for the whole engine.
///
/// Every mutex-guarded field and lock-requiring method in the codebase is
/// annotated with the macros below, so `clang++ -Wthread-safety -Werror`
/// (the `thread-safety` CI job) turns lock-discipline mistakes into
/// compile errors: touching a GUARDED_BY field without its mutex,
/// calling a REQUIRES method unlocked, double-acquiring, or returning
/// with a capability still held. Under GCC (which has no such analysis)
/// the macros expand to nothing and the shims compile down to the
/// standard-library primitives they wrap.
///
/// Conventions (enforced by tools/tsa_compile_fail.cc in CI):
///   - fields:   `int x_ GUARDED_BY(mu_);`
///   - methods:  `void FooLocked() REQUIRES(mu_);` — the `*Locked` suffix
///     and the annotation always travel together
///   - scopes:   `base::MutexLock lk(&mu_);` (never a bare
///     `std::lock_guard`, which the analysis cannot see through)
///   - waits:    `base::CondVar::Wait(mu_)` inside a while-loop whose
///     predicate reads only GUARDED_BY(mu_) state
///   - escape hatch: NO_THREAD_SAFETY_ANALYSIS, always with a comment
///     saying why the pattern is safe but unanalysable (e.g. writes to a
///     structure before it is published to other threads).

#if defined(__clang__)
#define FDB_TSA(x) __attribute__((x))
#else
#define FDB_TSA(x)  // no-op: GCC has no thread-safety analysis
#endif

#define CAPABILITY(x) FDB_TSA(capability(x))
#define SCOPED_CAPABILITY FDB_TSA(scoped_lockable)
#define GUARDED_BY(x) FDB_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) FDB_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FDB_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FDB_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FDB_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FDB_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FDB_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FDB_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FDB_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FDB_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FDB_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FDB_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FDB_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) FDB_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FDB_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FDB_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) FDB_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FDB_TSA(no_thread_safety_analysis)

namespace fdb {
namespace base {

class CondVar;

/// std::mutex with the capability annotations the analysis needs. Lock
/// sites use the scoped `MutexLock` below; `Lock`/`Unlock` exist for the
/// few early-release paths where a scope does not fit.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop the analysis cannot model
  /// (condition variables reach it through CondVar instead).
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations: exclusive for writers,
/// shared for readers. `native()` serves the one movable-lock API
/// (ValueDict::FreezeRanks returns a std::shared_lock) that the scoped
/// shims cannot express.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the std::lock_guard replacement the
/// analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII exclusive lock over SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_SHARED() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to base::Mutex. Waits adopt the held lock
/// into a std::unique_lock for the duration of the block and release it
/// back, so callers keep the annotated capability across the wait. No
/// predicate overloads on purpose: the waiting loop lives in the caller,
/// where the analysis can see the guarded reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Returns false on timeout, true when signalled.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, deadline);
    lk.release();
    return st != std::cv_status::timeout;
  }

  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + rel);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace base
}  // namespace fdb

#endif  // FDB_BASE_THREAD_ANNOTATIONS_H_
