#ifndef FDB_CHECK_CHECK_H_
#define FDB_CHECK_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fdb {

class Database;
class Factorisation;
class ValueDict;

namespace serve {
class AdmissionController;
}  // namespace serve

namespace storage {
struct PersistState;
}  // namespace storage

namespace check {

/// One invariant violation: which check tripped and what it saw. Check
/// names are stable identifiers (tests and triage key on them):
///
///   view-structure     Factorisation::Validate failed (shape/sortedness)
///   null-child         a union carries a null child pointer
///   node-cycle         the node graph reaches a node already on the path
///   arena-ownership    a reachable node's memory is pinned by no arena
///                      in the view's adopt chain (cross-arena leak or
///                      dangling pointer)
///   dict-rank-range    a string's rank is out of [0, #strings)
///   dict-rank-duplicate two codes share one rank
///   dict-rank-order    rank order disagrees with string order
///   admission-counters active/queued outside their configured bounds
///   persist-*          checkpoint retention state inconsistent with the
///                      live database
///   chain-envelope     a chain file's header/table fails validation
///   section-crc        a chain file section's CRC32 does not match
///   delta-chain-stamp  a delta file carries a foreign base epoch
///   delta-chain-seq    a delta file's manifest sequence is wrong
///   wal-chain-stamp    the WAL header is stamped for a different chain
struct Issue {
  std::string check;
  std::string detail;
};

/// The result of a validation pass: every issue found plus coverage
/// counters (so "clean" is distinguishable from "looked at nothing").
struct Report {
  std::vector<Issue> issues;
  uint64_t nodes_visited = 0;
  uint64_t views_checked = 0;
  uint64_t files_checked = 0;

  bool ok() const { return issues.empty(); }
  void Add(const std::string& check, const std::string& detail);
  std::string ToString() const;
};

/// True when deep checking is switched on: the FDB_CHECK environment
/// variable (any value but "0"), or a build compiled with -DFDB_CHECK
/// (Debug builds) unless the environment explicitly sets FDB_CHECK=0.
bool Enabled();

/// Deep-validates one factorised view: structural invariants (via
/// Factorisation::Validate), then a full node-graph walk checking for
/// null children, cycles, and nodes whose memory is not pinned by the
/// view's arena adopt chain.
void CheckView(const std::string& name, const Factorisation& f, Report* out);

/// Validates the dictionary's rank permutation: every rank in range,
/// assigned once, and ordering codes exactly like their strings.
void CheckDictionary(const ValueDict& dict, Report* out);

/// Validates the admission controller's counters against its config
/// (a drift means a lost or double Release()).
void CheckAdmission(const serve::AdmissionController& ac, Report* out);

/// Validates checkpoint retention state against the live database
/// (watermarks, per-view node indexes, pinned versions).
void CheckPersistState(const Database& db, const storage::PersistState& ps,
                       Report* out);

/// Walks the on-disk snapshot chain at `path`: base and delta envelopes,
/// per-section CRCs, delta epoch/sequence stamps, and the WAL header's
/// chain binding.
void CheckChainFiles(const std::string& path, Report* out);

/// Runs every applicable check against `db`: all views, the dictionary,
/// and — when the database has checkpointed — the retention state and
/// the on-disk chain.
Report ValidateDatabase(const Database& db);

/// ValidateDatabase, throwing std::runtime_error with the report when it
/// is not clean. The FDB_CHECK auto-hooks (Database::Open, Checkpoint)
/// call this so corruption fails fast instead of propagating.
void ValidateDatabaseOrThrow(const Database& db);

}  // namespace check
}  // namespace fdb

#endif  // FDB_CHECK_CHECK_H_
