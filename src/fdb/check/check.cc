#include "fdb/check/check.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/engine/database.h"
#include "fdb/obs/metrics.h"
#include "fdb/relational/value_dict.h"
#include "fdb/serve/admission.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"

namespace fdb {
namespace check {

namespace {

obs::Counter& RunsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "check.runs", "runs", "deep invariant validation passes");
  return c;
}

obs::Counter& IssuesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "check.issues", "issues", "invariant violations found by the checker");
  return c;
}

obs::Counter& NodesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "check.nodes_visited", "nodes", "fact nodes walked by the checker");
  return c;
}

}  // namespace

void Report::Add(const std::string& check, const std::string& detail) {
  issues.push_back(Issue{check, detail});
}

std::string Report::ToString() const {
  std::string out;
  if (ok()) {
    out = "check: OK (" + std::to_string(views_checked) + " views, " +
          std::to_string(nodes_visited) + " nodes, " +
          std::to_string(files_checked) + " files)\n";
    return out;
  }
  out = "check: " + std::to_string(issues.size()) + " issue(s)\n";
  for (const Issue& i : issues) {
    out += "  [" + i.check + "] " + i.detail + "\n";
  }
  return out;
}

bool Enabled() {
  const char* env = std::getenv("FDB_CHECK");
  if (env != nullptr && env[0] != '\0') {
    return std::strcmp(env, "0") != 0;
  }
#ifdef FDB_CHECK
  return true;
#else
  return false;
#endif
}

// --- views -----------------------------------------------------------------

void CheckView(const std::string& name, const Factorisation& f, Report* out) {
  ++out->views_checked;
  const FactArena* arena = f.arena().get();

  // Walk the node graph first: ownership, null children, cycles. The
  // cycle check must precede Factorisation::Validate — a cyclic graph
  // would not terminate under its recursive walk.
  bool cyclic = false;
  std::unordered_set<FactPtr> done;     // fully explored
  std::unordered_set<FactPtr> on_path;  // ancestors of the current node
  struct Frame {
    FactPtr node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (FactPtr root : f.roots()) {
    if (root == nullptr) {
      out->Add("null-child", "view '" + name + "': null root pointer");
      continue;
    }
    if (done.count(root) != 0) continue;
    if (arena != nullptr && !arena->ChainOwnsNode(root)) {
      out->Add("arena-ownership",
               "view '" + name + "': root not pinned by the arena chain");
      continue;
    }
    stack.push_back(Frame{root});
    on_path.insert(root);
    ++out->nodes_visited;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.next_child >= fr.node->children.size()) {
        on_path.erase(fr.node);
        done.insert(fr.node);
        stack.pop_back();
        continue;
      }
      FactPtr child = fr.node->children[fr.next_child++];
      if (child == nullptr) {
        out->Add("null-child", "view '" + name + "': null child pointer");
        continue;
      }
      if (on_path.count(child) != 0) {
        out->Add("node-cycle",
                 "view '" + name + "': node graph reaches an ancestor");
        cyclic = true;
        continue;  // do not descend into the cycle
      }
      if (done.count(child) != 0) continue;
      if (arena != nullptr && !arena->ChainOwnsNode(child)) {
        out->Add("arena-ownership",
                 "view '" + name +
                     "': reachable node not pinned by the arena chain");
        continue;  // foreign memory; do not dereference further
      }
      stack.push_back(Frame{child});
      on_path.insert(child);
      ++out->nodes_visited;
    }
  }

  if (!cyclic) {
    std::string why;
    if (!f.Validate(&why)) {
      out->Add("view-structure", "view '" + name + "': " + why);
    }
  }
}

// --- dictionary ------------------------------------------------------------

void CheckDictionary(const ValueDict& dict, Report* out) {
  // Freeze interning so the rank permutation cannot shift mid-walk.
  auto frozen = dict.FreezeRanks();
  size_t n = dict.num_strings();
  std::vector<uint32_t> by_rank(n, UINT32_MAX);
  for (uint32_t code = 0; code < n; ++code) {
    uint32_t r = dict.rank(code);
    if (r >= n) {
      out->Add("dict-rank-range",
               "code " + std::to_string(code) + " has rank " +
                   std::to_string(r) + " >= " + std::to_string(n));
      continue;
    }
    if (by_rank[r] != UINT32_MAX) {
      out->Add("dict-rank-duplicate",
               "codes " + std::to_string(by_rank[r]) + " and " +
                   std::to_string(code) + " share rank " + std::to_string(r));
      continue;
    }
    by_rank[r] = code;
  }
  for (size_t r = 1; r < n; ++r) {
    if (by_rank[r - 1] == UINT32_MAX || by_rank[r] == UINT32_MAX) continue;
    if (!(dict.str(by_rank[r - 1]) < dict.str(by_rank[r]))) {
      out->Add("dict-rank-order",
               "ranks " + std::to_string(r - 1) + " and " + std::to_string(r) +
                   " are not in string order");
    }
  }
}

// --- admission -------------------------------------------------------------

void CheckAdmission(const serve::AdmissionController& ac, Report* out) {
  const serve::AdmissionConfig& cfg = ac.config();
  int active = ac.active();
  int queued = ac.queued();
  if (active < 0 || active > cfg.max_concurrent) {
    out->Add("admission-counters",
             "active " + std::to_string(active) + " outside [0, " +
                 std::to_string(cfg.max_concurrent) +
                 "] (lost or double Release)");
  }
  if (queued < 0 || queued > cfg.max_queue) {
    out->Add("admission-counters",
             "queued " + std::to_string(queued) + " outside [0, " +
                 std::to_string(cfg.max_queue) + "]");
  }
}

// --- checkpoint retention state --------------------------------------------

void CheckPersistState(const Database& db, const storage::PersistState& ps,
                       Report* out) {
  if (ps.epoch == 0) out->Add("persist-epoch", "base epoch is 0");
  if (ps.next_seq < 1) out->Add("persist-seq", "next delta sequence is 0");
  if (ps.base_strings > ps.string_watermark) {
    out->Add("persist-watermark", "base_strings exceeds string_watermark");
  }
  if (ps.string_watermark > db.dict().num_strings()) {
    out->Add("persist-watermark",
             "string watermark exceeds the live dictionary");
  }
  if (ps.bigint_watermark > db.dict().num_big_ints()) {
    out->Add("persist-watermark",
             "big-int watermark exceeds the live pool");
  }
  if (ps.attr_watermark > static_cast<uint64_t>(db.registry().size())) {
    out->Add("persist-watermark",
             "attribute watermark exceeds the live registry");
  }
  if (ps.base_rank.size() != ps.base_strings) {
    out->Add("persist-rank-table",
             "base rank table covers " + std::to_string(ps.base_rank.size()) +
                 " codes, base_strings is " + std::to_string(ps.base_strings));
  }
  for (const auto& [name, vb] : ps.views) {
    if (vb.pinned == nullptr) {
      out->Add("persist-view-pin", "view '" + name + "' retains no version");
      continue;
    }
    if (vb.index.size() != vb.num_nodes) {
      out->Add("persist-view-index",
               "view '" + name + "': index holds " +
                   std::to_string(vb.index.size()) + " nodes, " +
                   std::to_string(vb.num_nodes) + " ids assigned");
    }
  }
}

// --- on-disk chain ---------------------------------------------------------

namespace {

struct FileEnvelope {
  storage::FileHeader header;
  std::vector<storage::SectionEntry> entries;
  std::string bytes;
};

/// Reads and validates one chain file's envelope; section CRCs are
/// verified for version >= 3. Returns nullopt (with issues) on damage.
std::optional<FileEnvelope> ReadFileEnvelope(const std::string& path,
                                             Report* out) {
  using namespace storage;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->Add("chain-envelope", path + ": cannot open");
    return std::nullopt;
  }
  FileEnvelope env;
  env.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  ++out->files_checked;
  if (env.bytes.size() < sizeof(FileHeader)) {
    out->Add("chain-envelope", path + ": shorter than its header");
    return std::nullopt;
  }
  std::memcpy(&env.header, env.bytes.data(), sizeof(FileHeader));
  const FileHeader& h = env.header;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
      h.endian != kEndianProbe || h.version < kMinVersion ||
      h.version > kVersion) {
    out->Add("chain-envelope", path + ": bad magic/version/endianness");
    return std::nullopt;
  }
  if (h.file_size != env.bytes.size()) {
    out->Add("chain-envelope", path + ": header size disagrees with file");
    return std::nullopt;
  }
  if (h.section_count > 64 ||
      sizeof(FileHeader) + h.section_count * sizeof(SectionEntry) >
          env.bytes.size()) {
    out->Add("chain-envelope", path + ": implausible section table");
    return std::nullopt;
  }
  for (uint64_t s = 0; s < h.section_count; ++s) {
    SectionEntry e;
    std::memcpy(&e, env.bytes.data() + sizeof(FileHeader) +
                        s * sizeof(SectionEntry),
                sizeof(e));
    if (e.offset > env.bytes.size() ||
        e.size > env.bytes.size() - e.offset) {
      out->Add("chain-envelope",
               path + ": section " + std::to_string(e.kind) + " out of range");
      return std::nullopt;
    }
    if (h.version >= 3 &&
        Crc32(env.bytes.data() + e.offset, e.size) != e.crc32) {
      out->Add("section-crc", path + ": section " + std::to_string(e.kind) +
                                  " payload crc mismatch");
    }
    env.entries.push_back(e);
  }
  return env;
}

const storage::SectionEntry* FindSection(const FileEnvelope& env,
                                         uint32_t kind) {
  for (const storage::SectionEntry& e : env.entries) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

uint64_t ReadU64(const FileEnvelope& env, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, env.bytes.data() + off, sizeof(v));
  return v;
}

}  // namespace

void CheckChainFiles(const std::string& path, Report* out) {
  using namespace storage;
  std::optional<FileEnvelope> base = ReadFileEnvelope(path, out);
  if (!base.has_value()) return;

  uint64_t base_epoch = 0;
  if (const SectionEntry* meta = FindSection(*base, kSectionMeta);
      meta != nullptr && meta->size >= sizeof(uint64_t)) {
    base_epoch = ReadU64(*base, meta->offset);
  }

  uint64_t deltas = 0;
  for (uint64_t seq = 1;; ++seq) {
    std::string dp = DeltaPath(path, seq);
    std::ifstream probe(dp, std::ios::binary);
    if (!probe) break;
    probe.close();
    std::optional<FileEnvelope> delta = ReadFileEnvelope(dp, out);
    if (!delta.has_value()) break;
    const SectionEntry* man = FindSection(*delta, kSectionDeltaManifest);
    if (man == nullptr || man->size < 2 * sizeof(uint64_t)) {
      out->Add("chain-envelope", dp + ": missing delta manifest");
      break;
    }
    uint64_t epoch = ReadU64(*delta, man->offset);
    uint64_t mseq = ReadU64(*delta, man->offset + sizeof(uint64_t));
    if (epoch != base_epoch) {
      out->Add("delta-chain-stamp",
               dp + ": stamped for epoch " + std::to_string(epoch) +
                   ", base is " + std::to_string(base_epoch) +
                   " (stale leftover of a folded chain)");
    }
    if (mseq != seq) {
      out->Add("delta-chain-seq", dp + ": manifest sequence " +
                                      std::to_string(mseq) + ", expected " +
                                      std::to_string(seq));
    }
    ++deltas;
  }

  // The WAL, when present, must be stamped for this exact chain state;
  // any other stamp means Open will silently discard it.
  std::ifstream wal(WalPath(path), std::ios::binary);
  if (wal) {
    WalHeader wh;
    if (wal.read(reinterpret_cast<char*>(&wh), sizeof(wh)) &&
        std::memcmp(wh.magic, kWalMagic, sizeof(kWalMagic)) == 0) {
      if (wh.epoch != base_epoch) {
        out->Add("wal-chain-stamp",
                 WalPath(path) + ": log epoch " + std::to_string(wh.epoch) +
                     " does not match base epoch " +
                     std::to_string(base_epoch));
      } else if (wh.chain_pos != deltas) {
        out->Add("wal-chain-stamp",
                 WalPath(path) + ": log chain position " +
                     std::to_string(wh.chain_pos) + ", chain has " +
                     std::to_string(deltas) + " deltas");
      }
    }
  }
}

// --- whole database --------------------------------------------------------

Report ValidateDatabase(const Database& db) {
  Report report;
  RunsCounter().Inc();
  for (const std::string& name : db.ViewNames()) {
    std::shared_ptr<const Factorisation> f = db.ViewSnapshot(name);
    if (f == nullptr) continue;
    CheckView(name, *f, &report);
  }
  CheckDictionary(db.dict(), &report);
  if (std::optional<storage::PersistState> ps = db.PersistSnapshot();
      ps.has_value()) {
    CheckPersistState(db, *ps, &report);
    CheckChainFiles(ps->path, &report);
  }
  NodesCounter().Inc(report.nodes_visited);
  if (!report.ok()) IssuesCounter().Inc(report.issues.size());
  return report;
}

void ValidateDatabaseOrThrow(const Database& db) {
  Report report = ValidateDatabase(db);
  if (!report.ok()) {
    throw std::runtime_error("FDB_CHECK failed:\n" + report.ToString());
  }
}

}  // namespace check
}  // namespace fdb
