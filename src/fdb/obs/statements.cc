#include "fdb/base/thread_annotations.h"
#include "fdb/obs/statements.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "fdb/obs/log.h"

namespace fdb {
namespace obs {

namespace {

constexpr int kShards = 8;  // power of two

// Registry-side instruments for the store itself. Lazily fetched so the
// registry exists before first use; references are immortal.
Counter& RecordedCounter() {
  static Counter& c = Registry::Instance().GetCounter(
      "statements.recorded", "ops", "statement completions aggregated");
  return c;
}
Counter& EvictedCounter() {
  static Counter& c = Registry::Instance().GetCounter(
      "statements.evicted", "ops",
      "statement entries evicted by the LRU bound");
  return c;
}
Gauge& EntriesGauge() {
  static Gauge& g = Registry::Instance().GetGauge(
      "statements.entries", "", "distinct statement fingerprints live");
  return g;
}

// Global recency tick: one relaxed fetch_add per recorded completion.
// Cheap, monotone, and close enough to true LRU for an eviction policy.
std::atomic<uint64_t> g_tick{1};

struct Entry {
  std::string text;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t calls_fdb = 0;
  uint64_t calls_rdb = 0;
  uint64_t rows = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = std::numeric_limits<uint64_t>::max();
  uint64_t max_ns = 0;
  uint64_t buckets[detail::kHistBuckets] = {};
  uint64_t footprint_samples = 0;
  uint64_t last_singletons = 0;
  uint64_t last_flat_values = 0;
  double last_compression = 0.0;
  uint64_t last_used = 0;
};

}  // namespace

struct StatementStore::Impl {
  struct alignas(64) Shard {
    mutable base::Mutex mu;
    std::unordered_map<uint64_t, Entry> entries GUARDED_BY(mu);
  };
  Shard shards[kShards];
  // Per-shard slice of the global entry budget.
  static constexpr size_t kShardCap = StatementStore::kMaxEntries / kShards;
};

StatementStore::StatementStore() : impl_(new Impl) {}

StatementStore& StatementStore::Instance() {
  static StatementStore* s = new StatementStore;  // immortal
  return *s;
}

void StatementStore::Record(uint64_t fingerprint, const std::string& text,
                            bool via_fdb, uint64_t latency_ns, uint64_t rows,
                            bool error, const StatementFootprint& fp) {
  if (!MetricsEnabled() || fingerprint == 0) return;
  Impl::Shard& shard = impl_->shards[fingerprint & (kShards - 1)];
  uint64_t tick = g_tick.fetch_add(1, std::memory_order_relaxed);
  bool inserted = false;
  bool evicted = false;
  {
    base::MutexLock lock(&shard.mu);
    auto it = shard.entries.find(fingerprint);
    if (it == shard.entries.end()) {
      if (shard.entries.size() >= Impl::kShardCap) {
        // Full shard: evict the least-recently-used entry (linear scan —
        // only runs when a *new* fingerprint arrives at a full shard, so
        // steady-state workloads never pay it).
        auto victim = shard.entries.begin();
        for (auto jt = shard.entries.begin(); jt != shard.entries.end();
             ++jt) {
          if (jt->second.last_used < victim->second.last_used) victim = jt;
        }
        shard.entries.erase(victim);
        evicted = true;
      }
      it = shard.entries.emplace(fingerprint, Entry{}).first;
      it->second.text = text;
      inserted = true;
    }
    Entry& e = it->second;
    e.calls++;
    if (error) e.errors++;
    if (via_fdb) {
      e.calls_fdb++;
    } else {
      e.calls_rdb++;
    }
    e.rows += rows;
    e.total_ns += latency_ns;
    e.min_ns = std::min(e.min_ns, latency_ns);
    e.max_ns = std::max(e.max_ns, latency_ns);
    e.buckets[Histogram::BucketIndex(latency_ns)]++;
    if (fp.valid) {
      e.footprint_samples++;
      e.last_singletons = fp.singletons;
      e.last_flat_values = fp.flat_values;
      e.last_compression = fp.compression;
    }
    e.last_used = tick;
  }
  RecordedCounter().Inc();
  if (evicted) EvictedCounter().Inc();
  if (inserted && !evicted) EntriesGauge().Add(1);
}

std::vector<StatementRow> StatementStore::Snapshot() const {
  std::vector<StatementRow> rows;
  for (int s = 0; s < kShards; ++s) {
    const Impl::Shard& shard = impl_->shards[s];
    base::MutexLock lock(&shard.mu);
    for (const auto& [fp, e] : shard.entries) {
      StatementRow row;
      row.fingerprint = fp;
      row.text = e.text;
      row.calls = e.calls;
      row.errors = e.errors;
      row.calls_fdb = e.calls_fdb;
      row.calls_rdb = e.calls_rdb;
      row.rows = e.rows;
      row.total_ns = e.total_ns;
      row.min_ns = e.min_ns == std::numeric_limits<uint64_t>::max()
                       ? 0
                       : e.min_ns;
      row.max_ns = e.max_ns;
      row.latency.count = e.calls;
      row.latency.sum = e.total_ns;
      for (int i = 0; i < detail::kHistBuckets; ++i) {
        row.latency.buckets[i] = e.buckets[i];
      }
      row.footprint_samples = e.footprint_samples;
      row.last_singletons = e.last_singletons;
      row.last_flat_values = e.last_flat_values;
      row.last_compression = e.last_compression;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const StatementRow& a, const StatementRow& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.fingerprint < b.fingerprint;
            });
  return rows;
}

void StatementStore::Clear() {
  for (int s = 0; s < kShards; ++s) {
    base::MutexLock lock(&impl_->shards[s].mu);
    impl_->shards[s].entries.clear();
  }
  EntriesGauge().Reset();
}

size_t StatementStore::size() const {
  size_t n = 0;
  for (int s = 0; s < kShards; ++s) {
    base::MutexLock lock(&impl_->shards[s].mu);
    n += impl_->shards[s].entries.size();
  }
  return n;
}

void ReportQueryCompletion(uint64_t fingerprint, const std::string& text,
                           bool via_fdb, uint64_t latency_ns, uint64_t rows,
                           bool error, const StatementFootprint& fp) {
  StatementStore::Instance().Record(fingerprint, text, via_fdb, latency_ns,
                                    rows, error, fp);
  if (LogEnabled()) {
    EventLog& log = EventLog::Instance();
    if (static_cast<int64_t>(latency_ns) >= log.slow_query_ns()) {
      log.Emit(EventType::kSlowQuery,
               {F("query", text), F("engine", via_fdb ? "fdb" : "rdb"),
                F("latency_ms", static_cast<double>(latency_ns) / 1e6),
                F("rows", rows), F("error", error)});
    }
  }
}

}  // namespace obs
}  // namespace fdb
