#ifndef FDB_OBS_METRICS_H_
#define FDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fdb {
namespace obs {

/// A low-overhead process-wide metrics registry.
///
/// Three metric kinds, all safe to hammer from any number of threads:
///
///   Counter    monotonic; per-thread-sharded so a hot-path increment is
///              one relaxed atomic fetch_add with no cache-line ping-pong
///              between workers. Merged (summed) on read.
///   Gauge      a single signed value with Set / Add / UpdateMax — the
///              last shape is a high-water mark (queue depths, chain
///              lengths).
///   Histogram  fixed power-of-two buckets over uint64 samples
///              (nanoseconds, bytes, ops — the unit is declared at
///              registration). Sharded like counters; reads merge the
///              shards into a HistogramSnapshot that interpolates
///              p50/p95/p99 inside the hit bucket.
///
/// The whole surface is gated on one process-wide switch: when metrics
/// are disabled (the default unless FDB_METRICS=1 is set in the
/// environment), every record path is a single relaxed atomic load and a
/// predicted-not-taken branch — no stores, no allocation — so the
/// instrumentation can stay compiled into release binaries. Metric
/// objects live forever once registered (the registry is immortal), so
/// call sites cache `static Counter& c = Registry::Instance().GetCounter(...)`
/// and never pay the name lookup again.
///
/// Everything here is TSan-clean by construction: shards are atomics,
/// registration and snapshotting take an internal mutex, and there is no
/// unsynchronised mutable state anywhere.

namespace detail {
// Constant-initialised so metric sites are safe during static init;
// Registry's constructor applies the FDB_METRICS environment override.
extern std::atomic<bool> g_metrics_enabled;

inline constexpr int kCounterShards = 16;  // power of two
inline constexpr int kHistShards = 8;      // power of two
// Bucket 0 holds {0}; bucket i >= 1 holds [2^(i-1), 2^i - 1].
inline constexpr int kHistBuckets = 65;

/// Dense id of the calling thread (assigned on first use, never reused).
int ThreadSlot();
}  // namespace detail

/// The process-wide metrics switch (one relaxed load — the hot-path gate).
inline bool MetricsEnabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flips the switch at runtime (shell startup, benches, tests). Metrics
/// recorded while enabled stay readable after disabling.
void SetMetricsEnabled(bool on);

/// Monotonic clock in nanoseconds (steady; shared by traces and latency
/// recording so spans and histograms agree).
int64_t NowNs();

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, and every control character below 0x20 (named escapes
/// for \n \t \r \b \f, \u00XX for the rest). View and attribute names
/// are user-controlled strings, so every JSON exporter (metrics, Chrome
/// traces, the event log sink) must go through this.
std::string JsonEscape(const std::string& s);

/// A monotonic counter. Inc is wait-free: one enabled-check load plus one
/// relaxed fetch_add on the caller's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[detail::ThreadSlot() & (detail::kCounterShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Sum over all shards (relaxed: a concurrent read sees some recent
  /// value of every shard — monotone, never torn).
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[detail::kCounterShards];
};

/// A single signed value. Set/Add/UpdateMax are one atomic op each
/// (UpdateMax a CAS loop that almost always exits on the first compare).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!MetricsEnabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger — a high-water mark.
  void UpdateMax(int64_t v) {
    if (!MetricsEnabled()) return;
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A merged, immutable view of a histogram: per-bucket counts plus
/// count/sum, with interpolated percentiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[detail::kHistBuckets] = {};

  /// Value below which fraction `q` in [0, 1] of the samples fall,
  /// linearly interpolated inside the hit bucket (exact for q hitting a
  /// bucket boundary; within one bucket's width otherwise).
  double Percentile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Inclusive lower/upper value bounds of bucket `i`.
  static uint64_t BucketLo(int i);
  static uint64_t BucketHi(int i);
};

/// A fixed-bucket latency/size histogram. Record is two relaxed
/// fetch_adds (bucket + sum) and one for the count, on the caller's shard.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    if (!MetricsEnabled()) return;
    Shard& s = shards_[detail::ThreadSlot() & (detail::kHistShards - 1)];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;
  void Reset();

  static int BucketIndex(uint64_t v);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[detail::kHistBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[detail::kHistShards];
};

/// RAII latency recorder: records the scope's wall time (ns) into a
/// histogram on destruction. Free when metrics are disabled (no clock
/// reads).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h)
      : h_(&h), t0_(MetricsEnabled() ? NowNs() : -1) {}
  ~ScopedLatency() {
    if (t0_ >= 0) h_->Record(static_cast<uint64_t>(NowNs() - t0_));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  int64_t t0_;
};

/// One row of a registry snapshot (for exporters).
struct MetricRow {
  enum class Type { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  std::string name;
  std::string unit;
  std::string help;
  int64_t value = 0;       ///< counter / gauge reading
  HistogramSnapshot hist;  ///< histogram reading
};

/// The process-wide registry: name → metric, created on first use and
/// never destroyed. Names are dotted lowercase ("taskpool.steals");
/// the unit and help strings of the first registration win.
class Registry {
 public:
  static Registry& Instance();

  Counter& GetCounter(const std::string& name, const std::string& unit = "",
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& unit = "",
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& unit = "",
                          const std::string& help = "");

  /// All metrics, sorted by name (one consistent registration set; the
  /// readings themselves are per-metric snapshots).
  std::vector<MetricRow> Snapshot() const;

  /// Human-readable dump (the shell's \metrics).
  std::string RenderText() const;
  /// Machine-readable dump (the shell's \metrics-json).
  std::string RenderJson() const;

  /// Zeroes every registered metric (benches, tests).
  void ResetAll();

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // immortal
};

}  // namespace obs
}  // namespace fdb

#endif  // FDB_OBS_METRICS_H_
