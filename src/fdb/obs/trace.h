#ifndef FDB_OBS_TRACE_H_
#define FDB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/base/thread_annotations.h"

namespace fdb {
namespace obs {

/// Span-based query tracing.
///
/// A Trace records one span per execution phase (parse → bind → optimise
/// → build → op pipeline → enumerate/aggregate), each with wall time and
/// a bag of key/value notes (cardinalities, factorisation stats). The
/// engines thread a Trace* through their options; a null pointer means
/// tracing is off and every call on the RAII SpanScope below is a no-op
/// that neither allocates nor reads the clock — the fast path stays fast.
///
/// Nesting is tracked with an open-span stack on the coordinating thread
/// (Begin/End); work that happened on other threads or in the past is
/// attached retroactively with AddComplete (thread-safe, parentless).
/// Exporters: ExplainReport renders the indented EXPLAIN ANALYZE tree,
/// ToChromeJson writes a chrome://tracing-compatible trace-event file.

/// One key/value annotation on a span. Numeric values keep their own
/// representation so exporters can emit unquoted JSON numbers.
struct TraceNote {
  std::string key;
  std::string text;       ///< used when !is_number
  double number = 0.0;    ///< used when is_number
  bool is_number = false;
  bool is_integer = false;  ///< render without decimals
};

/// One timed phase. dur_ns is -1 while the span is still open.
struct TraceSpan {
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = -1;
  int parent = -1;  ///< index into the span list, -1 for roots
  int depth = 0;
  uint64_t tid = 0;
  std::vector<TraceNote> notes;
};

class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span nested under the innermost open span; returns its id.
  int Begin(const std::string& name);
  /// Closes span `id` (and anything left open inside it).
  void End(int id);

  void NoteStr(int id, const std::string& key, const std::string& value);
  void NoteInt(int id, const std::string& key, int64_t value);
  void NoteDouble(int id, const std::string& key, double value);

  /// Records an already-finished span retroactively (parented under the
  /// innermost open span, if any). Thread-safe; used for phases measured
  /// before the trace existed (parse) and per-op timings reconstructed
  /// from operator stats.
  int AddComplete(const std::string& name, int64_t start_ns, int64_t dur_ns);

  /// Copy of all spans, in creation order (parents precede children).
  std::vector<TraceSpan> Spans() const;

  /// Total wall time covered by root spans, in seconds.
  double TotalSeconds() const;

  /// chrome://tracing trace-event JSON ({"traceEvents":[...]}).
  std::string ToChromeJson() const;

 private:
  mutable base::Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  /// Stack of open span ids (coordinator thread).
  std::vector<int> open_ GUARDED_BY(mu_);
};

/// RAII span that is a complete no-op (no clock read, no allocation) when
/// the trace pointer is null. `name` must outlive the scope — pass string
/// literals.
class SpanScope {
 public:
  SpanScope(Trace* t, const char* name)
      : t_(t), id_(t != nullptr ? t->Begin(name) : -1) {}
  ~SpanScope() {
    if (t_ != nullptr) t_->End(id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Span id for attaching notes, -1 when tracing is off.
  int id() const { return id_; }
  Trace* trace() const { return t_; }

  void NoteStr(const std::string& key, const std::string& value) {
    if (t_ != nullptr) t_->NoteStr(id_, key, value);
  }
  void NoteInt(const std::string& key, int64_t value) {
    if (t_ != nullptr) t_->NoteInt(id_, key, value);
  }
  void NoteDouble(const std::string& key, double value) {
    if (t_ != nullptr) t_->NoteDouble(id_, key, value);
  }

 private:
  Trace* t_;
  int id_;
};

/// Renders the EXPLAIN ANALYZE report: a depth-indented phase tree with
/// per-span wall time and notes.
std::string ExplainReport(const Trace& trace);

}  // namespace obs
}  // namespace fdb

#endif  // FDB_OBS_TRACE_H_
