#ifndef FDB_OBS_STATEMENTS_H_
#define FDB_OBS_STATEMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace obs {

/// Per-statement aggregate statistics, pg_stat_statements style.
///
/// The binder fingerprints every query by hashing its *normalized bound
/// form*: attribute ids and relation names are canonicalised, constants
/// are stripped (`price < 10` and `price < 99` share a fingerprint), and
/// EXPLAIN ANALYZE is transparent (the analyzed run aggregates under the
/// plain statement). Both engines report completions here, tagged with
/// which engine ran the query, so `fdb.statements` answers "which shapes
/// are hot, how slow, and on which path" across the whole process.
///
/// Recording is gated on `MetricsEnabled()` (same switch, same overhead
/// discipline as the registry: one relaxed load when disabled, no
/// allocation). The store is bounded: at most `kMaxEntries` distinct
/// fingerprints, sharded 8 ways; a full shard evicts its least-recently
/// used entry (tracked by a global relaxed tick) and bumps the
/// `statements.evicted` counter, so sustained distinct-query load cannot
/// grow memory without bound.

/// Factorised footprint sample attached to a completion (captured only
/// on traced runs, where `ComputeFootprint` already walked the DAG — the
/// untraced hot path never pays for it).
struct StatementFootprint {
  uint64_t singletons = 0;
  uint64_t flat_values = 0;
  double compression = 0.0;
  bool valid = false;
};

/// A merged, immutable view of one statement's aggregates.
struct StatementRow {
  uint64_t fingerprint = 0;
  std::string text;  ///< normalized statement text ("?" for constants)
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t calls_fdb = 0;  ///< completions via the factorised engine
  uint64_t calls_rdb = 0;  ///< completions via the flat engine
  uint64_t rows = 0;       ///< total result rows returned
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  HistogramSnapshot latency;  ///< log2-bucket latency histogram (ns)
  /// Footprint: how many traced completions sampled it, and the most
  /// recent sample's factorised-vs-flat numbers.
  uint64_t footprint_samples = 0;
  uint64_t last_singletons = 0;
  uint64_t last_flat_values = 0;
  double last_compression = 0.0;
};

/// The process-wide statement store, created on first use and immortal.
class StatementStore {
 public:
  static constexpr size_t kMaxEntries = 5000;

  static StatementStore& Instance();

  /// Records one completion for `fingerprint` (no-op when metrics are
  /// disabled or fingerprint is 0). `text` is stored on first sight.
  void Record(uint64_t fingerprint, const std::string& text, bool via_fdb,
              uint64_t latency_ns, uint64_t rows, bool error,
              const StatementFootprint& fp = {});

  /// All entries, sorted by total latency descending.
  std::vector<StatementRow> Snapshot() const;

  /// Drops every entry (tests, shell \metrics-reset).
  void Clear();

  size_t size() const;

 private:
  StatementStore();
  struct Impl;
  Impl* impl_;  // immortal
};

/// The completion hook both engines call: records into the statement
/// store and, when the event log is enabled and `latency_ns` exceeds the
/// slow-query threshold, emits a kSlowQuery event.
void ReportQueryCompletion(uint64_t fingerprint, const std::string& text,
                           bool via_fdb, uint64_t latency_ns, uint64_t rows,
                           bool error, const StatementFootprint& fp = {});

}  // namespace obs
}  // namespace fdb

#endif  // FDB_OBS_STATEMENTS_H_
