#ifndef FDB_OBS_LOG_H_
#define FDB_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fdb {
namespace obs {

/// A structured event log: a bounded in-memory ring of typed events plus
/// an optional JSONL file sink. Where the metrics registry answers "how
/// much / how fast", the event log answers "what happened, and when":
/// which recovery replayed how many WAL groups, which checkpoint folded,
/// which query blew past the slow threshold.
///
/// Emission follows the registry's overhead discipline: one process-wide
/// relaxed-atomic gate (`LogEnabled()`), off by default, so call sites
/// compiled into release binaries cost a predicted-not-taken branch and
/// nothing else — no clock reads, no field formatting, no allocation.
/// Call sites that must assemble fields should themselves check
/// `LogEnabled()` first so the disabled path stays allocation-free.
///
/// Environment:
///   FDB_LOG=1            enable the in-memory ring only
///   FDB_LOG=<path>       enable and also append JSONL events to <path>
///   FDB_SLOW_QUERY_MS=N  slow-query threshold (default 100 ms)
///   FDB_WAL_STALL_MS=N   WAL commit-group stall threshold (default 50 ms)

namespace detail {
// Constant-initialised so emission sites are safe during static init;
// EventLog's constructor applies the FDB_LOG environment override.
extern std::atomic<bool> g_log_enabled;
}  // namespace detail

/// The process-wide event-log switch (one relaxed load — the hot gate).
inline bool LogEnabled() {
  return detail::g_log_enabled.load(std::memory_order_relaxed);
}

/// Flips the switch at runtime (shell startup, tests). Events captured
/// while enabled stay readable after disabling.
void SetLogEnabled(bool on);

enum class EventType : uint8_t {
  kSlowQuery = 0,   ///< a query exceeded the slow-query threshold
  kRecovery,        ///< Database::Open replayed deltas / WAL groups
  kSave,            ///< Database::Save wrote a full base snapshot
  kCheckpoint,      ///< Database::Checkpoint (kind: base fold / delta / noop)
  kWalStall,        ///< a WAL commit-group append exceeded the threshold
  kPoolSaturation,  ///< TaskPool queue depth crossed the saturation mark
  kSessionOpen,     ///< a serve session was accepted
  kSessionClose,    ///< a serve session ended (carries per-session totals)
  kQueryKilled,     ///< a served query hit its time/memory limit
  kAdmissionReject, ///< admission queue full: statement rejected with retry
  kServerDrain,     ///< the server began graceful shutdown
};

/// Stable lowercase name ("slow_query", "recovery", ...).
const char* EventTypeName(EventType t);

/// One key + either a string or a numeric value. Built with the F()
/// helpers so emission sites read as F("deltas", 3), F("path", p).
struct EventField {
  std::string key;
  std::string str;
  double number = 0.0;
  bool is_number = false;
  bool is_integer = false;
};

inline EventField F(std::string key, std::string v) {
  EventField f;
  f.key = std::move(key);
  f.str = std::move(v);
  return f;
}
inline EventField F(std::string key, const char* v) {
  return F(std::move(key), std::string(v));
}
inline EventField F(std::string key, int64_t v) {
  EventField f;
  f.key = std::move(key);
  f.number = static_cast<double>(v);
  f.is_number = true;
  f.is_integer = true;
  return f;
}
inline EventField F(std::string key, uint64_t v) {
  return F(std::move(key), static_cast<int64_t>(v));
}
inline EventField F(std::string key, int v) {
  return F(std::move(key), static_cast<int64_t>(v));
}
inline EventField F(std::string key, bool v) {
  return F(std::move(key), static_cast<int64_t>(v ? 1 : 0));
}
inline EventField F(std::string key, double v) {
  EventField f;
  f.key = std::move(key);
  f.number = v;
  f.is_number = true;
  return f;
}

/// One captured event. `seq` is dense and process-wide (so dropped
/// events are detectable); `wall_us` is wall-clock microseconds since
/// the Unix epoch (events correlate with external logs, unlike the
/// steady-clock trace timestamps).
struct Event {
  uint64_t seq = 0;
  int64_t wall_us = 0;
  EventType type = EventType::kSlowQuery;
  std::vector<EventField> fields;

  /// "key=value key2=value2" rendering of the fields (shell \log).
  std::string DetailString() const;
  /// One JSON object (the JSONL sink's line format).
  std::string ToJson() const;
};

/// The process-wide event log: a mutex-guarded ring of the most recent
/// `kRingCapacity` events, created on first use and never destroyed.
class EventLog {
 public:
  static constexpr size_t kRingCapacity = 1024;

  static EventLog& Instance();

  /// Appends an event (no-op when the log is disabled). Thread-safe.
  void Emit(EventType type, std::vector<EventField> fields);

  /// The ring's current contents, oldest first. Thread-safe.
  std::vector<Event> Snapshot() const;

  /// Empties the ring (tests, shell). Does not reset `total_emitted`.
  void Clear();

  /// Events ever emitted / events pushed out of the ring.
  uint64_t total_emitted() const;
  uint64_t dropped() const;

  /// Slow-query / WAL-stall thresholds in nanoseconds (relaxed atomics;
  /// settable at runtime by tests and the shell).
  int64_t slow_query_ns() const;
  void set_slow_query_ns(int64_t ns);
  int64_t wal_stall_ns() const;
  void set_wal_stall_ns(int64_t ns);

  /// Routes the JSONL sink to `path` (empty string closes it).
  void SetSinkPath(const std::string& path);

 private:
  EventLog();
  struct Impl;
  Impl* impl_;  // immortal
};

}  // namespace obs
}  // namespace fdb

#endif  // FDB_OBS_LOG_H_
