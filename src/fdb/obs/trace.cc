#include "fdb/obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace obs {

namespace {

uint64_t CurrentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
}

std::string NumberToString(const TraceNote& n) {
  if (n.is_integer) {
    return std::to_string(static_cast<int64_t>(n.number));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", n.number);
  return buf;
}

std::string FormatMs(int64_t dur_ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(dur_ns) / 1e6);
  return buf;
}

}  // namespace

int Trace::Begin(const std::string& name) {
  base::MutexLock lock(&mu_);
  TraceSpan s;
  s.name = name;
  s.start_ns = NowNs();
  s.tid = CurrentTid();
  if (!open_.empty()) {
    s.parent = open_.back();
    s.depth = spans_[open_.back()].depth + 1;
  }
  int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(s));
  open_.push_back(id);
  return id;
}

void Trace::End(int id) {
  base::MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  int64_t now = NowNs();
  // Close anything left open inside `id` too, so an exception unwinding
  // through nested scopes still yields well-formed spans.
  while (!open_.empty()) {
    int top = open_.back();
    open_.pop_back();
    if (spans_[top].dur_ns < 0) spans_[top].dur_ns = now - spans_[top].start_ns;
    if (top == id) break;
  }
}

void Trace::NoteStr(int id, const std::string& key, const std::string& value) {
  base::MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  TraceNote n;
  n.key = key;
  n.text = value;
  spans_[id].notes.push_back(std::move(n));
}

void Trace::NoteInt(int id, const std::string& key, int64_t value) {
  base::MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  TraceNote n;
  n.key = key;
  n.number = static_cast<double>(value);
  n.is_number = true;
  n.is_integer = true;
  spans_[id].notes.push_back(std::move(n));
}

void Trace::NoteDouble(int id, const std::string& key, double value) {
  base::MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  TraceNote n;
  n.key = key;
  n.number = value;
  n.is_number = true;
  spans_[id].notes.push_back(std::move(n));
}

int Trace::AddComplete(const std::string& name, int64_t start_ns,
                       int64_t dur_ns) {
  base::MutexLock lock(&mu_);
  TraceSpan s;
  s.name = name;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  s.tid = CurrentTid();
  if (!open_.empty()) {
    s.parent = open_.back();
    s.depth = spans_[open_.back()].depth + 1;
  }
  int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(s));
  return id;
}

std::vector<TraceSpan> Trace::Spans() const {
  base::MutexLock lock(&mu_);
  return spans_;
}

double Trace::TotalSeconds() const {
  base::MutexLock lock(&mu_);
  double total = 0.0;
  for (const TraceSpan& s : spans_) {
    if (s.parent == -1 && s.dur_ns > 0) {
      total += static_cast<double>(s.dur_ns) / 1e9;
    }
  }
  return total;
}

std::string Trace::ToChromeJson() const {
  std::vector<TraceSpan> spans = Spans();
  // chrome://tracing wants microsecond timestamps; rebase on the earliest
  // span so numbers stay small.
  int64_t base = 0;
  for (const TraceSpan& s : spans) {
    if (base == 0 || s.start_ns < base) base = s.start_ns;
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out << ",";
    first = false;
    int64_t dur = s.dur_ns < 0 ? 0 : s.dur_ns;
    out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"ph\":\"X\",\"ts\":"
        << (s.start_ns - base) / 1000 << "." << (s.start_ns - base) % 1000
        << ",\"dur\":" << dur / 1000 << "." << dur % 1000
        << ",\"pid\":1,\"tid\":" << s.tid;
    if (!s.notes.empty()) {
      out << ",\"args\":{";
      bool afirst = true;
      for (const TraceNote& n : s.notes) {
        if (!afirst) out << ",";
        afirst = false;
        out << "\"" << JsonEscape(n.key) << "\":";
        if (n.is_number) {
          out << NumberToString(n);
        } else {
          out << "\"" << JsonEscape(n.text) << "\"";
        }
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string ExplainReport(const Trace& trace) {
  std::vector<TraceSpan> spans = trace.Spans();
  // Render children under their parents, siblings in start order.
  std::vector<std::vector<int>> children(spans.size() + 1);
  std::vector<int> roots;
  for (int i = 0; i < static_cast<int>(spans.size()); ++i) {
    if (spans[i].parent >= 0) {
      children[spans[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto by_start = [&](int a, int b) {
    return spans[a].start_ns < spans[b].start_ns;
  };
  std::stable_sort(roots.begin(), roots.end(), by_start);
  for (auto& c : children) std::stable_sort(c.begin(), c.end(), by_start);

  std::ostringstream out;
  std::vector<int> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    int i = stack.back();
    stack.pop_back();
    const TraceSpan& s = spans[i];
    for (int d = 0; d < s.depth; ++d) out << "  ";
    out << s.name << ": " << FormatMs(s.dur_ns < 0 ? 0 : s.dur_ns) << " ms";
    for (const TraceNote& n : s.notes) {
      out << "  " << n.key << "=";
      if (n.is_number) {
        out << NumberToString(n);
      } else {
        out << n.text;
      }
    }
    out << "\n";
    for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace fdb
