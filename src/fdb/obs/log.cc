#include "fdb/base/thread_annotations.h"
#include "fdb/obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace obs {

namespace detail {

std::atomic<bool> g_log_enabled{false};

}  // namespace detail

void SetLogEnabled(bool on) {
  // Make sure the singleton exists (and has read FDB_LOG) before anyone
  // relies on the switch, so Emit never races construction.
  EventLog::Instance();
  detail::g_log_enabled.store(on, std::memory_order_relaxed);
}

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kSlowQuery:
      return "slow_query";
    case EventType::kRecovery:
      return "recovery";
    case EventType::kSave:
      return "save";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kWalStall:
      return "wal_stall";
    case EventType::kPoolSaturation:
      return "pool_saturation";
    case EventType::kSessionOpen:
      return "session_open";
    case EventType::kSessionClose:
      return "session_close";
    case EventType::kQueryKilled:
      return "query_killed";
    case EventType::kAdmissionReject:
      return "admission_reject";
    case EventType::kServerDrain:
      return "server_drain";
  }
  return "?";
}

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string NumberToString(const EventField& f) {
  if (f.is_integer) {
    return std::to_string(static_cast<int64_t>(f.number));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", f.number);
  return buf;
}

}  // namespace

std::string Event::DetailString() const {
  std::ostringstream out;
  bool first = true;
  for (const EventField& f : fields) {
    if (!first) out << " ";
    first = false;
    out << f.key << "=";
    if (f.is_number) {
      out << NumberToString(f);
    } else {
      out << f.str;
    }
  }
  return out.str();
}

std::string Event::ToJson() const {
  std::ostringstream out;
  out << "{\"seq\":" << seq << ",\"wall_us\":" << wall_us << ",\"type\":\""
      << EventTypeName(type) << "\"";
  for (const EventField& f : fields) {
    out << ",\"" << JsonEscape(f.key) << "\":";
    if (f.is_number) {
      out << NumberToString(f);
    } else {
      out << "\"" << JsonEscape(f.str) << "\"";
    }
  }
  out << "}";
  return out.str();
}

struct EventLog::Impl {
  mutable base::Mutex mu;
  std::deque<Event> ring GUARDED_BY(mu);
  uint64_t next_seq GUARDED_BY(mu) = 1;
  uint64_t dropped GUARDED_BY(mu) = 0;
  std::string sink_path GUARDED_BY(mu);
  std::FILE* sink GUARDED_BY(mu) = nullptr;

  std::atomic<int64_t> slow_query_ns{100 * 1000 * 1000};  // 100 ms
  std::atomic<int64_t> wal_stall_ns{50 * 1000 * 1000};    // 50 ms
};

EventLog::EventLog() : impl_(new Impl) {
  const char* env = std::getenv("FDB_LOG");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    // FDB_LOG=1 enables the ring; any other value is a JSONL sink path.
    if (std::strcmp(env, "1") != 0) {
      base::MutexLock lock(&impl_->mu);
      impl_->sink_path = env;
      impl_->sink = std::fopen(env, "a");
    }
    detail::g_log_enabled.store(true, std::memory_order_relaxed);
  }
  if (const char* ms = std::getenv("FDB_SLOW_QUERY_MS")) {
    impl_->slow_query_ns.store(std::atoll(ms) * 1000000,
                               std::memory_order_relaxed);
  }
  if (const char* ms = std::getenv("FDB_WAL_STALL_MS")) {
    impl_->wal_stall_ns.store(std::atoll(ms) * 1000000,
                              std::memory_order_relaxed);
  }
}

EventLog& EventLog::Instance() {
  static EventLog* log = new EventLog;  // immortal
  return *log;
}

namespace {
// Touch the singleton during static init so FDB_LOG takes effect without
// any call site having to ask for Instance() first.
const bool g_log_env_applied = (EventLog::Instance(), true);
}  // namespace

void EventLog::Emit(EventType type, std::vector<EventField> fields) {
  if (!LogEnabled()) return;
  Event e;
  e.wall_us = WallMicros();
  e.type = type;
  e.fields = std::move(fields);
  base::MutexLock lock(&impl_->mu);
  e.seq = impl_->next_seq++;
  if (impl_->ring.size() >= kRingCapacity) {
    impl_->ring.pop_front();
    ++impl_->dropped;
  }
  if (impl_->sink != nullptr) {
    std::string line = e.ToJson();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), impl_->sink);
    std::fflush(impl_->sink);
  }
  impl_->ring.push_back(std::move(e));
}

std::vector<Event> EventLog::Snapshot() const {
  base::MutexLock lock(&impl_->mu);
  return std::vector<Event>(impl_->ring.begin(), impl_->ring.end());
}

void EventLog::Clear() {
  base::MutexLock lock(&impl_->mu);
  impl_->ring.clear();
}

uint64_t EventLog::total_emitted() const {
  base::MutexLock lock(&impl_->mu);
  return impl_->next_seq - 1;
}

uint64_t EventLog::dropped() const {
  base::MutexLock lock(&impl_->mu);
  return impl_->dropped;
}

int64_t EventLog::slow_query_ns() const {
  return impl_->slow_query_ns.load(std::memory_order_relaxed);
}

void EventLog::set_slow_query_ns(int64_t ns) {
  impl_->slow_query_ns.store(ns, std::memory_order_relaxed);
}

int64_t EventLog::wal_stall_ns() const {
  return impl_->wal_stall_ns.load(std::memory_order_relaxed);
}

void EventLog::set_wal_stall_ns(int64_t ns) {
  impl_->wal_stall_ns.store(ns, std::memory_order_relaxed);
}

void EventLog::SetSinkPath(const std::string& path) {
  base::MutexLock lock(&impl_->mu);
  if (impl_->sink != nullptr) {
    std::fclose(impl_->sink);
    impl_->sink = nullptr;
  }
  impl_->sink_path = path;
  if (!path.empty()) {
    impl_->sink = std::fopen(path.c_str(), "a");
  }
}

}  // namespace obs
}  // namespace fdb
