#include "fdb/obs/sampler.h"

#include <algorithm>
#include <chrono>

namespace fdb {
namespace obs {

namespace {

Counter& TicksCounter() {
  static Counter& c = Registry::Instance().GetCounter(
      "sampler.ticks", "ops", "metrics-history samples taken");
  return c;
}

}  // namespace

MetricsSampler::MetricsSampler() : MetricsSampler(Options()) {}

MetricsSampler::MetricsSampler(Options opts) : opts_(std::move(opts)) {
  if (opts_.interval_ms < 1) opts_.interval_ms = 1;
  if (opts_.capacity < 2) opts_.capacity = 2;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  base::MutexLock lock(&mu_);
  if (thread_running_) return;
  stop_ = false;
  thread_running_ = true;
  // Assigned under the lock so a racing Stop() always sees a joinable
  // thread; Loop() blocks on the same lock until we return.
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  {
    base::MutexLock lock(&mu_);
    if (!thread_running_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  base::MutexLock lock(&mu_);
  thread_running_ = false;
}

bool MetricsSampler::running() const {
  base::MutexLock lock(&mu_);
  return thread_running_;
}

void MetricsSampler::Loop() {
  mu_.Lock();
  while (!stop_) {
    // Sleep one interval, waking early only for Stop()'s notify.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.interval_ms);
    bool interval_over = false;
    while (!stop_ && !interval_over) {
      interval_over = !cv_.WaitUntil(mu_, deadline);
    }
    if (stop_) break;
    // Snapshot outside the lock: the registry read can contend with hot
    // paths and must not serialise against our readers.
    mu_.Unlock();
    SampleOnce();
    mu_.Lock();
  }
  mu_.Unlock();
}

void MetricsSampler::SampleOnce() {
  std::vector<MetricRow> rows = Registry::Instance().Snapshot();
  int64_t now = NowNs();
  base::MutexLock lock(&mu_);
  uint64_t tick = ++ticks_;
  for (const MetricRow& row : rows) {
    if (!opts_.metrics.empty() &&
        std::find(opts_.metrics.begin(), opts_.metrics.end(), row.name) ==
            opts_.metrics.end()) {
      continue;
    }
    Point p;
    p.ts_ns = now;
    p.tick = tick;
    if (row.type == MetricRow::Type::kHistogram) {
      p.is_hist = true;
      p.value = static_cast<double>(row.hist.sum);
      p.hist_count = row.hist.count;
      p.p50 = row.hist.Percentile(0.50);
      p.p99 = row.hist.Percentile(0.99);
    } else {
      p.value = static_cast<double>(row.value);
    }
    std::deque<Point>& ring = history_[row.name];
    if (ring.size() >= opts_.capacity) ring.pop_front();
    ring.push_back(p);
  }
  TicksCounter().Inc();
}

uint64_t MetricsSampler::ticks() const {
  base::MutexLock lock(&mu_);
  return ticks_;
}

std::map<std::string, std::vector<MetricsSampler::Point>>
MetricsSampler::History() const {
  base::MutexLock lock(&mu_);
  std::map<std::string, std::vector<Point>> out;
  for (const auto& [name, ring] : history_) {
    out.emplace(name, std::vector<Point>(ring.begin(), ring.end()));
  }
  return out;
}

std::vector<MetricsSampler::Window> MetricsSampler::Windows() const {
  base::MutexLock lock(&mu_);
  std::vector<Window> out;
  out.reserve(history_.size());
  for (const auto& [name, ring] : history_) {
    if (ring.empty()) continue;
    Window w;
    w.metric = name;
    w.points = ring.size();
    const Point& first = ring.front();
    const Point& last = ring.back();
    w.first_value = first.value;
    w.last_value = last.value;
    w.is_hist = last.is_hist;
    w.last_p50 = last.p50;
    w.last_p99 = last.p99;
    if (ring.size() >= 2 && last.ts_ns > first.ts_ns) {
      w.rate_per_s = (last.value - first.value) /
                     (static_cast<double>(last.ts_ns - first.ts_ns) / 1e9);
    }
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace obs
}  // namespace fdb
