#ifndef FDB_OBS_SAMPLER_H_
#define FDB_OBS_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fdb/base/thread_annotations.h"
#include "fdb/obs/metrics.h"

namespace fdb {
namespace obs {

/// A metrics history sampler: a background thread that snapshots
/// registry metrics at a fixed interval into bounded per-metric rings,
/// so instantaneous counters become time series — windowed rates for
/// counters, p50/p99-over-time for histograms. This is the data the
/// `fdb.metrics_history` system table serves.
///
/// Threading: one mutex guards the rings; the sampler thread takes it
/// only while appending a tick's points, readers only while copying.
/// Start/Stop are idempotent; the destructor stops and joins, so an
/// owner's destruction never leaks the thread. `SampleOnce()` takes a
/// sample synchronously (deterministic tests; also works while the
/// background thread runs).
class MetricsSampler {
 public:
  struct Options {
    int64_t interval_ms = 1000;  ///< background sampling period
    size_t capacity = 512;       ///< points retained per metric
    /// Metric names to sample; empty means every registered metric.
    std::vector<std::string> metrics;
  };

  /// One sampled point. For counters/gauges `value` is the reading; for
  /// histograms `value` is the merged sum and the percentile fields are
  /// interpolated from the merged buckets at sample time.
  struct Point {
    int64_t ts_ns = 0;  ///< steady-clock timestamp (NowNs)
    uint64_t tick = 0;  ///< dense per-sampler tick, starts at 1
    double value = 0.0;
    uint64_t hist_count = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    bool is_hist = false;
  };

  /// Windowed view over one metric's ring: the change across the window
  /// divided by its wall time (counters), or the latest percentiles.
  struct Window {
    std::string metric;
    size_t points = 0;
    double first_value = 0.0;
    double last_value = 0.0;
    double rate_per_s = 0.0;  ///< (last-first)/(t_last-t_first), counters
    double last_p50 = 0.0;
    double last_p99 = 0.0;
    bool is_hist = false;
  };

  MetricsSampler();  ///< default options
  explicit MetricsSampler(Options opts);
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Launches the background thread (no-op if already running).
  void Start() EXCLUDES(mu_);
  /// Stops and joins the background thread (no-op if not running).
  void Stop() EXCLUDES(mu_);
  bool running() const EXCLUDES(mu_);

  /// Takes one sample synchronously on the calling thread.
  void SampleOnce() EXCLUDES(mu_);

  /// Ticks taken so far (background + synchronous).
  uint64_t ticks() const EXCLUDES(mu_);

  /// Full history, metric name → points oldest-first.
  std::map<std::string, std::vector<Point>> History() const EXCLUDES(mu_);

  /// One summary row per sampled metric (shell \history).
  std::vector<Window> Windows() const EXCLUDES(mu_);

  const Options& options() const { return opts_; }

 private:
  void Loop() EXCLUDES(mu_);

  Options opts_;
  mutable base::Mutex mu_;
  base::CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool thread_running_ GUARDED_BY(mu_) = false;
  uint64_t ticks_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::deque<Point>> history_ GUARDED_BY(mu_);
  std::thread thread_;
};

}  // namespace obs
}  // namespace fdb

#endif  // FDB_OBS_SAMPLER_H_
