#include "fdb/base/thread_annotations.h"
#include "fdb/obs/metrics.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

namespace fdb {
namespace obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

int ThreadSlot() {
  static std::atomic<int> next{0};
  thread_local int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

void SetMetricsEnabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- Counter

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

int Histogram::BucketIndex(uint64_t v) {
  // std::bit_width(v) is 0 for v==0 and floor(log2(v))+1 otherwise, which
  // lands v in the bucket whose range is [2^(i-1), 2^i - 1].
  return std::bit_width(v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    for (int i = 0; i < detail::kHistBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (int i = 0; i < detail::kHistBuckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::BucketLo(int i) {
  return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t HistogramSnapshot::BucketHi(int i) {
  if (i == 0) return 0;
  if (i == detail::kHistBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [0, count-1]; walk buckets until the cumulative count covers
  // it, then interpolate linearly across the hit bucket's value range.
  double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (int i = 0; i < detail::kHistBuckets; ++i) {
    if (buckets[i] == 0) continue;
    double lo_rank = static_cast<double>(seen);
    seen += buckets[i];
    double hi_rank = static_cast<double>(seen - 1);
    if (rank <= hi_rank) {
      double lo = static_cast<double>(BucketLo(i));
      double hi = static_cast<double>(BucketHi(i));
      if (hi_rank <= lo_rank) return lo;  // single sample in the bucket
      double frac = (rank - lo_rank) / (hi_rank - lo_rank);
      if (frac < 0.0) frac = 0.0;  // rank fell in the gap before this bucket
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(BucketHi(detail::kHistBuckets - 1));
}

// --------------------------------------------------------------- Registry

struct Registry::Impl {
  mutable base::SharedMutex mu;
  // Name → metric. unique_ptr keeps addresses stable across rehashing so
  // call sites can cache references forever; std::map keeps Snapshot()
  // sorted for free.
  struct Entry {
    MetricRow::Type type;
    std::string unit, help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };
  std::map<std::string, Entry> metrics GUARDED_BY(mu);
};

Registry::Registry() : impl_(new Impl) {
  const char* env = std::getenv("FDB_METRICS");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    SetMetricsEnabled(true);
  }
}

Registry& Registry::Instance() {
  static Registry* r = new Registry;  // immortal: no static-destruction race
  return *r;
}

Counter& Registry::GetCounter(const std::string& name, const std::string& unit,
                              const std::string& help) {
  {
    base::ReaderMutexLock lock(&impl_->mu);
    auto it = impl_->metrics.find(name);
    if (it != impl_->metrics.end() && it->second.counter) {
      return *it->second.counter;
    }
  }
  base::WriterMutexLock lock(&impl_->mu);
  Impl::Entry& e = impl_->metrics[name];
  if (!e.counter) {
    e.type = MetricRow::Type::kCounter;
    e.unit = unit;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& unit,
                          const std::string& help) {
  {
    base::ReaderMutexLock lock(&impl_->mu);
    auto it = impl_->metrics.find(name);
    if (it != impl_->metrics.end() && it->second.gauge) {
      return *it->second.gauge;
    }
  }
  base::WriterMutexLock lock(&impl_->mu);
  Impl::Entry& e = impl_->metrics[name];
  if (!e.gauge) {
    e.type = MetricRow::Type::kGauge;
    e.unit = unit;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& unit,
                                  const std::string& help) {
  {
    base::ReaderMutexLock lock(&impl_->mu);
    auto it = impl_->metrics.find(name);
    if (it != impl_->metrics.end() && it->second.hist) {
      return *it->second.hist;
    }
  }
  base::WriterMutexLock lock(&impl_->mu);
  Impl::Entry& e = impl_->metrics[name];
  if (!e.hist) {
    e.type = MetricRow::Type::kHistogram;
    e.unit = unit;
    e.help = help;
    e.hist = std::make_unique<Histogram>();
  }
  return *e.hist;
}

std::vector<MetricRow> Registry::Snapshot() const {
  base::ReaderMutexLock lock(&impl_->mu);
  std::vector<MetricRow> rows;
  rows.reserve(impl_->metrics.size());
  for (const auto& [name, e] : impl_->metrics) {
    MetricRow row;
    row.type = e.type;
    row.name = name;
    row.unit = e.unit;
    row.help = e.help;
    if (e.counter) {
      row.value = static_cast<int64_t>(e.counter->Value());
    } else if (e.gauge) {
      row.value = e.gauge->Value();
    } else if (e.hist) {
      row.hist = e.hist->Snapshot();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

const char* TypeName(MetricRow::Type t) {
  switch (t) {
    case MetricRow::Type::kCounter:
      return "counter";
    case MetricRow::Type::kGauge:
      return "gauge";
    case MetricRow::Type::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

std::string Registry::RenderText() const {
  std::ostringstream out;
  out << "metrics " << (MetricsEnabled() ? "enabled" : "disabled") << "\n";
  for (const MetricRow& row : Snapshot()) {
    out << "  " << row.name;
    if (!row.unit.empty()) out << " [" << row.unit << "]";
    if (row.type == MetricRow::Type::kHistogram) {
      const HistogramSnapshot& h = row.hist;
      out << "  count=" << h.count;
      if (h.count > 0) {
        out << " mean=" << static_cast<uint64_t>(h.Mean())
            << " p50=" << static_cast<uint64_t>(h.Percentile(0.50))
            << " p95=" << static_cast<uint64_t>(h.Percentile(0.95))
            << " p99=" << static_cast<uint64_t>(h.Percentile(0.99))
            << " sum=" << h.sum;
      }
    } else {
      out << "  " << row.value;
    }
    out << "\n";
  }
  return out.str();
}

std::string Registry::RenderJson() const {
  std::ostringstream out;
  out << "{\"enabled\":" << (MetricsEnabled() ? "true" : "false")
      << ",\"metrics\":[";
  bool first = true;
  for (const MetricRow& row : Snapshot()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(row.name) << "\",\"type\":\""
        << TypeName(row.type) << "\"";
    if (!row.unit.empty()) {
      out << ",\"unit\":\"" << JsonEscape(row.unit) << "\"";
    }
    if (!row.help.empty()) {
      out << ",\"help\":\"" << JsonEscape(row.help) << "\"";
    }
    if (row.type == MetricRow::Type::kHistogram) {
      const HistogramSnapshot& h = row.hist;
      out << ",\"count\":" << h.count << ",\"sum\":" << h.sum;
      if (h.count > 0) {
        out << ",\"mean\":" << h.Mean() << ",\"p50\":" << h.Percentile(0.50)
            << ",\"p95\":" << h.Percentile(0.95)
            << ",\"p99\":" << h.Percentile(0.99);
      }
    } else {
      out << ",\"value\":" << row.value;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void Registry::ResetAll() {
  base::ReaderMutexLock lock(&impl_->mu);
  for (auto& [name, e] : impl_->metrics) {
    if (e.counter) e.counter->Reset();
    if (e.gauge) e.gauge->Reset();
    if (e.hist) e.hist->Reset();
  }
}

}  // namespace obs
}  // namespace fdb
