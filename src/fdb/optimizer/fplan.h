#ifndef FDB_OPTIMIZER_FPLAN_H_
#define FDB_OPTIMIZER_FPLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/core/ops/aggregate.h"

namespace fdb {

/// The kinds of low-level f-plan operators (§2.1, §3): mappings between
/// factorisations, referencing nodes of the evolving f-tree by id (node ids
/// are stable across all operators).
enum class FOpKind {
  kSwap,         ///< swap node `b` with its parent (χ)
  kMerge,        ///< selection on sibling nodes: merge `b` into `a`
  kAbsorb,       ///< selection on ancestor `a` / descendant `b`
  kSelectConst,  ///< σ_{A θ c} at node `a`
  kAggregate,    ///< γ_tasks over the subtree rooted at `a`
  kRename,       ///< rename the aggregate attribute of node `a`
};

/// One f-plan operator.
struct FOp {
  FOpKind kind = FOpKind::kSwap;
  int a = -1;
  int b = -1;
  CmpOp cmp = CmpOp::kEq;
  Value constant;
  std::vector<AggTask> tasks;
  std::string rename_to;

  static FOp Swap(int b) { return {FOpKind::kSwap, -1, b, {}, {}, {}, {}}; }
  static FOp Merge(int a, int b) {
    return {FOpKind::kMerge, a, b, {}, {}, {}, {}};
  }
  static FOp Absorb(int a, int b) {
    return {FOpKind::kAbsorb, a, b, {}, {}, {}, {}};
  }
  static FOp Select(int a, CmpOp cmp, Value c) {
    return {FOpKind::kSelectConst, a, -1, cmp, std::move(c), {}, {}};
  }
  static FOp Aggregate(int a, std::vector<AggTask> tasks) {
    return {FOpKind::kAggregate, a, -1, {}, {}, std::move(tasks), {}};
  }
  static FOp Rename(int a, std::string to) {
    return {FOpKind::kRename, a, -1, {}, {}, {}, std::move(to)};
  }
};

/// An f-plan: a sequence of operators (§5).
using FPlan = std::vector<FOp>;

/// Execution statistics for one operator.
struct FOpStats {
  FOpKind kind;
  int64_t singletons_after = 0;
  double seconds = 0.0;
};

/// Applies one operator to the factorisation (tree and data).
/// For kAggregate, returns the new aggregate node ids; otherwise empty.
std::vector<int> ExecuteOp(Factorisation* f, AttributeRegistry* reg,
                           const FOp& op);

/// Applies a whole plan, optionally recording per-operator statistics.
void ExecutePlan(Factorisation* f, AttributeRegistry* reg, const FPlan& plan,
                 std::vector<FOpStats>* stats = nullptr);

/// Human-readable plan rendering for logs and tests.
std::string PlanToString(const FPlan& plan, const AttributeRegistry& reg);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_FPLAN_H_
