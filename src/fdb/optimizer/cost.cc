#include "fdb/optimizer/cost.h"

#include <cmath>
#include <vector>

#include "fdb/optimizer/hypergraph.h"

namespace fdb {

double NodeSizeBoundLog(const FTree& tree, int n) {
  std::vector<int> path;
  for (int u = n; u >= 0; u = tree.parent(u)) path.push_back(u);
  return FractionalCoverLog(tree, path);
}

double FTreeCost(const FTree& tree) {
  double total = 0.0;
  for (int n : tree.TopologicalOrder()) {
    total += std::exp(NodeSizeBoundLog(tree, n));
  }
  return total;
}

}  // namespace fdb
