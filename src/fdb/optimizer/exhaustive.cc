#include "fdb/optimizer/exhaustive.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fdb/core/order.h"
#include "fdb/optimizer/cost.h"

namespace fdb {
namespace {

// Canonical encoding of an f-tree state: structure and labels with children
// sorted, so that plans reaching the same logical tree by different routes
// share a search node. Aggregate labels are encoded by function, source and
// `over` set (their synthesised attribute ids are path-dependent).
std::string EncodeNode(const FTree& t, int n) {
  const FTreeNode& nd = t.node(n);
  std::ostringstream os;
  if (nd.is_aggregate()) {
    os << AggFnName(nd.agg->fn) << "_" << nd.agg->source << "(";
    for (AttrId a : nd.agg->over) os << a << ",";
    os << ")";
  } else {
    for (AttrId a : nd.attrs) os << a << ",";
  }
  std::vector<std::string> kids;
  for (int c : nd.children) kids.push_back(EncodeNode(t, c));
  std::sort(kids.begin(), kids.end());
  os << "[";
  for (const std::string& k : kids) os << k << ";";
  os << "]";
  return os.str();
}

std::string EncodeState(const FTree& t,
                        const std::vector<std::pair<AttrId, AttrId>>& pending) {
  std::vector<std::string> roots;
  for (int r : t.roots()) roots.push_back(EncodeNode(t, r));
  std::sort(roots.begin(), roots.end());
  std::ostringstream os;
  for (const std::string& r : roots) os << r << "|";
  os << "#";
  for (const auto& [a, b] : pending) os << a << "=" << b << ",";
  return os.str();
}

struct State {
  double cost;
  FTree tree;
  AttributeRegistry reg;
  std::vector<std::pair<AttrId, AttrId>> pending;
  FPlan plan;
};

struct StateGreater {
  bool operator()(const State& a, const State& b) const {
    return a.cost > b.cost;
  }
};

// Mirrors ApplyAggregate's tree mutation for simulation.
void SimAggregate(FTree* tree, AttributeRegistry* reg, int u,
                  const std::vector<AggTask>& tasks) {
  std::vector<AttrId> over = tree->SubtreeOriginalAttrs(u);
  std::vector<AggregateLabel> labels;
  for (const AggTask& t : tasks) {
    AggregateLabel l;
    l.fn = t.fn;
    l.source = t.source;
    l.over = over;
    std::string base = AggFnName(t.fn) + "_x(" + std::to_string(u) + ")";
    while (reg->Find(base).has_value()) base += "'";
    l.id = reg->Intern(base);
    labels.push_back(std::move(l));
  }
  tree->ReplaceSubtreeWithAggregates(u, std::move(labels));
}

void DropSatisfied(const FTree& t,
                   std::vector<std::pair<AttrId, AttrId>>* pending) {
  std::erase_if(*pending, [&](const auto& s) {
    return t.NodeOfAttr(s.first) == t.NodeOfAttr(s.second);
  });
}

}  // namespace

std::optional<ExhaustiveResult> ExhaustivePlan(const FTree& tree,
                                               const AttributeRegistry& reg,
                                               const PlannerQuery& q,
                                               int max_states) {
  // Constant selections are applied up-front, outside the search (§5.1).
  FPlan prefix;
  for (const auto& [attr, cmp, c] : q.const_selections) {
    int n = tree.NodeOfAttr(attr);
    if (n < 0) {
      throw std::invalid_argument(
          "ExhaustivePlan: unknown selection attribute");
    }
    prefix.push_back(FOp::Select(n, cmp, c));
  }

  auto is_goal = [&](const State& s) {
    if (!s.pending.empty()) return false;
    if (!q.tasks.empty()) {
      // Every atomic attribute still live must be a grouping attribute.
      for (int n : s.tree.TopologicalOrder()) {
        const FTreeNode& nd = s.tree.node(n);
        if (nd.is_aggregate()) continue;
        for (AttrId a : nd.attrs) {
          if (std::find(q.group.begin(), q.group.end(), a) ==
              q.group.end()) {
            return false;
          }
        }
      }
    }
    std::vector<int> o_nodes, g_nodes;
    for (AttrId a : q.order) {
      int n = s.tree.NodeOfAttr(a);
      if (n < 0) return false;
      if (std::find(o_nodes.begin(), o_nodes.end(), n) == o_nodes.end()) {
        o_nodes.push_back(n);
      }
    }
    for (AttrId a : q.group) {
      int n = s.tree.NodeOfAttr(a);
      if (n < 0) return false;
      g_nodes.push_back(n);
    }
    return SupportsOrder(s.tree, o_nodes) &&
           SupportsGrouping(s.tree, g_nodes);
  };

  std::priority_queue<State, std::vector<State>, StateGreater> queue;
  std::set<std::string> settled;

  State init{0.0, tree, reg, q.eq_selections, prefix};
  DropSatisfied(init.tree, &init.pending);
  queue.push(std::move(init));

  int explored = 0;
  while (!queue.empty()) {
    State s = queue.top();
    queue.pop();
    std::string key = EncodeState(s.tree, s.pending);
    if (settled.count(key)) continue;
    settled.insert(key);
    if (is_goal(s)) {
      return ExhaustiveResult{std::move(s.plan), s.cost,
                              static_cast<int>(settled.size())};
    }
    if (static_cast<int>(settled.size()) > max_states) return std::nullopt;
    ++explored;
    (void)explored;

    auto push_successor = [&](FOp op) {
      State t = s;
      switch (op.kind) {
        case FOpKind::kSwap:
          t.tree.SwapUp(op.b);
          break;
        case FOpKind::kMerge:
          t.tree.MergeSiblings(op.a, op.b);
          break;
        case FOpKind::kAbsorb:
          t.tree.AbsorbDescendant(op.a, op.b);
          break;
        case FOpKind::kAggregate:
          SimAggregate(&t.tree, &t.reg, op.a, op.tasks);
          break;
        default:
          throw std::logic_error("ExhaustivePlan: unexpected operator");
      }
      DropSatisfied(t.tree, &t.pending);
      t.cost += FTreeCost(t.tree);
      t.plan.push_back(std::move(op));
      queue.push(std::move(t));
    };

    // Permissible selection operators (Prop. 3).
    for (size_t i = 0; i < s.pending.size(); ++i) {
      int na = s.tree.NodeOfAttr(s.pending[i].first);
      int nb = s.tree.NodeOfAttr(s.pending[i].second);
      if (na < 0 || nb < 0) continue;
      if (s.tree.parent(na) == s.tree.parent(nb)) {
        push_successor(FOp::Merge(na, nb));
      } else if (s.tree.IsAncestor(na, nb)) {
        push_successor(FOp::Absorb(na, nb));
      } else if (s.tree.IsAncestor(nb, na)) {
        push_successor(FOp::Absorb(nb, na));
      }
    }

    // Permissible aggregation operators: any subtree avoiding grouping and
    // pending-selection attributes.
    if (!q.tasks.empty()) {
      std::vector<AttrId> blocked = q.group;
      for (const auto& [a, b] : s.pending) {
        blocked.push_back(a);
        blocked.push_back(b);
      }
      for (AttrId o : q.order) blocked.push_back(o);
      for (int u : s.tree.TopologicalOrder()) {
        if (!SubtreeAggregatable(s.tree, u, blocked)) continue;
        push_successor(FOp::Aggregate(u, PartialTasks(s.tree, u, q.tasks)));
      }
    }

    // Any swap operator.
    for (int n : s.tree.TopologicalOrder()) {
      if (s.tree.parent(n) >= 0) push_successor(FOp::Swap(n));
    }
  }
  return std::nullopt;
}

}  // namespace fdb
