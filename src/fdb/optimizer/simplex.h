#ifndef FDB_OPTIMIZER_SIMPLEX_H_
#define FDB_OPTIMIZER_SIMPLEX_H_

#include <optional>
#include <vector>

namespace fdb {

/// A solved linear program: objective value and primal solution.
struct LpSolution {
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the covering linear program
///     min cᵀx   s.t.  A x ≥ b,  x ≥ 0
/// with a dense two-phase primal simplex (Bland's rule, so it cannot
/// cycle). Returns nullopt if infeasible. Sized for the tiny LPs arising
/// from fractional edge covers of query hypergraphs (a handful of
/// variables and constraints), not for general-purpose use.
std::optional<LpSolution> SolveCoveringLp(
    const std::vector<std::vector<double>>& a, const std::vector<double>& b,
    const std::vector<double>& c);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_SIMPLEX_H_
