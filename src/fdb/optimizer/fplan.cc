#include "fdb/optimizer/fplan.h"

#include <chrono>
#include <sstream>

#include "fdb/core/ops/restructure.h"
#include "fdb/core/ops/selection.h"
#include "fdb/core/ops/swap.h"

namespace fdb {

std::vector<int> ExecuteOp(Factorisation* f, AttributeRegistry* reg,
                           const FOp& op) {
  switch (op.kind) {
    case FOpKind::kSwap:
      ApplySwap(f, op.b);
      return {};
    case FOpKind::kMerge:
      ApplyMerge(f, op.a, op.b);
      return {};
    case FOpKind::kAbsorb:
      ApplyAbsorb(f, op.a, op.b);
      return {};
    case FOpKind::kSelectConst:
      ApplySelectConst(f, op.a, op.cmp, op.constant);
      return {};
    case FOpKind::kAggregate:
      return ApplyAggregate(f, reg, op.a, op.tasks);
    case FOpKind::kRename:
      ApplyRename(f, reg, op.a, op.rename_to);
      return {};
  }
  return {};
}

void ExecutePlan(Factorisation* f, AttributeRegistry* reg, const FPlan& plan,
                 std::vector<FOpStats>* stats) {
  for (const FOp& op : plan) {
    auto t0 = std::chrono::steady_clock::now();
    ExecuteOp(f, reg, op);
    if (stats != nullptr) {
      auto t1 = std::chrono::steady_clock::now();
      FOpStats s;
      s.kind = op.kind;
      s.seconds = std::chrono::duration<double>(t1 - t0).count();
      s.singletons_after = f->CountSingletons();
      stats->push_back(s);
    }
  }
}

std::string PlanToString(const FPlan& plan, const AttributeRegistry& reg) {
  std::ostringstream os;
  for (const FOp& op : plan) {
    switch (op.kind) {
      case FOpKind::kSwap:
        os << "swap(node " << op.b << " up)";
        break;
      case FOpKind::kMerge:
        os << "merge(" << op.a << ", " << op.b << ")";
        break;
      case FOpKind::kAbsorb:
        os << "absorb(" << op.a << ", " << op.b << ")";
        break;
      case FOpKind::kSelectConst:
        os << "select(node " << op.a << " " << CmpOpName(op.cmp) << " "
           << op.constant << ")";
        break;
      case FOpKind::kAggregate: {
        os << "aggregate(subtree " << op.a << "; ";
        for (size_t i = 0; i < op.tasks.size(); ++i) {
          if (i) os << ", ";
          os << AggFnName(op.tasks[i].fn);
          if (op.tasks[i].source != kInvalidAttr) {
            os << "_" << reg.Name(op.tasks[i].source);
          }
        }
        os << ")";
        break;
      }
      case FOpKind::kRename:
        os << "rename(node " << op.a << " -> " << op.rename_to << ")";
        break;
    }
    os << "; ";
  }
  return os.str();
}

}  // namespace fdb
