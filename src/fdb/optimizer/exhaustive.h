#ifndef FDB_OPTIMIZER_EXHAUSTIVE_H_
#define FDB_OPTIMIZER_EXHAUSTIVE_H_

#include <optional>

#include "fdb/optimizer/greedy.h"

namespace fdb {

/// Result of the exhaustive plan search.
struct ExhaustiveResult {
  FPlan plan;
  double cost = 0.0;    ///< sum of size bounds of all intermediate f-trees
  int explored = 0;     ///< number of states settled by Dijkstra
};

/// Exhaustive search over the space of f-plans (§5.1): the graph whose nodes
/// are f-trees (plus the set of pending selections) and whose edges are the
/// permissible operators of Proposition 3, weighted by the size bound of the
/// resulting f-tree. Dijkstra's algorithm finds the minimum-cost f-plan
/// reaching a state where all selections are applied, all non-grouping
/// atomic attributes are aggregated away, and the order-by/group-by
/// enumeration conditions (Theorems 1 and 2) hold.
///
/// Exponential in query size; returns nullopt once `max_states` states have
/// been settled without reaching a goal (callers fall back to GreedyPlan).
std::optional<ExhaustiveResult> ExhaustivePlan(const FTree& tree,
                                               const AttributeRegistry& reg,
                                               const PlannerQuery& q,
                                               int max_states = 20000);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_EXHAUSTIVE_H_
