#ifndef FDB_OPTIMIZER_HYPERGRAPH_H_
#define FDB_OPTIMIZER_HYPERGRAPH_H_

#include <vector>

#include "fdb/core/ftree.h"

namespace fdb {

/// The minimum-weight fractional edge cover of a set of f-tree nodes by the
/// tree's dependency hyperedges ([13], [22]): minimises Σ_e x_e · log w_e
/// subject to Σ_{e covers node} x_e ≥ 1 per node. A hyperedge covers a node
/// if it intersects the node's attribute-id set. Returns the optimum in log
/// space (log of the size bound Π_e w_e^{x_e}). Nodes covered by no edge
/// are skipped (they cannot constrain the bound). Edge weights below 2 are
/// clamped to 2 so that covering more nodes never looks free.
double FractionalCoverLog(const FTree& tree, const std::vector<int>& nodes);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_HYPERGRAPH_H_
