#include "fdb/optimizer/hypergraph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fdb/optimizer/simplex.h"

namespace fdb {

double FractionalCoverLog(const FTree& tree, const std::vector<int>& nodes) {
  const std::vector<Hyperedge>& edges = tree.edges();
  int n = static_cast<int>(edges.size());

  auto covers = [&](const Hyperedge& e, int node) {
    for (AttrId a : tree.node(node).AllAttrIds()) {
      if (std::binary_search(e.attrs.begin(), e.attrs.end(), a)) return true;
    }
    return false;
  };

  std::vector<std::vector<double>> a;
  for (int node : nodes) {
    std::vector<double> row(n, 0.0);
    bool any = false;
    for (int e = 0; e < n; ++e) {
      if (covers(edges[e], node)) {
        row[e] = 1.0;
        any = true;
      }
    }
    if (any) a.push_back(std::move(row));
  }
  if (a.empty()) return 0.0;

  std::vector<double> b(a.size(), 1.0);
  std::vector<double> c(n);
  for (int e = 0; e < n; ++e) {
    c[e] = std::log(std::max(2.0, edges[e].weight));
  }
  auto sol = SolveCoveringLp(a, b, c);
  if (!sol.has_value()) {
    throw std::logic_error("FractionalCoverLog: covering LP infeasible");
  }
  return sol->objective;
}

}  // namespace fdb
