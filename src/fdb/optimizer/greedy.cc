#include "fdb/optimizer/greedy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "fdb/core/order.h"
#include "fdb/optimizer/cost.h"

namespace fdb {
namespace {

int Depth(const FTree& t, int n) {
  int d = 0;
  for (int p = t.parent(n); p >= 0; p = t.parent(p)) ++d;
  return d;
}

// Simulated aggregation on the tree only: mirrors ApplyAggregate's tree
// mutation, interning fresh names into the simulation registry.
std::vector<int> SimAggregate(FTree* tree, AttributeRegistry* reg, int u,
                              const std::vector<AggTask>& tasks) {
  std::vector<AttrId> over = tree->SubtreeOriginalAttrs(u);
  std::vector<AggregateLabel> labels;
  for (const AggTask& t : tasks) {
    AggregateLabel l;
    l.fn = t.fn;
    l.source = t.source;
    l.over = over;
    std::string base = AggFnName(t.fn) + "_sim(" + std::to_string(u) + ")";
    while (reg->Find(base).has_value()) base += "'";
    l.id = reg->Intern(base);
    labels.push_back(std::move(l));
  }
  return tree->ReplaceSubtreeWithAggregates(u, std::move(labels));
}

// Whether nodes a and b are siblings (same parent, including both roots).
bool Siblings(const FTree& t, int a, int b) {
  return t.parent(a) == t.parent(b);
}

bool AncestorRelated(const FTree& t, int a, int b) {
  return t.IsAncestor(a, b) || t.IsAncestor(b, a);
}

}  // namespace

std::vector<AggTask> PartialTasks(const FTree& tree, int u,
                                  const std::vector<AggTask>& final_tasks) {
  std::vector<AttrId> inside = tree.SubtreeAttrIds(u);
  auto in_subtree = [&](AttrId a) {
    if (std::binary_search(inside.begin(), inside.end(), a)) return true;
    // The source may already have been folded into an aggregate node.
    for (int n : tree.SubtreeNodes(u)) {
      const FTreeNode& nd = tree.node(n);
      if (nd.is_aggregate() && nd.agg->source == a) return true;
    }
    return false;
  };
  std::vector<AggTask> out;
  for (const AggTask& t : final_tasks) {
    AggTask p = t;
    if (t.fn != AggFn::kCount && !in_subtree(t.source)) {
      p = {AggFn::kCount, kInvalidAttr};
    }
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

bool SubtreeAggregatable(const FTree& tree, int u,
                         const std::vector<AttrId>& blocked) {
  bool has_atomic = false;
  for (int n : tree.SubtreeNodes(u)) {
    const FTreeNode& nd = tree.node(n);
    if (!nd.is_aggregate()) {
      has_atomic = true;
      for (AttrId a : nd.attrs) {
        if (std::find(blocked.begin(), blocked.end(), a) != blocked.end()) {
          return false;
        }
      }
    }
  }
  return has_atomic;
}

FPlan GreedyPlan(const FTree& tree, const AttributeRegistry& reg,
                 const PlannerQuery& q) {
  FTree sim = tree;
  AttributeRegistry simreg = reg;
  FPlan plan;

  auto record_swap = [&](int b) {
    plan.push_back(FOp::Swap(b));
    sim.SwapUp(b);
  };

  // Selections with constants need no restructuring: one traversal each.
  for (const auto& [attr, cmp, c] : q.const_selections) {
    int n = sim.NodeOfAttr(attr);
    if (n < 0) {
      throw std::invalid_argument("GreedyPlan: unknown selection attribute");
    }
    plan.push_back(FOp::Select(n, cmp, c));
  }

  std::vector<std::pair<AttrId, AttrId>> pending = q.eq_selections;

  // Step 1 + 3: resolve all equality selections, restructuring when needed.
  while (!pending.empty()) {
    // Drop selections already satisfied by earlier merges.
    std::erase_if(pending, [&](const auto& s) {
      return sim.NodeOfAttr(s.first) == sim.NodeOfAttr(s.second);
    });
    if (pending.empty()) break;

    // Step 1: a permissible merge/absorb, preferring the highest-placed.
    int best = -1;
    int best_depth = std::numeric_limits<int>::max();
    for (size_t i = 0; i < pending.size(); ++i) {
      int na = sim.NodeOfAttr(pending[i].first);
      int nb = sim.NodeOfAttr(pending[i].second);
      if (Siblings(sim, na, nb) || AncestorRelated(sim, na, nb)) {
        int d = std::min(Depth(sim, na), Depth(sim, nb));
        if (d < best_depth) {
          best_depth = d;
          best = static_cast<int>(i);
        }
      }
    }
    if (best >= 0) {
      int na = sim.NodeOfAttr(pending[best].first);
      int nb = sim.NodeOfAttr(pending[best].second);
      if (Siblings(sim, na, nb)) {
        plan.push_back(FOp::Merge(na, nb));
        sim.MergeSiblings(na, nb);
      } else {
        if (sim.IsAncestor(nb, na)) std::swap(na, nb);
        plan.push_back(FOp::Absorb(na, nb));
        sim.AbsorbDescendant(na, nb);
      }
      pending.erase(pending.begin() + best);
      continue;
    }

    // Step 3: no selection is directly applicable; push nodes together.
    // Try (a) pushing up A, (b) pushing up B, (c) alternating (the deeper
    // first), and keep the cheapest by the size-bound metric.
    const auto [attr_a, attr_b] = pending.front();
    double best_cost = std::numeric_limits<double>::infinity();
    std::vector<int> best_swaps;
    for (int strategy = 0; strategy < 3; ++strategy) {
      FTree trial = sim;
      std::vector<int> swaps;
      double cost = 0.0;
      while (true) {
        int na = trial.NodeOfAttr(attr_a);
        int nb = trial.NodeOfAttr(attr_b);
        if (Siblings(trial, na, nb) || AncestorRelated(trial, na, nb)) break;
        int target;
        switch (strategy) {
          case 0:
            target = na;
            break;
          case 1:
            target = nb;
            break;
          default:
            target = Depth(trial, na) >= Depth(trial, nb) ? na : nb;
        }
        if (trial.parent(target) < 0) {
          // Already a root; push the other one instead.
          target = target == na ? nb : na;
        }
        swaps.push_back(target);
        trial.SwapUp(target);
        cost += FTreeCost(trial);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_swaps = std::move(swaps);
      }
    }
    for (int b : best_swaps) record_swap(b);
  }

  auto blocked_attrs = [&]() {
    std::vector<AttrId> blocked = q.group;
    for (const auto& [a, b] : pending) {
      blocked.push_back(a);
      blocked.push_back(b);
    }
    for (AttrId o : q.order) blocked.push_back(o);
    return blocked;
  };

  // Alternate step 2 (maximal partial aggregates) with steps 4–5
  // (restructuring for group-by and order-by) until a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;

    if (!q.tasks.empty()) {
      std::vector<AttrId> blocked = blocked_attrs();
      bool more = true;
      while (more) {
        more = false;
        for (int u : sim.TopologicalOrder()) {
          if (!SubtreeAggregatable(sim, u, blocked)) continue;
          int p = sim.parent(u);
          if (p >= 0 && SubtreeAggregatable(sim, p, blocked)) continue;
          std::vector<AggTask> tasks = PartialTasks(sim, u, q.tasks);
          plan.push_back(FOp::Aggregate(u, tasks));
          SimAggregate(&sim, &simreg, u, tasks);
          more = true;
          changed = true;
          break;  // tree changed; recompute the traversal
        }
      }
    }

    // Steps 4–5: push order-by nodes into list order, then the remaining
    // grouping nodes above everything else.
    std::vector<int> o_nodes, g_nodes;
    for (AttrId a : q.order) {
      int n = sim.NodeOfAttr(a);
      if (n < 0) {
        throw std::invalid_argument("GreedyPlan: unknown order attribute");
      }
      if (std::find(o_nodes.begin(), o_nodes.end(), n) == o_nodes.end()) {
        o_nodes.push_back(n);
      }
    }
    for (AttrId a : q.group) {
      int n = sim.NodeOfAttr(a);
      if (n < 0) {
        throw std::invalid_argument("GreedyPlan: unknown group attribute");
      }
      if (std::find(g_nodes.begin(), g_nodes.end(), n) == g_nodes.end()) {
        g_nodes.push_back(n);
      }
    }
    std::vector<int> swaps = PlanRestructure(sim, o_nodes, g_nodes);
    for (int b : swaps) {
      record_swap(b);
      changed = true;
    }
  }
  return plan;
}

}  // namespace fdb
