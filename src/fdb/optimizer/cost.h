#ifndef FDB_OPTIMIZER_COST_H_
#define FDB_OPTIMIZER_COST_H_

#include "fdb/core/ftree.h"

namespace fdb {

/// The asymptotically tight size bound (in log space) for the unions at node
/// `n` of a factorisation over `tree` ([22], §2.1): the minimum-weight
/// fractional edge cover of the nodes on the root-to-`n` path.
double NodeSizeBoundLog(const FTree& tree, int n);

/// The f-tree cost metric used for plan search (§5): the sum over live
/// nodes of their size bounds, i.e. an upper bound on the number of
/// singletons of any factorisation over `tree`.
double FTreeCost(const FTree& tree);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_COST_H_
