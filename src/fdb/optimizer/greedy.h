#ifndef FDB_OPTIMIZER_GREEDY_H_
#define FDB_OPTIMIZER_GREEDY_H_

#include <tuple>
#include <utility>
#include <vector>

#include "fdb/optimizer/fplan.h"

namespace fdb {

/// The core-level description of a query handed to the planners (§5.1):
/// selections, grouping attributes, aggregation tasks and order-by list,
/// all referring to attributes of the input f-tree.
struct PlannerQuery {
  std::vector<std::pair<AttrId, AttrId>> eq_selections;
  std::vector<std::tuple<AttrId, CmpOp, Value>> const_selections;
  /// Group-by attributes (for aggregate queries) or distinct-projection
  /// attributes (for SPJ queries with DISTINCT).
  std::vector<AttrId> group;
  /// Aggregation functions; empty for select-project-join queries.
  std::vector<AggTask> tasks;
  /// Order-by attributes that label f-tree nodes, in order-by sequence.
  std::vector<AttrId> order;
};

/// Derives the partial-aggregation tasks for the subtree rooted at `u` from
/// the query's final tasks per the composition rules of Prop. 2: sum_A stays
/// sum_A when A is inside the subtree and decays to count otherwise; count
/// stays count; min/max stay themselves when their source is inside and
/// decay to count otherwise. Duplicates are removed.
std::vector<AggTask> PartialTasks(const FTree& tree, int u,
                                  const std::vector<AggTask>& final_tasks);

/// True if γ over the subtree rooted at `u` is permissible (§5.1): the
/// subtree contains no grouping attribute, no attribute of a pending
/// equality selection, and at least one atomic node (so the operator makes
/// progress).
bool SubtreeAggregatable(const FTree& tree, int u,
                         const std::vector<AttrId>& blocked);

/// The greedy heuristic of §5.2: resolves selections (merging/absorbing,
/// pushing nodes together where needed, choosing the cheapest push by the
/// size-bound cost metric), applies maximal permissible partial aggregates,
/// and restructures for the group-by and order-by clauses. Returns the
/// f-plan; `reg` is only read (fresh names are simulated on a copy).
FPlan GreedyPlan(const FTree& tree, const AttributeRegistry& reg,
                 const PlannerQuery& q);

}  // namespace fdb

#endif  // FDB_OPTIMIZER_GREEDY_H_
