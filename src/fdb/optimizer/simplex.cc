#include "fdb/optimizer/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fdb {
namespace {

constexpr double kEps = 1e-9;

// Standard dense tableau simplex on
//   min cᵀx  s.t.  A x - s = b,  x, s ≥ 0   (b ≥ 0 assumed)
// with artificial variables for phase 1. Columns: n structural, m surplus,
// m artificial; rows: m constraints + 1 objective row.
class Tableau {
 public:
  Tableau(const std::vector<std::vector<double>>& a,
          const std::vector<double>& b, const std::vector<double>& c)
      : m_(static_cast<int>(a.size())),
        n_(static_cast<int>(c.size())),
        cols_(n_ + 2 * m_ + 1),
        t_(m_ + 1, std::vector<double>(cols_, 0.0)),
        basis_(m_, 0),
        cost_(c) {
    for (int i = 0; i < m_; ++i) {
      if (b[i] < 0) {
        throw std::invalid_argument("SolveCoveringLp: negative rhs");
      }
      for (int j = 0; j < n_; ++j) t_[i][j] = a[i][j];
      t_[i][n_ + i] = -1.0;       // surplus
      t_[i][n_ + m_ + i] = 1.0;   // artificial
      t_[i][cols_ - 1] = b[i];
      basis_[i] = n_ + m_ + i;
    }
  }

  // Phase 1: minimise the sum of artificials. Returns false if infeasible.
  bool Phase1() {
    // Objective row: sum of artificial rows, negated reduced costs.
    for (int j = 0; j < cols_; ++j) {
      double s = 0;
      for (int i = 0; i < m_; ++i) s += t_[i][j];
      t_[m_][j] = -s;
    }
    for (int i = 0; i < m_; ++i) t_[m_][n_ + m_ + i] = 0.0;
    Iterate(/*restrict_artificials=*/false);
    double obj = -t_[m_][cols_ - 1];
    if (obj > kEps) return false;
    // Drive any artificial variables out of the basis if possible.
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_ + m_) continue;
      for (int j = 0; j < n_ + m_; ++j) {
        if (std::abs(t_[i][j]) > kEps) {
          Pivot(i, j);
          break;
        }
      }
    }
    return true;
  }

  // Phase 2: minimise the real objective.
  void Phase2() {
    for (int j = 0; j < cols_; ++j) t_[m_][j] = 0.0;
    for (int j = 0; j < n_; ++j) t_[m_][j] = cost_[j];
    // Express the objective in terms of non-basic variables.
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_ && std::abs(cost_[basis_[i]]) > kEps) {
        double f = cost_[basis_[i]];
        for (int j = 0; j < cols_; ++j) t_[m_][j] -= f * t_[i][j];
      }
    }
    Iterate(/*restrict_artificials=*/true);
  }

  LpSolution Extract() const {
    LpSolution s;
    s.x.assign(n_, 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) s.x[basis_[i]] = t_[i][cols_ - 1];
    }
    s.objective = 0.0;
    for (int j = 0; j < n_; ++j) s.objective += cost_[j] * s.x[j];
    return s;
  }

 private:
  void Pivot(int row, int col) {
    double p = t_[row][col];
    for (int j = 0; j < cols_; ++j) t_[row][j] /= p;
    for (int i = 0; i <= m_; ++i) {
      if (i == row || std::abs(t_[i][col]) < kEps) continue;
      double f = t_[i][col];
      for (int j = 0; j < cols_; ++j) t_[i][j] -= f * t_[row][j];
    }
    basis_[row] = col;
  }

  void Iterate(bool restrict_artificials) {
    int limit = restrict_artificials ? n_ + m_ : n_ + 2 * m_;
    while (true) {
      // Bland's rule: entering variable = lowest index with negative
      // reduced cost (we minimise, tableau row holds reduced costs).
      int col = -1;
      for (int j = 0; j < limit; ++j) {
        if (t_[m_][j] < -kEps) {
          col = j;
          break;
        }
      }
      if (col < 0) return;  // optimal
      int row = -1;
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (t_[i][col] > kEps) {
          double ratio = t_[i][cols_ - 1] / t_[i][col];
          if (ratio < best - kEps ||
              (ratio < best + kEps && (row < 0 || basis_[i] < basis_[row]))) {
            best = ratio;
            row = i;
          }
        }
      }
      if (row < 0) {
        // Unbounded: cannot happen for covering LPs with c ≥ 0, but guard.
        throw std::logic_error("SolveCoveringLp: unbounded program");
      }
      Pivot(row, col);
    }
  }

  int m_, n_, cols_;
  std::vector<std::vector<double>> t_;
  std::vector<int> basis_;
  std::vector<double> cost_;
};

}  // namespace

std::optional<LpSolution> SolveCoveringLp(
    const std::vector<std::vector<double>>& a, const std::vector<double>& b,
    const std::vector<double>& c) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("SolveCoveringLp: A/b size mismatch");
  }
  for (const auto& row : a) {
    if (row.size() != c.size()) {
      throw std::invalid_argument("SolveCoveringLp: A/c size mismatch");
    }
  }
  if (a.empty()) return LpSolution{0.0, std::vector<double>(c.size(), 0.0)};
  Tableau t(a, b, c);
  if (!t.Phase1()) return std::nullopt;
  t.Phase2();
  return t.Extract();
}

}  // namespace fdb
