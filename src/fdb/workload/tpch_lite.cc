#include "fdb/workload/tpch_lite.h"

#include <cmath>
#include <random>

#include "fdb/core/build.h"

namespace fdb {

TpchLite GenerateTpchLite(Database* db, const TpchLiteParams& p) {
  std::mt19937_64 rng(p.seed);
  AttributeRegistry& reg = db->registry();
  AttrId custkey = reg.Intern("custkey");
  AttrId nation = reg.Intern("nation");
  AttrId orderkey = reg.Intern("orderkey");
  AttrId odate = reg.Intern("odate");
  AttrId partkey = reg.Intern("partkey");
  AttrId quantity = reg.Intern("quantity");
  AttrId extprice = reg.Intern("extprice");
  AttrId brand = reg.Intern("brand");

  int64_t customers = static_cast<int64_t>(p.num_customers) * p.scale;
  int64_t parts = static_cast<int64_t>(
      p.num_parts * std::sqrt(static_cast<double>(p.scale)));

  TpchLite w;
  w.customer = Relation{RelSchema({custkey, nation})};
  w.orders = Relation{RelSchema({orderkey, custkey, odate})};
  w.lineitem = Relation{RelSchema({orderkey, partkey, quantity, extprice})};
  w.part = Relation{RelSchema({partkey, brand})};

  std::uniform_int_distribution<int64_t> pick_nation(0, p.num_nations - 1);
  std::uniform_int_distribution<int64_t> pick_date(0, 364);
  std::uniform_int_distribution<int64_t> pick_part(0, parts - 1);
  std::uniform_int_distribution<int64_t> pick_qty(1, p.max_quantity);
  std::uniform_int_distribution<int64_t> pick_price(1, p.max_price);
  std::uniform_int_distribution<int64_t> pick_brand(0, p.num_brands - 1);
  std::binomial_distribution<int> norders(2 * p.orders_per_customer, 0.5);
  std::binomial_distribution<int> nlines(2 * p.lines_per_order, 0.5);

  int64_t next_order = 0;
  for (int64_t c = 0; c < customers; ++c) {
    w.customer.Add({Value(c), Value(pick_nation(rng))});
    int orders = norders(rng);
    for (int o = 0; o < orders; ++o) {
      int64_t ok = next_order++;
      w.orders.Add({Value(ok), Value(c), Value(pick_date(rng))});
      int lines = nlines(rng);
      for (int l = 0; l < lines; ++l) {
        w.lineitem.Add({Value(ok), Value(pick_part(rng)), Value(pick_qty(rng)),
                        Value(pick_price(rng))});
      }
    }
  }
  w.lineitem.SortAndDedup();
  for (int64_t pk = 0; pk < parts; ++pk) {
    w.part.Add({Value(pk), Value(pick_brand(rng))});
  }

  FTree t;
  int n_cust = t.AddNode({custkey}, -1);
  t.AddNode({nation}, n_cust);
  int n_order = t.AddNode({orderkey}, n_cust);
  t.AddNode({odate}, n_order);
  int n_part = t.AddNode({partkey}, n_order);
  t.AddNode({brand}, n_part);
  int n_qty = t.AddNode({quantity}, n_part);
  t.AddNode({extprice}, n_qty);
  t.AddEdge({{custkey, nation}, static_cast<double>(w.customer.size()),
             "Customer"});
  t.AddEdge({{orderkey, custkey, odate},
             static_cast<double>(w.orders.size()), "COrders"});
  t.AddEdge({{orderkey, partkey, quantity, extprice},
             static_cast<double>(w.lineitem.size()), "Lineitem"});
  t.AddEdge({{partkey, brand}, static_cast<double>(w.part.size()), "Part"});
  w.ftree = std::move(t);
  return w;
}

int64_t InstallTpchLite(Database* db, const TpchLiteParams& p,
                        const std::string& view_name) {
  TpchLite w = GenerateTpchLite(db, p);
  Factorisation view = FactoriseJoin(
      w.ftree, {&w.customer, &w.orders, &w.lineitem, &w.part});
  int64_t singletons = view.CountSingletons();
  db->AddRelation("Customer", std::move(w.customer));
  db->AddRelation("COrders", std::move(w.orders));
  db->AddRelation("Lineitem", std::move(w.lineitem));
  db->AddRelation("Part", std::move(w.part));
  db->AddView(view_name, std::move(view));
  return singletons;
}

}  // namespace fdb
