#ifndef FDB_WORKLOAD_TPCH_LITE_H_
#define FDB_WORKLOAD_TPCH_LITE_H_

#include <cstdint>

#include "fdb/engine/database.h"

namespace fdb {

/// A TPC-H-flavoured second workload, exercising a deeper f-tree than the
/// paper's three-relation schema:
///
///   Customer(custkey, nation)
///   COrders(orderkey, custkey, odate)
///   Lineitem(orderkey, partkey, quantity, extprice)
///   Part(partkey, brand)
///
/// natural-joined along custkey → orderkey → partkey. The induced f-tree
///
///   custkey → { nation, orderkey → { odate, partkey → { brand,
///               quantity → extprice } } }
///
/// has four branching points; the factorised view of the full join grows
/// with the number of line items, while the flat join multiplies customers
/// × orders × lineitems × parts.
struct TpchLiteParams {
  int scale = 1;
  int num_customers = 50;      ///< ×scale
  int num_nations = 10;
  int orders_per_customer = 4; ///< average, binomial
  int num_parts = 40;          ///< ×√scale
  int num_brands = 8;
  int lines_per_order = 4;     ///< average, binomial
  int max_quantity = 50;
  int max_price = 1000;
  uint64_t seed = 7;
};

struct TpchLite {
  Relation customer;  ///< (custkey, nation)
  Relation orders;    ///< (orderkey, custkey, odate)
  Relation lineitem;  ///< (orderkey, partkey, quantity, extprice)
  Relation part;      ///< (partkey, brand)
  FTree ftree;        ///< the branching tree above
};

/// Generates the dataset, interning attributes into `db`'s registry.
TpchLite GenerateTpchLite(Database* db, const TpchLiteParams& p);

/// Installs the four relations plus the factorised view `view_name` of
/// their natural join. Returns the view's singleton count.
int64_t InstallTpchLite(Database* db, const TpchLiteParams& p,
                        const std::string& view_name = "TL");

}  // namespace fdb

#endif  // FDB_WORKLOAD_TPCH_LITE_H_
