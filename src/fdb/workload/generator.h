#ifndef FDB_WORKLOAD_GENERATOR_H_
#define FDB_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "fdb/engine/database.h"

namespace fdb {

/// Parameters of the synthetic dataset of paper §6: Orders(customer, date,
/// package), Packages(package, item), Items(item, price), controlled by a
/// scale factor `s`. With the paper's constants the flat join grows roughly
/// one power of `s` faster than its factorisation over the tree T
/// (package → {date → customer, item → price}), which is what the
/// experiments measure. SmallParams() keeps the same structure with
/// laptop-sized constants (see DESIGN.md §3).
struct WorkloadParams {
  int scale = 1;
  int num_dates = 800;           ///< dates with orders: 800·s in the paper
  int num_customers = 25;        ///< customers (scaled so |Orders| ~ s²)
  double date_prob = 0.1;        ///< P(customer orders on a date): avg 80·s
                                 ///< order dates per customer at 800·s dates
  double orders_per_date = 2.0;  ///< avg orders per (customer, order date)
  int num_items = 100;           ///< 100·√s in the paper
  int num_packages = 40;         ///< 40·√s
  int items_per_package = 20;    ///< 20·√s
  int max_price = 50;
  uint64_t seed = 42;
};

/// The paper's constants at scale `s`.
WorkloadParams PaperParams(int scale);

/// Laptop-sized constants at scale `s`: same shape, ~50× smaller.
WorkloadParams SmallParams(int scale);

/// The generated database fragment.
struct Workload {
  Relation orders;    ///< (customer, date, package)
  Relation packages;  ///< (package, item)
  Relation items;     ///< (item, price)
  FTree ftree;        ///< T: package → {date → customer, item → price}
};

/// Generates the dataset, interning its attributes in `db`'s registry.
/// Relations are duplicate-free (set semantics).
Workload GenerateWorkload(Database* db, const WorkloadParams& p);

/// Installs the workload into `db`: relations "Orders", "Packages",
/// "Items", plus the factorised materialised view `view_name`
/// (R1 = Orders ⋈ Packages ⋈ Items over T). Returns the view's singleton
/// count (the paper's size measure).
int64_t InstallWorkload(Database* db, const WorkloadParams& p,
                        const std::string& view_name = "R1");

}  // namespace fdb

#endif  // FDB_WORKLOAD_GENERATOR_H_
