#include "fdb/workload/random_db.h"

#include <random>
#include <stdexcept>

namespace fdb {

RandomDb GenerateChainDb(Database* db, const std::string& prefix,
                         const RandomDbSpec& spec) {
  if (spec.arity < 2) {
    throw std::invalid_argument("GenerateChainDb: arity must be >= 2");
  }
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int64_t> pick(0, spec.domain - 1);

  RandomDb out;
  // Chain attributes: relation r covers positions [r·(arity-1), …] so that
  // consecutive relations share exactly one attribute.
  int total_attrs = spec.num_relations * (spec.arity - 1) + 1;
  for (int i = 0; i < total_attrs; ++i) {
    out.attr_names.push_back(prefix + "a" + std::to_string(i));
  }
  for (int r = 0; r < spec.num_relations; ++r) {
    std::vector<AttrId> attrs;
    for (int k = 0; k < spec.arity; ++k) {
      attrs.push_back(
          db->registry().Intern(out.attr_names[r * (spec.arity - 1) + k]));
    }
    Relation rel{RelSchema(std::move(attrs))};
    for (int i = 0; i < spec.rows; ++i) {
      Tuple t;
      for (int k = 0; k < spec.arity; ++k) t.push_back(Value(pick(rng)));
      rel.Add(std::move(t));
    }
    rel.SortAndDedup();
    std::string name = prefix + "R" + std::to_string(r);
    out.relation_names.push_back(name);
    db->AddRelation(name, std::move(rel));
  }
  return out;
}

RandomDb GenerateStarDb(Database* db, const std::string& prefix,
                        const RandomDbSpec& spec) {
  if (spec.num_relations < 2) {
    throw std::invalid_argument("GenerateStarDb: need >= 2 relations");
  }
  if (spec.arity < 2) {
    throw std::invalid_argument("GenerateStarDb: arity must be >= 2");
  }
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int64_t> pick(0, spec.domain - 1);

  RandomDb out;
  int satellites = spec.num_relations - 1;
  // Centre attributes: one spoke per satellite (plus fillers up to arity).
  std::vector<std::string> centre_attrs;
  for (int s = 0; s < satellites; ++s) {
    centre_attrs.push_back(prefix + "s" + std::to_string(s));
  }
  for (int k = satellites; k < spec.arity; ++k) {
    centre_attrs.push_back(prefix + "h" + std::to_string(k));
  }
  out.attr_names = centre_attrs;

  auto add_relation = [&](const std::string& name,
                          const std::vector<std::string>& attr_names) {
    std::vector<AttrId> attrs;
    for (const std::string& a : attr_names) {
      attrs.push_back(db->registry().Intern(a));
    }
    Relation rel{RelSchema(std::move(attrs))};
    for (int i = 0; i < spec.rows; ++i) {
      Tuple t;
      for (size_t k = 0; k < attr_names.size(); ++k) {
        t.push_back(Value(pick(rng)));
      }
      rel.Add(std::move(t));
    }
    rel.SortAndDedup();
    out.relation_names.push_back(name);
    db->AddRelation(name, std::move(rel));
  };

  add_relation(prefix + "R0", centre_attrs);
  for (int s = 0; s < satellites; ++s) {
    std::vector<std::string> attrs = {prefix + "s" + std::to_string(s)};
    for (int k = 1; k < spec.arity; ++k) {
      std::string name = prefix + "t" + std::to_string(s) + "_" +
                         std::to_string(k);
      attrs.push_back(name);
      out.attr_names.push_back(name);
    }
    add_relation(prefix + "R" + std::to_string(s + 1), attrs);
  }
  return out;
}

}  // namespace fdb
