#include "fdb/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "fdb/core/build.h"

namespace fdb {

WorkloadParams PaperParams(int scale) {
  WorkloadParams p;
  double rs = std::sqrt(static_cast<double>(scale));
  p.scale = scale;
  p.num_dates = 800 * scale;
  p.num_customers = 25 * scale;
  p.date_prob = 0.1;  // 80·s order dates out of 800·s
  p.orders_per_date = 2.0;
  p.num_items = static_cast<int>(100 * rs);
  p.num_packages = static_cast<int>(40 * rs);
  p.items_per_package = static_cast<int>(20 * rs);
  return p;
}

WorkloadParams SmallParams(int scale) {
  WorkloadParams p;
  double rs = std::sqrt(static_cast<double>(scale));
  p.scale = scale;
  p.num_dates = 80 * scale;
  p.num_customers = 10 * scale;
  p.date_prob = 0.1;
  p.orders_per_date = 2.0;
  p.num_items = static_cast<int>(40 * rs);
  p.num_packages = static_cast<int>(16 * rs);
  p.items_per_package = static_cast<int>(8 * rs);
  return p;
}

Workload GenerateWorkload(Database* db, const WorkloadParams& p) {
  std::mt19937_64 rng(p.seed);
  AttributeRegistry& reg = db->registry();
  AttrId customer = reg.Intern("customer");
  AttrId date = reg.Intern("date");
  AttrId package = reg.Intern("package");
  AttrId item = reg.Intern("item");
  AttrId price = reg.Intern("price");

  Workload w;
  w.orders = Relation{RelSchema({customer, date, package})};
  w.packages = Relation{RelSchema({package, item})};
  w.items = Relation{RelSchema({item, price})};

  // Orders: each customer orders on ~date_prob of the dates; on each order
  // date the number of orders is binomial with the requested mean; each
  // order picks a package uniformly.
  std::bernoulli_distribution orders_today(p.date_prob);
  int binom_n = std::max(1, static_cast<int>(2 * p.orders_per_date));
  std::binomial_distribution<int> norders(binom_n,
                                          p.orders_per_date / binom_n);
  std::uniform_int_distribution<int64_t> pick_package(0, p.num_packages - 1);
  std::vector<Tuple> order_rows;
  for (int64_t c = 0; c < p.num_customers; ++c) {
    for (int64_t d = 0; d < p.num_dates; ++d) {
      if (!orders_today(rng)) continue;
      int n = norders(rng);
      for (int k = 0; k < n; ++k) {
        order_rows.push_back(
            {Value(c), Value(d), Value(pick_package(rng))});
      }
    }
  }
  std::sort(order_rows.begin(), order_rows.end());
  order_rows.erase(std::unique(order_rows.begin(), order_rows.end()),
                   order_rows.end());
  for (Tuple& t : order_rows) w.orders.Add(std::move(t));

  // Packages: each package is a random set of items_per_package items.
  std::vector<int64_t> all_items(p.num_items);
  for (int64_t i = 0; i < p.num_items; ++i) all_items[i] = i;
  for (int64_t g = 0; g < p.num_packages; ++g) {
    std::shuffle(all_items.begin(), all_items.end(), rng);
    int take = std::min<int>(p.items_per_package,
                             static_cast<int>(all_items.size()));
    for (int i = 0; i < take; ++i) {
      w.packages.Add({Value(g), Value(all_items[i])});
    }
  }
  w.packages.SortAndDedup();

  // Items: one price each.
  std::uniform_int_distribution<int64_t> pick_price(1, p.max_price);
  for (int64_t i = 0; i < p.num_items; ++i) {
    w.items.Add({Value(i), Value(pick_price(rng))});
  }

  // The f-tree T of §6: package → {date → customer, item → price}.
  FTree t;
  int n_package = t.AddNode({package}, -1);
  int n_date = t.AddNode({date}, n_package);
  t.AddNode({customer}, n_date);
  int n_item = t.AddNode({item}, n_package);
  t.AddNode({price}, n_item);
  t.AddEdge({{customer, date, package},
             static_cast<double>(w.orders.size()),
             "Orders"});
  t.AddEdge({{item, package}, static_cast<double>(w.packages.size()),
             "Packages"});
  t.AddEdge({{item, price}, static_cast<double>(w.items.size()), "Items"});
  w.ftree = std::move(t);
  return w;
}

int64_t InstallWorkload(Database* db, const WorkloadParams& p,
                        const std::string& view_name) {
  Workload w = GenerateWorkload(db, p);
  Factorisation r1 =
      FactoriseJoin(w.ftree, {&w.orders, &w.packages, &w.items});
  int64_t singletons = r1.CountSingletons();
  db->AddRelation("Orders", std::move(w.orders));
  db->AddRelation("Packages", std::move(w.packages));
  db->AddRelation("Items", std::move(w.items));
  db->AddView(view_name, std::move(r1));
  return singletons;
}

}  // namespace fdb
