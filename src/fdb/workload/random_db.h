#ifndef FDB_WORKLOAD_RANDOM_DB_H_
#define FDB_WORKLOAD_RANDOM_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/engine/database.h"

namespace fdb {

/// Specification of a random chain-join database used by the differential
/// property tests: relations R0(a0…), R1(…), … where consecutive relations
/// share one attribute, so the natural join forms a chain with genuine
/// many-to-many blow-up. Small integer domains force both matches and
/// dangling tuples.
struct RandomDbSpec {
  int num_relations = 3;
  int arity = 3;        ///< attributes per relation (≥ 2)
  int rows = 30;        ///< rows per relation (before dedup)
  int domain = 6;       ///< values drawn from [0, domain)
  uint64_t seed = 1;
};

/// Names of the generated artifacts.
struct RandomDb {
  std::vector<std::string> relation_names;
  std::vector<std::string> attr_names;  ///< all attributes, chain order
};

/// Generates the database into `db`, prefixing every relation and attribute
/// name with `prefix` so repeated instances do not collide in the registry.
RandomDb GenerateChainDb(Database* db, const std::string& prefix,
                         const RandomDbSpec& spec);

/// Star-schema variant: a centre relation R0(h, s1, …, s_{n-1}) sharing one
/// hub or spoke attribute with each satellite Ri(s_i, t_i, …). Natural
/// joins over it produce *branching* f-trees (satellites become sibling
/// subtrees under the hub), exercising the independence machinery that
/// chains cannot reach.
RandomDb GenerateStarDb(Database* db, const std::string& prefix,
                        const RandomDbSpec& spec);

}  // namespace fdb

#endif  // FDB_WORKLOAD_RANDOM_DB_H_
