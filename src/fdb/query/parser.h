#ifndef FDB_QUERY_PARSER_H_
#define FDB_QUERY_PARSER_H_

#include <string>

#include "fdb/query/ast.h"

namespace fdb {

/// Parses the SQL subset of paper §2:
///
///   SELECT [DISTINCT] * | item, ...
///   FROM name, ...
///   [WHERE attr (=|<>|!=|<|<=|>|>=) (attr|const) [AND ...]]
///   [GROUP BY attr, ...]
///   [HAVING (alias | agg(attr)) op const [AND ...]]
///   [ORDER BY attr [ASC|DESC], ...]
///   [LIMIT k]
///
/// where item is `attr [AS alias]` or `agg(attr|*) [AS alias]` with agg one
/// of count, sum, min, max, avg. Keywords are case-insensitive; string
/// constants use single quotes; relations in FROM are natural-joined.
///
/// Throws std::invalid_argument with a position-annotated message on
/// syntax errors.
ParsedQuery ParseSql(const std::string& sql);

}  // namespace fdb

#endif  // FDB_QUERY_PARSER_H_
