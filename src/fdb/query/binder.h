#ifndef FDB_QUERY_BINDER_H_
#define FDB_QUERY_BINDER_H_

#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fdb/engine/database.h"
#include "fdb/query/ast.h"
#include "fdb/relational/agg.h"

namespace fdb {

/// One output column of a bound query, in SELECT order.
struct OutputColumn {
  enum class Kind { kGroup, kAgg, kAvg };
  Kind kind = Kind::kGroup;
  AttrId attr = kInvalidAttr;  ///< group attribute, or the output alias id
  int task = -1;               ///< task index (sum task for kAvg)
  int task2 = -1;              ///< count task for kAvg
};

/// One bound HAVING conjunct, evaluated against the raw
/// (group columns + task columns) result.
struct BoundHaving {
  enum class Kind { kGroupCol, kTask, kAvg };
  Kind kind = Kind::kGroupCol;
  AttrId attr = kInvalidAttr;  ///< for kGroupCol
  int task = -1;
  int task2 = -1;  ///< count task for kAvg
  CmpOp op = CmpOp::kEq;
  Value rhs;
};

/// A validated query with every name resolved to attribute ids, ready for
/// both engines. `tasks` are deduplicated; `task_ids` name their columns.
struct BoundQuery {
  std::vector<std::string> from;
  bool select_star = false;
  /// Carried through from ParsedQuery: attach an execution trace.
  bool explain_analyze = false;
  /// True when the query needs set semantics on a projection (DISTINCT, a
  /// plain-column subset selection, or GROUP BY without aggregates).
  bool distinct_projection = false;

  std::vector<std::pair<AttrId, AttrId>> eq_selections;
  std::vector<std::tuple<AttrId, CmpOp, Value>> const_selections;

  std::vector<AttrId> group;  ///< group-by / distinct-projection attributes
  std::vector<AggTask> tasks;
  std::vector<AttrId> task_ids;
  std::vector<OutputColumn> outputs;
  std::vector<BoundHaving> having;

  std::vector<SortKey> order_by;  ///< group attrs or task output ids
  std::optional<int64_t> limit;

  /// Statement fingerprint: an FNV-1a hash of the normalized bound form
  /// (names canonicalised to attribute ids, constants stripped, EXPLAIN
  /// ANALYZE transparent). Two queries differing only in literal values
  /// share a fingerprint; the statement store aggregates on it. 0 means
  /// "not fingerprinted".
  uint64_t fingerprint = 0;
  /// Normalized statement text matching the fingerprint: registry names,
  /// `?` in place of every constant.
  std::string normalized_sql;

  bool has_aggregates() const { return !tasks.empty(); }
};

/// Resolves and validates a parsed query against the database (relation or
/// view names in FROM, column names, SQL grouping rules, ORDER BY columns
/// restricted to output columns). Throws std::invalid_argument with a
/// descriptive message on semantic errors. Interns output aliases in the
/// database registry.
BoundQuery Bind(const ParsedQuery& q, Database* db);

/// Builds the final output relation from a raw relation whose schema
/// contains all group attributes and task columns (in any order): applies
/// HAVING, computes avg columns, and projects to SELECT order. Preserves
/// row order; stops after `limit_rows` output rows if provided.
Relation AssembleOutputs(const BoundQuery& q, const Relation& raw,
                         std::optional<int64_t> limit_rows = std::nullopt);

}  // namespace fdb

#endif  // FDB_QUERY_BINDER_H_
