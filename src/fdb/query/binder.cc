#include "fdb/query/binder.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fdb {
namespace {

[[noreturn]] void BindError(const std::string& what) {
  throw std::invalid_argument("bind error: " + what);
}

// Interns `base` as an output column name, appending "#n" only when the
// name is already taken *within this query* (as another task column or
// output). Re-binding the same SQL therefore produces the same schema.
AttrId UniqueAlias(AttributeRegistry* reg, const BoundQuery& q,
                   const std::string& base) {
  auto taken = [&q](AttrId id) {
    for (AttrId t : q.task_ids) {
      if (t == id) return true;
    }
    for (const OutputColumn& c : q.outputs) {
      if (c.attr == id) return true;
    }
    return false;
  };
  AttrId id = reg->Intern(base);
  if (!taken(id)) return id;
  for (int i = 2;; ++i) {
    AttrId alt = reg->Intern(base + "#" + std::to_string(i));
    if (!taken(alt)) return alt;
  }
}

AggFn ToAggFn(ParseAggFn fn) {
  switch (fn) {
    case ParseAggFn::kCount:
      return AggFn::kCount;
    case ParseAggFn::kSum:
      return AggFn::kSum;
    case ParseAggFn::kMin:
      return AggFn::kMin;
    case ParseAggFn::kMax:
      return AggFn::kMax;
    case ParseAggFn::kAvg:
      break;
  }
  throw std::logic_error("ToAggFn: avg must be expanded by the caller");
}

// FNV-1a over a tagged byte stream: every clause writes a distinct tag
// byte before its payload, so reordered clauses and empty-vs-missing
// clauses cannot collide.
struct Fingerprinter {
  uint64_t h = 14695981039346656037ull;

  void Byte(uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void Tag(char t) { Byte(static_cast<uint8_t>(t)); }
  void I64(int64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (i * 8)));
  }
  void Str(const std::string& s) {
    I64(static_cast<int64_t>(s.size()));
    for (char c : s) Byte(static_cast<uint8_t>(c));
  }
};

// Computes the statement fingerprint and normalized text from the bound
// form. Constants are excluded from the hash and rendered as `?`, so
// `price < 10` and `price < 99` aggregate together; `explain_analyze` is
// excluded so an analyzed run lands on the plain statement's entry.
void ComputeFingerprint(BoundQuery* q, const AttributeRegistry& reg) {
  Fingerprinter fp;
  std::string text = "SELECT ";
  if (q->select_star) {
    text += "*";
  } else {
    for (size_t i = 0; i < q->outputs.size(); ++i) {
      if (i > 0) text += ", ";
      text += reg.Name(q->outputs[i].attr);
    }
  }
  text += " FROM ";
  fp.Tag('f');
  for (size_t i = 0; i < q->from.size(); ++i) {
    if (i > 0) text += ", ";
    text += q->from[i];
    fp.Str(q->from[i]);
  }
  fp.Tag('s');
  fp.Byte(q->select_star ? 1 : 0);
  fp.Byte(q->distinct_projection ? 1 : 0);
  if (!q->eq_selections.empty() || !q->const_selections.empty()) {
    text += " WHERE ";
    bool first = true;
    fp.Tag('w');
    for (const auto& [a, b] : q->eq_selections) {
      if (!first) text += " AND ";
      first = false;
      text += reg.Name(a) + " = " + reg.Name(b);
      fp.I64(a);
      fp.I64(b);
    }
    for (const auto& [a, op, v] : q->const_selections) {
      if (!first) text += " AND ";
      first = false;
      text += reg.Name(a) + " " + CmpOpName(op) + " ?";
      fp.Tag('c');
      fp.I64(a);
      fp.Byte(static_cast<uint8_t>(op));
      // The constant's value deliberately does not feed the hash.
    }
  }
  fp.Tag('g');
  // Plain projections carry their columns in `group` too; the clause is
  // rendered only for genuine GROUP BY shapes, but the ids always feed
  // the hash (they distinguish projections).
  if (!q->group.empty() && q->has_aggregates()) {
    text += " GROUP BY ";
    for (size_t i = 0; i < q->group.size(); ++i) {
      if (i > 0) text += ", ";
      text += reg.Name(q->group[i]);
    }
  }
  for (AttrId a : q->group) fp.I64(a);
  fp.Tag('t');
  for (size_t i = 0; i < q->tasks.size(); ++i) {
    fp.Byte(static_cast<uint8_t>(q->tasks[i].fn));
    fp.I64(q->tasks[i].source);
    fp.I64(q->task_ids[i]);
  }
  fp.Tag('o');
  for (const OutputColumn& c : q->outputs) {
    fp.Byte(static_cast<uint8_t>(c.kind));
    fp.I64(c.attr);
    fp.I64(c.task);
    fp.I64(c.task2);
  }
  if (!q->having.empty()) {
    text += " HAVING ";
    fp.Tag('h');
    for (size_t i = 0; i < q->having.size(); ++i) {
      const BoundHaving& b = q->having[i];
      if (i > 0) text += " AND ";
      switch (b.kind) {
        case BoundHaving::Kind::kGroupCol:
          text += reg.Name(b.attr);
          break;
        case BoundHaving::Kind::kTask:
        case BoundHaving::Kind::kAvg:
          text += reg.Name(q->task_ids[b.task]);
          break;
      }
      text += " " + CmpOpName(b.op) + " ?";
      fp.Byte(static_cast<uint8_t>(b.kind));
      fp.I64(b.attr);
      fp.I64(b.task);
      fp.I64(b.task2);
      fp.Byte(static_cast<uint8_t>(b.op));
      // b.rhs (the constant) stays out of the hash.
    }
  }
  if (!q->order_by.empty()) {
    text += " ORDER BY ";
    fp.Tag('r');
    for (size_t i = 0; i < q->order_by.size(); ++i) {
      if (i > 0) text += ", ";
      text += reg.Name(q->order_by[i].attr);
      if (q->order_by[i].dir == SortDir::kDesc) text += " DESC";
      fp.I64(q->order_by[i].attr);
      fp.Byte(q->order_by[i].dir == SortDir::kDesc ? 1 : 0);
    }
  }
  if (q->limit.has_value()) {
    text += " LIMIT ?";
    fp.Tag('l');  // presence only; the limit value is a constant
  }
  q->normalized_sql = std::move(text);
  q->fingerprint = fp.h == 0 ? 1 : fp.h;  // reserve 0 for "none"
}

}  // namespace

BoundQuery Bind(const ParsedQuery& q, Database* db) {
  BoundQuery out;
  out.from = q.from;
  out.select_star = q.select_star;
  out.explain_analyze = q.explain_analyze;
  out.limit = q.limit;

  // Collect the available attributes from the FROM sources.
  std::vector<AttrId> avail;
  for (const std::string& name : q.from) {
    std::vector<AttrId> attrs;
    if (const Relation* r = db->relation(name)) {
      attrs = r->schema().attrs();
    } else if (std::shared_ptr<const Factorisation> v =
                   db->ViewSnapshot(name)) {
      // Snapshot held across the schema read (concurrent swap safety).
      attrs = v->OutputSchema().attrs();
    } else if (std::optional<Relation> sys = db->SystemTable(name)) {
      // Virtual introspection tables (fdb.statements, fdb.events, ...):
      // materialised fresh at execution time; here only the schema counts.
      attrs = sys->schema().attrs();
    } else {
      BindError("unknown relation or view '" + name + "'");
    }
    for (AttrId a : attrs) {
      if (std::find(avail.begin(), avail.end(), a) == avail.end()) {
        avail.push_back(a);
      }
    }
  }
  auto resolve = [&](const std::string& col) {
    auto id = db->registry().Find(col);
    if (!id.has_value() ||
        std::find(avail.begin(), avail.end(), *id) == avail.end()) {
      BindError("unknown column '" + col + "'");
    }
    return *id;
  };

  // WHERE.
  for (const WherePred& p : q.where) {
    AttrId lhs = resolve(p.lhs);
    if (p.rhs_is_attr) {
      if (p.op != CmpOp::kEq) {
        BindError("attribute-to-attribute comparisons must be equalities");
      }
      AttrId rhs = resolve(p.rhs_attr);
      if (lhs != rhs) out.eq_selections.emplace_back(lhs, rhs);
    } else {
      out.const_selections.emplace_back(lhs, p.op, p.rhs_const);
    }
  }

  // SELECT list and GROUP BY.
  bool any_agg = false;
  for (const SelectItem& it : q.items) {
    if (it.agg.has_value()) any_agg = true;
  }
  if (!q.group_by.empty() || any_agg) {
    // Aggregate query (GROUP BY without aggregates = distinct projection,
    // still routed through the grouping machinery).
    for (const std::string& g : q.group_by) {
      AttrId a = resolve(g);
      if (std::find(out.group.begin(), out.group.end(), a) ==
          out.group.end()) {
        out.group.push_back(a);
      }
    }
    auto add_task = [&](AggFn fn, AttrId src, const std::string& name) {
      AggTask t{fn, src};
      for (size_t i = 0; i < out.tasks.size(); ++i) {
        if (out.tasks[i] == t) return static_cast<int>(i);
      }
      out.tasks.push_back(t);
      out.task_ids.push_back(UniqueAlias(&db->registry(), out, name));
      return static_cast<int>(out.tasks.size()) - 1;
    };
    for (const SelectItem& it : q.items) {
      OutputColumn col;
      if (!it.agg.has_value()) {
        AttrId a = resolve(it.column);
        if (std::find(out.group.begin(), out.group.end(), a) ==
            out.group.end()) {
          BindError("column '" + it.column +
                    "' must appear in the GROUP BY clause");
        }
        col.kind = OutputColumn::Kind::kGroup;
        col.attr = a;
      } else if (*it.agg == ParseAggFn::kAvg) {
        AttrId src = resolve(it.column);
        col.kind = OutputColumn::Kind::kAvg;
        col.task = add_task(AggFn::kSum, src, "sum(" + it.column + ")");
        col.task2 = add_task(AggFn::kCount, kInvalidAttr, "count(*)");
        col.attr = UniqueAlias(
            &db->registry(), out,
            it.alias.empty() ? "avg(" + it.column + ")" : it.alias);
      } else {
        AggFn fn = ToAggFn(*it.agg);
        AttrId src = kInvalidAttr;
        if (fn != AggFn::kCount) {
          src = resolve(it.column);
        } else if (!it.column.empty()) {
          resolve(it.column);  // validate; count(a) == count(*) without NULLs
        }
        std::string display =
            AggFnName(fn) + "(" + (it.column.empty() ? "*" : it.column) + ")";
        col.kind = OutputColumn::Kind::kAgg;
        col.task = add_task(fn, src, it.alias.empty() ? display : it.alias);
        col.attr = it.alias.empty() ? out.task_ids[col.task]
                                    : db->registry().Intern(it.alias);
        // If the task pre-existed under a different name, alias it anyway.
        if (!it.alias.empty()) {
          out.task_ids[col.task] = col.attr;
        }
      }
      out.outputs.push_back(col);
    }
    if (!any_agg) out.distinct_projection = true;

    // HAVING: resolve against aliases, group columns, or fresh tasks.
    for (const HavingPred& h : q.having) {
      BoundHaving b;
      b.op = h.op;
      b.rhs = h.rhs;
      if (h.agg.has_value()) {
        if (*h.agg == ParseAggFn::kAvg) {
          AttrId src = resolve(h.column);
          b.kind = BoundHaving::Kind::kAvg;
          b.task = add_task(AggFn::kSum, src, "sum(" + h.column + ")");
          b.task2 = add_task(AggFn::kCount, kInvalidAttr, "count(*)");
        } else {
          AggFn fn = ToAggFn(*h.agg);
          AttrId src = fn == AggFn::kCount ? kInvalidAttr : resolve(h.column);
          std::string display =
              AggFnName(fn) + "(" + (h.column.empty() ? "*" : h.column) + ")";
          b.kind = BoundHaving::Kind::kTask;
          b.task = add_task(fn, src, display);
        }
      } else {
        // An alias of a select item, or a grouping column.
        auto id = db->registry().Find(h.column);
        int task = -1;
        if (id.has_value()) {
          for (size_t i = 0; i < out.task_ids.size(); ++i) {
            if (out.task_ids[i] == *id) task = static_cast<int>(i);
          }
        }
        if (task >= 0) {
          b.kind = BoundHaving::Kind::kTask;
          b.task = task;
        } else {
          AttrId a = resolve(h.column);
          if (std::find(out.group.begin(), out.group.end(), a) ==
              out.group.end()) {
            BindError("HAVING column '" + h.column +
                      "' is neither an aggregate alias nor grouped");
          }
          b.kind = BoundHaving::Kind::kGroupCol;
          b.attr = a;
        }
      }
      out.having.push_back(b);
    }
  } else {
    // Select-project-join query.
    if (!q.having.empty()) {
      BindError("HAVING requires GROUP BY or aggregates");
    }
    if (q.select_star) {
      for (AttrId a : avail) {
        out.outputs.push_back(
            {OutputColumn::Kind::kGroup, a, -1, -1});
      }
      out.distinct_projection = false;
    } else {
      for (const SelectItem& it : q.items) {
        AttrId a = resolve(it.column);
        out.outputs.push_back({OutputColumn::Kind::kGroup, a, -1, -1});
        if (std::find(out.group.begin(), out.group.end(), a) ==
            out.group.end()) {
          out.group.push_back(a);
        }
      }
      // A plain projection has set semantics (relational algebra π);
      // DISTINCT makes it explicit.
      out.distinct_projection = true;
    }
  }

  // ORDER BY: restricted to output columns, so both engines can realise it.
  for (const OrderItem& o : q.order_by) {
    auto id = db->registry().Find(o.column);
    if (!id.has_value()) BindError("unknown ORDER BY column '" + o.column + "'");
    bool in_outputs = false;
    for (const OutputColumn& c : out.outputs) {
      if (c.attr == *id) in_outputs = true;
    }
    if (!in_outputs && q.select_star) {
      in_outputs =
          std::find(avail.begin(), avail.end(), *id) != avail.end();
    }
    if (!in_outputs) {
      BindError("ORDER BY column '" + o.column +
                "' must be one of the output columns");
    }
    out.order_by.push_back({*id, o.dir});
  }

  ComputeFingerprint(&out, db->registry());
  return out;
}

Relation AssembleOutputs(const BoundQuery& q, const Relation& raw,
                         std::optional<int64_t> limit_rows) {
  // Resolve positions of group attributes and task columns in `raw`.
  std::vector<int> task_pos(q.tasks.size(), -1);
  for (size_t t = 0; t < q.tasks.size(); ++t) {
    task_pos[t] = raw.schema().IndexOf(q.task_ids[t]);
    if (task_pos[t] < 0) {
      throw std::logic_error("AssembleOutputs: missing task column");
    }
  }
  std::vector<int> col_pos;
  for (const OutputColumn& c : q.outputs) {
    col_pos.push_back(c.kind == OutputColumn::Kind::kGroup
                          ? raw.schema().IndexOf(c.attr)
                          : -1);
    if (c.kind == OutputColumn::Kind::kGroup && col_pos.back() < 0) {
      throw std::logic_error("AssembleOutputs: missing group column");
    }
  }
  std::vector<int> having_pos;
  for (const BoundHaving& h : q.having) {
    having_pos.push_back(h.kind == BoundHaving::Kind::kGroupCol
                             ? raw.schema().IndexOf(h.attr)
                             : -1);
  }

  std::vector<AttrId> out_attrs;
  for (const OutputColumn& c : q.outputs) out_attrs.push_back(c.attr);
  Relation out{RelSchema(std::move(out_attrs))};

  auto avg_of = [&](const Tuple& row, int sum_task, int cnt_task) {
    double s = row[task_pos[sum_task]].numeric();
    double c = row[task_pos[cnt_task]].numeric();
    return Value(s / c);
  };

  for (const Tuple& row : raw.rows()) {
    if (limit_rows.has_value() && out.size() >= *limit_rows) break;
    bool keep = true;
    for (size_t h = 0; h < q.having.size() && keep; ++h) {
      const BoundHaving& b = q.having[h];
      Value lhs;
      switch (b.kind) {
        case BoundHaving::Kind::kGroupCol:
          lhs = row[having_pos[h]];
          break;
        case BoundHaving::Kind::kTask:
          lhs = row[task_pos[b.task]];
          break;
        case BoundHaving::Kind::kAvg:
          lhs = avg_of(row, b.task, b.task2);
          break;
      }
      keep = EvalCmp(lhs, b.op, b.rhs);
    }
    if (!keep) continue;
    Tuple t;
    t.reserve(q.outputs.size());
    for (size_t c = 0; c < q.outputs.size(); ++c) {
      const OutputColumn& col = q.outputs[c];
      switch (col.kind) {
        case OutputColumn::Kind::kGroup:
          t.push_back(row[col_pos[c]]);
          break;
        case OutputColumn::Kind::kAgg:
          t.push_back(row[task_pos[col.task]]);
          break;
        case OutputColumn::Kind::kAvg:
          t.push_back(avg_of(row, col.task, col.task2));
          break;
      }
    }
    out.Add(std::move(t));
  }
  return out;
}

}  // namespace fdb
