#include "fdb/query/parser.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace fdb {
namespace {

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kStar,
  kComma,
  kLParen,
  kRParen,
  kOp,   // comparison operator
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;  // identifier (lower-cased keywords kept as written)
  Value value;       // for numbers / strings
  CmpOp op = CmpOp::kEq;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& s) : s_(s) { Advance(); }

  const Token& peek() const { return tok_; }

  Token Take() {
    Token t = tok_;
    Advance();
    return t;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::invalid_argument("SQL parse error at position " +
                                std::to_string(i_) + ": " + what);
  }

  void Advance() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    tok_.pos = i_;
    if (i_ >= s_.size()) {
      tok_ = {Tok::kEnd, "", {}, CmpOp::kEq, i_};
      return;
    }
    char c = s_[i_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) ||
              s_[j] == '_' || s_[j] == '.' || s_[j] == '#')) {
        ++j;
      }
      tok_ = {Tok::kIdent, s_.substr(i_, j - i_), {}, CmpOp::kEq, i_};
      i_ = j;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[i_ + 1])))) {
      size_t j = i_ + 1;
      bool is_double = false;
      while (j < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[j])) ||
              s_[j] == '.')) {
        if (s_[j] == '.') is_double = true;
        ++j;
      }
      std::string num = s_.substr(i_, j - i_);
      Value v = is_double ? Value(std::stod(num))
                          : Value(static_cast<int64_t>(std::stoll(num)));
      tok_ = {Tok::kNumber, num, std::move(v), CmpOp::kEq, i_};
      i_ = j;
      return;
    }
    if (c == '\'') {
      size_t j = i_ + 1;
      while (j < s_.size() && s_[j] != '\'') ++j;
      if (j >= s_.size()) Fail("unterminated string literal");
      tok_ = {Tok::kString, s_.substr(i_ + 1, j - i_ - 1),
              Value(s_.substr(i_ + 1, j - i_ - 1)), CmpOp::kEq, i_};
      i_ = j + 1;
      return;
    }
    auto two = s_.substr(i_, 2);
    if (two == "<>" || two == "!=") {
      tok_ = {Tok::kOp, two, {}, CmpOp::kNe, i_};
      i_ += 2;
      return;
    }
    if (two == "<=") {
      tok_ = {Tok::kOp, two, {}, CmpOp::kLe, i_};
      i_ += 2;
      return;
    }
    if (two == ">=") {
      tok_ = {Tok::kOp, two, {}, CmpOp::kGe, i_};
      i_ += 2;
      return;
    }
    switch (c) {
      case '=':
        tok_ = {Tok::kOp, "=", {}, CmpOp::kEq, i_};
        break;
      case '<':
        tok_ = {Tok::kOp, "<", {}, CmpOp::kLt, i_};
        break;
      case '>':
        tok_ = {Tok::kOp, ">", {}, CmpOp::kGt, i_};
        break;
      case '*':
        tok_ = {Tok::kStar, "*", {}, CmpOp::kEq, i_};
        break;
      case ',':
        tok_ = {Tok::kComma, ",", {}, CmpOp::kEq, i_};
        break;
      case '(':
        tok_ = {Tok::kLParen, "(", {}, CmpOp::kEq, i_};
        break;
      case ')':
        tok_ = {Tok::kRParen, ")", {}, CmpOp::kEq, i_};
        break;
      case ';':
        // Trailing statement separator: skip and continue.
        ++i_;
        Advance();
        return;
      default:
        Fail(std::string("unexpected character '") + c + "'");
    }
    ++i_;
  }

  const std::string& s_;
  size_t i_ = 0;
  Token tok_;
};

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : lex_(sql) {}

  ParsedQuery Parse() {
    ParsedQuery q;
    if (PeekKeyword("explain")) {
      Take();
      ExpectKeyword("analyze");
      q.explain_analyze = true;
    }
    ExpectKeyword("select");
    if (PeekKeyword("distinct")) {
      Take();
      q.distinct = true;
    }
    if (lex_.peek().kind == Tok::kStar) {
      Take();
      q.select_star = true;
    } else {
      q.items.push_back(ParseSelectItem());
      while (lex_.peek().kind == Tok::kComma) {
        Take();
        q.items.push_back(ParseSelectItem());
      }
    }
    ExpectKeyword("from");
    q.from.push_back(ExpectIdent());
    while (lex_.peek().kind == Tok::kComma) {
      Take();
      q.from.push_back(ExpectIdent());
    }
    if (PeekKeyword("where")) {
      Take();
      q.where.push_back(ParseWherePred());
      while (PeekKeyword("and")) {
        Take();
        q.where.push_back(ParseWherePred());
      }
    }
    if (PeekKeyword("group")) {
      Take();
      ExpectKeyword("by");
      q.group_by.push_back(ExpectIdent());
      while (lex_.peek().kind == Tok::kComma) {
        Take();
        q.group_by.push_back(ExpectIdent());
      }
    }
    if (PeekKeyword("having")) {
      Take();
      q.having.push_back(ParseHavingPred());
      while (PeekKeyword("and")) {
        Take();
        q.having.push_back(ParseHavingPred());
      }
    }
    if (PeekKeyword("order")) {
      Take();
      ExpectKeyword("by");
      q.order_by.push_back(ParseOrderItem());
      while (lex_.peek().kind == Tok::kComma) {
        Take();
        q.order_by.push_back(ParseOrderItem());
      }
    }
    if (PeekKeyword("limit")) {
      Take();
      Token t = Take();
      if (t.kind != Tok::kNumber || !t.value.is_int()) {
        Fail(t, "expected integer after LIMIT");
      }
      q.limit = t.value.as_int();
    }
    if (lex_.peek().kind != Tok::kEnd) {
      Fail(lex_.peek(), "unexpected trailing input");
    }
    return q;
  }

 private:
  [[noreturn]] void Fail(const Token& t, const std::string& what) const {
    throw std::invalid_argument("SQL parse error at position " +
                                std::to_string(t.pos) + ": " + what);
  }

  Token Take() { return lex_.Take(); }

  bool PeekKeyword(const std::string& kw) const {
    return lex_.peek().kind == Tok::kIdent && Lower(lex_.peek().text) == kw;
  }

  void ExpectKeyword(const std::string& kw) {
    Token t = Take();
    if (t.kind != Tok::kIdent || Lower(t.text) != kw) {
      Fail(t, "expected keyword '" + kw + "'");
    }
  }

  std::string ExpectIdent() {
    Token t = Take();
    if (t.kind != Tok::kIdent) Fail(t, "expected identifier");
    return t.text;
  }

  static std::optional<ParseAggFn> AggFromName(const std::string& name) {
    std::string n = Lower(name);
    if (n == "count") return ParseAggFn::kCount;
    if (n == "sum") return ParseAggFn::kSum;
    if (n == "min") return ParseAggFn::kMin;
    if (n == "max") return ParseAggFn::kMax;
    if (n == "avg") return ParseAggFn::kAvg;
    return std::nullopt;
  }

  SelectItem ParseSelectItem() {
    SelectItem item;
    Token t = Take();
    if (t.kind != Tok::kIdent) Fail(t, "expected column or aggregate");
    auto agg = AggFromName(t.text);
    if (agg.has_value() && lex_.peek().kind == Tok::kLParen) {
      Take();  // (
      item.agg = agg;
      if (lex_.peek().kind == Tok::kStar) {
        Take();
        if (*agg != ParseAggFn::kCount) {
          Fail(t, "'*' argument is only valid for count");
        }
      } else {
        item.column = ExpectIdent();
      }
      Token close = Take();
      if (close.kind != Tok::kRParen) Fail(close, "expected ')'");
    } else {
      item.column = t.text;
    }
    if (PeekKeyword("as")) {
      Take();
      item.alias = ExpectIdent();
    }
    return item;
  }

  WherePred ParseWherePred() {
    WherePred p;
    p.lhs = ExpectIdent();
    Token op = Take();
    if (op.kind != Tok::kOp) Fail(op, "expected comparison operator");
    p.op = op.op;
    Token rhs = Take();
    if (rhs.kind == Tok::kIdent) {
      p.rhs_is_attr = true;
      p.rhs_attr = rhs.text;
    } else if (rhs.kind == Tok::kNumber || rhs.kind == Tok::kString) {
      p.rhs_const = rhs.value;
    } else {
      Fail(rhs, "expected attribute or constant");
    }
    return p;
  }

  HavingPred ParseHavingPred() {
    HavingPred h;
    Token t = Take();
    if (t.kind != Tok::kIdent) Fail(t, "expected aggregate or column");
    auto agg = AggFromName(t.text);
    if (agg.has_value() && lex_.peek().kind == Tok::kLParen) {
      Take();
      h.agg = agg;
      if (lex_.peek().kind == Tok::kStar) {
        Take();
        if (*agg != ParseAggFn::kCount) {
          Fail(t, "'*' argument is only valid for count");
        }
      } else {
        h.column = ExpectIdent();
      }
      Token close = Take();
      if (close.kind != Tok::kRParen) Fail(close, "expected ')'");
    } else {
      h.column = t.text;
    }
    Token op = Take();
    if (op.kind != Tok::kOp) Fail(op, "expected comparison operator");
    h.op = op.op;
    Token rhs = Take();
    if (rhs.kind != Tok::kNumber && rhs.kind != Tok::kString) {
      Fail(rhs, "HAVING compares against a constant");
    }
    h.rhs = rhs.value;
    return h;
  }

  OrderItem ParseOrderItem() {
    OrderItem o;
    o.column = ExpectIdent();
    if (PeekKeyword("asc")) {
      Take();
    } else if (PeekKeyword("desc")) {
      Take();
      o.dir = SortDir::kDesc;
    }
    return o;
  }

  Lexer lex_;
};

}  // namespace

ParsedQuery ParseSql(const std::string& sql) { return Parser(sql).Parse(); }

}  // namespace fdb
