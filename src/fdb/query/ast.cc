#include "fdb/query/ast.h"

#include <sstream>

namespace fdb {

std::string ParseAggFnName(ParseAggFn fn) {
  switch (fn) {
    case ParseAggFn::kCount:
      return "count";
    case ParseAggFn::kSum:
      return "sum";
    case ParseAggFn::kMin:
      return "min";
    case ParseAggFn::kMax:
      return "max";
    case ParseAggFn::kAvg:
      return "avg";
  }
  return "?";
}

namespace {

std::string ConstToSql(const Value& v) {
  if (v.is_string()) return "'" + v.as_string() + "'";
  return v.ToString();
}

}  // namespace

std::string ToSql(const ParsedQuery& q) {
  std::ostringstream os;
  if (q.explain_analyze) os << "EXPLAIN ANALYZE ";
  os << "SELECT ";
  if (q.distinct) os << "DISTINCT ";
  if (q.select_star) {
    os << "*";
  } else {
    for (size_t i = 0; i < q.items.size(); ++i) {
      if (i) os << ", ";
      const SelectItem& it = q.items[i];
      if (it.agg.has_value()) {
        os << ParseAggFnName(*it.agg) << "("
           << (it.column.empty() ? "*" : it.column) << ")";
      } else {
        os << it.column;
      }
      if (!it.alias.empty()) os << " AS " << it.alias;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < q.from.size(); ++i) {
    if (i) os << ", ";
    os << q.from[i];
  }
  if (!q.where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < q.where.size(); ++i) {
      if (i) os << " AND ";
      const WherePred& p = q.where[i];
      os << p.lhs << " " << CmpOpName(p.op) << " "
         << (p.rhs_is_attr ? p.rhs_attr : ConstToSql(p.rhs_const));
    }
  }
  if (!q.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < q.group_by.size(); ++i) {
      if (i) os << ", ";
      os << q.group_by[i];
    }
  }
  if (!q.having.empty()) {
    os << " HAVING ";
    for (size_t i = 0; i < q.having.size(); ++i) {
      if (i) os << " AND ";
      const HavingPred& h = q.having[i];
      if (h.agg.has_value()) {
        os << ParseAggFnName(*h.agg) << "("
           << (h.column.empty() ? "*" : h.column) << ")";
      } else {
        os << h.column;
      }
      os << " " << CmpOpName(h.op) << " " << ConstToSql(h.rhs);
    }
  }
  if (!q.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i) os << ", ";
      os << q.order_by[i].column
         << (q.order_by[i].dir == SortDir::kDesc ? " DESC" : "");
    }
  }
  if (q.limit.has_value()) os << " LIMIT " << *q.limit;
  return os.str();
}

}  // namespace fdb
