#ifndef FDB_QUERY_AST_H_
#define FDB_QUERY_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fdb/relational/relation.h"

namespace fdb {

/// Aggregation functions at the syntax level; AVG is expanded by the binder
/// into a (sum, count) task pair (§3.2.4).
enum class ParseAggFn { kCount, kSum, kMin, kMax, kAvg };

std::string ParseAggFnName(ParseAggFn fn);

/// One item of a SELECT list: a plain column or an aggregate over a column
/// (`count(*)` has an empty column name).
struct SelectItem {
  std::optional<ParseAggFn> agg;
  std::string column;  ///< source column; empty only for count(*)
  std::string alias;   ///< output name; empty = default
};

/// One conjunct of a WHERE clause: `lhs op rhs`, where rhs is either
/// another attribute (equality joins/selections only) or a constant.
struct WherePred {
  std::string lhs;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_attr = false;
  std::string rhs_attr;
  Value rhs_const;
};

/// One conjunct of a HAVING clause: an aggregate expression or an output
/// alias / grouping column compared with a constant.
struct HavingPred {
  std::optional<ParseAggFn> agg;  ///< set when written as agg(column)
  std::string column;             ///< aggregate source, or alias/column name
  CmpOp op = CmpOp::kEq;
  Value rhs;
};

/// One item of an ORDER BY list.
struct OrderItem {
  std::string column;
  SortDir dir = SortDir::kAsc;
};

/// A parsed query: SELECT [DISTINCT] items FROM names [WHERE ...]
/// [GROUP BY ...] [HAVING ...] [ORDER BY ...] [LIMIT k].
/// FROM names are natural-joined (shared attribute names are equated),
/// matching the paper's query class (§2).
struct ParsedQuery {
  /// Query was prefixed with EXPLAIN ANALYZE: execute it and attach a
  /// per-phase trace to the result.
  bool explain_analyze = false;
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<std::string> from;
  std::vector<WherePred> where;
  std::vector<std::string> group_by;
  std::vector<HavingPred> having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

/// Renders the query back to SQL (used in diagnostics and tests).
std::string ToSql(const ParsedQuery& q);

}  // namespace fdb

#endif  // FDB_QUERY_AST_H_
