#ifndef FDB_SERVE_SESSION_H_
#define FDB_SERVE_SESSION_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fdb/base/thread_annotations.h"
#include "fdb/engine/database.h"
#include "fdb/exec/cancel.h"
#include "fdb/serve/admission.h"
#include "fdb/serve/session_registry.h"
#include "fdb/serve/wire.h"

namespace fdb {
namespace serve {

/// Shared server state handed to every session.
struct ServeContext {
  Database* db = nullptr;
  AdmissionController* admission = nullptr;
  /// Serialises *all* Database writes issued by sessions. Database's own
  /// txn_mu_ makes individual calls safe, but a transaction replay
  /// (Begin → ops → Commit) must be atomic against other sessions'
  /// autocommit writes — an interleaved Insert would be swallowed into
  /// the open transaction.
  base::Mutex* write_mu = nullptr;
  std::atomic<bool>* draining = nullptr;
};

/// One client connection: reads statements off the wire, runs them
/// through admission + the engine with this session's cancellation token
/// armed, and streams typed result frames back. Owns the per-session WAL
/// transaction state: BEGIN buffers writes session-locally; COMMIT
/// replays them as one Database transaction (one WAL commit group, one
/// fsync) under the server write mutex; ROLLBACK drops them.
///
/// Reads pin view snapshots for exactly one statement: the engine takes
/// `ViewSnapshot`s when a query starts and drops them when it finishes,
/// so a long SELECT sees one consistent epoch while writers keep
/// publishing new ones.
class Session {
 public:
  Session(const ServeContext& ctx, int fd, const std::string& peer);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The connection's statement loop; returns when the peer disconnects,
  /// a protocol error desyncs the stream, or drain completes. Run on the
  /// session's own thread.
  void Run();

  /// Graceful drain: stop reading new statements (the response side of
  /// the socket stays open so the in-flight statement can finish).
  void BeginDrain();
  /// Hard stop: trips the cancellation token and shuts the socket down
  /// both ways (drain deadline passed).
  void Kill();

  const std::shared_ptr<SessionStats>& stats() const { return stats_; }

  // --- statement layer, socket-free for tests ---------------------------

  /// Executes one statement and appends response frames to `out`.
  /// Exposed so limit/transaction tests can drive a session without a
  /// socket pair.
  void HandleStatement(const std::string& text, std::vector<uint8_t>* out);

 private:
  struct TxnOp {
    bool is_insert = false;
    std::string view;
    Tuple tuple;
  };

  void RunQuery(const std::string& text, std::vector<uint8_t>* out);
  void HandleWrite(bool is_insert, const std::string& view, Tuple tuple,
                   std::vector<uint8_t>* out);
  void HandleBegin(std::vector<uint8_t>* out);
  void HandleCommit(std::vector<uint8_t>* out);
  void HandleRollback(std::vector<uint8_t>* out);
  void AppendError(std::vector<uint8_t>* out, uint8_t code,
                   const std::string& message);
  void AppendDone(std::vector<uint8_t>* out, const DoneStats& stats);
  bool WriteAll(const uint8_t* data, size_t n);

  ServeContext ctx_;
  int fd_;
  std::shared_ptr<SessionStats> stats_;
  exec::CancelToken token_;
  std::atomic<bool> draining_{false};
  bool in_txn_ = false;
  std::vector<TxnOp> txn_ops_;
};

/// Parses "INSERT INTO v VALUES (1, 2.5, 'x')" / "DELETE FROM v VALUES
/// (...)" into view + tuple. Returns false if `text` is not a write
/// statement at all; throws std::invalid_argument on a malformed one.
/// Literals: integers, doubles, single-quoted strings ('' escapes a
/// quote), NULL.
bool ParseWriteStatement(const std::string& text, bool* is_insert,
                         std::string* view, Tuple* tuple);

/// Uppercased first keyword of a statement ("BEGIN", "SELECT", ...).
std::string FirstKeyword(const std::string& text);

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_SESSION_H_
