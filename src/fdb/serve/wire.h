#ifndef FDB_SERVE_WIRE_H_
#define FDB_SERVE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "fdb/relational/value.h"

namespace fdb {
namespace serve {

/// The fdb wire protocol, version 1.
///
/// Every frame is `u32 payload_length (LE) | u8 type | payload`. The
/// length counts payload bytes only (a zero-payload frame is 5 bytes on
/// the wire) and is capped at kMaxFrameBytes — a peer announcing more is
/// a protocol error and the connection is dropped, so a hostile or
/// corrupt length prefix can never make the server buffer unbounded
/// memory.
///
/// Conversation shape (client → server on the left):
///
///   Hello('H')  magic "FDB1" + u8 version      →  Hello ack (same shape)
///   Query('Q')  statement text                 →  Schema('S')? Row('D')*
///                                                 Done('C')
///                                              or Error('E')
///                                              or Retry('R')  [admission]
///
/// One statement is in flight per connection at a time (the session reads
/// the next Query only after finishing the previous one), so frames never
/// interleave between statements. Statements are either SQL queries
/// (anything the engine parses), transaction verbs (BEGIN / COMMIT /
/// ROLLBACK), or writes (INSERT INTO v VALUES (...) / DELETE FROM v
/// VALUES (...)); the session dispatches on the first keyword.
///
/// Values inside Row frames are tagged: u8 tag 0 = null, 1 = int64 LE,
/// 2 = IEEE double bits LE, 3 = string (u32 length + bytes). Schema
/// frames carry the column-name list; Done doubles as the per-statement
/// metrics frame (row count, server-side latency, admission queue wait,
/// arena bytes charged).
constexpr uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB
constexpr uint8_t kProtocolVersion = 1;
inline const char kMagic[4] = {'F', 'D', 'B', '1'};

enum class FrameType : uint8_t {
  kHello = 'H',
  kQuery = 'Q',
  kSchema = 'S',
  kRow = 'D',
  kDone = 'C',
  kError = 'E',
  kRetry = 'R',
};

/// True for the types a decoder accepts; anything else is a protocol
/// error (never silently skipped: a desynced stream must fail fast).
bool IsKnownFrameType(uint8_t t);

/// Typed error codes carried by Error frames.
enum ErrorCode : uint8_t {
  kErrParse = 1,     ///< statement failed to parse / bind
  kErrExec = 2,      ///< execution failed (engine exception)
  kErrTimeout = 3,   ///< query killed at its wall-time limit
  kErrMemory = 4,    ///< query killed at its arena-memory limit
  kErrTxn = 5,       ///< transaction misuse (COMMIT outside BEGIN, ...)
  kErrShutdown = 6,  ///< server draining; connection is closing
  kErrProtocol = 7,  ///< malformed frame; connection is closing
};

const char* ErrorCodeName(uint8_t code);

/// Thrown by the codec on malformed input (truncated payload, oversized
/// or unknown frame). The server maps it to kErrProtocol + disconnect.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<uint8_t> payload;
};

/// Little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bytes(const void* data, size_t n);
  /// u32 length + bytes.
  void String(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader; throws WireError on any
/// read past the end (truncated frames can never read wild memory).
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t n) : data_(data), end_(data + n) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  /// u32 length + bytes (length checked against the remaining payload).
  std::string String();

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  /// Throws WireError unless the payload was consumed exactly.
  void ExpectEnd() const;

 private:
  void Need(size_t n) const;
  const uint8_t* data_;
  const uint8_t* end_;
};

/// Appends one whole frame (header + payload) to `out`. Throws WireError
/// if the payload exceeds kMaxFrameBytes — the sender enforces the same
/// cap the receiver does.
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const uint8_t* payload, size_t n);
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const WireWriter& payload);

/// Incremental frame decoder: feed it raw socket bytes, pull whole
/// frames. Throws WireError on an oversized length prefix or unknown
/// frame type; after a throw the stream is desynced and the connection
/// must be dropped.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t n);
  /// Pops the next complete frame into *out; false if more bytes are
  /// needed first.
  bool Next(Frame* out);
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

// --- typed payloads ------------------------------------------------------

void EncodeValue(WireWriter* w, const Value& v);
Value DecodeValue(WireReader* r);

/// Hello payload: magic + version. Decode throws WireError on mismatch.
std::vector<uint8_t> EncodeHello();
void DecodeHello(const std::vector<uint8_t>& payload);

/// Schema payload: u32 ncols + (u32 len + name bytes)*.
std::vector<uint8_t> EncodeSchema(const std::vector<std::string>& cols);
std::vector<std::string> DecodeSchema(const std::vector<uint8_t>& payload);

/// Row payload: one tagged value per schema column.
std::vector<uint8_t> EncodeRow(const std::vector<Value>& row);
std::vector<Value> DecodeRow(const std::vector<uint8_t>& payload, int arity);

/// Done payload: the per-statement metrics frame.
struct DoneStats {
  uint64_t rows = 0;
  uint64_t elapsed_ns = 0;     ///< server-side execution wall time
  uint64_t queue_wait_ns = 0;  ///< time spent in the admission queue
  uint64_t mem_charged = 0;    ///< arena bytes charged against the limit
};
std::vector<uint8_t> EncodeDone(const DoneStats& stats);
DoneStats DecodeDone(const std::vector<uint8_t>& payload);

/// Error payload: u8 code + message.
struct ErrorInfo {
  uint8_t code = kErrExec;
  std::string message;
};
std::vector<uint8_t> EncodeError(const ErrorInfo& e);
ErrorInfo DecodeError(const std::vector<uint8_t>& payload);

/// Retry payload (admission rejection): hint + message.
struct RetryInfo {
  uint64_t retry_after_ms = 0;
  std::string message;
};
std::vector<uint8_t> EncodeRetry(const RetryInfo& r);
RetryInfo DecodeRetry(const std::vector<uint8_t>& payload);

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_WIRE_H_
