#include "fdb/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace fdb {
namespace serve {

Client::~Client() { Close(); }

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), dec_(std::move(o.dec_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = std::exchange(o.fd_, -1);
    dec_ = std::move(o.dec_);
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dec_ = FrameDecoder();
}

void Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("bad server address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string err = std::strerror(errno);
    Close();
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + err);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  WriteFrame(FrameType::kHello, EncodeHello());
  Frame f = ReadFrame();
  if (f.type == FrameType::kRetry) {
    RetryInfo info = DecodeRetry(f.payload);
    Close();
    throw std::runtime_error("server refused session: " + info.message);
  }
  if (f.type != FrameType::kHello) {
    Close();
    throw WireError("handshake: expected Hello, got another frame");
  }
  DecodeHello(f.payload);
}

void Client::WriteFrame(FrameType type, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  AppendFrame(&out, type, payload.data(), payload.size());
  size_t off = 0;
  while (off < out.size()) {
    ssize_t w = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      std::string err = std::strerror(errno);
      Close();
      throw std::runtime_error("send: " + err);
    }
    off += static_cast<size_t>(w);
  }
}

Frame Client::ReadFrame() {
  Frame f;
  uint8_t buf[16 * 1024];
  while (!dec_.Next(&f)) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      throw std::runtime_error("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      std::string err = std::strerror(errno);
      Close();
      throw std::runtime_error("recv: " + err);
    }
    dec_.Feed(buf, static_cast<size_t>(n));
  }
  return f;
}

Client::Result Client::Query(const std::string& statement) {
  if (fd_ < 0) throw std::runtime_error("not connected");
  WriteFrame(FrameType::kQuery, std::vector<uint8_t>(statement.begin(),
                                                     statement.end()));
  Result res;
  for (;;) {
    Frame f = ReadFrame();
    switch (f.type) {
      case FrameType::kSchema:
        res.columns = DecodeSchema(f.payload);
        break;
      case FrameType::kRow:
        res.rows.push_back(
            DecodeRow(f.payload, static_cast<int>(res.columns.size())));
        break;
      case FrameType::kDone:
        res.ok = true;
        res.stats = DecodeDone(f.payload);
        return res;
      case FrameType::kError:
        res.error = DecodeError(f.payload);
        // A protocol error means the server is dropping us.
        if (res.error.code == kErrProtocol) Close();
        return res;
      case FrameType::kRetry:
        res.retry = true;
        res.retry_info = DecodeRetry(f.payload);
        return res;
      default:
        Close();
        throw WireError("unexpected server frame");
    }
  }
}

}  // namespace serve
}  // namespace fdb
