#ifndef FDB_SERVE_SERVER_H_
#define FDB_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fdb/base/thread_annotations.h"
#include "fdb/engine/database.h"
#include "fdb/serve/admission.h"
#include "fdb/serve/session.h"

namespace fdb {
namespace serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port with port()
  int max_sessions = 64;
  AdmissionConfig admission;
  /// Grace period for in-flight statements during Shutdown() before
  /// their cancellation tokens are tripped.
  int64_t drain_ms = 5000;
};

/// The TCP front door: accepts connections, runs one Session per
/// connection on its own thread, and owns the admission controller and
/// the server-wide write mutex. Execution itself uses the process
/// TaskPool (sessions call the engine, which forks into the pool), so
/// session threads are I/O threads, not compute threads.
///
/// Shutdown() drains gracefully: stop accepting, shut the read side of
/// every session (in-flight statements finish and ship their responses),
/// wait up to drain_ms, then trip every session's cancellation token and
/// close both ways. Safe to call from a signal-watcher thread.
class Server {
 public:
  Server(Database* db, ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread. Throws
  /// std::runtime_error on bind/listen failure.
  void Start();

  /// The bound port (valid after Start(); resolves ephemeral binds).
  int port() const { return port_; }

  /// Graceful drain as described above. Idempotent; Start() cannot be
  /// called again afterwards.
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  AdmissionController& admission() { return admission_; }

 private:
  struct Conn {
    std::unique_ptr<Session> session;
    std::thread thread;
    /// Set by the session thread as its last act; the only state the
    /// reaper may trust before joining.
    std::shared_ptr<std::atomic<bool>> done_flag;
  };

  void AcceptLoop() EXCLUDES(conns_mu_);
  /// Joins threads whose sessions returned.
  void ReapFinished() EXCLUDES(conns_mu_);

  Database* db_;
  ServerConfig cfg_;
  AdmissionController admission_;
  /// Serialises all session-issued Database writes (see ServeContext).
  base::Mutex write_mu_;
  std::atomic<bool> draining_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  base::Mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);
  /// Serialises Shutdown() callers (not a data guard).
  base::Mutex shutdown_mu_;
  std::atomic<bool> started_{false};
};

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_SERVER_H_
