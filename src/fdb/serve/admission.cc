#include "fdb/serve/admission.h"

#include <algorithm>
#include <chrono>

#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"

namespace fdb {
namespace serve {
namespace {

obs::Counter& RejectsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.admission_rejects", "stmts",
      "statements rejected by admission control with a retry hint");
  return c;
}

obs::Histogram& WaitHistogram() {
  static obs::Histogram& h = obs::Registry::Instance().GetHistogram(
      "serve.admission_wait_ns", "ns",
      "time admitted statements spent queued for an execution slot");
  return h;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::Registry::Instance().GetGauge(
      "serve.admission_queue_depth", "stmts",
      "high-water mark of the admission wait queue");
  return g;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& cfg)
    : cfg_(cfg) {
  cfg_.max_concurrent = std::max(1, cfg_.max_concurrent);
  cfg_.max_queue = std::max(0, cfg_.max_queue);
  cfg_.queue_wait_ms = std::max<int64_t>(1, cfg_.queue_wait_ms);
}

uint64_t AdmissionController::EstimateRetryMs(int ahead) const {
  // Live backlog estimate: mean served-query latency × queue position,
  // spread over the concurrency width. Falls back to a small constant
  // before any query has been recorded (or with metrics disabled).
  obs::HistogramSnapshot s = obs::Registry::Instance()
                                 .GetHistogram("engine.query_ns")
                                 .Snapshot();
  double mean_ms = s.count > 0 ? s.Mean() / 1e6 : 20.0;
  if (mean_ms <= 0.0) mean_ms = 20.0;
  double est = mean_ms * (ahead + 1) / cfg_.max_concurrent;
  return static_cast<uint64_t>(std::clamp(est, 10.0, 5000.0));
}

AdmissionController::Ticket AdmissionController::Admit() {
  Ticket t;
  int64_t t0 = obs::NowNs();
  mu_.Lock();
  if (closed_ ||
      (active_ >= cfg_.max_concurrent && queued_ >= cfg_.max_queue)) {
    int active_now = active_, queued_now = queued_;
    t.retry_after_ms = EstimateRetryMs(active_now + queued_now);
    mu_.Unlock();
    RejectsCounter().Inc();
    // Rejections are individually rare (the common overload path parks in
    // the bounded queue first), so each one is worth an event.
    if (obs::LogEnabled()) {
      obs::EventLog::Instance().Emit(
          obs::EventType::kAdmissionReject,
          {obs::F("retry_after_ms", static_cast<int64_t>(t.retry_after_ms)),
           obs::F("active", active_now), obs::F("queued", queued_now)});
    }
    return t;
  }
  ++queued_;
  QueueDepthGauge().UpdateMax(queued_);
  // The waiting loop is spelled out (rather than a predicate lambda) so
  // the analysis sees every guarded read under mu_.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(cfg_.queue_wait_ms);
  bool got = true;
  while (!closed_ && active_ >= cfg_.max_concurrent) {
    if (!cv_.WaitUntil(mu_, deadline)) {
      got = closed_ || active_ < cfg_.max_concurrent;
      break;
    }
  }
  --queued_;
  if (!got || closed_) {
    t.retry_after_ms = EstimateRetryMs(active_ + queued_);
    t.queue_wait_ns = static_cast<uint64_t>(obs::NowNs() - t0);
    mu_.Unlock();
    RejectsCounter().Inc();
    if (obs::LogEnabled()) {
      obs::EventLog::Instance().Emit(
          obs::EventType::kAdmissionReject,
          {obs::F("retry_after_ms", static_cast<int64_t>(t.retry_after_ms)),
           obs::F("timed_out", true)});
    }
    return t;
  }
  ++active_;
  t.admitted = true;
  t.queue_wait_ns = static_cast<uint64_t>(obs::NowNs() - t0);
  mu_.Unlock();
  WaitHistogram().Record(t.queue_wait_ns);
  return t;
}

void AdmissionController::Release() {
  {
    base::MutexLock g(&mu_);
    --active_;
  }
  cv_.NotifyOne();
}

void AdmissionController::Close() {
  {
    base::MutexLock g(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

int AdmissionController::active() const {
  base::MutexLock g(&mu_);
  return active_;
}

int AdmissionController::queued() const {
  base::MutexLock g(&mu_);
  return queued_;
}

}  // namespace serve
}  // namespace fdb
