#include "fdb/serve/wire.h"

#include <algorithm>

namespace fdb {
namespace serve {

bool IsKnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kSchema:
    case FrameType::kRow:
    case FrameType::kDone:
    case FrameType::kError:
    case FrameType::kRetry:
      return true;
  }
  return false;
}

const char* ErrorCodeName(uint8_t code) {
  switch (code) {
    case kErrParse:
      return "parse";
    case kErrExec:
      return "exec";
    case kErrTimeout:
      return "timeout";
    case kErrMemory:
      return "memory";
    case kErrTxn:
      return "txn";
    case kErrShutdown:
      return "shutdown";
    case kErrProtocol:
      return "protocol";
  }
  return "?";
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
}

void WireWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Bytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void WireWriter::String(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(s.data(), s.size());
}

void WireReader::Need(size_t n) const {
  if (remaining() < n) {
    throw WireError("truncated payload: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(remaining()));
  }
}

uint8_t WireReader::U8() {
  Need(1);
  return *data_++;
}

uint32_t WireReader::U32() {
  Need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(data_[i]) << (8 * i);
  data_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  Need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(data_[i]) << (8 * i);
  data_ += 8;
  return v;
}

double WireReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::String() {
  uint32_t n = U32();
  // The length itself is attacker-controlled: check it against the bytes
  // actually present before allocating anything.
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_), n);
  data_ += n;
  return s;
}

void WireReader::ExpectEnd() const {
  if (remaining() != 0) {
    throw WireError("payload has " + std::to_string(remaining()) +
                    " trailing bytes");
  }
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const uint8_t* payload, size_t n) {
  if (n > kMaxFrameBytes) {
    throw WireError("frame payload of " + std::to_string(n) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte cap");
  }
  uint32_t len = static_cast<uint32_t>(n);
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(len >> (8 * i)));
  out->push_back(static_cast<uint8_t>(type));
  out->insert(out->end(), payload, payload + n);
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 const WireWriter& payload) {
  AppendFrame(out, type, payload.bytes().data(), payload.bytes().size());
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, so the buffer stays
  // proportional to the unconsumed bytes however long the stream runs.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameDecoder::Next(Frame* out) {
  if (buffered() < 5) return false;
  const uint8_t* p = buf_.data() + pos_;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(p[i]) << (8 * i);
  // Validate the header before waiting for the payload: an oversized
  // length or unknown type fails now, not after buffering 4 GiB.
  if (len > kMaxFrameBytes) {
    throw WireError("frame length " + std::to_string(len) + " exceeds the " +
                    std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  if (!IsKnownFrameType(p[4])) {
    throw WireError("unknown frame type 0x" + std::to_string(p[4]));
  }
  if (buffered() < size_t{5} + len) return false;
  out->type = static_cast<FrameType>(p[4]);
  out->payload.assign(p + 5, p + 5 + len);
  pos_ += size_t{5} + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

void EncodeValue(WireWriter* w, const Value& v) {
  if (v.is_null()) {
    w->U8(0);
  } else if (v.is_int()) {
    w->U8(1);
    w->I64(v.as_int());
  } else if (v.is_double()) {
    w->U8(2);
    w->F64(v.as_double());
  } else {
    w->U8(3);
    w->String(v.as_string());
  }
}

Value DecodeValue(WireReader* r) {
  uint8_t tag = r->U8();
  switch (tag) {
    case 0:
      return Value();
    case 1:
      return Value(r->I64());
    case 2:
      return Value(r->F64());
    case 3:
      return Value(r->String());
  }
  throw WireError("unknown value tag " + std::to_string(tag));
}

std::vector<uint8_t> EncodeHello() {
  WireWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U8(kProtocolVersion);
  return w.Take();
}

void DecodeHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw WireError("bad hello magic");
  }
  uint8_t version = r.U8();
  if (version != kProtocolVersion) {
    throw WireError("unsupported protocol version " + std::to_string(version));
  }
  r.ExpectEnd();
}

std::vector<uint8_t> EncodeSchema(const std::vector<std::string>& cols) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(cols.size()));
  for (const std::string& c : cols) w.String(c);
  return w.Take();
}

std::vector<std::string> DecodeSchema(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t n = r.U32();
  // A count can claim more columns than any frame could carry; each
  // String() below re-checks against the actual bytes, so a hostile
  // count fails on the first missing column instead of reserving memory.
  std::vector<std::string> cols;
  for (uint32_t i = 0; i < n; ++i) cols.push_back(r.String());
  r.ExpectEnd();
  return cols;
}

std::vector<uint8_t> EncodeRow(const std::vector<Value>& row) {
  WireWriter w;
  for (const Value& v : row) EncodeValue(&w, v);
  return w.Take();
}

std::vector<Value> DecodeRow(const std::vector<uint8_t>& payload, int arity) {
  WireReader r(payload);
  std::vector<Value> row;
  row.reserve(static_cast<size_t>(std::max(arity, 0)));
  for (int i = 0; i < arity; ++i) row.push_back(DecodeValue(&r));
  r.ExpectEnd();
  return row;
}

std::vector<uint8_t> EncodeDone(const DoneStats& stats) {
  WireWriter w;
  w.U64(stats.rows);
  w.U64(stats.elapsed_ns);
  w.U64(stats.queue_wait_ns);
  w.U64(stats.mem_charged);
  return w.Take();
}

DoneStats DecodeDone(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  DoneStats s;
  s.rows = r.U64();
  s.elapsed_ns = r.U64();
  s.queue_wait_ns = r.U64();
  s.mem_charged = r.U64();
  r.ExpectEnd();
  return s;
}

std::vector<uint8_t> EncodeError(const ErrorInfo& e) {
  WireWriter w;
  w.U8(e.code);
  w.String(e.message);
  return w.Take();
}

ErrorInfo DecodeError(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ErrorInfo e;
  e.code = r.U8();
  e.message = r.String();
  r.ExpectEnd();
  return e;
}

std::vector<uint8_t> EncodeRetry(const RetryInfo& info) {
  WireWriter w;
  w.U64(info.retry_after_ms);
  w.String(info.message);
  return w.Take();
}

RetryInfo DecodeRetry(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  RetryInfo info;
  info.retry_after_ms = r.U64();
  info.message = r.String();
  r.ExpectEnd();
  return info;
}

}  // namespace serve
}  // namespace fdb
