#include "fdb/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/serve/wire.h"

namespace fdb {
namespace serve {
namespace {

obs::Counter& SessionsOpenedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.sessions_opened", "sessions", "client connections accepted");
  return c;
}

obs::Gauge& SessionsLiveGauge() {
  static obs::Gauge& g = obs::Registry::Instance().GetGauge(
      "serve.sessions_live", "sessions", "client connections currently open");
  return g;
}

}  // namespace

Server::Server(Database* db, ServerConfig cfg)
    : db_(db), cfg_(std::move(cfg)), admission_(cfg_.admission) {}

Server::~Server() { Shutdown(); }

void Server::Start() {
  if (started_.exchange(true)) {
    throw std::runtime_error("Server::Start called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad listen address " + cfg_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen " + cfg_.host + ":" +
                             std::to_string(cfg_.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::ReapFinished() {
  base::MutexLock g(&conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& c = **it;
    // Only join threads that marked themselves done (join on a running
    // session would block the accept loop).
    if (c.done_flag->load(std::memory_order_acquire) && c.thread.joinable()) {
      c.thread.join();
      it = conns_.erase(it);
      SessionsLiveGauge().Add(-1);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int r = ::poll(&pfd, 1, 100);
    if (draining_.load(std::memory_order_relaxed)) break;
    if (r <= 0) {
      ReapFinished();
      continue;
    }
    sockaddr_in peer{};
    socklen_t plen = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    std::string peer_str =
        std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    ReapFinished();
    {
      base::MutexLock g(&conns_mu_);
      if (static_cast<int>(conns_.size()) >= cfg_.max_sessions) {
        // Connection-level backpressure: same typed rejection the
        // admission queue uses, then close.
        std::vector<uint8_t> out;
        std::vector<uint8_t> payload = EncodeRetry(
            {admission_.EstimateRetryMs(cfg_.max_sessions),
             "too many sessions"});
        AppendFrame(&out, FrameType::kRetry, payload.data(), payload.size());
        ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      ServeContext ctx{db_, &admission_, &write_mu_, &draining_};
      auto conn = std::make_unique<Conn>();
      conn->session = std::make_unique<Session>(ctx, fd, peer_str);
      conn->done_flag = std::make_shared<std::atomic<bool>>(false);
      Session* s = conn->session.get();
      std::shared_ptr<std::atomic<bool>> done = conn->done_flag;
      conn->thread = std::thread([s, done] {
        s->Run();
        done->store(true, std::memory_order_release);
      });
      conns_.push_back(std::move(conn));
      SessionsOpenedCounter().Inc();
      SessionsLiveGauge().Add(1);
    }
  }
}

void Server::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  // One shutdown at a time; a second caller blocks until the first
  // finishes, then returns immediately.
  base::MutexLock shutdown_guard(&shutdown_mu_);
  if (draining_.exchange(true)) return;
  if (obs::LogEnabled()) {
    obs::EventLog::Instance().Emit(obs::EventType::kServerDrain,
                                   {obs::F("port", port_)});
  }
  // Wake the accept loop and stop new connections.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Reject queued statements so drain never waits on the admission queue.
  admission_.Close();
  // Phase 1: stop reading new statements; in-flight ones finish and ship
  // their responses.
  {
    base::MutexLock g(&conns_mu_);
    for (auto& c : conns_) c->session->BeginDrain();
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(cfg_.drain_ms);
  for (;;) {
    bool all_done = true;
    {
      base::MutexLock g(&conns_mu_);
      for (auto& c : conns_) {
        if (!c->done_flag->load(std::memory_order_acquire)) all_done = false;
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Phase 2: anything still running is past the grace period — trip its
  // token (the next cooperative poll unwinds the query) and close hard.
  {
    base::MutexLock g(&conns_mu_);
    for (auto& c : conns_) {
      if (!c->done_flag->load(std::memory_order_acquire)) c->session->Kill();
    }
    for (auto& c : conns_) {
      if (c->thread.joinable()) c->thread.join();
    }
    SessionsLiveGauge().Set(0);
    conns_.clear();
  }
}

}  // namespace serve
}  // namespace fdb
