#ifndef FDB_SERVE_CLIENT_H_
#define FDB_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/relational/value.h"
#include "fdb/serve/wire.h"

namespace fdb {
namespace serve {

/// A blocking wire-protocol client: one connection, one statement in
/// flight. Used by the shell's \connect mode, the serve tests, and the
/// bench driver; deliberately synchronous (clients model one user each).
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  /// Connects and performs the Hello handshake. Throws std::runtime_error
  /// on connection failure, WireError on a protocol mismatch. The server
  /// may answer the handshake with Retry (session cap reached) — that
  /// surfaces as a runtime_error carrying the hint.
  void Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One executed statement's outcome. Exactly one of `ok` / `error` /
  /// `retry` describes it: ok=true means columns/rows/stats are valid;
  /// retry=true means admission rejected it (back off retry_info
  /// milliseconds and resend); otherwise `error` holds the typed failure.
  struct Result {
    bool ok = false;
    bool retry = false;
    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    DoneStats stats;
    ErrorInfo error;
    RetryInfo retry_info;
  };

  /// Sends one statement and reads frames until Done / Error / Retry.
  /// Throws on transport failure (the connection is then closed).
  Result Query(const std::string& statement);

 private:
  void WriteFrame(FrameType type, const std::vector<uint8_t>& payload);
  Frame ReadFrame();

  int fd_ = -1;
  FrameDecoder dec_;
};

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_CLIENT_H_
