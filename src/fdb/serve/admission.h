#ifndef FDB_SERVE_ADMISSION_H_
#define FDB_SERVE_ADMISSION_H_

#include <cstdint>

#include "fdb/base/thread_annotations.h"

namespace fdb {
namespace serve {

/// Admission limits for one server. Zero means "unlimited" for the
/// per-query limits; the queue bounds must be positive.
struct AdmissionConfig {
  int max_concurrent = 4;        ///< statements executing at once
  int max_queue = 16;            ///< statements allowed to wait for a slot
  int64_t queue_wait_ms = 2000;  ///< longest a statement may wait
  int64_t query_timeout_ms = 0;  ///< per-query wall-time limit (0 = none)
  int64_t query_mem_bytes = 0;   ///< per-query arena budget (0 = none)
};

/// A bounded run queue in front of execution: up to `max_concurrent`
/// statements run, up to `max_queue` more wait (briefly — the pool drains
/// in query-latency units), and everything beyond that is rejected
/// immediately with a retry-after hint instead of queueing unboundedly.
/// The hint is computed from live latency data: the mean of the
/// `engine.query_ns` histogram (PR 8's per-statement record) times the
/// number of statements ahead of the caller — so a saturated server tells
/// clients how long the backlog actually is, not a constant.
///
/// Rejections and saturation emit `serve.admission_rejects` and the
/// existing `pool_saturation` event, so the shell's `\log` shows overload
/// the same way for in-process and served workloads.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& cfg);

  struct Ticket {
    bool admitted = false;
    uint64_t queue_wait_ns = 0;    ///< time spent waiting for the slot
    uint64_t retry_after_ms = 0;   ///< backoff hint when rejected
  };

  /// Blocks until a slot frees (bounded by queue_wait_ms) or rejects.
  /// Rejects immediately when the wait queue is full or the controller
  /// is closed. A ticket with admitted=true must be paired with
  /// Release().
  Ticket Admit() EXCLUDES(mu_);
  void Release() EXCLUDES(mu_);

  /// Wakes every waiter with a rejection and rejects all future Admit()s
  /// (graceful shutdown). Idempotent.
  void Close() EXCLUDES(mu_);

  int active() const EXCLUDES(mu_);
  int queued() const EXCLUDES(mu_);
  const AdmissionConfig& config() const { return cfg_; }

  /// The retry-after estimate for a caller with `ahead` statements ahead
  /// of it (exposed for tests; Admit() fills tickets with it).
  uint64_t EstimateRetryMs(int ahead) const;

 private:
  AdmissionConfig cfg_;
  mutable base::Mutex mu_;
  base::CondVar cv_;
  int active_ GUARDED_BY(mu_) = 0;
  int queued_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_ADMISSION_H_
