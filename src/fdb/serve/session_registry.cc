#include "fdb/base/thread_annotations.h"
#include "fdb/serve/session_registry.h"

#include <map>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace serve {

struct SessionRegistry::Impl {
  mutable base::Mutex mu;
  std::map<uint64_t, std::shared_ptr<SessionStats>> live GUARDED_BY(mu);
  uint64_t next_id GUARDED_BY(mu) = 1;
  uint64_t total_opened GUARDED_BY(mu) = 0;
};

SessionRegistry::SessionRegistry() : impl_(new Impl()) {}

SessionRegistry& SessionRegistry::Instance() {
  static SessionRegistry* r = new SessionRegistry();
  return *r;
}

std::shared_ptr<SessionStats> SessionRegistry::Open(const std::string& peer) {
  auto stats = std::make_shared<SessionStats>();
  stats->peer = peer;
  stats->opened_ns = obs::NowNs();
  base::MutexLock g(&impl_->mu);
  stats->id = impl_->next_id++;
  ++impl_->total_opened;
  impl_->live[stats->id] = stats;
  return stats;
}

void SessionRegistry::Close(uint64_t id) {
  base::MutexLock g(&impl_->mu);
  impl_->live.erase(id);
}

std::vector<std::shared_ptr<SessionStats>> SessionRegistry::Snapshot() const {
  base::MutexLock g(&impl_->mu);
  std::vector<std::shared_ptr<SessionStats>> out;
  out.reserve(impl_->live.size());
  for (const auto& [id, s] : impl_->live) out.push_back(s);
  return out;
}

uint64_t SessionRegistry::total_opened() const {
  base::MutexLock g(&impl_->mu);
  return impl_->total_opened;
}

size_t SessionRegistry::live() const {
  base::MutexLock g(&impl_->mu);
  return impl_->live.size();
}

}  // namespace serve
}  // namespace fdb
