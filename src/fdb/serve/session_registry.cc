#include "fdb/serve/session_registry.h"

#include <map>
#include <mutex>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace serve {

struct SessionRegistry::Impl {
  mutable std::mutex mu;
  std::map<uint64_t, std::shared_ptr<SessionStats>> live;
  uint64_t next_id = 1;
  uint64_t total_opened = 0;
};

SessionRegistry::SessionRegistry() : impl_(new Impl()) {}

SessionRegistry& SessionRegistry::Instance() {
  static SessionRegistry* r = new SessionRegistry();
  return *r;
}

std::shared_ptr<SessionStats> SessionRegistry::Open(const std::string& peer) {
  auto stats = std::make_shared<SessionStats>();
  stats->peer = peer;
  stats->opened_ns = obs::NowNs();
  std::lock_guard<std::mutex> g(impl_->mu);
  stats->id = impl_->next_id++;
  ++impl_->total_opened;
  impl_->live[stats->id] = stats;
  return stats;
}

void SessionRegistry::Close(uint64_t id) {
  std::lock_guard<std::mutex> g(impl_->mu);
  impl_->live.erase(id);
}

std::vector<std::shared_ptr<SessionStats>> SessionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> g(impl_->mu);
  std::vector<std::shared_ptr<SessionStats>> out;
  out.reserve(impl_->live.size());
  for (const auto& [id, s] : impl_->live) out.push_back(s);
  return out;
}

uint64_t SessionRegistry::total_opened() const {
  std::lock_guard<std::mutex> g(impl_->mu);
  return impl_->total_opened;
}

size_t SessionRegistry::live() const {
  std::lock_guard<std::mutex> g(impl_->mu);
  return impl_->live.size();
}

}  // namespace serve
}  // namespace fdb
