#ifndef FDB_SERVE_SESSION_REGISTRY_H_
#define FDB_SERVE_SESSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fdb {
namespace serve {

/// Live per-session counters, updated lock-free by the owning session
/// thread and read by the `fdb.sessions` system table. One instance per
/// connection, owned jointly by the Session and the registry (shared_ptr,
/// so a snapshot taken mid-disconnect stays valid).
struct SessionStats {
  uint64_t id = 0;
  std::string peer;              ///< "host:port" of the client
  int64_t opened_ns = 0;         ///< obs::NowNs() at accept
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> rows_sent{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> killed{0};     ///< queries stopped at a limit
  std::atomic<int64_t> rejected{0};   ///< admission rejections
  std::atomic<int64_t> writes{0};     ///< inserts + deletes applied
  std::atomic<int64_t> commits{0};
  std::atomic<int64_t> rollbacks{0};
  std::atomic<bool> in_txn{false};
  std::atomic<int64_t> txn_ops{0};    ///< ops buffered in the open txn
  std::atomic<bool> active{false};    ///< a statement is executing now
};

/// Process-wide registry of live serve sessions. Deliberately free of any
/// socket dependency: `engine/system_tables.cc` reads it to build
/// `fdb.sessions` without pulling the network layer into the engine.
class SessionRegistry {
 public:
  static SessionRegistry& Instance();

  /// Registers a new session and returns its stats block (id assigned).
  std::shared_ptr<SessionStats> Open(const std::string& peer);
  /// Removes a session (its stats block stays valid for live snapshots).
  void Close(uint64_t id);

  /// The live sessions, ordered by id.
  std::vector<std::shared_ptr<SessionStats>> Snapshot() const;

  /// Sessions ever opened / currently live.
  uint64_t total_opened() const;
  size_t live() const;

 private:
  SessionRegistry();
  struct Impl;
  Impl* impl_;  // immortal
};

}  // namespace serve
}  // namespace fdb

#endif  // FDB_SERVE_SESSION_REGISTRY_H_
