#include "fdb/serve/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "fdb/engine/fdb_engine.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"

namespace fdb {
namespace serve {
namespace {

obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.queries", "stmts", "statements executed over the wire");
  return c;
}

obs::Counter& ErrorsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.query_errors", "stmts",
      "served statements that returned an error frame");
  return c;
}

obs::Counter& KilledCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.queries_killed", "stmts",
      "served queries stopped at their wall-time or memory limit");
  return c;
}

obs::Counter& RowsSentCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.rows_sent", "rows", "result rows streamed to clients");
  return c;
}

obs::Counter& WritesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.writes", "tuples",
      "inserts + deletes applied through serve sessions");
  return c;
}

obs::Counter& BytesSentCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.bytes_sent", "bytes", "wire bytes written to clients");
  return c;
}

obs::Counter& BytesReceivedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "serve.bytes_received", "bytes", "wire bytes read from clients");
  return c;
}

obs::Histogram& ServeQueryNs() {
  static obs::Histogram& h = obs::Registry::Instance().GetHistogram(
      "serve.query_ns", "ns",
      "served statement latency, admission wait included");
  return h;
}

// Flush threshold for result streaming: a statement's response leaves in
// ~256 KiB bursts instead of buffering the whole result set.
constexpr size_t kFlushBytes = 256 * 1024;

// Releases an admission slot on every exit path of RunQuery.
struct SlotGuard {
  AdmissionController* a;
  ~SlotGuard() { a->Release(); }
};

}  // namespace

std::string FirstKeyword(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string kw;
  while (i < text.size() &&
         (std::isalpha(static_cast<unsigned char>(text[i])) ||
          text[i] == '_')) {
    kw.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(text[i++]))));
  }
  return kw;
}

namespace {

// Tiny statement lexer for the write grammar. The engine's SQL parser
// only covers queries; writes arrive as INSERT INTO / DELETE FROM with
// literal VALUES and are applied through Database's tuple API.
class WriteLexer {
 public:
  explicit WriteLexer(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  bool Keyword(const char* kw) {
    SkipWs();
    size_t j = i_;
    for (const char* p = kw; *p != '\0'; ++p, ++j) {
      if (j >= s_.size() ||
          std::toupper(static_cast<unsigned char>(s_[j])) != *p) {
        return false;
      }
    }
    if (j < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[j])) ||
                          s_[j] == '_')) {
      return false;  // prefix of a longer identifier
    }
    i_ = j;
    return true;
  }

  std::string Identifier() {
    SkipWs();
    std::string id;
    while (i_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '_' || s_[i_] == '.')) {
      id.push_back(s_[i_++]);
    }
    if (id.empty()) {
      throw std::invalid_argument("write statement: expected identifier at " +
                                  std::to_string(i_));
    }
    return id;
  }

  bool Char(char c) {
    SkipWs();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Value Literal() {
    SkipWs();
    if (i_ >= s_.size()) {
      throw std::invalid_argument("write statement: expected literal");
    }
    char c = s_[i_];
    if (c == '\'') {
      ++i_;
      std::string str;
      for (;;) {
        if (i_ >= s_.size()) {
          throw std::invalid_argument("write statement: unterminated string");
        }
        if (s_[i_] == '\'') {
          if (i_ + 1 < s_.size() && s_[i_ + 1] == '\'') {
            str.push_back('\'');  // '' escapes a quote
            i_ += 2;
            continue;
          }
          ++i_;
          return Value(std::move(str));
        }
        str.push_back(s_[i_++]);
      }
    }
    if (Keyword("NULL")) return Value();
    size_t start = i_;
    if (c == '+' || c == '-') ++i_;
    bool has_dot = false, has_exp = false;
    while (i_ < s_.size()) {
      char d = s_[i_];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++i_;
      } else if (d == '.' && !has_dot && !has_exp) {
        has_dot = true;
        ++i_;
      } else if ((d == 'e' || d == 'E') && !has_exp && i_ > start) {
        has_exp = true;
        ++i_;
        if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      } else {
        break;
      }
    }
    std::string num = s_.substr(start, i_ - start);
    if (num.empty() || num == "+" || num == "-") {
      throw std::invalid_argument("write statement: bad literal at " +
                                  std::to_string(start));
    }
    try {
      if (has_dot || has_exp) return Value(std::stod(num));
      return Value(static_cast<int64_t>(std::stoll(num)));
    } catch (const std::exception&) {
      throw std::invalid_argument("write statement: bad number '" + num + "'");
    }
  }

  bool AtEnd() {
    SkipWs();
    // A trailing semicolon is tolerated (shell habit).
    if (i_ < s_.size() && s_[i_] == ';') {
      ++i_;
      SkipWs();
    }
    return i_ >= s_.size();
  }

 private:
  const std::string& s_;
  size_t i_ = 0;
};

}  // namespace

bool ParseWriteStatement(const std::string& text, bool* is_insert,
                         std::string* view, Tuple* tuple) {
  WriteLexer lex(text);
  if (lex.Keyword("INSERT")) {
    *is_insert = true;
    if (!lex.Keyword("INTO")) {
      throw std::invalid_argument("write statement: expected INTO");
    }
  } else if (lex.Keyword("DELETE")) {
    *is_insert = false;
    if (!lex.Keyword("FROM")) {
      throw std::invalid_argument("write statement: expected FROM");
    }
  } else {
    return false;
  }
  *view = lex.Identifier();
  if (!lex.Keyword("VALUES")) {
    throw std::invalid_argument("write statement: expected VALUES");
  }
  if (!lex.Char('(')) {
    throw std::invalid_argument("write statement: expected (");
  }
  do {
    tuple->push_back(lex.Literal());
  } while (lex.Char(','));
  if (!lex.Char(')')) {
    throw std::invalid_argument("write statement: expected )");
  }
  if (!lex.AtEnd()) {
    throw std::invalid_argument("write statement: trailing input");
  }
  return true;
}

Session::Session(const ServeContext& ctx, int fd, const std::string& peer)
    : ctx_(ctx), fd_(fd) {
  stats_ = SessionRegistry::Instance().Open(peer);
  if (obs::LogEnabled()) {
    obs::EventLog::Instance().Emit(
        obs::EventType::kSessionOpen,
        {obs::F("session", static_cast<int64_t>(stats_->id)),
         obs::F("peer", stats_->peer)});
  }
}

Session::~Session() {
  if (obs::LogEnabled()) {
    obs::EventLog::Instance().Emit(
        obs::EventType::kSessionClose,
        {obs::F("session", static_cast<int64_t>(stats_->id)),
         obs::F("queries",
                stats_->queries.load(std::memory_order_relaxed)),
         obs::F("errors", stats_->errors.load(std::memory_order_relaxed)),
         obs::F("killed", stats_->killed.load(std::memory_order_relaxed))});
  }
  SessionRegistry::Instance().Close(stats_->id);
  if (fd_ >= 0) ::close(fd_);
}

void Session::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Session::Kill() {
  draining_.store(true, std::memory_order_relaxed);
  token_.Cancel();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::AppendError(std::vector<uint8_t>* out, uint8_t code,
                          const std::string& message) {
  stats_->errors.fetch_add(1, std::memory_order_relaxed);
  ErrorsCounter().Inc();
  std::vector<uint8_t> payload = EncodeError({code, message});
  AppendFrame(out, FrameType::kError, payload.data(), payload.size());
}

void Session::AppendDone(std::vector<uint8_t>* out, const DoneStats& stats) {
  std::vector<uint8_t> payload = EncodeDone(stats);
  AppendFrame(out, FrameType::kDone, payload.data(), payload.size());
}

void Session::HandleStatement(const std::string& text,
                              std::vector<uint8_t>* out) {
  stats_->queries.fetch_add(1, std::memory_order_relaxed);
  stats_->active.store(true, std::memory_order_relaxed);
  QueriesCounter().Inc();
  std::string kw = FirstKeyword(text);
  try {
    if (kw == "BEGIN") {
      HandleBegin(out);
    } else if (kw == "COMMIT") {
      HandleCommit(out);
    } else if (kw == "ROLLBACK") {
      HandleRollback(out);
    } else if (kw == "INSERT" || kw == "DELETE") {
      bool is_insert = false;
      std::string view;
      Tuple tuple;
      if (ParseWriteStatement(text, &is_insert, &view, &tuple)) {
        HandleWrite(is_insert, view, std::move(tuple), out);
      } else {
        AppendError(out, kErrParse, "unrecognised write statement");
      }
    } else {
      RunQuery(text, out);
    }
  } catch (const std::invalid_argument& e) {
    AppendError(out, kErrParse, e.what());
  } catch (const std::exception& e) {
    AppendError(out, kErrExec, e.what());
  }
  stats_->active.store(false, std::memory_order_relaxed);
}

void Session::RunQuery(const std::string& text, std::vector<uint8_t>* out) {
  if (ctx_.draining->load(std::memory_order_relaxed) ||
      draining_.load(std::memory_order_relaxed)) {
    AppendError(out, kErrShutdown, "server is shutting down");
    return;
  }
  AdmissionController::Ticket ticket = ctx_.admission->Admit();
  if (!ticket.admitted) {
    stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> payload = EncodeRetry(
        {ticket.retry_after_ms,
         "server saturated: retry after " +
             std::to_string(ticket.retry_after_ms) + " ms"});
    AppendFrame(out, FrameType::kRetry, payload.data(), payload.size());
    return;
  }
  SlotGuard slot{ctx_.admission};
  int64_t t0 = obs::NowNs();
  const AdmissionConfig& cfg = ctx_.admission->config();
  token_.Arm(cfg.query_timeout_ms > 0 ? t0 + cfg.query_timeout_ms * 1'000'000
                                      : 0,
             cfg.query_mem_bytes);
  try {
    exec::CancelScope scope(&token_);
    FdbEngine engine(ctx_.db);
    FdbResult res = engine.ExecuteSql(text);
    std::vector<std::string> cols;
    cols.reserve(static_cast<size_t>(res.flat.schema().arity()));
    for (AttrId a : res.flat.schema().attrs()) {
      cols.push_back(ctx_.db->registry().Name(a));
    }
    std::vector<uint8_t> payload = EncodeSchema(cols);
    AppendFrame(out, FrameType::kSchema, payload.data(), payload.size());
    uint64_t rows = 0;
    for (const Tuple& row : res.flat.rows()) {
      payload = EncodeRow(row);
      AppendFrame(out, FrameType::kRow, payload.data(), payload.size());
      ++rows;
      // Stream large results: ship the buffer once it crosses the flush
      // threshold so response memory stays bounded per statement.
      if (fd_ >= 0 && out->size() >= kFlushBytes) {
        if (!WriteAll(out->data(), out->size())) break;
        out->clear();
      }
    }
    DoneStats d;
    d.rows = rows;
    d.elapsed_ns = static_cast<uint64_t>(obs::NowNs() - t0);
    d.queue_wait_ns = ticket.queue_wait_ns;
    d.mem_charged = static_cast<uint64_t>(token_.memory_used());
    AppendDone(out, d);
    ServeQueryNs().Record(d.elapsed_ns + d.queue_wait_ns);
    RowsSentCounter().Inc(rows);
    stats_->rows_sent.fetch_add(static_cast<int64_t>(rows),
                                std::memory_order_relaxed);
  } catch (const exec::QueryCancelled& e) {
    stats_->killed.fetch_add(1, std::memory_order_relaxed);
    KilledCounter().Inc();
    uint8_t code = kErrShutdown;
    if (e.reason() == exec::CancelReason::kTimeout) code = kErrTimeout;
    if (e.reason() == exec::CancelReason::kMemory) code = kErrMemory;
    if (obs::LogEnabled()) {
      obs::EventLog::Instance().Emit(
          obs::EventType::kQueryKilled,
          {obs::F("session", static_cast<int64_t>(stats_->id)),
           obs::F("reason", exec::CancelReasonName(e.reason())),
           obs::F("mem_charged", token_.memory_used())});
    }
    AppendError(out, code, e.what());
  } catch (const std::invalid_argument& e) {
    AppendError(out, kErrParse, e.what());
  } catch (const std::exception& e) {
    AppendError(out, kErrExec, e.what());
  }
}

void Session::HandleWrite(bool is_insert, const std::string& view, Tuple tuple,
                          std::vector<uint8_t>* out) {
  if (in_txn_) {
    // Buffered session-locally; validation happens at COMMIT, where a bad
    // op rolls the whole transaction back.
    txn_ops_.push_back({is_insert, view, std::move(tuple)});
    stats_->txn_ops.store(static_cast<int64_t>(txn_ops_.size()),
                          std::memory_order_relaxed);
    AppendDone(out, DoneStats{});
    return;
  }
  {
    base::MutexLock g(ctx_.write_mu);
    if (is_insert) {
      ctx_.db->Insert(view, tuple);
    } else {
      ctx_.db->Delete(view, tuple);
    }
  }
  stats_->writes.fetch_add(1, std::memory_order_relaxed);
  WritesCounter().Inc();
  DoneStats d;
  d.rows = 1;
  AppendDone(out, d);
}

void Session::HandleBegin(std::vector<uint8_t>* out) {
  if (in_txn_) {
    AppendError(out, kErrTxn, "transaction already open");
    return;
  }
  in_txn_ = true;
  stats_->in_txn.store(true, std::memory_order_relaxed);
  AppendDone(out, DoneStats{});
}

void Session::HandleCommit(std::vector<uint8_t>* out) {
  if (!in_txn_) {
    AppendError(out, kErrTxn, "COMMIT outside a transaction");
    return;
  }
  size_t nops = txn_ops_.size();
  try {
    // One Database transaction per wire COMMIT: the write mutex keeps
    // other sessions' writes out of this open transaction, and the WAL
    // makes the whole group one durable commit (one fsync).
    base::MutexLock g(ctx_.write_mu);
    ctx_.db->Begin();
    try {
      for (const TxnOp& op : txn_ops_) {
        if (op.is_insert) {
          ctx_.db->Insert(op.view, op.tuple);
        } else {
          ctx_.db->Delete(op.view, op.tuple);
        }
      }
      ctx_.db->Commit();
    } catch (...) {
      ctx_.db->Rollback();
      throw;
    }
  } catch (const std::exception& e) {
    in_txn_ = false;
    txn_ops_.clear();
    stats_->in_txn.store(false, std::memory_order_relaxed);
    stats_->txn_ops.store(0, std::memory_order_relaxed);
    stats_->rollbacks.fetch_add(1, std::memory_order_relaxed);
    AppendError(out, kErrTxn,
                std::string("transaction rolled back: ") + e.what());
    return;
  }
  in_txn_ = false;
  txn_ops_.clear();
  stats_->in_txn.store(false, std::memory_order_relaxed);
  stats_->txn_ops.store(0, std::memory_order_relaxed);
  stats_->commits.fetch_add(1, std::memory_order_relaxed);
  stats_->writes.fetch_add(static_cast<int64_t>(nops),
                           std::memory_order_relaxed);
  WritesCounter().Inc(nops);
  DoneStats d;
  d.rows = nops;
  AppendDone(out, d);
}

void Session::HandleRollback(std::vector<uint8_t>* out) {
  if (!in_txn_) {
    AppendError(out, kErrTxn, "ROLLBACK outside a transaction");
    return;
  }
  in_txn_ = false;
  txn_ops_.clear();
  stats_->in_txn.store(false, std::memory_order_relaxed);
  stats_->txn_ops.store(0, std::memory_order_relaxed);
  stats_->rollbacks.fetch_add(1, std::memory_order_relaxed);
  AppendDone(out, DoneStats{});
}

bool Session::WriteAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  BytesSentCounter().Inc(n);
  return true;
}

void Session::Run() {
  std::vector<uint8_t> outbuf;
  FrameDecoder dec;
  uint8_t buf[64 * 1024];
  bool alive = true;
  while (alive) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed, error, or drain (SHUT_RD)
    BytesReceivedCounter().Inc(static_cast<uint64_t>(n));
    dec.Feed(buf, static_cast<size_t>(n));
    try {
      Frame f;
      while (alive && dec.Next(&f)) {
        if (f.type == FrameType::kHello) {
          DecodeHello(f.payload);
          outbuf.clear();
          std::vector<uint8_t> payload = EncodeHello();
          AppendFrame(&outbuf, FrameType::kHello, payload.data(),
                      payload.size());
          alive = WriteAll(outbuf.data(), outbuf.size());
          continue;
        }
        if (f.type != FrameType::kQuery) {
          throw WireError(std::string("unexpected client frame '") +
                          static_cast<char>(f.type) + "'");
        }
        std::string text(f.payload.begin(), f.payload.end());
        outbuf.clear();
        HandleStatement(text, &outbuf);
        alive = WriteAll(outbuf.data(), outbuf.size());
      }
    } catch (const WireError& e) {
      // Protocol violation: report once, then drop the connection (the
      // stream is desynced; there is no safe way to continue).
      outbuf.clear();
      AppendError(&outbuf, kErrProtocol, e.what());
      WriteAll(outbuf.data(), outbuf.size());
      break;
    }
  }
}

}  // namespace serve
}  // namespace fdb
