#include <unistd.h>

#include <cstring>
#include <map>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "fdb/check/check.h"
#include "fdb/core/factorisation.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"

namespace fdb {
namespace storage {
namespace {

// The file (or "<memory>") the current parse reads from, so every
// rejection names its source — corrupt-file triage should never have to
// guess which of base, delta-N or log is damaged. Thread-local because
// parses of different snapshots may run concurrently.
thread_local const std::string* g_parse_source = nullptr;

struct ParseSourceScope {
  explicit ParseSourceScope(const std::string& source)
      : prev(g_parse_source) {
    g_parse_source = &source;
  }
  ~ParseSourceScope() { g_parse_source = prev; }
  const std::string* prev;
};

[[noreturn]] void Corrupt(const std::string& what) {
  std::string msg = "snapshot: ";
  if (g_parse_source != nullptr) msg += *g_parse_source + ": ";
  msg += what;
  throw std::invalid_argument(msg);
}

[[noreturn]] void CorruptAt(uint64_t off, const std::string& what) {
  Corrupt("at byte " + std::to_string(off) + ": " + what);
}

/// Bounds-checked cursor over a byte range of the mapping. Every read is
/// a memcpy load, so nothing here requires alignment; alignment only
/// matters for the value pools served in place, which the section
/// parsers check explicitly.
class Reader {
 public:
  Reader(const std::byte* base, size_t begin, size_t end)
      : base_(base), pos_(begin), end_(end) {
    if (begin > end) Corrupt("section range inverted");
  }

  template <typename T>
  T Pod() {
    Require(sizeof(T));
    T v;
    std::memcpy(&v, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  uint8_t U8() { return Pod<uint8_t>(); }
  uint32_t U32() { return Pod<uint32_t>(); }
  uint64_t U64() { return Pod<uint64_t>(); }
  int32_t I32() { return Pod<int32_t>(); }
  int64_t I64() { return Pod<int64_t>(); }
  double F64() { return Pod<double>(); }

  std::string Str32() {
    uint32_t len = U32();
    Require(len);
    std::string s(reinterpret_cast<const char*>(base_ + pos_), len);
    pos_ += len;
    return s;
  }

  void Skip(uint64_t n) {
    Require(n);
    pos_ += static_cast<size_t>(n);
  }
  void Align8() {
    size_t pad = (8 - pos_ % 8) % 8;
    Require(pad);
    pos_ += pad;
  }
  size_t pos() const { return pos_; }
  uint64_t remaining() const { return end_ - pos_; }

  void Require(uint64_t n) const {
    if (n > end_ - pos_) {
      CorruptAt(pos_, "truncated input (need " + std::to_string(n) +
                          " more bytes, section ends at " +
                          std::to_string(end_) + ")");
    }
  }

 private:
  const std::byte* base_;
  size_t pos_;
  size_t end_;
};

FTree ReadFTreeBlob(Reader* in, AttributeRegistry* reg, int num_attrs) {
  uint32_t num_nodes = in->U32();
  // Each node record is at least 12 bytes; bound the count up front so a
  // corrupt header cannot demand RawNode storage far beyond the section.
  if (num_nodes > in->remaining() / 12) Corrupt("f-tree node table too large");
  auto check_attr = [&](int32_t a, bool allow_invalid) {
    if (a == kInvalidAttr && allow_invalid) return;
    if (a < 0 || a >= num_attrs) Corrupt("attribute id out of range");
  };

  std::vector<FTree::RestoredNode> raw;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    FTree::RestoredNode& n = raw.emplace_back();
    n.alive = in->U8() != 0;
    bool is_agg = in->U8() != 0;
    int32_t parent = in->I32();
    if (parent < -1 || parent >= static_cast<int32_t>(num_nodes)) {
      Corrupt("f-tree parent out of range");
    }
    n.parent = parent;
    if (is_agg) {
      AggregateLabel& agg = n.agg.emplace();
      uint8_t fn = in->U8();
      if (fn > static_cast<uint8_t>(AggFn::kMax)) {
        Corrupt("unknown aggregate function");
      }
      agg.fn = static_cast<AggFn>(fn);
      int32_t source = in->I32();
      check_attr(source, /*allow_invalid=*/true);
      agg.source = source;
      int32_t id = in->I32();
      check_attr(id, /*allow_invalid=*/false);
      agg.id = id;
      uint32_t nover = in->U32();
      for (uint32_t k = 0; k < nover; ++k) {
        int32_t a = in->I32();
        check_attr(a, /*allow_invalid=*/false);
        agg.over.push_back(a);
      }
    } else {
      uint32_t nattrs = in->U32();
      for (uint32_t k = 0; k < nattrs; ++k) {
        int32_t a = in->I32();
        check_attr(a, /*allow_invalid=*/false);
        n.attrs.push_back(a);
      }
      // FTree::Restore rejects a live atomic node without attributes.
    }
    uint32_t nchildren = in->U32();
    for (uint32_t k = 0; k < nchildren; ++k) {
      int32_t c = in->I32();
      if (c < 0 || c >= static_cast<int32_t>(num_nodes)) {
        Corrupt("f-tree child out of range");
      }
      n.children.push_back(c);
    }
  }
  uint32_t nroots = in->U32();
  std::vector<int> roots;
  for (uint32_t k = 0; k < nroots; ++k) {
    int32_t r = in->I32();
    if (r < 0 || r >= static_cast<int32_t>(num_nodes)) {
      Corrupt("f-tree root out of range");
    }
    roots.push_back(r);
  }

  FTree tree = FTree::Restore(std::move(raw), std::move(roots), reg);

  uint32_t nedges = in->U32();
  for (uint32_t e = 0; e < nedges; ++e) {
    Hyperedge edge;
    edge.weight = in->F64();
    uint32_t nattrs = in->U32();
    for (uint32_t k = 0; k < nattrs; ++k) {
      int32_t a = in->I32();
      check_attr(a, /*allow_invalid=*/false);
      edge.attrs.push_back(a);
    }
    edge.name = in->Str32();
    tree.AddEdge(std::move(edge));
  }
  return tree;
}

Value ReadValueCell(Reader* in) {
  uint8_t tag = in->U8();
  switch (tag) {
    case kValNull:
      return Value();
    case kValInt:
      return Value(in->I64());
    case kValDouble:
      return Value(in->F64());
    case kValString:
      return Value(in->Str32());
    default:
      Corrupt("unknown value tag");
  }
}

struct Section {
  size_t begin = 0;
  size_t end = 0;
  bool present = false;
};

/// Validates the file envelope and fills the per-kind section ranges.
/// `lo..hi` are the section kinds this file type requires (base: 1..5
/// plus meta for v2; delta: 7..12). Returns the header.
FileHeader ReadEnvelope(const SnapshotMapping& mapping, uint32_t lo,
                        uint32_t hi, Section* sections) {
  const std::byte* base = mapping.data();
  size_t size = mapping.size();
  if (size < sizeof(FileHeader)) Corrupt("file shorter than its header");
  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    Corrupt("bad magic");
  }
  if (header.endian != kEndianProbe) {
    Corrupt("endianness mismatch (snapshot written on a foreign machine)");
  }
  if (header.version < kMinVersion || header.version > kVersion) {
    Corrupt("unsupported version");
  }
  if (header.file_size != size) Corrupt("header size disagrees with file");
  if (header.section_count > 64) Corrupt("implausible section count");

  Reader table(base, sizeof(FileHeader), size);
  for (uint64_t s = 0; s < header.section_count; ++s) {
    SectionEntry e = table.Pod<SectionEntry>();
    if (e.kind < lo || e.kind > hi) Corrupt("unknown section kind");
    Section& sec = sections[e.kind];
    if (sec.present) Corrupt("duplicate section");
    if (e.offset % 8 != 0 || e.offset > size || e.size > size - e.offset) {
      Corrupt("section out of range");
    }
    // Version-3 files carry per-section payload CRCs; verify every
    // section up front, before any value-pool remap dirties the
    // copy-on-write pages. Untouched pages stay clean and evictable —
    // this is one extra sequential read of the file, not a copy.
    if (header.version >= 3 &&
        Crc32(base + e.offset, e.size) != e.crc32) {
      Corrupt("section crc mismatch (kind " + std::to_string(e.kind) + ")");
    }
    sec.begin = e.offset;
    sec.end = e.offset + e.size;
    sec.present = true;
  }
  return header;
}

/// Range-checks one view data segment starting at the reader's position
/// and records its layout (the reader is advanced past it).
SnapshotState::SegDesc ReadSegmentDesc(
    Reader* in, const std::shared_ptr<SnapshotMapping>& mapping,
    uint64_t first_node) {
  SnapshotState::SegDesc desc;
  desc.mapping = mapping;
  desc.first_node = first_node;
  in->Align8();
  SegmentHeader seg = in->Pod<SegmentHeader>();
  desc.num_nodes = seg.num_nodes;
  desc.num_values = seg.num_values;
  desc.num_children = seg.num_children;
  desc.num_roots = seg.num_roots;
  if (first_node + seg.num_nodes > uint64_t{1} << 32) {
    Corrupt("node count out of range");
  }
  if (seg.num_nodes > in->remaining() / sizeof(NodeRec)) {
    Corrupt("node table out of range");
  }
  desc.nodes_off = in->pos();
  in->Skip(seg.num_nodes * sizeof(NodeRec));
  if (seg.num_roots > in->remaining() / sizeof(int64_t)) {
    Corrupt("root table out of range");
  }
  desc.roots_off = in->pos();
  in->Skip(seg.num_roots * sizeof(int64_t));
  if (seg.num_values > in->remaining() / sizeof(uint64_t)) {
    Corrupt("value pool out of range");
  }
  desc.values_off = in->pos();
  if (desc.values_off % 8 != 0) Corrupt("misaligned value pool");
  in->Skip(seg.num_values * sizeof(uint64_t));
  if (seg.num_children > in->remaining() / sizeof(uint32_t)) {
    Corrupt("child pool out of range");
  }
  desc.children_off = in->pos();
  in->Skip(seg.num_children * sizeof(uint32_t));
  in->Align8();
  return desc;
}

}  // namespace

std::shared_ptr<SnapshotState> ParseSnapshot(
    std::shared_ptr<SnapshotMapping> mapping, Database* db) {
  ParseSourceScope src(mapping->source());
  const std::byte* base = mapping->data();
  Section sections[kSectionKindMax + 1];
  FileHeader header =
      ReadEnvelope(*mapping, kSectionRegistry, kSectionMeta, sections);
  for (uint32_t k = kSectionRegistry; k <= kSectionViews; ++k) {
    if (!sections[k].present) Corrupt("missing section");
  }
  if (header.version >= 2 && !sections[kSectionMeta].present) {
    Corrupt("missing section");
  }
  if (header.version < 2 && sections[kSectionMeta].present) {
    Corrupt("unknown section kind");
  }

  auto state = std::make_shared<SnapshotState>();
  state->mapping = mapping;
  if (sections[kSectionMeta].present) {
    Reader in(base, sections[kSectionMeta].begin, sections[kSectionMeta].end);
    state->epoch = in.U64();
  }

  // --- registry: interning names in id order reproduces the saved ids in
  // the opened database's fresh registry.
  int num_attrs = 0;
  {
    Reader in(base, sections[kSectionRegistry].begin,
              sections[kSectionRegistry].end);
    uint64_t count = in.U64();
    for (uint64_t i = 0; i < count; ++i) {
      AttrId id = db->registry().Intern(in.Str32());
      if (id != static_cast<AttrId>(i)) {
        Corrupt("duplicate attribute name in registry");
      }
    }
    num_attrs = static_cast<int>(count);
  }

  // --- dictionary: bulk-intern the snapshot strings (stored in rank
  // order, so an empty live dictionary assigns code == snapshot id and
  // the value pools need no rewriting at all).
  {
    Reader in(base, sections[kSectionDictStrings].begin,
              sections[kSectionDictStrings].end);
    uint64_t count = in.U64();
    std::vector<std::string> strings;
    strings.reserve(static_cast<size_t>(count < 4096 ? count : 4096));
    for (uint64_t i = 0; i < count; ++i) strings.push_back(in.Str32());
    ValueDict& dict = ValueDict::Default();
    {
      std::vector<std::string_view> views(strings.begin(), strings.end());
      dict.InternBulk(std::move(views));
    }
    state->string_codes.reserve(strings.size());
    for (size_t i = 0; i < strings.size(); ++i) {
      std::optional<uint32_t> code = dict.Find(strings[i]);
      if (!code.has_value()) Corrupt("dictionary intern failed");
      state->string_codes.push_back(*code);
      if (*code != i) state->strings_identity = false;
    }
  }
  {
    Reader in(base, sections[kSectionDictBigInts].begin,
              sections[kSectionDictBigInts].end);
    uint64_t count = in.U64();
    if (count > in.remaining() / sizeof(int64_t)) {
      Corrupt("big-int pool out of range");
    }
    ValueDict& dict = ValueDict::Default();
    state->bigint_slots.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t slot = dict.InternBigInt(in.I64());
      state->bigint_slots.push_back(slot);
      if (slot != i) state->bigints_identity = false;
    }
  }

  // --- flat relations, decoded eagerly (they are the write-optimised
  // side; only factorised views open lazily).
  {
    Reader in(base, sections[kSectionRelations].begin,
              sections[kSectionRelations].end);
    uint64_t count = in.U64();
    for (uint64_t r = 0; r < count; ++r) {
      std::string name = in.Str32();
      uint64_t arity = in.U64();
      if (arity > 65535) Corrupt("implausible relation arity");
      std::vector<AttrId> attrs;
      for (uint64_t a = 0; a < arity; ++a) {
        int32_t id = in.I32();
        if (id < 0 || id >= num_attrs) Corrupt("attribute id out of range");
        attrs.push_back(id);
      }
      uint64_t rows = in.U64();
      // Every cell carries at least a tag byte, so the row count cannot
      // exceed the bytes left — reject before accumulating tuples.
      if (rows > in.remaining()) Corrupt("row count out of range");
      Relation rel{RelSchema(std::move(attrs))};
      for (uint64_t i = 0; i < rows; ++i) {
        Tuple t;
        t.reserve(arity);
        for (uint64_t a = 0; a < arity; ++a) t.push_back(ReadValueCell(&in));
        rel.Add(std::move(t));
      }
      db->AddRelation(name, std::move(rel));
    }
  }

  // --- view catalog: f-trees eagerly (cheap), data segments lazily.
  {
    Reader in(base, sections[kSectionViews].begin, sections[kSectionViews].end);
    uint64_t count = in.U64();
    for (uint64_t v = 0; v < count; ++v) {
      std::string name = in.Str32();
      SnapshotState::ViewDesc desc;
      desc.tree = ReadFTreeBlob(&in, &db->registry(), num_attrs);
      desc.segs.push_back(ReadSegmentDesc(&in, mapping, 0));
      if (!state->views.emplace(std::move(name), std::move(desc)).second) {
        Corrupt("duplicate view name");
      }
    }
  }
  return state;
}

bool ParseDeltaSnapshot(std::shared_ptr<SnapshotMapping> mapping,
                        Database* db, SnapshotState* state, uint64_t seq) {
  ParseSourceScope src(mapping->source());
  const std::byte* base = mapping->data();
  Section sections[kSectionKindMax + 1];
  ReadEnvelope(*mapping, kSectionDeltaManifest, kSectionViewDeltas, sections);
  for (uint32_t k = kSectionDeltaManifest; k <= kSectionViewDeltas; ++k) {
    if (!sections[k].present) Corrupt("missing section");
  }

  // --- manifest: a delta belongs to exactly one base epoch and slot in
  // the chain. A mismatch is a stale leftover (e.g. a crash between a
  // base fold's rename and its delta cleanup), not corruption: skip it.
  {
    Reader in(base, sections[kSectionDeltaManifest].begin,
              sections[kSectionDeltaManifest].end);
    uint64_t epoch = in.U64();
    uint64_t dseq = in.U64();
    if (state->epoch == 0 || epoch != state->epoch || dseq != seq) {
      return false;
    }
  }

  // --- registry delta: appended names continue the id sequence.
  int num_attrs = 0;
  {
    Reader in(base, sections[kSectionRegistryDelta].begin,
              sections[kSectionRegistryDelta].end);
    uint64_t first = in.U64();
    uint64_t count = in.U64();
    if (first != static_cast<uint64_t>(db->registry().size())) {
      Corrupt("registry delta out of sequence");
    }
    for (uint64_t i = 0; i < count; ++i) {
      AttrId id = db->registry().Intern(in.Str32());
      if (id != static_cast<AttrId>(first + i)) {
        Corrupt("duplicate attribute name in registry");
      }
    }
    num_attrs = db->registry().size();
  }

  // --- dictionary deltas: appended strings in code order (interned one
  // by one so a fresh process assigns code == snapshot id and the value
  // pools keep the zero-rewrite identity path), appended big-int slots.
  {
    Reader in(base, sections[kSectionDictStringsDelta].begin,
              sections[kSectionDictStringsDelta].end);
    uint64_t first = in.U64();
    uint64_t count = in.U64();
    if (first != state->string_codes.size()) {
      Corrupt("string delta out of sequence");
    }
    ValueDict& dict = ValueDict::Default();
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t code = dict.Intern(in.Str32());
      state->string_codes.push_back(code);
      if (code != first + i) state->strings_identity = false;
    }
  }
  {
    Reader in(base, sections[kSectionDictBigIntsDelta].begin,
              sections[kSectionDictBigIntsDelta].end);
    uint64_t first = in.U64();
    uint64_t count = in.U64();
    if (first != state->bigint_slots.size()) {
      Corrupt("big-int delta out of sequence");
    }
    if (count > in.remaining() / sizeof(int64_t)) {
      Corrupt("big-int pool out of range");
    }
    ValueDict& dict = ValueDict::Default();
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t slot = dict.InternBigInt(in.I64());
      state->bigint_slots.push_back(slot);
      if (slot != first + i) state->bigints_identity = false;
    }
  }

  // --- changed relations, re-dumped whole: replace in place.
  {
    Reader in(base, sections[kSectionRelationsDelta].begin,
              sections[kSectionRelationsDelta].end);
    uint64_t count = in.U64();
    for (uint64_t r = 0; r < count; ++r) {
      std::string name = in.Str32();
      uint64_t arity = in.U64();
      if (arity > 65535) Corrupt("implausible relation arity");
      std::vector<AttrId> attrs;
      for (uint64_t a = 0; a < arity; ++a) {
        int32_t id = in.I32();
        if (id < 0 || id >= num_attrs) Corrupt("attribute id out of range");
        attrs.push_back(id);
      }
      uint64_t rows = in.U64();
      if (rows > in.remaining()) Corrupt("row count out of range");
      Relation rel{RelSchema(std::move(attrs))};
      for (uint64_t i = 0; i < rows; ++i) {
        Tuple t;
        t.reserve(arity);
        for (uint64_t a = 0; a < arity; ++a) t.push_back(ReadValueCell(&in));
        rel.Add(std::move(t));
      }
      db->AddRelation(name, std::move(rel));
    }
  }

  // --- view deltas: full replacements restart a view's segment chain;
  // incremental segments append to it.
  {
    Reader in(base, sections[kSectionViewDeltas].begin,
              sections[kSectionViewDeltas].end);
    uint64_t count = in.U64();
    for (uint64_t v = 0; v < count; ++v) {
      std::string name = in.Str32();
      uint8_t mode = in.U8();
      if (mode == kViewDeltaFull) {
        SnapshotState::ViewDesc desc;
        desc.tree = ReadFTreeBlob(&in, &db->registry(), num_attrs);
        desc.segs.push_back(ReadSegmentDesc(&in, mapping, 0));
        state->views[name] = std::move(desc);
      } else if (mode == kViewDeltaIncremental) {
        uint64_t prior = in.U64();
        auto it = state->views.find(name);
        if (it == state->views.end()) {
          Corrupt("incremental delta for unknown view");
        }
        SnapshotState::ViewDesc& desc = it->second;
        uint64_t have = desc.segs.back().first_node +
                        desc.segs.back().num_nodes;
        if (prior != have) Corrupt("view delta out of sequence");
        desc.segs.push_back(ReadSegmentDesc(&in, mapping, prior));
      } else {
        Corrupt("unknown view delta mode");
      }
    }
  }
  ++state->deltas_replayed;
  return true;
}

std::optional<Factorisation> MaterialiseSnapshotView(SnapshotState& state,
                                                     const std::string& name) {
  base::MutexLock g(&state.mu);
  auto it = state.views.find(name);
  if (it == state.views.end()) return std::nullopt;
  SnapshotState::ViewDesc& d = it->second;

  // Pass 1 (once per view, shared across Database copies): validate
  // every dictionary payload in every segment of the chain, then remap
  // snapshot-local ids to live codes. Validation completes before the
  // first write, so a corrupt pool throws without leaving a half-remapped
  // segment behind. With identity maps nothing is written and the pools'
  // pages stay clean, file-backed, and demand-paged.
  if (!d.fixed_up) {
    for (const SnapshotState::SegDesc& seg : d.segs) {
      ParseSourceScope src(seg.mapping->source());
      const ValueRef* ro = reinterpret_cast<const ValueRef*>(
          seg.mapping->data() + seg.values_off);
      for (uint64_t i = 0; i < seg.num_values; ++i) {
        if (ro[i].is_string()) {
          if (ro[i].string_code() >= state.string_codes.size()) {
            Corrupt("string id out of range");
          }
        } else if (ro[i].is_big_int()) {
          if (ro[i].big_int_slot() >= state.bigint_slots.size()) {
            Corrupt("big-int slot out of range");
          }
        }
      }
    }
    if (!state.strings_identity || !state.bigints_identity) {
      for (const SnapshotState::SegDesc& seg : d.segs) {
        ValueRef* pool = reinterpret_cast<ValueRef*>(
            seg.mapping->mutable_data() + seg.values_off);
        for (uint64_t i = 0; i < seg.num_values; ++i) {
          ValueRef v = pool[i];
          // Per-kind guards: an identity kind is not stored back, so its
          // (byte-identical) writes don't COW-dirty otherwise clean pages.
          if (v.is_string() && !state.strings_identity) {
            pool[i] = ValueRef::StringRef(state.string_codes[v.string_code()]);
          } else if (v.is_big_int() && !state.bigints_identity) {
            pool[i] = ValueRef::BigIntRef(state.bigint_slots[v.big_int_slot()]);
          }
        }
      }
    }
    d.fixed_up = true;
  }

  // Pass 2: offsets -> pointers, across the whole segment chain. Node
  // headers and the widened child pointer array are the only per-open
  // allocations; value spans point into the owning segment's mapping.
  // Node ids are global (base first, then each delta), and children-first
  // order holds globally: every child id is below its parent's.
  uint64_t total_nodes = 0;
  uint64_t total_children = 0;
  for (const SnapshotState::SegDesc& seg : d.segs) {
    if (seg.first_node != total_nodes) Corrupt("segment chain out of order");
    total_nodes += seg.num_nodes;
    total_children += seg.num_children;
  }
  auto nodes = std::make_unique<FactNode[]>(total_nodes);
  auto kids = std::make_unique<FactPtr[]>(total_children);
  uint64_t child_base = 0;
  for (const SnapshotState::SegDesc& seg : d.segs) {
    ParseSourceScope src(seg.mapping->source());
    const std::byte* base = seg.mapping->data();
    const ValueRef* vpool =
        reinterpret_cast<const ValueRef*>(base + seg.values_off);
    Reader recs(base, seg.nodes_off,
                seg.nodes_off + seg.num_nodes * sizeof(NodeRec));
    for (uint64_t n = 0; n < seg.num_nodes; ++n) {
      uint64_t gid = seg.first_node + n;
      NodeRec rec = recs.Pod<NodeRec>();
      if (uint64_t{rec.value_off} + rec.num_values > seg.num_values) {
        Corrupt("value span out of range");
      }
      if (uint64_t{rec.child_off} + rec.num_children > seg.num_children) {
        Corrupt("child span out of range");
      }
      const ValueRef* vals = vpool + rec.value_off;
      for (uint32_t i = 1; i < rec.num_values; ++i) {
        if (!(vals[i - 1] < vals[i])) Corrupt("union not strictly sorted");
      }
      nodes[gid].values = {vals, rec.num_values};
      nodes[gid].children = {kids.get() + child_base + rec.child_off,
                             rec.num_children};
      const uint32_t* span = reinterpret_cast<const uint32_t*>(
          base + seg.children_off + uint64_t{rec.child_off} * sizeof(uint32_t));
      for (uint32_t i = 0; i < rec.num_children; ++i) {
        uint32_t idx;
        std::memcpy(&idx, span + i, sizeof(idx));
        // Children-first order makes cycles unrepresentable.
        if (idx >= gid) Corrupt("child index not below parent");
        kids[child_base + rec.child_off + i] = &nodes[idx];
      }
    }
    child_base += seg.num_children;
  }

  // Roots come from the last segment of the chain (each delta re-states
  // the full root array). Then a memoised shape check against the
  // f-tree: every (data node, f-tree node) pair is visited once, so DAG
  // sharing cannot blow this up, and enumeration/ops can trust
  // child-matrix extents.
  std::vector<FactPtr> roots;
  std::vector<std::pair<uint64_t, int>> work;
  {
    const SnapshotState::SegDesc& seg = d.segs.back();
    Reader rr(seg.mapping->data(), seg.roots_off,
              seg.roots_off + seg.num_roots * sizeof(int64_t));
    if (seg.num_roots != d.tree.roots().size()) {
      Corrupt("root count disagrees with f-tree");
    }
    for (uint64_t r = 0; r < seg.num_roots; ++r) {
      int64_t idx = rr.I64();
      if (idx == -1) {
        roots.push_back(FactArena::EmptyNode());
        continue;
      }
      if (idx < 0 || static_cast<uint64_t>(idx) >= total_nodes) {
        Corrupt("root index out of range");
      }
      roots.push_back(&nodes[idx]);
      work.emplace_back(static_cast<uint64_t>(idx),
                        d.tree.roots()[static_cast<size_t>(r)]);
    }
  }
  {
    std::unordered_set<uint64_t> seen;
    while (!work.empty()) {
      auto [n, tn] = work.back();
      work.pop_back();
      if (!seen.insert(n << 32 | static_cast<uint64_t>(tn)).second) continue;
      const FactNode& node = nodes[n];
      size_t k = d.tree.children(tn).size();
      if (node.children.size() != node.values.size() * k) {
        Corrupt("child matrix disagrees with f-tree fan-out");
      }
      for (size_t i = 0; i < node.values.size(); ++i) {
        for (size_t c = 0; c < k; ++c) {
          FactPtr child = node.children[i * k + c];
          uint64_t idx = static_cast<uint64_t>(child - nodes.get());
          if (child->values.empty()) {
            Corrupt("unpruned empty child union");
          }
          work.emplace_back(idx, d.tree.children(tn)[c]);
        }
      }
    }
  }

  int64_t mapped_bytes = 0;
  std::vector<std::shared_ptr<SnapshotMapping>> mappings;
  for (const SnapshotState::SegDesc& seg : d.segs) {
    mapped_bytes += static_cast<int64_t>(
        seg.num_nodes * sizeof(NodeRec) + seg.num_roots * sizeof(int64_t) +
        seg.num_values * sizeof(uint64_t) +
        seg.num_children * sizeof(uint32_t));
    if (mappings.empty() || mappings.back() != seg.mapping) {
      mappings.push_back(seg.mapping);
    }
  }
  auto arena = std::make_shared<MappedArena>(
      std::move(mappings), std::move(nodes),
      static_cast<int64_t>(total_nodes), std::move(kids), mapped_bytes);
  return Factorisation(d.tree, std::move(roots), std::move(arena));
}

}  // namespace storage

Database Database::OpenSnapshot(
    std::shared_ptr<storage::SnapshotMapping> mapping) {
  Database db;
  db.snapshot_ = storage::ParseSnapshot(std::move(mapping), &db);
  return db;
}

Database Database::Open(const std::string& path) {
  static obs::Histogram& open_hist = obs::Registry::Instance().GetHistogram(
      "storage.open_ns", "ns", "Database::Open wall time (chain + WAL)");
  static obs::Counter& deltas_replayed = obs::Registry::Instance().GetCounter(
      "storage.open_deltas_replayed", "deltas",
      "checkpoint deltas replayed during Open");
  static obs::Counter& wal_groups_replayed =
      obs::Registry::Instance().GetCounter(
          "storage.open_wal_groups_replayed", "groups",
          "WAL commit groups replayed during Open");
  obs::ScopedLatency latency(open_hist);
  Database db = OpenSnapshot(storage::SnapshotMapping::FromFile(path));
  // Counted locally as well as via the (process-wide) registry counters,
  // so the recovery event describes *this* Open.
  uint64_t my_deltas = 0;
  // Replay the delta chain, stopping at the first gap or stale epoch
  // (leftovers of a crashed fold are skipped, never misapplied).
  for (uint64_t seq = 1;; ++seq) {
    std::string dp = storage::DeltaPath(path, seq);
    if (::access(dp.c_str(), F_OK) != 0) break;
    auto mapping = storage::SnapshotMapping::FromFile(dp);
    if (!storage::ParseDeltaSnapshot(std::move(mapping), &db,
                                     db.snapshot_.get(), seq)) {
      break;
    }
    deltas_replayed.Inc();
    ++my_deltas;
  }
  // Finally the write-ahead log: committed groups only (ReadWal dropped
  // any torn tail), applied in commit order, and only when the log's
  // (epoch, chain position) stamp matches the chain just replayed — a
  // mismatched log predates a fold that already captured it.
  std::optional<storage::WalRecovery> rec = storage::ReadWal(
      path, db.snapshot_->epoch, db.snapshot_->deltas_replayed);
  uint64_t my_groups = 0;
  if (rec.has_value()) {
    my_groups = rec->groups.size();
    for (const std::vector<storage::WalOp>& group : rec->groups) {
      wal_groups_replayed.Inc();
      std::map<std::string, std::vector<BatchOp>> per_view;
      for (const storage::WalOp& op : group) {
        per_view[op.view].push_back(
            BatchOp{op.kind == storage::WalOp::kInsert, op.tuple});
      }
      for (auto& [name, batch] : per_view) {
        if (!db.UpdateView(name, [&batch](Factorisation* f) {
              ApplyBatch(f, batch);
            })) {
          // Commits only ever log existing views, and EnableWal
          // checkpointed them into the chain — a missing one is damage.
          throw std::invalid_argument("wal: " + storage::WalPath(path) +
                                      ": log references unknown view '" +
                                      name + "'");
        }
      }
    }
  }
  if (obs::LogEnabled()) {
    // Post-crash forensics: what this Open actually replayed, including
    // whether a torn WAL tail was truncated and at which byte offset.
    obs::EventLog::Instance().Emit(
        obs::EventType::kRecovery,
        {obs::F("path", path), obs::F("epoch", db.snapshot_->epoch),
         obs::F("deltas_replayed", my_deltas),
         obs::F("wal_groups_replayed", my_groups),
         obs::F("wal_valid_bytes",
                rec.has_value() ? rec->valid_bytes : uint64_t{0}),
         obs::F("wal_truncated_tail",
                rec.has_value() ? rec->truncated_tail : false)});
  }
  // With FDB_CHECK on, an Open that replayed a corrupt chain or WAL fails
  // here, before the database is handed to anyone.
  if (check::Enabled()) check::ValidateDatabaseOrThrow(db);
  return db;
}

}  // namespace fdb
