#ifndef FDB_STORAGE_IO_ENV_H_
#define FDB_STORAGE_IO_ENV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <sys/types.h>

namespace fdb {
namespace storage {

/// Fault-injectable syscall shim. Every write-path operation of the
/// storage layer — the snapshot writer's FileSink, delta appends, the
/// write-ahead log — goes through these wrappers instead of the raw
/// syscalls, each call tagged with a *site* name ("wal_fsync",
/// "snapshot_write", "dir_fsync", ...). In production the wrappers are
/// pass-throughs plus a per-site call counter; under test a *failpoint*
/// makes a chosen call misbehave, which is how the crash-recovery
/// harness kills the write path at arbitrary points and how the
/// failure-injection tests prove Save/Checkpoint leave the previous
/// chain intact.
///
/// Failpoints come from the FDB_FAILPOINT environment variable (read
/// once, at first use) or from SetFailpoints(). Spec grammar:
///
///   spec  := point (',' point)*
///   point := site ':' count [':' mode]
///   mode  := "error" (default) | "short" | "flip"
///
/// `site` names one instrumented call site, or "any" to match every
/// site (the count then indexes the global stream of shimmed calls —
/// the randomized-kill-point mechanism). `count` is 1-based: the
/// count-th matching call triggers the fault.
///
/// Modes model distinct failure shapes:
///   error  the triggering call fails with EIO, and — like a crashed
///          process or a dead disk — *every* later shimmed call fails
///          too (sticky), so no post-"crash" write can sneak to disk.
///   short  the triggering Write stores only half the requested bytes
///          (a torn write), then the environment goes sticky-dead as
///          with `error`. On non-Write calls it behaves like `error`.
///   flip   the triggering Write flips one bit mid-buffer and succeeds;
///          later calls proceed normally (silent corruption, for
///          checksum-detection tests).
///
/// Example: FDB_FAILPOINT=wal_fsync:3 fails the third WAL fsync and
/// everything after it.
class IoEnv {
 public:
  /// The process-wide instance used by all storage code.
  static IoEnv& Instance();

  /// Replaces the failpoint set ("" clears) and revives a sticky-dead
  /// environment. Also resets nothing else: call counters survive.
  void SetFailpoints(const std::string& spec);
  void ClearFailpoints() { SetFailpoints(""); }
  /// True when any failpoint is armed or the environment is dead —
  /// the fast-path check production calls take first.
  bool armed() const;

  /// Calls observed at `site` since the last ResetCounts (faulted calls
  /// included). Site "any" returns the global total.
  uint64_t Count(const std::string& site) const;
  void ResetCounts();

  /// Atomically snapshots every per-site counter (plus the global total
  /// under key "any") and, when `reset`, zeroes them in the same critical
  /// section. Unlike a Count()-then-ResetCounts() pair, no concurrent
  /// writer can slip a call between the read and the reset, so summing
  /// successive snapshots always equals the true call count.
  std::map<std::string, uint64_t> SnapshotCounts(bool reset = false);

  // --- instrumented operations; semantics mirror the raw syscalls ---------
  int Open(const char* site, const char* path, int flags, int mode);
  ssize_t Write(const char* site, int fd, const void* buf, size_t n);
  ssize_t Pwrite(const char* site, int fd, const void* buf, size_t n,
                 int64_t off);
  ssize_t Pread(const char* site, int fd, void* buf, size_t n, int64_t off);
  int Fsync(const char* site, int fd);
  int Ftruncate(const char* site, int fd, int64_t len);
  int Rename(const char* site, const char* from, const char* to);
  int Close(const char* site, int fd);

 private:
  IoEnv();
  struct Impl;
  Impl* impl_;  // immortal (IoEnv lives for the process)
};

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_IO_ENV_H_
