#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <optional>
#include <random>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "fdb/check/check.h"
#include "fdb/core/factorisation.h"
#include "fdb/engine/database.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/storage/format.h"
#include "fdb/storage/io_env.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"

namespace fdb {
namespace storage {
namespace {

[[noreturn]] void TooLarge(const std::string& what) {
  throw std::invalid_argument("snapshot: " + what +
                              " exceeds the 32-bit segment limit");
}

[[noreturn]] void IoError(const std::string& what, const std::string& path) {
  throw std::invalid_argument("snapshot: " + what + " " + path + ": " +
                              std::strerror(errno));
}

/// Byte destination of the writer. The writer streams sections in file
/// order with a bounded buffer and patches the few spots whose content
/// is only known after the fact (header, section table, segment
/// headers) — so serialising never builds the file in memory.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Write(const void* p, size_t n) = 0;
  virtual void PatchAt(uint64_t off, const void* p, size_t n) = 0;
  /// Reads back `n` already-written bytes at `off` (the CRC stamping
  /// pass; sections are streamed, so their bytes only exist here).
  virtual void ReadBack(uint64_t off, void* p, size_t n) = 0;
  /// Bytes of transient buffering this sink holds (stats).
  virtual uint64_t buffer_bytes() const = 0;
};

/// In-memory sink for SerialiseDatabase (tests, in-memory round trips).
class BufferSink : public Sink {
 public:
  void Write(const void* p, size_t n) override {
    b_.append(static_cast<const char*>(p), n);
  }
  void PatchAt(uint64_t off, const void* p, size_t n) override {
    std::memcpy(b_.data() + off, p, n);
  }
  void ReadBack(uint64_t off, void* p, size_t n) override {
    std::memcpy(p, b_.data() + off, n);
  }
  uint64_t buffer_bytes() const override { return b_.size(); }
  std::string Take() { return std::move(b_); }

 private:
  std::string b_;
};

/// Buffered fd sink over the fault-injectable IoEnv (sites
/// "snapshot_open", "snapshot_write", "snapshot_fsync",
/// "snapshot_close"). Close() flushes, fsyncs and verifies every write —
/// success is only declared once the bytes are durably on disk, so the
/// caller's rename can never publish a short or cached-only file.
class FileSink : public Sink {
 public:
  explicit FileSink(const std::string& path) : path_(path) {
    fd_ = IoEnv::Instance().Open("snapshot_open", path.c_str(),
                                 O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                                 0644);
    if (fd_ < 0) {
      throw std::invalid_argument("snapshot: cannot open " + path +
                                  " for writing");
    }
    buf_.reserve(kBufCap);
  }
  ~FileSink() override {
    if (fd_ >= 0) IoEnv::Instance().Close("snapshot_close", fd_);
  }

  void Write(const void* p, size_t n) override {
    const char* c = static_cast<const char*>(p);
    while (n > 0) {
      size_t take = std::min(n, kBufCap - buf_.size());
      buf_.append(c, take);
      c += take;
      n -= take;
      if (buf_.size() == kBufCap) Flush();
    }
  }

  void PatchAt(uint64_t off, const void* p, size_t n) override {
    Flush();
    IoEnv& io = IoEnv::Instance();
    const char* c = static_cast<const char*>(p);
    while (n > 0) {
      ssize_t w = io.Pwrite("snapshot_write", fd_, c, n,
                            static_cast<int64_t>(off));
      if (w < 0) {
        if (errno == EINTR) continue;
        IoError("write to", path_);
      }
      c += w;
      off += static_cast<uint64_t>(w);
      n -= static_cast<size_t>(w);
    }
  }

  void ReadBack(uint64_t off, void* p, size_t n) override {
    Flush();
    IoEnv& io = IoEnv::Instance();
    char* c = static_cast<char*>(p);
    while (n > 0) {
      ssize_t r = io.Pread("snapshot_read", fd_, c, n,
                           static_cast<int64_t>(off));
      if (r < 0) {
        if (errno == EINTR) continue;
        IoError("read back from", path_);
      }
      if (r == 0) IoError("short read back from", path_);
      c += r;
      off += static_cast<uint64_t>(r);
      n -= static_cast<size_t>(r);
    }
  }

  /// Flush + fsync + close; throws if any byte may not have reached disk.
  void Close() {
    Flush();
    IoEnv& io = IoEnv::Instance();
    if (io.Fsync("snapshot_fsync", fd_) != 0) IoError("fsync of", path_);
    int fd = fd_;
    fd_ = -1;
    if (io.Close("snapshot_close", fd) != 0) IoError("close of", path_);
  }

  uint64_t buffer_bytes() const override { return kBufCap; }

 private:
  void Flush() {
    IoEnv& io = IoEnv::Instance();
    const char* c = buf_.data();
    size_t n = buf_.size();
    while (n > 0) {
      ssize_t w = io.Write("snapshot_write", fd_, c, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        IoError("write to", path_);
      }
      c += w;
      n -= static_cast<size_t>(w);
    }
    buf_.clear();
  }

  static constexpr size_t kBufCap = size_t{64} << 10;

  std::string path_;
  std::string buf_;
  int fd_ = -1;
};

/// Typed little writer over a Sink, tracking the file offset.
class Out {
 public:
  explicit Out(Sink* sink) : sink_(sink) {}

  template <typename T>
  void Pod(const T& v) {
    Bytes(&v, sizeof(T));
  }
  void U8(uint8_t v) { Pod(v); }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void I32(int32_t v) { Pod(v); }
  void I64(int64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void Str32(const std::string& s) {
    if (s.size() > std::numeric_limits<uint32_t>::max()) TooLarge("string");
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Bytes(const void* p, size_t n) {
    sink_->Write(p, n);
    pos_ += n;
  }
  void Align8() {
    static const char kZeros[8] = {};
    Bytes(kZeros, (8 - pos_ % 8) % 8);
  }
  template <typename T>
  void PatchAt(uint64_t off, const T& v) {
    sink_->PatchAt(off, &v, sizeof(T));
  }
  uint64_t pos() const { return pos_; }
  Sink* sink() const { return sink_; }

 private:
  Sink* sink_;
  uint64_t pos_ = 0;
};

uint64_t NewEpoch() {
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  uint64_t e = (uint64_t{rd()} << 32) ^ rd() ^
               (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return e == 0 ? 1 : e;
}

void WriteValueCell(Out* out, const Value& v) {
  if (v.is_null()) {
    out->U8(kValNull);
  } else if (v.is_int()) {
    out->U8(kValInt);
    out->I64(v.as_int());
  } else if (v.is_double()) {
    out->U8(kValDouble);
    out->F64(v.as_double());
  } else {
    out->U8(kValString);
    out->Str32(v.as_string());
  }
}

void WriteFTree(Out* out, const FTree& tree) {
  out->U32(static_cast<uint32_t>(tree.num_nodes()));
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const FTreeNode& n = tree.node(i);
    out->U8(n.alive ? 1 : 0);
    out->U8(n.is_aggregate() ? 1 : 0);
    out->I32(n.parent);
    if (n.is_aggregate()) {
      out->U8(static_cast<uint8_t>(n.agg->fn));
      out->I32(n.agg->source);
      out->I32(n.agg->id);
      out->U32(static_cast<uint32_t>(n.agg->over.size()));
      for (AttrId a : n.agg->over) out->I32(a);
    } else {
      out->U32(static_cast<uint32_t>(n.attrs.size()));
      for (AttrId a : n.attrs) out->I32(a);
    }
    out->U32(static_cast<uint32_t>(n.children.size()));
    for (int c : n.children) out->I32(c);
  }
  out->U32(static_cast<uint32_t>(tree.roots().size()));
  for (int r : tree.roots()) out->I32(r);
  out->U32(static_cast<uint32_t>(tree.edges().size()));
  for (const Hyperedge& e : tree.edges()) {
    out->F64(e.weight);
    out->U32(static_cast<uint32_t>(e.attrs.size()));
    for (AttrId a : e.attrs) out->I32(a);
    out->Str32(e.name);
  }
}

std::string SerialiseFTree(const FTree& tree) {
  BufferSink sink;
  Out out(&sink);
  WriteFTree(&out, tree);
  return sink.Take();
}

/// Streams one view data segment — base or incremental delta — in write
/// order: a placeholder SegmentHeader, node records emitted as the
/// children-first reachability walk finalises each new node, the root id
/// array, then the value and child pools re-derived from the emission
/// order. The pools never materialise in memory; the only transient
/// state is the node -> id index and the emission order (O(nodes), not
/// O(values + children + file)).
///
/// `index` maps nodes persisted by earlier segments (base + prior
/// deltas) to their global ids and receives the new nodes; new ids start
/// at `first_id`. `string_id` maps a live dictionary code to its
/// snapshot-local string id.
class SegmentStreamer {
 public:
  SegmentStreamer(Out* out, PtrIdMap* index, uint64_t first_id,
                  std::function<uint32_t(uint32_t)> string_id)
      : out_(out),
        index_(index),
        first_id_(first_id),
        string_id_(std::move(string_id)) {}

  /// Writes the whole segment for `roots`; call exactly once.
  void WriteSegment(const std::vector<FactPtr>& roots) {
    out_->Align8();
    uint64_t header_at = out_->pos();
    SegmentHeader h{};
    out_->Pod(h);  // placeholder, patched below

    // Node records stream during the walk (children-first: every record
    // is complete — offsets and counts known — the moment it is written).
    std::vector<int64_t> root_ids;
    root_ids.reserve(roots.size());
    for (FactPtr r : roots) {
      if (r == nullptr || (r->values.empty() && r->children.empty())) {
        root_ids.push_back(-1);
      } else {
        root_ids.push_back(Emit(r));
      }
    }
    out_->Bytes(root_ids.data(), root_ids.size() * sizeof(int64_t));

    // Value pool: remap string refs to snapshot-local ids on the fly.
    for (FactPtr n : order_) {
      for (const ValueRef& v : n->values) {
        ValueRef stored = v;
        if (v.is_string()) {
          stored = ValueRef::StringRef(string_id_(v.string_code()));
        }
        out_->U64(stored.bits());
      }
    }
    // Child pool: global ids via the index.
    for (FactPtr n : order_) {
      for (FactPtr c : n->children) {
        int64_t id = index_->Find(c);
        if (id < 0) throw std::logic_error("snapshot: child not emitted");
        out_->U32(static_cast<uint32_t>(id));
      }
    }
    out_->Align8();

    h.num_nodes = order_.size();
    h.num_values = num_values_;
    h.num_children = num_children_;
    h.num_roots = root_ids.size();
    out_->PatchAt(header_at, h);
  }

  uint64_t new_nodes() const { return order_.size(); }
  uint64_t transient_bytes() const {
    return index_->MemoryBytes() + order_.capacity() * sizeof(FactPtr);
  }

 private:
  int64_t Emit(FactPtr n) {
    int64_t got = index_->Find(n);
    if (got >= 0) return got;
    for (FactPtr c : n->children) Emit(c);

    if (num_values_ > std::numeric_limits<uint32_t>::max() ||
        num_children_ > std::numeric_limits<uint32_t>::max()) {
      TooLarge("view data");
    }
    NodeRec rec;
    rec.value_off = static_cast<uint32_t>(num_values_);
    rec.num_values = static_cast<uint32_t>(n->values.size());
    rec.child_off = static_cast<uint32_t>(num_children_);
    rec.num_children = static_cast<uint32_t>(n->children.size());
    out_->Pod(rec);
    num_values_ += n->values.size();
    num_children_ += n->children.size();

    uint64_t id = first_id_ + order_.size();
    if (id > std::numeric_limits<uint32_t>::max()) TooLarge("node count");
    index_->Insert(n, static_cast<uint32_t>(id));
    order_.push_back(n);
    return static_cast<int64_t>(id);
  }

  Out* out_;
  PtrIdMap* index_;
  uint64_t first_id_;
  std::function<uint32_t(uint32_t)> string_id_;
  std::vector<FactPtr> order_;  ///< newly emitted nodes, id order
  uint64_t num_values_ = 0;
  uint64_t num_children_ = 0;
};

/// Starts a file: header + zeroed section table. Returns the table
/// offset for PatchSections.
uint64_t BeginFile(Out* out, uint32_t version, size_t section_count) {
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = version;
  header.endian = kEndianProbe;
  header.section_count = section_count;
  out->Pod(header);
  uint64_t table_at = out->pos();
  for (size_t s = 0; s < section_count; ++s) {
    SectionEntry e{0, 0, 0, 0};
    out->Pod(e);
  }
  return table_at;
}

/// Stamps each entry's CRC32 by re-reading its payload off the sink.
/// Runs after the last section is written: every payload byte is final
/// by then (segment headers are back-patched within their section), and
/// only the header and section table — covered by no section — remain
/// to patch. Version-2-and-older files keep the field zero.
void FillSectionCrcs(Out* out, uint32_t version,
                     std::vector<SectionEntry>* entries) {
  if (version < 3) return;
  std::vector<char> buf(size_t{64} << 10);
  for (SectionEntry& e : *entries) {
    uint32_t crc = 0;
    uint64_t off = e.offset;
    uint64_t left = e.size;
    while (left > 0) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(left, buf.size()));
      out->sink()->ReadBack(off, buf.data(), take);
      crc = Crc32(buf.data(), take, crc);
      off += take;
      left -= take;
    }
    e.crc32 = crc;
  }
}

/// Patches the section table and the header's file size once all
/// sections are written.
void FinishFile(Out* out, uint32_t version, uint64_t table_at,
                const std::vector<SectionEntry>& entries) {
  for (size_t s = 0; s < entries.size(); ++s) {
    out->PatchAt(table_at + s * sizeof(SectionEntry), entries[s]);
  }
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = version;
  header.endian = kEndianProbe;
  header.file_size = out->pos();
  header.section_count = entries.size();
  out->PatchAt(0, header);
}

void WriteRegistryRange(Out* out, const AttributeRegistry& reg, AttrId first) {
  out->U64(static_cast<uint64_t>(first));
  out->U64(static_cast<uint64_t>(reg.size() - first));
  for (AttrId id = first; id < reg.size(); ++id) out->Str32(reg.Name(id));
}

void WriteRelation(Out* out, const std::string& name, const Relation& rel) {
  out->Str32(name);
  out->U64(static_cast<uint64_t>(rel.schema().arity()));
  for (AttrId a : rel.schema().attrs()) out->I32(a);
  out->U64(static_cast<uint64_t>(rel.size()));
  for (const Tuple& row : rel.rows()) {
    for (const Value& v : row) WriteValueCell(out, v);
  }
}

void UpdatePeak(SaveStats* stats, uint64_t transient) {
  if (stats != nullptr && transient > stats->peak_transient_bytes) {
    stats->peak_transient_bytes = transient;
  }
}

/// The base writer, shared by SerialiseDatabase (BufferSink) and
/// SaveSnapshot (FileSink).
void WriteBase(Out* out, const Database& db, uint32_t version,
               SaveStats* stats, PersistState* retain) {
  const ValueDict& dict = db.dict();
  // Interning — and with it rank shifts and new codes — is frozen for
  // the whole serialisation: the rank-ordered string table, the
  // rank-encoded refs in every view segment, and the big-int pool must
  // all describe one consistent dictionary state even while concurrent
  // updates intern (shared mode: readers are unaffected; nothing below
  // interns).
  auto frozen = dict.FreezeRanks();
  uint64_t epoch = NewEpoch();

  std::vector<uint32_t> kinds = {kSectionRegistry, kSectionDictStrings,
                                 kSectionDictBigInts, kSectionRelations,
                                 kSectionViews};
  if (version >= 2) kinds.push_back(kSectionMeta);
  uint64_t table_at = BeginFile(out, version, kinds.size());
  std::vector<SectionEntry> entries;

  for (uint32_t kind : kinds) {
    out->Align8();
    uint64_t begin = out->pos();
    switch (kind) {
      case kSectionRegistry:
        // The base "range" is the whole registry: ids from 0.
        out->U64(static_cast<uint64_t>(db.registry().size()));
        for (AttrId id = 0; id < db.registry().size(); ++id) {
          out->Str32(db.registry().Name(id));
        }
        break;
      case kSectionDictStrings: {
        // In rank order: the snapshot-local id of a string is its rank.
        size_t n = dict.num_strings();
        std::vector<uint32_t> by_rank(n);
        for (uint32_t code = 0; code < n; ++code) {
          by_rank[dict.rank(code)] = code;
        }
        UpdatePeak(stats, by_rank.size() * sizeof(uint32_t) +
                              out->sink()->buffer_bytes());
        out->U64(n);
        for (uint32_t code : by_rank) out->Str32(dict.str(code));
        break;
      }
      case kSectionDictBigInts:
        out->U64(dict.num_big_ints());
        for (uint32_t i = 0; i < dict.num_big_ints(); ++i) {
          out->I64(dict.big_int(i));
        }
        break;
      case kSectionRelations: {
        std::vector<std::string> names = db.RelationNames();
        out->U64(names.size());
        for (const std::string& name : names) {
          WriteRelation(out, name, *db.relation(name));
        }
        break;
      }
      case kSectionViews: {
        std::vector<std::string> names = db.ViewNames();
        out->U64(names.size());
        for (const std::string& name : names) {
          // Hold the version across serialisation: a concurrent view
          // swap must not retire these nodes mid-walk.
          std::shared_ptr<const Factorisation> f = db.ViewSnapshot(name);
          out->Str32(name);
          std::string tree_blob = SerialiseFTree(f->tree());
          out->Bytes(tree_blob.data(), tree_blob.size());
          PtrIdMap local_index;
          PtrIdMap* index = &local_index;
          if (retain != nullptr) {
            index = &retain->views[name].index;
          }
          SegmentStreamer seg(out, index, 0, [&dict](uint32_t code) {
            return dict.rank(code);
          });
          seg.WriteSegment(f->roots());
          UpdatePeak(stats, seg.transient_bytes() +
                                out->sink()->buffer_bytes());
          if (retain != nullptr) {
            PersistState::ViewBase& vb = retain->views[name];
            vb.pinned = std::move(f);
            vb.num_nodes = seg.new_nodes();
            vb.rebuild_gen = vb.pinned->rebuild_generation();
            vb.tree_blob = std::move(tree_blob);
          }
        }
        break;
      }
      case kSectionMeta:
        out->U64(epoch);
        break;
    }
    entries.push_back(SectionEntry{kind, 0, begin, out->pos() - begin});
  }
  FillSectionCrcs(out, version, &entries);
  FinishFile(out, version, table_at, entries);

  if (stats != nullptr) stats->bytes_written = out->pos();
  if (retain != nullptr) {
    retain->epoch = epoch;
    retain->next_seq = 1;
    retain->base_bytes = out->pos();
    retain->delta_bytes = 0;
    retain->base_strings = dict.num_strings();
    retain->string_watermark = dict.num_strings();
    retain->base_rank.resize(dict.num_strings());
    for (uint32_t code = 0; code < retain->base_strings; ++code) {
      retain->base_rank[code] = dict.rank(code);
    }
    retain->bigint_watermark = dict.num_big_ints();
    retain->attr_watermark = static_cast<uint64_t>(db.registry().size());
    retain->relation_versions.clear();
    for (const std::string& name : db.RelationNames()) {
      retain->relation_versions[name] = db.relation_version(name);
    }
  }
}

/// Removes every delta file (and stray delta temp file) of `path`. A
/// freshly written base supersedes them all; epoch stamps additionally
/// protect readers against any leftover this cleanup misses. Probes past
/// gaps up to twice the chain bound so a crash mid-cleanup (delta-1
/// gone, delta-2 stranded) cannot leak files across the next fold.
void RemoveStaleDeltas(const std::string& path) {
  for (uint64_t seq = 1;; ++seq) {
    std::string dp = DeltaPath(path, seq);
    bool had = std::remove(dp.c_str()) == 0;
    bool had_tmp = std::remove((dp + ".tmp").c_str()) == 0;
    if (!had && !had_tmp && seq > 2 * kMaxDeltaChain) break;
  }
}

/// True when a delta written now would carry anything — cheap watermark,
/// version and pin comparisons, no serialisation. Lets Checkpoint report
/// kNoop on an idle database even when the fold threshold has tripped
/// (a fold that writes nothing new is pure wasted I/O).
bool HasChangesSince(const Database& db, const PersistState& st) {
  const ValueDict& dict = db.dict();
  if (static_cast<uint64_t>(db.registry().size()) != st.attr_watermark ||
      dict.num_strings() != st.string_watermark ||
      dict.num_big_ints() != st.bigint_watermark) {
    return true;
  }
  for (const std::string& name : db.RelationNames()) {
    auto it = st.relation_versions.find(name);
    if (it == st.relation_versions.end() ||
        it->second != db.relation_version(name)) {
      return true;
    }
  }
  for (const std::string& name : db.ViewNames()) {
    auto it = st.views.find(name);
    if (it == st.views.end() || it->second.pinned != db.ViewSnapshot(name)) {
      return true;
    }
  }
  return false;
}

void FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  IoEnv& io = IoEnv::Instance();
  int fd = io.Open("dir_open", dir.c_str(),
                   O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (fd < 0) IoError("open of directory", dir);
  if (io.Fsync("dir_fsync", fd) != 0) {
    int saved = errno;
    io.Close("dir_close", fd);
    errno = saved;
    IoError("fsync of directory", dir);
  }
  io.Close("dir_close", fd);
}

/// Streams `write` into `path + ".tmp"`, fsyncs, atomically renames over
/// `path`, then fsyncs the parent directory — the crash-safe publish
/// used by base saves and delta appends alike.
void WriteFileAtomically(const std::string& path,
                         const std::function<void(Out*)>& write) {
  std::string tmp = path + ".tmp";
  try {
    FileSink sink(tmp);
    Out out(&sink);
    write(&out);
    sink.Close();
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (IoEnv::Instance().Rename("snapshot_rename", tmp.c_str(),
                               path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::invalid_argument("snapshot: cannot replace " + path + ": " +
                                std::strerror(errno));
  }
  FsyncParentDir(path);
}

/// The epoch stamp of the base file at `path`, or nullopt if the file is
/// missing, unreadable, or has no meta section (version 1). Checkpoint
/// reads it before appending a delta: if another writer re-based the
/// path since this chain started, appending would stamp the delta with a
/// dead epoch — reported as success but skipped forever at Open. A
/// mismatch forces a rebase instead.
std::optional<uint64_t> ReadBaseEpoch(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FileHeader h;
  if (!in.read(reinterpret_cast<char*>(&h), sizeof(h))) return std::nullopt;
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
      h.endian != kEndianProbe || h.version < 2 || h.section_count > 64) {
    return std::nullopt;
  }
  for (uint64_t s = 0; s < h.section_count; ++s) {
    SectionEntry e;
    if (!in.read(reinterpret_cast<char*>(&e), sizeof(e))) return std::nullopt;
    if (e.kind == kSectionMeta && e.size >= sizeof(uint64_t)) {
      uint64_t epoch = 0;
      if (!in.seekg(static_cast<std::streamoff>(e.offset)) ||
          !in.read(reinterpret_cast<char*>(&epoch), sizeof(epoch))) {
        return std::nullopt;
      }
      return epoch;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string DeltaPath(const std::string& path, uint64_t seq) {
  return path + ".delta-" + std::to_string(seq);
}

std::string CanonicalSnapshotPath(const std::string& path) {
  std::error_code ec;
  std::filesystem::path canon = std::filesystem::weakly_canonical(path, ec);
  return ec ? path : canon.string();
}

int64_t PtrIdMap::Find(const void* p) const {
  if (keys_.empty()) return -1;
  size_t mask = keys_.size() - 1;
  size_t i = (reinterpret_cast<uintptr_t>(p) >> 4) & mask;
  while (keys_[i] != nullptr) {
    if (keys_[i] == p) return vals_[i];
    i = (i + 1) & mask;
  }
  return -1;
}

void PtrIdMap::Insert(const void* p, uint32_t id) {
  if (keys_.empty() || size_ * 4 >= keys_.size() * 3) Grow();
  size_t mask = keys_.size() - 1;
  size_t i = (reinterpret_cast<uintptr_t>(p) >> 4) & mask;
  while (keys_[i] != nullptr) i = (i + 1) & mask;
  keys_[i] = p;
  vals_[i] = id;
  ++size_;
}

void PtrIdMap::Grow() {
  std::vector<const void*> old_keys = std::move(keys_);
  std::vector<uint32_t> old_vals = std::move(vals_);
  size_t cap = old_keys.empty() ? 1024 : old_keys.size() * 2;
  keys_.assign(cap, nullptr);
  vals_.assign(cap, 0);
  size_t mask = cap - 1;
  for (size_t s = 0; s < old_keys.size(); ++s) {
    if (old_keys[s] == nullptr) continue;
    size_t i = (reinterpret_cast<uintptr_t>(old_keys[s]) >> 4) & mask;
    while (keys_[i] != nullptr) i = (i + 1) & mask;
    keys_[i] = old_keys[s];
    vals_[i] = old_vals[s];
  }
}

std::string SerialiseDatabase(const Database& db, uint32_t version) {
  if (version == 0) version = kVersion;
  if (version < kMinVersion || version > kVersion) {
    throw std::invalid_argument("snapshot: cannot write version " +
                                std::to_string(version));
  }
  BufferSink sink;
  Out out(&sink);
  WriteBase(&out, db, version, nullptr, nullptr);
  return sink.Take();
}

void SaveSnapshot(const Database& db, const std::string& path,
                  SaveStats* stats, PersistState* retain) {
  WriteFileAtomically(path, [&](Out* out) {
    WriteBase(out, db, kVersion, stats, retain);
  });
  if (retain != nullptr) retain->path = path;
  RemoveStaleDeltas(path);
}

CheckpointInfo AppendCheckpoint(const Database& db, PersistState* st,
                                SaveStats* stats) {
  const ValueDict& dict = db.dict();
  const AttributeRegistry& reg = db.registry();
  auto frozen = dict.FreezeRanks();

  // --- what changed since the last checkpoint ------------------------------
  uint64_t new_attrs = static_cast<uint64_t>(reg.size()) - st->attr_watermark;
  uint64_t new_strings = dict.num_strings() - st->string_watermark;
  uint64_t new_bigints = dict.num_big_ints() - st->bigint_watermark;

  std::vector<std::string> changed_rels;
  for (const std::string& name : db.RelationNames()) {
    auto it = st->relation_versions.find(name);
    if (it == st->relation_versions.end() ||
        it->second != db.relation_version(name)) {
      changed_rels.push_back(name);
    }
  }
  struct ChangedView {
    std::string name;
    std::shared_ptr<const Factorisation> cur;
    bool full = false;
    std::string tree_blob;
  };
  std::vector<ChangedView> changed_views;
  for (const std::string& name : db.ViewNames()) {
    std::shared_ptr<const Factorisation> cur = db.ViewSnapshot(name);
    auto it = st->views.find(name);
    if (it != st->views.end() && it->second.pinned == cur) continue;
    std::string tree_blob = SerialiseFTree(cur->tree());
    // Incremental only when the persisted nodes are provably still
    // alive: the current version's arena chain must keep the pinned
    // version's arena (updates adopt it; a rebuild — Compact,
    // CompressInPlace, or an AddView of a from-scratch factorisation —
    // breaks the chain, and a freed node's address could alias a new
    // node in the retained index). The rebuild generation catches
    // adopt-preserving rebuilds whose node identities changed anyway.
    bool full = it == st->views.end() ||
                it->second.rebuild_gen != cur->rebuild_generation() ||
                !cur->arena()->KeepsAlive(it->second.pinned->arena().get()) ||
                it->second.tree_blob != tree_blob;
    changed_views.push_back({name, std::move(cur), full,
                             std::move(tree_blob)});
  }

  if (new_attrs == 0 && new_strings == 0 && new_bigints == 0 &&
      changed_rels.empty() && changed_views.empty()) {
    return CheckpointInfo{CheckpointInfo::kNoop, 0, 0};
  }

  // --- write the delta file ------------------------------------------------
  uint64_t seq = st->next_seq;
  std::string path = DeltaPath(st->path, seq);
  uint64_t bytes = 0;
  WriteFileAtomically(path, [&](Out* out) {
    const uint32_t kinds[6] = {kSectionDeltaManifest, kSectionRegistryDelta,
                               kSectionDictStringsDelta,
                               kSectionDictBigIntsDelta,
                               kSectionRelationsDelta, kSectionViewDeltas};
    uint64_t table_at = BeginFile(out, kVersion, 6);
    std::vector<SectionEntry> entries;
    for (uint32_t kind : kinds) {
      out->Align8();
      uint64_t begin = out->pos();
      switch (kind) {
        case kSectionDeltaManifest:
          out->U64(st->epoch);
          out->U64(seq);
          break;
        case kSectionRegistryDelta:
          WriteRegistryRange(out, reg,
                             static_cast<AttrId>(st->attr_watermark));
          break;
        case kSectionDictStringsDelta:
          // In code (append) order: the snapshot-string-id of code c is c
          // itself once c is past the base (base ids 0..B-1 are ranks).
          out->U64(st->string_watermark);
          out->U64(new_strings);
          for (uint64_t c = st->string_watermark; c < dict.num_strings();
               ++c) {
            out->Str32(dict.str(static_cast<uint32_t>(c)));
          }
          break;
        case kSectionDictBigIntsDelta:
          out->U64(st->bigint_watermark);
          out->U64(new_bigints);
          for (uint64_t s = st->bigint_watermark; s < dict.num_big_ints();
               ++s) {
            out->I64(dict.big_int(static_cast<uint32_t>(s)));
          }
          break;
        case kSectionRelationsDelta:
          out->U64(changed_rels.size());
          for (const std::string& name : changed_rels) {
            WriteRelation(out, name, *db.relation(name));
          }
          break;
        case kSectionViewDeltas: {
          out->U64(changed_views.size());
          auto string_id = [st, &dict](uint32_t code) {
            return code < st->base_strings ? st->base_rank[code] : code;
          };
          for (ChangedView& cv : changed_views) {
            out->Str32(cv.name);
            PersistState::ViewBase& vb = st->views[cv.name];
            if (cv.full) {
              out->U8(kViewDeltaFull);
              out->Bytes(cv.tree_blob.data(), cv.tree_blob.size());
              vb.index = PtrIdMap();  // supersedes base + prior deltas
              SegmentStreamer seg(out, &vb.index, 0, string_id);
              seg.WriteSegment(cv.cur->roots());
              vb.num_nodes = seg.new_nodes();
              vb.tree_blob = std::move(cv.tree_blob);
              UpdatePeak(stats, seg.transient_bytes() +
                                    out->sink()->buffer_bytes());
            } else {
              out->U8(kViewDeltaIncremental);
              out->U64(vb.num_nodes);
              SegmentStreamer seg(out, &vb.index, vb.num_nodes, string_id);
              seg.WriteSegment(cv.cur->roots());
              vb.num_nodes += seg.new_nodes();
              UpdatePeak(stats, seg.transient_bytes() +
                                    out->sink()->buffer_bytes());
            }
            vb.rebuild_gen = cv.cur->rebuild_generation();
            vb.pinned = std::move(cv.cur);
          }
          break;
        }
      }
      entries.push_back(SectionEntry{kind, 0, begin, out->pos() - begin});
    }
    FillSectionCrcs(out, kVersion, &entries);
    FinishFile(out, kVersion, table_at, entries);
    bytes = out->pos();
  });

  // --- commit the new watermarks -------------------------------------------
  st->attr_watermark = static_cast<uint64_t>(reg.size());
  st->string_watermark = dict.num_strings();
  st->bigint_watermark = dict.num_big_ints();
  for (const std::string& name : changed_rels) {
    st->relation_versions[name] = db.relation_version(name);
  }
  st->next_seq = seq + 1;
  st->delta_bytes += bytes;
  if (stats != nullptr) stats->bytes_written = bytes;
  return CheckpointInfo{CheckpointInfo::kDelta, bytes, seq};
}

}  // namespace storage

// Public Save/Checkpoint take txn_mu_ first (a fold must not interleave
// with a commit's log append, and the *Locked internals let EnableWal
// checkpoint while already holding txn_mu_), then reset a bound WAL once
// the chain durably holds everything the log did.

void Database::Save(const std::string& raw_path) const {
  static obs::Histogram& save_hist = obs::Registry::Instance().GetHistogram(
      "storage.save_ns", "ns", "Database::Save wall time");
  static obs::Counter& save_bytes = obs::Registry::Instance().GetCounter(
      "storage.save_bytes", "bytes", "snapshot bytes written by Save");
  obs::ScopedLatency latency(save_hist);
  std::string path = storage::CanonicalSnapshotPath(raw_path);
  {
    base::MutexLock t(&txn_mu_);
    storage::SaveStats stats;
    SaveLocked(path, &stats);
    save_bytes.Inc(stats.bytes_written);
    if (obs::LogEnabled()) {
      obs::EventLog::Instance().Emit(
          obs::EventType::kSave,
          {obs::F("path", path), obs::F("bytes", stats.bytes_written)});
    }
    ResetWalAfterFoldLocked(path);
  }
  // Deep-validate after the fold, outside txn_mu_ (the checker takes the
  // view-map and persist locks itself).
  if (check::Enabled()) check::ValidateDatabaseOrThrow(*this);
}

storage::CheckpointInfo Database::Checkpoint(
    const std::string& raw_path) const {
  static obs::Histogram& ckpt_hist = obs::Registry::Instance().GetHistogram(
      "storage.checkpoint_ns", "ns", "Database::Checkpoint wall time");
  static obs::Histogram& ckpt_bytes = obs::Registry::Instance().GetHistogram(
      "storage.checkpoint_bytes", "bytes",
      "bytes written per checkpoint (base or delta)");
  static obs::Counter& ckpt_base = obs::Registry::Instance().GetCounter(
      "storage.checkpoint_base", "checkpoints", "base snapshots written");
  static obs::Counter& ckpt_delta = obs::Registry::Instance().GetCounter(
      "storage.checkpoint_delta", "checkpoints", "delta appends written");
  static obs::Counter& ckpt_noop = obs::Registry::Instance().GetCounter(
      "storage.checkpoint_noop", "checkpoints",
      "checkpoints skipped (no changes)");
  obs::ScopedLatency latency(ckpt_hist);
  std::string path = storage::CanonicalSnapshotPath(raw_path);
  storage::CheckpointInfo info;
  {
    base::MutexLock t(&txn_mu_);
    info = CheckpointLocked(path);
    // On kNoop the log is necessarily empty and still correctly stamped
    // (every committed group makes HasChangesSince true until folded), so
    // only an actual write needs the reset. It must happen under the same
    // txn_mu_ hold as the fold: a commit interleaving between them would
    // be wiped from the log without ever reaching the chain.
    if (info.kind != storage::CheckpointInfo::kNoop) {
      ResetWalAfterFoldLocked(path);
    }
  }
  switch (info.kind) {
    case storage::CheckpointInfo::kBase:
      ckpt_base.Inc();
      ckpt_bytes.Record(info.bytes);
      break;
    case storage::CheckpointInfo::kDelta:
      ckpt_delta.Inc();
      ckpt_bytes.Record(info.bytes);
      break;
    case storage::CheckpointInfo::kNoop:
      ckpt_noop.Inc();
      break;
  }
  if (obs::LogEnabled()) {
    const char* kind = info.kind == storage::CheckpointInfo::kBase ? "base"
                       : info.kind == storage::CheckpointInfo::kDelta
                           ? "delta"
                           : "noop";
    obs::EventLog::Instance().Emit(
        obs::EventType::kCheckpoint,
        {obs::F("path", path), obs::F("kind", kind),
         obs::F("bytes", info.bytes), obs::F("seq", info.seq)});
  }
  // On kNoop the chain and the live state were just proven in sync, so
  // the deep check is only worth its cost when something was written.
  if (info.kind != storage::CheckpointInfo::kNoop && check::Enabled()) {
    check::ValidateDatabaseOrThrow(*this);
  }
  return info;
}

// Re-stamps a WAL bound to `path` after the chain at `path` was rewritten
// or extended: everything the log held is now durable in the chain, so
// the log restarts empty at the new (epoch, chain position). Requires
// txn_mu_. A failed reset marks the log broken — durability is unaffected
// (the chain already has it all), the next Commit reports it, and
// EnableWal recovers — so the fold's success is not retracted.
void Database::ResetWalAfterFoldLocked(const std::string& path) const {
  if (wal_ == nullptr || wal_base_ != path) return;
  uint64_t epoch = 0;
  uint64_t chain_pos = 0;
  {
    base::MutexLock g(&persist_mu_);
    if (persist_ == nullptr) return;  // checkpoint failed; stamp still valid
    epoch = persist_->epoch;
    chain_pos = persist_->next_seq - 1;
  }
  try {
    wal_->Reset(epoch, chain_pos);
  } catch (const std::exception&) {
    // wal_->broken() is now set; surfaced by WalStatus and the next Commit.
  }
}

void Database::SaveLocked(const std::string& path,
                          storage::SaveStats* stats) const {
  base::MutexLock g(&persist_mu_);
  if ((persist_ != nullptr && persist_->path == path) ||
      (wal_ != nullptr && wal_base_ == path)) {
    // Rewriting the base a checkpoint chain (or WAL) hangs off: fold —
    // refresh the retained state against the new base (the old deltas
    // are removed), so the caller can re-stamp the log.
    auto fresh = std::make_shared<storage::PersistState>();
    persist_.reset();
    storage::SaveSnapshot(*this, path, stats, fresh.get());
    persist_ = std::move(fresh);
  } else {
    storage::SaveSnapshot(*this, path, stats);
  }
}

storage::CheckpointInfo Database::CheckpointLocked(
    const std::string& path) const {
  base::MutexLock g(&persist_mu_);
  if (persist_ != nullptr && persist_->path == path &&
      !storage::HasChangesSince(*this, *persist_)) {
    return {storage::CheckpointInfo::kNoop, 0, 0};
  }
  bool rebase = persist_ == nullptr || persist_->path != path ||
                persist_->next_seq > storage::kMaxDeltaChain ||
                persist_->delta_bytes * 2 > persist_->base_bytes;
  if (!rebase) {
    // The base on disk must still be the one this chain hangs off —
    // another writer (a Database copy, another process) may have
    // re-based the path, and a delta stamped with the dead epoch would
    // be silently skipped at Open.
    std::optional<uint64_t> disk = storage::ReadBaseEpoch(path);
    rebase = !disk.has_value() || *disk != persist_->epoch;
  }
  if (rebase) {
    auto fresh = std::make_shared<storage::PersistState>();
    persist_.reset();
    storage::SaveStats stats;
    storage::SaveSnapshot(*this, path, &stats, fresh.get());
    persist_ = std::move(fresh);
    return {storage::CheckpointInfo::kBase, stats.bytes_written, 0};
  }
  try {
    return storage::AppendCheckpoint(*this, persist_.get());
  } catch (...) {
    // The retained index may be half-updated: drop it so the next
    // checkpoint writes a fresh base instead of a wrong delta.
    persist_.reset();
    throw;
  }
}

}  // namespace fdb
