#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "fdb/core/factorisation.h"
#include "fdb/engine/database.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"

namespace fdb {
namespace storage {
namespace {

[[noreturn]] void TooLarge(const std::string& what) {
  throw std::invalid_argument("snapshot: " + what +
                              " exceeds the 32-bit segment limit");
}

/// Append-only byte buffer with little bookkeeping for patching the
/// header and section table once all offsets are known. Multi-byte
/// appends go through memcpy, so the buffer itself needs no alignment;
/// Align8() keeps the *file offsets* of pools and section starts aligned
/// (the reader serves value pools in place, straight from the mapping).
class Buf {
 public:
  template <typename T>
  void Pod(const T& v) {
    const char* p = reinterpret_cast<const char*>(&v);
    b_.append(p, sizeof(T));
  }
  void U8(uint8_t v) { Pod(v); }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void I32(int32_t v) { Pod(v); }
  void I64(int64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void Str32(const std::string& s) {
    if (s.size() > std::numeric_limits<uint32_t>::max()) TooLarge("string");
    U32(static_cast<uint32_t>(s.size()));
    b_.append(s);
  }
  void Bytes(const void* p, size_t n) {
    b_.append(static_cast<const char*>(p), n);
  }
  void Align8() { b_.append((8 - b_.size() % 8) % 8, '\0'); }

  template <typename T>
  void PatchAt(size_t offset, const T& v) {
    std::memcpy(b_.data() + offset, &v, sizeof(T));
  }

  size_t size() const { return b_.size(); }
  std::string Take() { return std::move(b_); }

 private:
  std::string b_;
};

void WriteValueCell(Buf* out, const Value& v) {
  if (v.is_null()) {
    out->U8(kValNull);
  } else if (v.is_int()) {
    out->U8(kValInt);
    out->I64(v.as_int());
  } else if (v.is_double()) {
    out->U8(kValDouble);
    out->F64(v.as_double());
  } else {
    out->U8(kValString);
    out->Str32(v.as_string());
  }
}

void WriteFTree(Buf* out, const FTree& tree) {
  out->U32(static_cast<uint32_t>(tree.num_nodes()));
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const FTreeNode& n = tree.node(i);
    out->U8(n.alive ? 1 : 0);
    out->U8(n.is_aggregate() ? 1 : 0);
    out->I32(n.parent);
    if (n.is_aggregate()) {
      out->U8(static_cast<uint8_t>(n.agg->fn));
      out->I32(n.agg->source);
      out->I32(n.agg->id);
      out->U32(static_cast<uint32_t>(n.agg->over.size()));
      for (AttrId a : n.agg->over) out->I32(a);
    } else {
      out->U32(static_cast<uint32_t>(n.attrs.size()));
      for (AttrId a : n.attrs) out->I32(a);
    }
    out->U32(static_cast<uint32_t>(n.children.size()));
    for (int c : n.children) out->I32(c);
  }
  out->U32(static_cast<uint32_t>(tree.roots().size()));
  for (int r : tree.roots()) out->I32(r);
  out->U32(static_cast<uint32_t>(tree.edges().size()));
  for (const Hyperedge& e : tree.edges()) {
    out->F64(e.weight);
    out->U32(static_cast<uint32_t>(e.attrs.size()));
    for (AttrId a : e.attrs) out->I32(a);
    out->Str32(e.name);
  }
}

/// Flattens one view's live data into the relocatable segment arrays:
/// children-first node order (so child indices always point backwards),
/// DAG sharing preserved via the memo, per-node pool ranges contiguous.
/// String refs are rewritten to save-time ranks and pooled-int refs keep
/// their save-time slots — both snapshot-local ids that the reader maps
/// back to live dictionary codes.
class SegmentBuilder {
 public:
  explicit SegmentBuilder(const ValueDict& dict) : dict_(dict) {}

  int64_t Emit(FactPtr n) {
    auto it = index_.find(n);
    if (it != index_.end()) return it->second;
    std::vector<int64_t> kid_ids;
    kid_ids.reserve(n->children.size());
    for (FactPtr c : n->children) kid_ids.push_back(Emit(c));

    NodeRec rec;
    if (values_.size() > std::numeric_limits<uint32_t>::max() ||
        children_.size() > std::numeric_limits<uint32_t>::max()) {
      TooLarge("view data");
    }
    rec.value_off = static_cast<uint32_t>(values_.size());
    rec.num_values = static_cast<uint32_t>(n->values.size());
    rec.child_off = static_cast<uint32_t>(children_.size());
    rec.num_children = static_cast<uint32_t>(n->children.size());
    for (const ValueRef& v : n->values) {
      ValueRef stored = v;
      if (v.is_string()) {
        stored = ValueRef::StringRef(dict_.rank(v.string_code()));
      }
      values_.push_back(stored.bits());
    }
    for (int64_t k : kid_ids) {
      children_.push_back(static_cast<uint32_t>(k));
    }
    if (nodes_.size() > std::numeric_limits<uint32_t>::max()) {
      TooLarge("node count");
    }
    int64_t id = static_cast<int64_t>(nodes_.size());
    nodes_.push_back(rec);
    index_.emplace(n, id);
    return id;
  }

  void EmitRoot(FactPtr r) {
    if (r == nullptr || (r->values.empty() && r->children.empty())) {
      roots_.push_back(-1);
    } else {
      roots_.push_back(Emit(r));
    }
  }

  void WriteTo(Buf* out) const {
    out->Align8();
    SegmentHeader h;
    h.num_nodes = nodes_.size();
    h.num_values = values_.size();
    h.num_children = children_.size();
    h.num_roots = roots_.size();
    out->Pod(h);
    out->Bytes(nodes_.data(), nodes_.size() * sizeof(NodeRec));
    out->Bytes(roots_.data(), roots_.size() * sizeof(int64_t));
    out->Bytes(values_.data(), values_.size() * sizeof(uint64_t));
    out->Bytes(children_.data(), children_.size() * sizeof(uint32_t));
    out->Align8();
  }

 private:
  const ValueDict& dict_;
  std::unordered_map<FactPtr, int64_t> index_;
  std::vector<NodeRec> nodes_;
  std::vector<int64_t> roots_;
  std::vector<uint64_t> values_;
  std::vector<uint32_t> children_;
};

}  // namespace

std::string SerialiseDatabase(const Database& db) {
  const ValueDict& dict = db.dict();
  // Interning — and with it rank shifts and new codes — is frozen for
  // the whole serialisation: the rank-ordered string table, the
  // rank-encoded refs in every view segment, and the big-int pool must
  // all describe one consistent dictionary state even while concurrent
  // updates intern (shared mode: readers are unaffected; nothing below
  // interns).
  auto frozen = dict.FreezeRanks();
  Buf out;

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.endian = kEndianProbe;
  header.section_count = 5;
  out.Pod(header);

  const uint32_t kinds[5] = {kSectionRegistry, kSectionDictStrings,
                             kSectionDictBigInts, kSectionRelations,
                             kSectionViews};
  size_t table_at = out.size();
  for (uint32_t kind : kinds) {
    SectionEntry e{kind, 0, 0, 0};
    out.Pod(e);
  }

  size_t offsets[5];
  size_t sizes[5];
  for (int s = 0; s < 5; ++s) {
    out.Align8();
    offsets[s] = out.size();
    switch (kinds[s]) {
      case kSectionRegistry: {
        const AttributeRegistry& reg = db.registry();
        out.U64(static_cast<uint64_t>(reg.size()));
        for (AttrId id = 0; id < reg.size(); ++id) out.Str32(reg.Name(id));
        break;
      }
      case kSectionDictStrings: {
        // In rank order: the snapshot-local id of a string is its rank.
        size_t n = dict.num_strings();
        std::vector<uint32_t> by_rank(n);
        for (uint32_t code = 0; code < n; ++code) {
          by_rank[dict.rank(code)] = code;
        }
        out.U64(n);
        for (uint32_t code : by_rank) out.Str32(dict.str(code));
        break;
      }
      case kSectionDictBigInts: {
        out.U64(dict.num_big_ints());
        for (uint32_t i = 0; i < dict.num_big_ints(); ++i) {
          out.I64(dict.big_int(i));
        }
        break;
      }
      case kSectionRelations: {
        std::vector<std::string> names = db.RelationNames();
        out.U64(names.size());
        for (const std::string& name : names) {
          const Relation& rel = *db.relation(name);
          out.Str32(name);
          out.U64(static_cast<uint64_t>(rel.schema().arity()));
          for (AttrId a : rel.schema().attrs()) out.I32(a);
          out.U64(static_cast<uint64_t>(rel.size()));
          for (const Tuple& row : rel.rows()) {
            for (const Value& v : row) WriteValueCell(&out, v);
          }
        }
        break;
      }
      case kSectionViews: {
        std::vector<std::string> names = db.ViewNames();
        out.U64(names.size());
        for (const std::string& name : names) {
          // Hold the version across serialisation: a concurrent view
          // swap must not retire these nodes mid-walk.
          std::shared_ptr<const Factorisation> f = db.ViewSnapshot(name);
          out.Str32(name);
          WriteFTree(&out, f->tree());
          SegmentBuilder seg(dict);
          for (FactPtr r : f->roots()) seg.EmitRoot(r);
          seg.WriteTo(&out);
        }
        break;
      }
    }
    sizes[s] = out.size() - offsets[s];
  }

  for (int s = 0; s < 5; ++s) {
    SectionEntry e{kinds[s], 0, offsets[s], sizes[s]};
    out.PatchAt(table_at + s * sizeof(SectionEntry), e);
  }
  header.file_size = out.size();
  out.PatchAt(0, header);
  return out.Take();
}

void SaveSnapshot(const Database& db, const std::string& path) {
  std::string bytes = SerialiseDatabase(db);
  // Write-then-rename: the snapshot at `path` is replaced atomically, a
  // crash mid-write cannot destroy the previous snapshot, and saving over
  // a currently-mapped snapshot is safe — live MAP_PRIVATE mappings keep
  // the old inode alive instead of seeing the new bytes (or a SIGBUS past
  // a shorter file's end).
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("snapshot: cannot open " + path +
                                  " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::invalid_argument("snapshot: short write to " + path);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::invalid_argument("snapshot: cannot replace " + path);
  }
}

}  // namespace storage

void Database::Save(const std::string& path) const {
  storage::SaveSnapshot(*this, path);
}

}  // namespace fdb
