#include "fdb/base/thread_annotations.h"
#include "fdb/storage/io_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace storage {
namespace {

enum class FaultMode { kError, kShort, kFlip };

struct Failpoint {
  std::string site;  ///< "any" matches every site
  uint64_t trigger = 0;  ///< 1-based call index that fires the fault
  FaultMode mode = FaultMode::kError;
  uint64_t seen = 0;  ///< matching calls observed so far
};

FaultMode ParseMode(const std::string& m) {
  if (m.empty() || m == "error") return FaultMode::kError;
  if (m == "short") return FaultMode::kShort;
  if (m == "flip") return FaultMode::kFlip;
  throw std::invalid_argument("io_env: unknown failpoint mode '" + m + "'");
}

std::vector<Failpoint> ParseSpec(const std::string& spec) {
  std::vector<Failpoint> points GUARDED_BY(mu);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string point = spec.substr(pos, end - pos);
    pos = end + 1;
    if (point.empty()) continue;
    size_t c1 = point.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      throw std::invalid_argument("io_env: bad failpoint spec '" + point +
                                  "' (want site:count[:mode])");
    }
    size_t c2 = point.find(':', c1 + 1);
    Failpoint fp;
    fp.site = point.substr(0, c1);
    std::string count = point.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
    char* rest = nullptr;
    fp.trigger = std::strtoull(count.c_str(), &rest, 10);
    if (rest == nullptr || *rest != '\0' || fp.trigger == 0) {
      throw std::invalid_argument("io_env: bad failpoint count in '" + point +
                                  "'");
    }
    fp.mode = ParseMode(c2 == std::string::npos ? "" : point.substr(c2 + 1));
    points.push_back(std::move(fp));
  }
  return points;
}

obs::Histogram& FsyncHist() {
  static obs::Histogram& h = obs::Registry::Instance().GetHistogram(
      "io.fsync_ns", "ns", "wall time of shimmed fsync calls");
  return h;
}

obs::Counter& WriteBytesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter(
      "io.write_bytes", "bytes", "bytes written through the I/O shim");
  return c;
}

}  // namespace

struct IoEnv::Impl {
  mutable base::Mutex mu;
  std::vector<Failpoint> points GUARDED_BY(mu);
  bool dead GUARDED_BY(mu) = false;  ///< a sticky fault fired; everything fails now
  std::map<std::string, uint64_t> counts GUARDED_BY(mu);
  uint64_t total GUARDED_BY(mu) = 0;
  // Registry mirrors of the per-site counters ("io.<site>"), cached so
  // the registry lookup happens once per site name. Only touched under mu.
  std::map<std::string, obs::Counter*> site_counters GUARDED_BY(mu);
  // Lock-free fast path: production runs never take mu on I/O calls.
  std::atomic<bool> armed{false};

  /// Mirrors the site count into the registry. Caller holds mu.
  void BumpRegistryLocked(const char* site) REQUIRES(mu) {
    if (!obs::MetricsEnabled()) return;
    obs::Counter*& c = site_counters[site];
    if (c == nullptr) {
      c = &obs::Registry::Instance().GetCounter(std::string("io.") + site,
                                                "calls", "shimmed I/O calls");
    }
    c->Inc();
  }

  /// Counts the call and decides its fate. Returns the triggered mode,
  /// or nullopt to proceed normally.
  enum class Fate { kOk, kFail, kShort, kFlip };
  Fate Enter(const char* site) {
    if (!armed.load(std::memory_order_relaxed)) return Fate::kOk;
    base::MutexLock g(&mu);
    ++counts[site];
    ++total;
    BumpRegistryLocked(site);
    if (dead) return Fate::kFail;
    for (Failpoint& fp : points) {
      if (fp.site != "any" && fp.site != site) continue;
      if (++fp.seen != fp.trigger) continue;
      switch (fp.mode) {
        case FaultMode::kError:
          dead = true;
          return Fate::kFail;
        case FaultMode::kShort:
          dead = true;
          return Fate::kShort;
        case FaultMode::kFlip:
          return Fate::kFlip;
      }
    }
    return Fate::kOk;
  }

  void Bump(const char* site) {
    // Counter-only path when armed (Enter already bumped) vs unarmed.
    if (armed.load(std::memory_order_relaxed)) return;
    base::MutexLock g(&mu);
    ++counts[site];
    ++total;
    BumpRegistryLocked(site);
  }
};

IoEnv::IoEnv() : impl_(new Impl) {
  const char* env = std::getenv("FDB_FAILPOINT");
  if (env != nullptr && *env != '\0') SetFailpoints(env);
}

IoEnv& IoEnv::Instance() {
  static IoEnv* env = new IoEnv;  // immortal: storage code may run in atexit
  return *env;
}

void IoEnv::SetFailpoints(const std::string& spec) {
  std::vector<Failpoint> points = ParseSpec(spec);  // may throw; parse first
  base::MutexLock g(&impl_->mu);
  impl_->points = std::move(points);
  impl_->dead = false;
  impl_->armed.store(!impl_->points.empty(), std::memory_order_relaxed);
}

bool IoEnv::armed() const {
  return impl_->armed.load(std::memory_order_relaxed);
}

uint64_t IoEnv::Count(const std::string& site) const {
  base::MutexLock g(&impl_->mu);
  if (site == "any") return impl_->total;
  auto it = impl_->counts.find(site);
  return it == impl_->counts.end() ? 0 : it->second;
}

void IoEnv::ResetCounts() {
  base::MutexLock g(&impl_->mu);
  impl_->counts.clear();
  impl_->total = 0;
}

std::map<std::string, uint64_t> IoEnv::SnapshotCounts(bool reset) {
  base::MutexLock g(&impl_->mu);
  std::map<std::string, uint64_t> out = impl_->counts;
  out["any"] = impl_->total;
  if (reset) {
    impl_->counts.clear();
    impl_->total = 0;
  }
  return out;
}

int IoEnv::Open(const char* site, const char* path, int flags, int mode) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
    case Impl::Fate::kFlip:
      break;
    default:
      errno = EIO;
      return -1;
  }
  return ::open(path, flags, mode);
}

ssize_t IoEnv::Write(const char* site, int fd, const void* buf, size_t n) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
      break;
    case Impl::Fate::kFail:
      errno = EIO;
      return -1;
    case Impl::Fate::kShort: {
      // A torn write: half the bytes land, then the environment is dead
      // (the caller's retry loop hits EIO instead of quietly healing it).
      size_t half = n / 2;
      if (half == 0) {
        errno = EIO;
        return -1;
      }
      return ::write(fd, buf, half);
    }
    case Impl::Fate::kFlip: {
      std::vector<char> copy(static_cast<const char*>(buf),
                             static_cast<const char*>(buf) + n);
      if (!copy.empty()) copy[copy.size() / 2] ^= 0x10;
      return ::write(fd, copy.data(), copy.size());
    }
  }
  ssize_t w = ::write(fd, buf, n);
  if (w > 0) WriteBytesCounter().Inc(static_cast<uint64_t>(w));
  return w;
}

ssize_t IoEnv::Pwrite(const char* site, int fd, const void* buf, size_t n,
                      int64_t off) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
      break;
    case Impl::Fate::kFail:
      errno = EIO;
      return -1;
    case Impl::Fate::kShort: {
      size_t half = n / 2;
      if (half == 0) {
        errno = EIO;
        return -1;
      }
      return ::pwrite(fd, buf, half, static_cast<off_t>(off));
    }
    case Impl::Fate::kFlip: {
      std::vector<char> copy(static_cast<const char*>(buf),
                             static_cast<const char*>(buf) + n);
      if (!copy.empty()) copy[copy.size() / 2] ^= 0x10;
      return ::pwrite(fd, copy.data(), copy.size(), static_cast<off_t>(off));
    }
  }
  ssize_t w = ::pwrite(fd, buf, n, static_cast<off_t>(off));
  if (w > 0) WriteBytesCounter().Inc(static_cast<uint64_t>(w));
  return w;
}

ssize_t IoEnv::Pread(const char* site, int fd, void* buf, size_t n,
                     int64_t off) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
      break;
    case Impl::Fate::kFail:
      errno = EIO;
      return -1;
    case Impl::Fate::kShort: {
      size_t half = n / 2;
      if (half == 0) {
        errno = EIO;
        return -1;
      }
      return ::pread(fd, buf, half, static_cast<off_t>(off));
    }
    case Impl::Fate::kFlip: {
      ssize_t r = ::pread(fd, buf, n, static_cast<off_t>(off));
      if (r > 0) static_cast<char*>(buf)[r / 2] ^= 0x10;
      return r;
    }
  }
  return ::pread(fd, buf, n, static_cast<off_t>(off));
}

int IoEnv::Fsync(const char* site, int fd) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
    case Impl::Fate::kFlip:
      break;
    default:
      errno = EIO;
      return -1;
  }
  obs::ScopedLatency latency(FsyncHist());
  return ::fsync(fd);
}

int IoEnv::Ftruncate(const char* site, int fd, int64_t len) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
    case Impl::Fate::kFlip:
      break;
    default:
      errno = EIO;
      return -1;
  }
  return ::ftruncate(fd, static_cast<off_t>(len));
}

int IoEnv::Rename(const char* site, const char* from, const char* to) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
    case Impl::Fate::kFlip:
      break;
    default:
      errno = EIO;
      return -1;
  }
  return std::rename(from, to);
}

int IoEnv::Close(const char* site, int fd) {
  impl_->Bump(site);
  switch (impl_->Enter(site)) {
    case Impl::Fate::kOk:
    case Impl::Fate::kFlip:
      break;
    default:
      // Still release the descriptor: a "failed" close that leaks fds
      // would starve the 200+-iteration crash harness, and a real crash
      // releases them too.
      ::close(fd);
      errno = EIO;
      return -1;
  }
  return ::close(fd);
}

}  // namespace storage
}  // namespace fdb
