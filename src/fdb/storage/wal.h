#ifndef FDB_STORAGE_WAL_H_
#define FDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fdb/relational/relation.h"

namespace fdb {
namespace storage {

/// Write-ahead log for a snapshot path: `<path>.wal` sits next to the
/// base file and its delta chain and makes committed view mutations
/// durable between checkpoints. Layout:
///
///   WalHeader                       magic, version, endianness probe,
///                                   the base epoch this log applies on
///                                   top of, and the chain position
///                                   (delta count) when it was started
///   frame*                          one frame per committed group
///
/// Each frame is CRC32-guarded and carries a dense 1-based commit
/// sequence number:
///
///   u32 crc        CRC32 (poly 0xEDB88320) of every frame byte after it
///   u32 size       payload bytes
///   u64 seq        commit sequence, previous frame's + 1
///   u32 count      ops in the group
///   u32 reserved
///   payload        `count` ops: u8 kind (0 insert / 1 delete),
///                  str32 view name, u32 arity, arity value cells in the
///                  snapshot relation encoding (tag byte + payload;
///                  strings inline — a log is self-contained)
///
/// Commit appends one frame with a single write and a single fsync
/// (group commit); recovery replays frames in order and truncates at
/// the first torn or corrupt frame, so a crash mid-commit loses at most
/// the in-flight group and never a previously acknowledged one
/// (prefix-consistent recovery). A log whose (epoch, chain position)
/// stamp does not match the replayed base+delta chain is ignored whole:
/// it predates a fold that already captured everything in it.
inline constexpr char kWalMagic[8] = {'F', 'D', 'B', 'W', 'A', 'L', '1', 0};
inline constexpr uint32_t kWalVersion = 1;

struct WalHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t epoch;      ///< base epoch the log applies on top of
  uint64_t chain_pos;  ///< deltas present when the log was started/reset
};
static_assert(sizeof(WalHeader) == 32);

struct WalFrameHeader {
  uint32_t crc;   ///< over size..payload end
  uint32_t size;  ///< payload bytes
  uint64_t seq;   ///< 1-based, dense
  uint32_t count; ///< ops in the group
  uint32_t reserved;
};
static_assert(sizeof(WalFrameHeader) == 24);

/// One logical mutation: insert or delete of `tuple` in view `view`.
struct WalOp {
  enum Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = kInsert;
  std::string view;
  Tuple tuple;
};

/// CRC32 (IEEE, reflected, poly 0xEDB88320) over `n` bytes, seeded by
/// `crc` for incremental use (pass 0 to start).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

/// The log file of the snapshot at `path`: `<path>.wal`.
std::string WalPath(const std::string& path);

/// An open, writable log. All I/O goes through IoEnv (sites "wal_open",
/// "wal_write", "wal_fsync", "wal_truncate", "wal_close", "dir_fsync").
/// Not thread-safe; the owning Database serialises commits.
class Wal {
 public:
  /// Creates (or resets) `<snapshot_path>.wal`, stamps it with
  /// (epoch, chain_pos) and makes the header durable before returning —
  /// so a later torn header always means "no committed group was lost".
  /// Throws std::invalid_argument on I/O failure.
  static std::unique_ptr<Wal> Create(const std::string& snapshot_path,
                                     uint64_t epoch, uint64_t chain_pos);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends `ops` as one commit group: one frame, one write, one fsync.
  /// Returns the group's sequence number. On I/O failure throws
  /// std::invalid_argument and leaves the log poised to retry: the torn
  /// tail (if any) is truncated away before the next append. After a
  /// failure the group is NOT durable (recovery drops its torn frame).
  uint64_t Append(const std::vector<WalOp>& ops);

  /// Truncates the log back to a bare header stamped with the new
  /// (epoch, chain_pos) — called after a checkpoint folded every logged
  /// group into the chain. Throws std::invalid_argument on I/O failure;
  /// the log is then `broken()` and must be re-created (durability is
  /// unaffected: the chain already holds everything).
  void Reset(uint64_t epoch, uint64_t chain_pos);

  /// Serialised size of `ops` as a frame payload (status reporting).
  static uint64_t PayloadBytes(const std::vector<WalOp>& ops);

  const std::string& path() const { return path_; }
  uint64_t last_seq() const { return last_seq_; }
  uint64_t bytes() const { return durable_bytes_; }
  bool broken() const { return broken_; }

 private:
  Wal() = default;

  std::string path_;
  int fd_ = -1;
  uint64_t durable_bytes_ = 0;  ///< valid prefix length on disk
  uint64_t last_seq_ = 0;
  bool tail_dirty_ = false;  ///< a failed append may have left torn bytes
  bool broken_ = false;      ///< Reset failed; log must be re-created
};

/// A point-in-time report of a Database's transaction/WAL state
/// (Database::WalStatus; surfaced by sql_shell's \wal-status).
struct WalStatus {
  bool enabled = false;  ///< a log is bound (EnableWal)
  bool in_txn = false;   ///< a Begin() is open
  bool broken = false;   ///< the log failed a reset; re-enable to recover
  std::string path;      ///< the log file, when enabled
  uint64_t committed_groups = 0;  ///< frames durable since the last fold
  uint64_t pending_ops = 0;       ///< buffered ops of the open transaction
  uint64_t pending_bytes = 0;     ///< their serialised payload size
  uint64_t wal_bytes = 0;         ///< durable log size on disk
};

/// What recovery found in a log.
struct WalRecovery {
  std::vector<std::vector<WalOp>> groups;  ///< committed groups, in order
  uint64_t valid_bytes = 0;   ///< clean prefix length
  bool truncated_tail = false;  ///< torn/corrupt bytes were ignored
};

/// Reads `<snapshot_path>.wal` and validates it against the replayed
/// chain. Returns nullopt when there is no log, the header is torn, or
/// the (epoch, chain_pos) stamp does not match — in every such case the
/// chain already contains everything the log ever held. Torn or corrupt
/// trailing frames are dropped (prefix-consistent). Throws
/// std::invalid_argument (with path + byte offset) only on damage a CRC
/// cannot explain: a CRC-valid frame whose payload does not decode.
std::optional<WalRecovery> ReadWal(const std::string& snapshot_path,
                                   uint64_t epoch, uint64_t chain_pos);

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_WAL_H_
