#ifndef FDB_STORAGE_SNAPSHOT_H_
#define FDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fdb/core/ftree.h"
#include "fdb/storage/mapped_arena.h"

namespace fdb {

class Database;
class Factorisation;

namespace storage {

/// Serialises the whole database — registry, value dictionary, flat
/// relations, and every factorised view — into the snapshot format
/// (storage/format.h). View segments contain exactly the nodes reachable
/// from the roots, so a snapshot is always compacted regardless of how
/// much garbage the in-memory arenas carry.
std::string SerialiseDatabase(const Database& db);

/// Writes SerialiseDatabase(db) to `path`. Throws std::invalid_argument
/// if the file cannot be written.
void SaveSnapshot(const Database& db, const std::string& path);

/// Everything an opened Database shares with the views it has yet to
/// materialise. Held by shared_ptr: copies of the Database share the
/// mapping and the dictionary remap tables, and each copy materialises
/// views independently (the one-time value-pool remap is guarded by the
/// shared per-view flag).
struct SnapshotState {
  std::shared_ptr<SnapshotMapping> mapping;

  // Snapshot-local string ids are save-time ranks; pooled-int ids are
  // save-time slots. These tables take them to codes/slots of the live
  // process dictionary; when they are the identity (e.g. opening in a
  // fresh process) the value pools are served without a single write.
  std::vector<uint32_t> string_codes;
  std::vector<uint32_t> bigint_slots;
  bool strings_identity = true;
  bool bigints_identity = true;

  struct ViewDesc {
    FTree tree;
    uint64_t nodes_off = 0;
    uint64_t roots_off = 0;
    uint64_t values_off = 0;
    uint64_t children_off = 0;
    uint64_t num_nodes = 0;
    uint64_t num_values = 0;
    uint64_t num_children = 0;
    uint64_t num_roots = 0;
    bool fixed_up = false;  ///< value pool validated and remapped once
  };
  std::map<std::string, ViewDesc> views;

  // Serialises MaterialiseSnapshotView across Database copies sharing
  // this state (each copy also admits under its own view-map lock, but
  // the fixed_up remap pass must be once-only process-wide).
  std::mutex mu;
};

/// Parses the snapshot in `mapping` eagerly up to the view catalog:
/// registry and dictionary are interned into the process state, flat
/// relations are decoded, f-trees are rebuilt and validated. View data
/// segments are only range-checked; their nodes materialise lazily via
/// MaterialiseSnapshotView. Throws std::invalid_argument on any corrupt
/// or truncated input.
std::shared_ptr<SnapshotState> ParseSnapshot(
    std::shared_ptr<SnapshotMapping> mapping, Database* db);

/// Materialises one view out of the snapshot: a single fix-up pass turns
/// the segment's node records into FactNodes (value spans zero-copy into
/// the mapping, child offsets widened to pointers) backed by a
/// MappedArena that keeps the mapping alive. Returns std::nullopt if the
/// snapshot has no view of that name.
std::optional<Factorisation> MaterialiseSnapshotView(SnapshotState& state,
                                                     const std::string& name);

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_SNAPSHOT_H_
