#ifndef FDB_STORAGE_SNAPSHOT_H_
#define FDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fdb/base/thread_annotations.h"
#include "fdb/core/ftree.h"
#include "fdb/storage/mapped_arena.h"

namespace fdb {

class Database;
class Factorisation;

namespace storage {

/// Instrumentation for one Save/Checkpoint: how many bytes reached the
/// sink and the writer's peak transient allocation (node index + emission
/// order + write buffer — the value and child pools are streamed and
/// never materialise). The old build-then-write path peaked at roughly
/// 3x the file size; the streaming writer's peak is bounded by the
/// largest view's node bookkeeping.
struct SaveStats {
  uint64_t bytes_written = 0;
  uint64_t peak_transient_bytes = 0;
};

/// The delta file `seq` (1-based) belonging to the base snapshot at
/// `path`: `<path>.delta-<seq>`.
std::string DeltaPath(const std::string& path, uint64_t seq);

/// Canonicalises `path` so chain-identity checks (checkpoint retention,
/// WAL binding) cannot be fooled by alias spellings ("db.fdbs" vs
/// "./db.fdbs" vs a symlinked directory). Falls back to the raw string
/// when resolution fails (e.g. a parent that does not exist yet; the
/// subsequent open() reports the real error).
std::string CanonicalSnapshotPath(const std::string& path);

/// Checkpoint folds the chain into a fresh base once it reaches this
/// many deltas (or once cumulative delta bytes exceed half the base).
inline constexpr uint64_t kMaxDeltaChain = 8;

/// Open-addressed pointer -> dense-id map used by the segment writer
/// (12 bytes per slot in parallel arrays; an unordered_map would
/// several-fold the writer's peak transient memory, which this map
/// dominates). Also the retained per-view index that makes incremental
/// checkpoints possible.
class PtrIdMap {
 public:
  /// The id of `p`, or -1 if absent.
  int64_t Find(const void* p) const;
  /// Inserts p -> id (p must be absent and non-null).
  void Insert(const void* p, uint32_t id);
  size_t size() const { return size_; }
  uint64_t MemoryBytes() const {
    return keys_.capacity() * sizeof(const void*) +
           vals_.capacity() * sizeof(uint32_t);
  }

 private:
  void Grow();

  std::vector<const void*> keys_;  ///< nullptr = empty slot
  std::vector<uint32_t> vals_;
  size_t size_ = 0;
};

/// Everything Database::Checkpoint retains between checkpoints so it can
/// write O(changes) deltas instead of O(database) bases: watermarks into
/// the append-only dictionary and registry, per-relation versions, and
/// per view the pinned last-persisted version plus the node -> global-id
/// index. Pinning the Factorisation keeps every indexed node's arena
/// alive, so index keys can never dangle or be reused (ABA) while the
/// live view moves on — the deliberate memory cost of incremental
/// checkpointing, reclaimed at the next base fold.
struct PersistState {
  std::string path;
  uint64_t epoch = 0;       ///< stamp of the base file, echoed by deltas
  uint64_t next_seq = 1;    ///< next delta file index
  uint64_t base_bytes = 0;  ///< size of the base file
  uint64_t delta_bytes = 0; ///< cumulative delta bytes since the base

  // Dictionary / registry watermarks. Snapshot-string-ids are base ranks
  // for codes below base_strings and the code itself from there up, so
  // the only retained table is the base-save rank permutation.
  std::vector<uint32_t> base_rank;  ///< code -> rank at base save
  uint64_t base_strings = 0;        ///< codes covered by the base
  uint64_t string_watermark = 0;    ///< codes covered by base + deltas
  uint64_t bigint_watermark = 0;
  uint64_t attr_watermark = 0;
  std::map<std::string, uint64_t> relation_versions;

  struct ViewBase {
    std::shared_ptr<const Factorisation> pinned;  ///< last persisted version
    PtrIdMap index;      ///< node -> global id across base + deltas
    uint64_t num_nodes = 0;  ///< global ids assigned so far
    uint64_t rebuild_gen = 0;  ///< Factorisation::rebuild_generation() then
    std::string tree_blob;     ///< serialised f-tree for change detection
  };
  std::map<std::string, ViewBase> views;
};

/// What one Database::Checkpoint call actually wrote.
struct CheckpointInfo {
  enum Kind {
    kBase,   ///< a fresh base (first checkpoint, or the fold threshold)
    kDelta,  ///< an incremental delta file
    kNoop,   ///< nothing changed since the last checkpoint; no file
  };
  Kind kind = kNoop;
  uint64_t bytes = 0;  ///< bytes written by this call
  uint64_t seq = 0;    ///< delta sequence number (0 for base/noop)
};

/// Serialises the whole database — registry, value dictionary, flat
/// relations, and every factorised view — into the snapshot format
/// (storage/format.h), returned as one in-memory buffer (tests and
/// in-memory round trips; Save streams to disk instead). View segments
/// contain exactly the nodes reachable from the roots, so a snapshot is
/// always compacted regardless of how much garbage the in-memory arenas
/// carry. `version` selects the on-disk format: kVersion (default) or 1
/// for the legacy five-section layout (compat tests).
std::string SerialiseDatabase(const Database& db, uint32_t version = 0);

/// Streams the database to `path` with bounded buffers: sections are
/// written directly to a temp file (header and section table patched once
/// offsets are known), the temp file is fsync'd, atomically renamed over
/// `path`, and the parent directory fsync'd — a crash can never leave a
/// truncated or missing snapshot where a good one used to be. Stale delta
/// files of `path` are removed afterwards (a new base supersedes them).
/// When `retain` is non-null it is filled so subsequent checkpoints can
/// write deltas against this base. Throws std::invalid_argument if the
/// file cannot be written.
void SaveSnapshot(const Database& db, const std::string& path,
                  SaveStats* stats = nullptr, PersistState* retain = nullptr);

/// Appends one delta file capturing everything that changed since
/// `state` (which a prior SaveSnapshot(..., retain) or AppendCheckpoint
/// call produced), updating `state` on success. On failure `state` is
/// poisoned and must be discarded (the caller falls back to a fresh
/// base). Returns kNoop without writing when nothing changed.
CheckpointInfo AppendCheckpoint(const Database& db, PersistState* state,
                                SaveStats* stats = nullptr);

/// Everything an opened Database shares with the views it has yet to
/// materialise. Held by shared_ptr: copies of the Database share the
/// mappings and the dictionary remap tables, and each copy materialises
/// views independently (the one-time value-pool remap is guarded by the
/// shared per-view flag).
struct SnapshotState {
  std::shared_ptr<SnapshotMapping> mapping;  ///< the base file

  // Snapshot-local string ids are base-save ranks below base_strings and
  // delta append ids from there up; pooled-int ids are save-time slots.
  // These tables take them to codes/slots of the live process dictionary;
  // when they are the identity (e.g. opening in a fresh process) the
  // value pools are served without a single write.
  std::vector<uint32_t> string_codes;
  std::vector<uint32_t> bigint_slots;
  bool strings_identity = true;
  bool bigints_identity = true;

  uint64_t epoch = 0;       ///< base epoch (0 for version-1 files)
  uint64_t deltas_replayed = 0;

  /// One relocatable data segment (base or delta) of a view. Offsets are
  /// into `mapping`; `first_node` is the segment's base in the view's
  /// global node id space.
  struct SegDesc {
    std::shared_ptr<SnapshotMapping> mapping;
    uint64_t nodes_off = 0;
    uint64_t roots_off = 0;
    uint64_t values_off = 0;
    uint64_t children_off = 0;
    uint64_t num_nodes = 0;
    uint64_t num_values = 0;
    uint64_t num_children = 0;
    uint64_t num_roots = 0;
    uint64_t first_node = 0;
  };
  struct ViewDesc {
    FTree tree;
    std::vector<SegDesc> segs;  ///< base (or full replacement) + deltas;
                                ///< the last segment's roots are current
    bool fixed_up = false;  ///< value pools validated and remapped once
  };
  // Guarded by `mu` once the state is published (the single-threaded
  // Parse*Snapshot construction phase writes it lock-free).
  std::map<std::string, ViewDesc> views;

  // Serialises MaterialiseSnapshotView across Database copies sharing
  // this state (each copy also admits under its own view-map lock, but
  // the fixed_up remap pass must be once-only process-wide).
  base::Mutex mu;
};

/// Parses the snapshot in `mapping` eagerly up to the view catalog:
/// registry and dictionary are interned into the process state, flat
/// relations are decoded, f-trees are rebuilt and validated. View data
/// segments are only range-checked; their nodes materialise lazily via
/// MaterialiseSnapshotView. Throws std::invalid_argument on any corrupt
/// or truncated input.
std::shared_ptr<SnapshotState> ParseSnapshot(
    std::shared_ptr<SnapshotMapping> mapping, Database* db);

/// Replays one delta file (sequence `seq`, 1-based) on top of `state`:
/// interns appended registry/dictionary entries, re-decodes changed
/// relations, and records view delta segments for lazy materialisation.
/// Returns false — leaving everything untouched — when the delta belongs
/// to a different base epoch (a stale leftover from a crashed fold) or
/// carries the wrong sequence number. Throws std::invalid_argument on
/// corrupt input.
bool ParseDeltaSnapshot(std::shared_ptr<SnapshotMapping> mapping,
                        Database* db, SnapshotState* state, uint64_t seq);

/// Materialises one view out of the snapshot: a single fix-up pass turns
/// the segment chain's node records into FactNodes (value spans zero-copy
/// into the owning mappings, child offsets widened to pointers) backed by
/// a MappedArena that keeps the mappings alive. Returns std::nullopt if
/// the snapshot has no view of that name.
std::optional<Factorisation> MaterialiseSnapshotView(SnapshotState& state,
                                                     const std::string& name);

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_SNAPSHOT_H_
