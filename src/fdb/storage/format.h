#ifndef FDB_STORAGE_FORMAT_H_
#define FDB_STORAGE_FORMAT_H_

#include <cstdint>

namespace fdb {
namespace storage {

/// On-disk layout of a database snapshot (`*.fdbs`).
///
/// A snapshot is one file: a fixed header, a section table, then the
/// sections themselves, each 8-byte aligned. All multi-byte fields are in
/// the writing machine's byte order; the header carries an endianness
/// probe and readers reject a mismatch rather than byte-swap (snapshots
/// are a storage format, not a wire format).
///
///   FileHeader
///   SectionEntry[section_count]
///   sections...
///
/// Sections (one of each, in this order):
///   registry      attribute names; position = AttrId used everywhere else
///   dict strings  dictionary strings in *rank* (sorted) order; a string
///                 ref's payload in any value pool is its rank at save
///                 time, remapped to a live dictionary code on open
///   dict bigints  the big-integer pool in slot order; pooled-int refs
///                 carry the save-time slot
///   relations     flat base relations, row-major, self-contained values
///   views         per view: name, f-tree, then a relocatable data
///                 segment (see SegmentHeader)
///
/// A view data segment stores the factorised data with 32-bit
/// intra-segment offsets instead of pointers, nodes in children-first
/// order, sharing (DAG edges) preserved:
///
///   SegmentHeader
///   NodeRec[num_nodes]        16 bytes each
///   int64 roots[num_roots]    node index; -1 encodes the empty union
///   uint64 values[num_values] raw ValueRef bits, 8-aligned (served
///                             zero-copy straight from the mapping)
///   uint32 children[num_children]  node indices
///
/// Opening a segment performs one fix-up pass: node records become
/// in-memory FactNodes whose value spans point into the mapping and whose
/// child spans point into a materialised pointer array. Only the value
/// pool may be rewritten in place (dictionary code remapping, on the
/// MAP_PRIVATE copy-on-write mapping) — when the live dictionary already
/// agrees with the snapshot, the pool's pages stay clean and page in on
/// demand.

inline constexpr char kMagic[8] = {'F', 'D', 'B', 'S', 'N', 'A', 'P', '1'};
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kEndianProbe = 0x01020304;

enum SectionKind : uint32_t {
  kSectionRegistry = 1,
  kSectionDictStrings = 2,
  kSectionDictBigInts = 3,
  kSectionRelations = 4,
  kSectionViews = 5,
};

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t file_size;
  uint64_t section_count;  ///< SectionEntry table follows immediately
};

struct SectionEntry {
  uint32_t kind;  ///< SectionKind
  uint32_t reserved;
  uint64_t offset;  ///< absolute file offset, 8-aligned
  uint64_t size;    ///< bytes
};

struct SegmentHeader {
  uint64_t num_nodes;
  uint64_t num_values;    ///< ValueRefs in the value pool
  uint64_t num_children;  ///< entries in the child pool
  uint64_t num_roots;
};

/// One union: values are pool[value_off, value_off + num_values), the
/// flattened child matrix is children[child_off, child_off + num_children).
/// 32-bit offsets keep records at 16 bytes and cap a single view segment
/// at 2^32 singletons (32 GiB of value data) — plenty per view; larger
/// databases split across views.
struct NodeRec {
  uint32_t value_off;
  uint32_t num_values;
  uint32_t child_off;
  uint32_t num_children;
};

static_assert(sizeof(FileHeader) == 32);
static_assert(sizeof(SectionEntry) == 24);
static_assert(sizeof(SegmentHeader) == 32);
static_assert(sizeof(NodeRec) == 16);

/// Value encoding tags for flat relation cells (self-contained; strings
/// are stored inline, not via the dictionary).
enum ValueTag : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValDouble = 2,
  kValString = 3,
};

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_FORMAT_H_
