#ifndef FDB_STORAGE_FORMAT_H_
#define FDB_STORAGE_FORMAT_H_

#include <cstdint>

namespace fdb {
namespace storage {

/// On-disk layout of a database snapshot (`*.fdbs`).
///
/// A snapshot is one *base* file plus zero or more *delta* files
/// (`<path>.delta-1`, `<path>.delta-2`, ...). Every file — base or delta
/// — has the same envelope: a fixed header, a section table, then the
/// sections themselves, each 8-byte aligned. All multi-byte fields are in
/// the writing machine's byte order; the header carries an endianness
/// probe and readers reject a mismatch rather than byte-swap (snapshots
/// are a storage format, not a wire format).
///
///   FileHeader
///   SectionEntry[section_count]
///   sections...
///
/// Base sections (one of each, in this order):
///   registry      attribute names; position = AttrId used everywhere else
///   dict strings  dictionary strings in *rank* (sorted) order; a string
///                 ref's payload in any value pool is its rank at save
///                 time, remapped to a live dictionary code on open
///   dict bigints  the big-integer pool in slot order; pooled-int refs
///                 carry the save-time slot
///   relations     flat base relations, row-major, self-contained values
///   views         per view: name, f-tree, then a relocatable data
///                 segment (see SegmentHeader)
///   meta          (version >= 2 only) the base epoch stamp that every
///                 delta of this base must echo
///
/// Delta files (version >= 2) carry what changed since the previous
/// checkpoint, in this order:
///   manifest        base epoch + 1-based delta sequence number
///   registry delta  names appended to the registry since the last file
///   strings delta   strings interned since the last file, in *code*
///                   (append) order; the snapshot-string-id of the j-th
///                   entry is first_id + j (base ids are ranks 0..B-1,
///                   delta ids continue from B upward)
///   bigints delta   big integers pooled since the last file, slot order
///   relations delta changed/added relations, re-dumped whole (relations
///                   are the small write-optimised side)
///   view deltas     per changed view, either a full replacement (f-tree
///                   + segment, superseding the base) or an incremental
///                   segment: only the nodes created since the previous
///                   checkpoint, with child/root references into the
///                   combined id space of the base and all prior deltas
///
/// A view data segment stores the factorised data with 32-bit
/// intra-segment offsets instead of pointers, nodes in children-first
/// order, sharing (DAG edges) preserved:
///
///   SegmentHeader
///   NodeRec[num_nodes]        16 bytes each
///   int64 roots[num_roots]    node index; -1 encodes the empty union
///   uint64 values[num_values] raw ValueRef bits, 8-aligned (served
///                             zero-copy straight from the mapping)
///   uint32 children[num_children]  node indices
///
/// In an *incremental* segment the NodeRec offsets still index this
/// segment's own pools, but the child-pool entries and the root indices
/// are global: base nodes occupy [0, N0), the first delta's nodes
/// [N0, N0+N1), and so on. Children-first order holds globally (every
/// child id is below its parent's id), so cycles stay unrepresentable.
///
/// Opening a segment chain performs one fix-up pass: node records become
/// in-memory FactNodes whose value spans point into the owning file's
/// mapping and whose child spans point into one materialised pointer
/// array spanning the chain. Only the value pools may be rewritten in
/// place (dictionary id remapping, on the MAP_PRIVATE copy-on-write
/// mappings) — when the live dictionary already agrees with the
/// snapshot, the pools' pages stay clean and page in on demand.
///
/// Version compatibility: version-1 files (the original five-section
/// layout, no meta, no deltas) are still read; version 2 added the meta
/// section and delta files. The current writer emits version 3, which is
/// byte-identical to version 2 except that each SectionEntry's `crc32`
/// field (formerly `reserved`, always written 0) carries the CRC32 of
/// the section's payload bytes; readers verify every section up front on
/// version >= 3 and accept older files unverified.

inline constexpr char kMagic[8] = {'F', 'D', 'B', 'S', 'N', 'A', 'P', '1'};
inline constexpr uint32_t kVersion = 3;
inline constexpr uint32_t kMinVersion = 1;  ///< oldest readable version
inline constexpr uint32_t kEndianProbe = 0x01020304;

enum SectionKind : uint32_t {
  // Base sections (version 1 has exactly 1..5; version 2 adds 6).
  kSectionRegistry = 1,
  kSectionDictStrings = 2,
  kSectionDictBigInts = 3,
  kSectionRelations = 4,
  kSectionViews = 5,
  kSectionMeta = 6,
  // Delta-file sections (version 2).
  kSectionDeltaManifest = 7,
  kSectionRegistryDelta = 8,
  kSectionDictStringsDelta = 9,
  kSectionDictBigIntsDelta = 10,
  kSectionRelationsDelta = 11,
  kSectionViewDeltas = 12,
  kSectionKindMax = kSectionViewDeltas,
};

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t file_size;
  uint64_t section_count;  ///< SectionEntry table follows immediately
};

struct SectionEntry {
  uint32_t kind;   ///< SectionKind
  uint32_t crc32;  ///< payload CRC (version >= 3; 0 in older files)
  uint64_t offset;  ///< absolute file offset, 8-aligned
  uint64_t size;    ///< bytes
};

struct SegmentHeader {
  uint64_t num_nodes;
  uint64_t num_values;    ///< ValueRefs in the value pool
  uint64_t num_children;  ///< entries in the child pool
  uint64_t num_roots;
};

/// One union: values are pool[value_off, value_off + num_values), the
/// flattened child matrix is children[child_off, child_off + num_children).
/// 32-bit offsets keep records at 16 bytes and cap a single view segment
/// at 2^32 singletons (32 GiB of value data) — plenty per view; larger
/// databases split across views.
struct NodeRec {
  uint32_t value_off;
  uint32_t num_values;
  uint32_t child_off;
  uint32_t num_children;
};

static_assert(sizeof(FileHeader) == 32);
static_assert(sizeof(SectionEntry) == 24);
static_assert(sizeof(SegmentHeader) == 32);
static_assert(sizeof(NodeRec) == 16);

/// View-delta entry modes (kSectionViewDeltas).
enum ViewDeltaMode : uint8_t {
  kViewDeltaFull = 0,         ///< f-tree + segment, supersedes the base
  kViewDeltaIncremental = 1,  ///< new nodes only, global references
};

/// Value encoding tags for flat relation cells (self-contained; strings
/// are stored inline, not via the dictionary).
enum ValueTag : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValDouble = 2,
  kValString = 3,
};

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_FORMAT_H_
