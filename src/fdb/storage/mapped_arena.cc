#include "fdb/storage/mapped_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace fdb {
namespace storage {

std::shared_ptr<SnapshotMapping> SnapshotMapping::FromFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::invalid_argument("snapshot: cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw std::invalid_argument("snapshot: cannot stat (or empty) " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (p == MAP_FAILED) {
    throw std::invalid_argument("snapshot: mmap failed for " + path);
  }
  auto m = std::shared_ptr<SnapshotMapping>(new SnapshotMapping());
  m->data_ = static_cast<std::byte*>(p);
  m->size_ = size;
  m->mapped_ = true;
  m->source_ = path;
  return m;
}

std::shared_ptr<SnapshotMapping> SnapshotMapping::FromBuffer(const void* data,
                                                             size_t size) {
  auto m = std::shared_ptr<SnapshotMapping>(new SnapshotMapping());
  m->owned_ = std::make_unique<std::byte[]>(size);  // new[]: 8-aligned
  if (size > 0) std::memcpy(m->owned_.get(), data, size);
  m->data_ = m->owned_.get();
  m->size_ = size;
  return m;
}

SnapshotMapping::~SnapshotMapping() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
}

}  // namespace storage
}  // namespace fdb
