#include "fdb/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "fdb/storage/format.h"
#include "fdb/storage/io_env.h"

namespace fdb {
namespace storage {
namespace {

[[noreturn]] void WalError(const std::string& what, const std::string& path) {
  throw std::invalid_argument("wal: " + what + " " + path + ": " +
                              std::strerror(errno));
}

[[noreturn]] void WalCorrupt(const std::string& path, uint64_t off,
                             const std::string& what) {
  throw std::invalid_argument("wal: " + path + " at byte " +
                              std::to_string(off) + ": " + what);
}

void AppendPod(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}
template <typename T>
void AppendPod(std::string* out, const T& v) {
  AppendPod(out, &v, sizeof(T));
}

void AppendValueCell(std::string* out, const Value& v) {
  if (v.is_null()) {
    AppendPod<uint8_t>(out, kValNull);
  } else if (v.is_int()) {
    AppendPod<uint8_t>(out, kValInt);
    AppendPod<int64_t>(out, v.as_int());
  } else if (v.is_double()) {
    AppendPod<uint8_t>(out, kValDouble);
    AppendPod<double>(out, v.as_double());
  } else {
    AppendPod<uint8_t>(out, kValString);
    AppendPod<uint32_t>(out, static_cast<uint32_t>(v.as_string().size()));
    out->append(v.as_string());
  }
}

std::string SerialiseOps(const std::vector<WalOp>& ops) {
  std::string payload;
  for (const WalOp& op : ops) {
    AppendPod<uint8_t>(&payload, static_cast<uint8_t>(op.kind));
    if (op.view.size() > std::numeric_limits<uint32_t>::max()) {
      throw std::invalid_argument("wal: view name too long");
    }
    AppendPod<uint32_t>(&payload, static_cast<uint32_t>(op.view.size()));
    payload.append(op.view);
    AppendPod<uint32_t>(&payload, static_cast<uint32_t>(op.tuple.size()));
    for (const Value& v : op.tuple) AppendValueCell(&payload, v);
  }
  return payload;
}

WalHeader MakeHeader(uint64_t epoch, uint64_t chain_pos) {
  WalHeader h{};
  std::memcpy(h.magic, kWalMagic, sizeof(kWalMagic));
  h.version = kWalVersion;
  h.endian = kEndianProbe;
  h.epoch = epoch;
  h.chain_pos = chain_pos;
  return h;
}

/// Writes all of [p, p+n) at the current offset through IoEnv, retrying
/// short counts; returns false on error (errno set).
bool WriteAll(const char* site, int fd, const void* p, size_t n) {
  IoEnv& io = IoEnv::Instance();
  const char* c = static_cast<const char*>(p);
  while (n > 0) {
    ssize_t w = io.Write(site, fd, c, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    c += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

void FsyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  IoEnv& io = IoEnv::Instance();
  int fd = io.Open("dir_open", dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC,
                   0);
  if (fd < 0) WalError("open of directory", dir);
  if (io.Fsync("dir_fsync", fd) != 0) {
    int saved = errno;
    io.Close("dir_close", fd);
    errno = saved;
    WalError("fsync of directory", dir);
  }
  io.Close("dir_close", fd);
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string WalPath(const std::string& path) { return path + ".wal"; }

std::unique_ptr<Wal> Wal::Create(const std::string& snapshot_path,
                                 uint64_t epoch, uint64_t chain_pos) {
  auto wal = std::unique_ptr<Wal>(new Wal);
  wal->path_ = WalPath(snapshot_path);
  IoEnv& io = IoEnv::Instance();
  wal->fd_ = io.Open("wal_open", wal->path_.c_str(),
                     O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal->fd_ < 0) WalError("cannot open", wal->path_);
  wal->Reset(epoch, chain_pos);
  // A crash after Reset but before the directory entry is durable could
  // lose a *new* wal file entirely — equivalent to "no log", which
  // recovery treats as an empty committed set, so this fsync is about
  // not stranding the file, not correctness.
  FsyncDirOf(wal->path_);
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) IoEnv::Instance().Close("wal_close", fd_);
}

void Wal::Reset(uint64_t epoch, uint64_t chain_pos) {
  IoEnv& io = IoEnv::Instance();
  broken_ = true;  // cleared on success
  if (io.Ftruncate("wal_truncate", fd_, 0) != 0) {
    WalError("truncate of", path_);
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) WalError("seek in", path_);
  WalHeader h = MakeHeader(epoch, chain_pos);
  if (!WriteAll("wal_write", fd_, &h, sizeof(h))) {
    WalError("write to", path_);
  }
  if (io.Fsync("wal_fsync", fd_) != 0) WalError("fsync of", path_);
  durable_bytes_ = sizeof(WalHeader);
  last_seq_ = 0;
  tail_dirty_ = false;
  broken_ = false;
}

uint64_t Wal::Append(const std::vector<WalOp>& ops) {
  if (broken_) {
    throw std::invalid_argument("wal: " + path_ +
                                ": log is broken after a failed reset; "
                                "re-enable the WAL");
  }
  IoEnv& io = IoEnv::Instance();
  if (tail_dirty_) {
    // A previous append failed mid-frame: cut the torn bytes before new
    // ones land behind them (recovery would stop at the tear and lose
    // the new frame too).
    if (io.Ftruncate("wal_truncate", fd_,
                     static_cast<int64_t>(durable_bytes_)) != 0) {
      WalError("truncate of", path_);
    }
    if (::lseek(fd_, static_cast<off_t>(durable_bytes_), SEEK_SET) < 0) {
      WalError("seek in", path_);
    }
    tail_dirty_ = false;
  }

  std::string payload = SerialiseOps(ops);
  WalFrameHeader frame{};
  frame.size = static_cast<uint32_t>(payload.size());
  frame.seq = last_seq_ + 1;
  frame.count = static_cast<uint32_t>(ops.size());
  std::string buf;
  buf.reserve(sizeof(frame) + payload.size());
  AppendPod(&buf, frame);
  buf.append(payload);
  uint32_t crc = Crc32(buf.data() + sizeof(uint32_t),
                       buf.size() - sizeof(uint32_t));
  std::memcpy(buf.data(), &crc, sizeof(crc));

  // One write, one fsync: the whole group becomes durable (or not) as a
  // unit. Any failure marks the tail dirty — the frame may be torn on
  // disk, and recovery will drop it.
  if (!WriteAll("wal_write", fd_, buf.data(), buf.size())) {
    tail_dirty_ = true;
    WalError("write to", path_);
  }
  if (io.Fsync("wal_fsync", fd_) != 0) {
    tail_dirty_ = true;
    WalError("fsync of", path_);
  }
  durable_bytes_ += buf.size();
  return ++last_seq_;
}

uint64_t Wal::PayloadBytes(const std::vector<WalOp>& ops) {
  return SerialiseOps(ops).size();
}

namespace {

/// Bounds-checked cursor over the log bytes (mirrors the snapshot
/// reader's, with wal-flavoured error context).
class WalReader {
 public:
  WalReader(const std::string& path, const std::string& bytes, size_t pos)
      : path_(path), bytes_(bytes), pos_(pos) {}

  template <typename T>
  T Pod() {
    Require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::string Str(size_t n) {
    Require(n);
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  void Require(size_t n) const {
    if (n > bytes_.size() - pos_) {
      WalCorrupt(path_, pos_, "frame payload truncated");
    }
  }
  size_t pos() const { return pos_; }

 private:
  const std::string& path_;
  const std::string& bytes_;
  size_t pos_;
};

Value ReadCell(WalReader* in, const std::string& path) {
  uint8_t tag = in->Pod<uint8_t>();
  switch (tag) {
    case kValNull:
      return Value();
    case kValInt:
      return Value(in->Pod<int64_t>());
    case kValDouble:
      return Value(in->Pod<double>());
    case kValString: {
      uint32_t len = in->Pod<uint32_t>();
      return Value(in->Str(len));
    }
    default:
      WalCorrupt(path, in->pos() - 1, "unknown value tag");
  }
}

}  // namespace

std::optional<WalRecovery> ReadWal(const std::string& snapshot_path,
                                   uint64_t epoch, uint64_t chain_pos) {
  std::string path = WalPath(snapshot_path);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = std::move(ss).str();
  }
  // A short or unstamped header means no group was ever durable under
  // this log generation (the header is fsync'd before the first append),
  // so ignoring the file is prefix-consistent, not data loss.
  if (bytes.size() < sizeof(WalHeader)) return std::nullopt;
  WalHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kWalMagic, sizeof(kWalMagic)) != 0 ||
      h.version != kWalVersion || h.endian != kEndianProbe) {
    return std::nullopt;
  }
  // A log stamped for a different base epoch or chain position predates
  // a fold (or belongs to a chain that was re-based): everything it held
  // is already in the chain, or intentionally superseded. Skip whole.
  if (h.epoch == 0 || h.epoch != epoch || h.chain_pos != chain_pos) {
    return std::nullopt;
  }

  WalRecovery rec;
  size_t pos = sizeof(WalHeader);
  uint64_t expect_seq = 1;
  while (pos < bytes.size()) {
    // Frame admission is all-or-nothing on the CRC: anything torn —
    // short header, short payload, bad checksum, out-of-order sequence —
    // ends the committed prefix right here.
    if (bytes.size() - pos < sizeof(WalFrameHeader)) break;
    WalFrameHeader frame;
    std::memcpy(&frame, bytes.data() + pos, sizeof(frame));
    if (frame.size > bytes.size() - pos - sizeof(frame)) break;
    uint32_t crc = Crc32(bytes.data() + pos + sizeof(uint32_t),
                         sizeof(frame) - sizeof(uint32_t) + frame.size);
    if (crc != frame.crc) break;
    if (frame.seq != expect_seq) break;

    // The CRC vouches for the payload: a decode failure now is real
    // corruption (or a writer bug), not a torn tail — report it loudly
    // with the offending offset instead of silently dropping data.
    WalReader in(path, bytes, pos + sizeof(frame));
    std::vector<WalOp> group;
    group.reserve(frame.count);
    for (uint32_t i = 0; i < frame.count; ++i) {
      WalOp op;
      uint8_t kind = in.Pod<uint8_t>();
      if (kind > WalOp::kDelete) {
        WalCorrupt(path, in.pos() - 1, "unknown op kind");
      }
      op.kind = static_cast<WalOp::Kind>(kind);
      uint32_t name_len = in.Pod<uint32_t>();
      op.view = in.Str(name_len);
      uint32_t arity = in.Pod<uint32_t>();
      if (arity > 65535) WalCorrupt(path, in.pos(), "implausible arity");
      op.tuple.reserve(arity);
      for (uint32_t a = 0; a < arity; ++a) {
        op.tuple.push_back(ReadCell(&in, path));
      }
      group.push_back(std::move(op));
    }
    if (in.pos() != pos + sizeof(frame) + frame.size) {
      WalCorrupt(path, in.pos(), "frame payload has trailing bytes");
    }
    rec.groups.push_back(std::move(group));
    pos += sizeof(frame) + frame.size;
    ++expect_seq;
  }
  rec.valid_bytes = pos;
  rec.truncated_tail = pos < bytes.size();
  return rec;
}

}  // namespace storage
}  // namespace fdb
