#ifndef FDB_STORAGE_MAPPED_ARENA_H_
#define FDB_STORAGE_MAPPED_ARENA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fdb/core/fact_arena.h"

namespace fdb {
namespace storage {

/// Owns the bytes of one snapshot: either a private (copy-on-write) mmap
/// of the file or, for tests and in-memory round trips, a heap copy.
/// Writable: the reader remaps dictionary codes in place; with a
/// MAP_PRIVATE mapping those writes dirty only the touched pages and
/// never reach the file, while untouched pages stay file-backed and page
/// in (and out) on demand — this is what lets views larger than RAM open.
///
/// Shared by everything materialised out of the snapshot: the Database,
/// every MappedArena, and (via arena adopt-chaining) every factorisation
/// derived from a mapped view, so the mapping lives exactly as long as
/// the last node pointing into it.
class SnapshotMapping {
 public:
  /// Maps `path` (PROT_READ|PROT_WRITE, MAP_PRIVATE). Throws
  /// std::invalid_argument if the file cannot be opened or mapped.
  static std::shared_ptr<SnapshotMapping> FromFile(const std::string& path);

  /// Copies `size` bytes into an owned, 8-aligned heap buffer.
  static std::shared_ptr<SnapshotMapping> FromBuffer(const void* data,
                                                     size_t size);

  ~SnapshotMapping();
  SnapshotMapping(const SnapshotMapping&) = delete;
  SnapshotMapping& operator=(const SnapshotMapping&) = delete;

  const std::byte* data() const { return data_; }
  std::byte* mutable_data() { return data_; }
  size_t size() const { return size_; }
  /// Where the bytes came from: the file path, or "<memory>" for
  /// FromBuffer. Parse errors cite it so corrupt-file triage names the
  /// actual file.
  const std::string& source() const { return source_; }

 private:
  SnapshotMapping() = default;

  std::byte* data_ = nullptr;
  size_t size_ = 0;
  std::string source_ = "<memory>";
  bool mapped_ = false;                  // true: munmap on destruction
  std::unique_ptr<std::byte[]> owned_;   // FromBuffer storage
};

/// The arena behind a view materialised from a snapshot. Node headers and
/// the widened child-pointer array live in memory (built by the reader's
/// fix-up pass); the value spans point straight into the mappings — the
/// base file plus any replayed delta files — which this arena keeps
/// alive. It is a fully functional FactArena: operators that write into
/// it (updates on an opened view) allocate ordinary heap chunks, and
/// operators that switch to a fresh arena adopt this one, chaining the
/// mappings' lifetimes to their results.
class MappedArena : public FactArena {
 public:
  MappedArena(std::vector<std::shared_ptr<SnapshotMapping>> mappings,
              std::unique_ptr<FactNode[]> nodes, int64_t num_nodes,
              std::unique_ptr<FactPtr[]> children, int64_t mapped_bytes)
      : mappings_(std::move(mappings)),
        nodes_mem_(std::move(nodes)),
        child_mem_(std::move(children)),
        mapped_nodes_(num_nodes) {
    bytes_ = mapped_bytes;
    nodes_ = num_nodes;
  }

  /// The base mapping (first of the chain).
  const SnapshotMapping& mapping() const { return *mappings_.front(); }
  size_t num_mappings() const { return mappings_.size(); }

  /// Extends the heap-chunk test to the materialised node array (nodes_
  /// counts heap-allocated nodes too after updates, so the fixed-up
  /// count is kept separately).
  bool OwnsNodeMemory(const FactNode* node) const override {
    if (node >= nodes_mem_.get() && node < nodes_mem_.get() + mapped_nodes_) {
      return true;
    }
    return FactArena::OwnsNodeMemory(node);
  }

 private:
  std::vector<std::shared_ptr<SnapshotMapping>> mappings_;
  std::unique_ptr<FactNode[]> nodes_mem_;
  std::unique_ptr<FactPtr[]> child_mem_;
  int64_t mapped_nodes_ = 0;
};

}  // namespace storage
}  // namespace fdb

#endif  // FDB_STORAGE_MAPPED_ARENA_H_
