#ifndef FDB_FDB_H_
#define FDB_FDB_H_

/// Umbrella header for the FDB library: the factorised-database query
/// engine of "Aggregation and Ordering in Factorised Databases" (VLDB
/// 2013) together with its relational baseline and tooling. Include this
/// for application code (see examples/); library-internal code includes
/// the specific headers instead.

#include "fdb/core/build.h"          // IWYU pragma: export
#include "fdb/core/compress.h"       // IWYU pragma: export
#include "fdb/core/enumerate.h"      // IWYU pragma: export
#include "fdb/core/factorisation.h"  // IWYU pragma: export
#include "fdb/core/ftree.h"          // IWYU pragma: export
#include "fdb/core/io.h"             // IWYU pragma: export
#include "fdb/core/order.h"          // IWYU pragma: export
#include "fdb/core/ops/aggregate.h"  // IWYU pragma: export
#include "fdb/core/ops/project.h"    // IWYU pragma: export
#include "fdb/core/ops/selection.h"  // IWYU pragma: export
#include "fdb/core/ops/swap.h"       // IWYU pragma: export
#include "fdb/core/stats.h"          // IWYU pragma: export
#include "fdb/core/update.h"         // IWYU pragma: export
#include "fdb/engine/csv.h"          // IWYU pragma: export
#include "fdb/engine/database.h"     // IWYU pragma: export
#include "fdb/engine/fdb_engine.h"   // IWYU pragma: export
#include "fdb/engine/rdb_engine.h"   // IWYU pragma: export
#include "fdb/obs/metrics.h"         // IWYU pragma: export
#include "fdb/obs/trace.h"           // IWYU pragma: export
#include "fdb/optimizer/exhaustive.h"  // IWYU pragma: export
#include "fdb/optimizer/greedy.h"    // IWYU pragma: export
#include "fdb/query/parser.h"        // IWYU pragma: export
#include "fdb/relational/rdb_ops.h"  // IWYU pragma: export
#include "fdb/serve/client.h"        // IWYU pragma: export
#include "fdb/serve/server.h"        // IWYU pragma: export
#include "fdb/workload/generator.h"  // IWYU pragma: export
#include "fdb/workload/random_db.h"  // IWYU pragma: export

#endif  // FDB_FDB_H_
