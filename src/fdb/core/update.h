#ifndef FDB_CORE_UPDATE_H_
#define FDB_CORE_UPDATE_H_

#include "fdb/core/factorisation.h"

namespace fdb {

/// Incremental maintenance of *single-relation* factorised views (sorted
/// tries built by FactoriseRelation, e.g. the materialised orders R2/R3 of
/// Experiment 4). Insertion and deletion walk the root-to-leaf path of the
/// tuple, rebuilding only the unions along it (O(depth · union size) with
/// path copying; all untouched siblings stay shared).
///
/// The view's f-tree must be a single path of atomic single-attribute
/// nodes — the shape FactoriseRelation produces. Joins of several
/// relations need re-factorisation (incremental maintenance of factorised
/// join views is future work beyond the paper).

/// Inserts `tuple` (given over `f`'s OutputSchema order, i.e. the path
/// order). Idempotent: inserting an existing tuple is a no-op.
/// Throws std::invalid_argument if the tree is not a single path or the
/// tuple has the wrong arity.
void InsertTuple(Factorisation* f, const Tuple& tuple);

/// Deletes `tuple`; returns false (and leaves `f` unchanged) if absent.
/// Emptied unions are pruned up the path, keeping the invariants.
bool DeleteTuple(Factorisation* f, const Tuple& tuple);

/// True if the view contains the tuple (O(depth · log union size)).
bool ContainsTuple(const Factorisation& f, const Tuple& tuple);

/// One mutation in a batch: insert (`insert == true`) or delete of `tuple`.
struct BatchOp {
  bool insert = true;
  Tuple tuple;
};

/// Applies `ops` with sequential semantics — the result is exactly what
/// calling InsertTuple/DeleteTuple in order would produce — but rebuilds
/// each affected union once per batch instead of once per op: the final
/// membership of every key is resolved first (last op wins), then one
/// sorted merge walks the trie alongside the sorted batch. A commit group
/// of k tuples sharing a root prefix copies that prefix once, not k
/// times, and untouched subtrees keep their node identity (so the
/// incremental checkpointer sees a coalesced diff).
/// Throws std::invalid_argument on shape/arity mismatch, in which case
/// the view is unchanged (validation happens before any mutation).
void ApplyBatch(Factorisation* f, const std::vector<BatchOp>& ops);

}  // namespace fdb

#endif  // FDB_CORE_UPDATE_H_
