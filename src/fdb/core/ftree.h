#ifndef FDB_CORE_FTREE_H_
#define FDB_CORE_FTREE_H_

#include <optional>
#include <string>
#include <vector>

#include "fdb/relational/agg.h"
#include "fdb/relational/schema.h"

namespace fdb {

/// Label of an aggregate f-tree node F(X) (paper §3.1).
///
/// An aggregate attribute carries along its aggregation function, the atomic
/// source attribute (for sum/min/max) and the set `over` of original
/// attributes it consumed, so that later aggregation operators can interpret
/// the stored value as a pre-computed aggregate of a relation over `over`
/// (Example 6) and apply the composition rules of Proposition 2.
struct AggregateLabel {
  AggFn fn = AggFn::kCount;
  /// The aggregated atomic attribute A for sum_A/min_A/max_A;
  /// kInvalidAttr for count.
  AttrId source = kInvalidAttr;
  /// The original atomic attributes X this aggregate ranges over (sorted).
  std::vector<AttrId> over;
  /// Fresh attribute id naming the aggregate result, e.g. "sum(price,item)".
  AttrId id = kInvalidAttr;
};

/// One node of an f-tree: either an equivalence class of atomic attributes
/// (non-empty `attrs`) or an aggregate attribute (`agg` set).
struct FTreeNode {
  /// Atomic attribute equivalence class, sorted; empty for aggregate nodes.
  std::vector<AttrId> attrs;
  std::optional<AggregateLabel> agg;
  int parent = -1;  ///< -1 for roots.
  std::vector<int> children;
  bool alive = true;

  bool is_aggregate() const { return agg.has_value(); }
  /// All attribute ids named by this node: the class or the aggregate id.
  std::vector<AttrId> AllAttrIds() const;
};

/// A dependency hyperedge: the attribute set of one input relation (or, after
/// projections/aggregations, a merged set). Two f-tree nodes are *dependent*
/// iff some hyperedge intersects both of their attribute-id sets; the path
/// constraint (Prop. 1) requires dependent nodes to share a root-to-leaf path.
struct Hyperedge {
  std::vector<AttrId> attrs;  ///< sorted attribute ids (atomic or aggregate)
  double weight = 1.0;        ///< relation size, used by the cost metric
  std::string name;           ///< originating relation, for diagnostics
};

/// A factorisation tree (Definition 2): a rooted forest whose nodes are
/// labelled by disjoint attribute classes or aggregate attributes, plus the
/// dependency hypergraph used to validate restructuring operators and to
/// compute size bounds.
///
/// Node ids are stable across mutations; removed nodes are tombstoned
/// (`alive == false`). The order of `roots()` and of each node's `children`
/// is significant: factorised data is aligned slot-by-slot with it.
class FTree {
 public:
  FTree() = default;

  /// Adds a node labelled by attribute class `attrs` under `parent`
  /// (-1 for a new root). Returns the node id.
  int AddNode(std::vector<AttrId> attrs, int parent);

  /// Adds an aggregate-labelled node under `parent` (-1 for a root).
  int AddAggregateNode(AggregateLabel label, int parent);

  /// Registers a dependency hyperedge (one per input relation). The
  /// attribute list is sorted and deduplicated.
  void AddEdge(Hyperedge edge);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const FTreeNode& node(int id) const { return nodes_[id]; }
  const std::vector<int>& roots() const { return roots_; }
  const std::vector<Hyperedge>& edges() const { return edges_; }
  int parent(int id) const { return nodes_[id].parent; }
  const std::vector<int>& children(int id) const {
    return nodes_[id].children;
  }

  /// All live node ids, parents before children (roots in order, then DFS).
  std::vector<int> TopologicalOrder() const;

  /// Node ids of the subtree rooted at `u` (including `u`), DFS preorder.
  std::vector<int> SubtreeNodes(int u) const;

  /// All attribute ids (atomic and aggregate) in the subtree rooted at `u`.
  std::vector<AttrId> SubtreeAttrIds(int u) const;

  /// The *original* atomic attributes of the subtree at `u`: atomic classes
  /// plus the `over` sets of aggregate nodes.
  std::vector<AttrId> SubtreeOriginalAttrs(int u) const;

  /// The live node whose class or aggregate id contains `a`, or -1.
  int NodeOfAttr(AttrId a) const;

  /// True if `anc` is a proper ancestor of `desc`.
  bool IsAncestor(int anc, int desc) const;

  /// The root of the tree containing `u`.
  int RootOf(int u) const;

  /// Position of `child` in its parent's children (or in roots()). Requires
  /// that `child` is live.
  int SlotOf(int child) const;

  /// True if some hyperedge intersects both nodes' attribute-id sets.
  bool NodesDependent(int x, int y) const;

  /// True if any node in the subtree rooted at `u` is dependent on node `y`
  /// (`y` outside the subtree).
  bool SubtreeDependsOn(int u, int y) const;

  /// Verifies the path constraint: every pair of dependent live nodes lies
  /// along a common root-to-leaf path. Returns false on violation.
  bool SatisfiesPathConstraint() const;

  // --- structural mutations used by the f-plan operators -----------------
  // These keep `children` slot order deterministic; the corresponding data
  // transformations in core/ops mirror the same slot edits.

  /// Swap operator χ(A,B) on the tree (paper §4.2): `b` (child of `a`)
  /// takes `a`'s place; `a` becomes the last child of `b`; children of `b`
  /// whose subtrees depend on `a` move below `a` (appended after `a`'s own
  /// children); the rest stay below `b`.
  /// Returns the indices (into b's former children) that moved under `a`.
  std::vector<int> SwapUp(int b);

  /// Merge operator: sibling (or both-root) node `b` is merged into `a`:
  /// `a` absorbs `b`'s attribute class and children (appended); `b` dies.
  void MergeSiblings(int a, int b);

  /// Absorb operator: descendant node `b` is absorbed into ancestor `a`:
  /// `a` absorbs `b`'s class; `b`'s children are appended to `b`'s parent's
  /// children (replacing `b`'s slot); `b` dies.
  void AbsorbDescendant(int a, int b);

  /// Replaces the subtree rooted at `u` by fresh aggregate leaf nodes (one
  /// per label) in `u`'s slot position (first label takes the slot, the rest
  /// are appended after it). Merges all hyperedges intersecting the subtree
  /// into one per new label. Returns the new node ids.
  std::vector<int> ReplaceSubtreeWithAggregates(
      int u, std::vector<AggregateLabel> labels);

  /// Removes a leaf node (projection). Requires `u` live with no children.
  void RemoveLeaf(int u);

  /// Renames the aggregate attribute of node `u` to fresh id `new_id`.
  void RenameAggregate(int u, AttrId new_id);

  /// Deserialisation support (core/io.cc, storage/): overwrites liveness,
  /// parentage, child order and the root list wholesale. All vectors must
  /// be sized to num_nodes(); callers restoring untrusted input must run
  /// ValidateWiring() afterwards.
  void RestoreWiring(const std::vector<bool>& alive,
                     const std::vector<int>& parents,
                     const std::vector<std::vector<int>>& children,
                     std::vector<int> roots);

  /// One deserialised node as parsed by a reader (core/io.cc text format,
  /// storage/ snapshots): either an aggregate (agg set) or an atomic class
  /// (attrs; empty means a tombstoned node that lost its class).
  struct RestoredNode {
    bool alive = true;
    int parent = -1;
    std::optional<AggregateLabel> agg;
    std::vector<AttrId> attrs;
    std::vector<int> children;
  };

  /// Rebuilds a forest from deserialised nodes: creates them in id order
  /// (preserving ids), restores wiring wholesale and validates it with
  /// ValidateWiring. `agg.over` sets are re-sorted defensively; tombstoned
  /// atomic nodes that lost their class get a placeholder interned in
  /// `reg` (never observed through the public API). Readers keep their
  /// format-specific parsing and range checks; the rebuild-and-validate
  /// dance lives only here. Throws std::invalid_argument on inconsistent
  /// wiring.
  static FTree Restore(std::vector<RestoredNode> nodes,
                       std::vector<int> roots, AttributeRegistry* reg);

  /// Structural soundness check for wiring read from untrusted input:
  /// all root/child ids in range, roots live with parent -1, every child's
  /// parent field matches, each node reached at most once (no sharing, no
  /// cycles), every live node reachable from the roots, and tombstoned
  /// nodes childless. Guarantees that the traversal/ancestor walks used by
  /// the rest of the engine terminate. Returns false and fills *why on
  /// violation; never indexes out of range itself.
  bool ValidateWiring(std::string* why = nullptr) const;

  /// Renders the forest, e.g. for test diagnostics.
  std::string ToString(const AttributeRegistry& reg) const;

 private:
  void CollectSubtree(int u, std::vector<int>* out) const;

  std::vector<FTreeNode> nodes_;
  std::vector<int> roots_;
  std::vector<Hyperedge> edges_;
};

}  // namespace fdb

#endif  // FDB_CORE_FTREE_H_
