#ifndef FDB_CORE_BUILD_H_
#define FDB_CORE_BUILD_H_

#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/relational/relation.h"

namespace fdb {

/// Builds the factorisation of the natural join of `relations` over `tree`
/// (the materialised-view construction of paper §6).
///
/// `tree` must contain only atomic nodes, its attribute classes must cover
/// exactly the attributes of the relations, and each relation's attributes
/// must lie on a single root-to-leaf path (the path constraint, Prop. 1).
/// Attributes placed in the same class are equated (both across and within
/// relations). The construction is trie-style: each relation is sorted by
/// the root-to-leaf order of its attributes, and each union is produced by a
/// k-way sorted intersection of the participating relations, with empty
/// branches pruned. Runs in time Õ(input + output singletons).
///
/// Throws std::invalid_argument if `tree` does not satisfy the requirements.
Factorisation FactoriseJoin(const FTree& tree,
                            const std::vector<const Relation*>& relations);

/// Factorises a single relation over the path f-tree A₀ → A₁ → … given by
/// `attr_order` (which must be a permutation of the relation's attributes).
/// The resulting factorisation groups by A₀, then A₁, and so on — this is
/// how FDB represents a sorted relation (Experiment 4).
Factorisation FactoriseRelation(const Relation& rel,
                                const std::vector<AttrId>& attr_order);

}  // namespace fdb

#endif  // FDB_CORE_BUILD_H_
