#ifndef FDB_CORE_FACTORISATION_H_
#define FDB_CORE_FACTORISATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fdb/core/fact_arena.h"
#include "fdb/core/ftree.h"
#include "fdb/relational/relation.h"
#include "fdb/relational/value_dict.h"

namespace fdb {

/// Builds a leaf union from sorted distinct boxed values, encoding them
/// through the default dictionary into the scratch arena (convenience for
/// tests and ad-hoc construction; engine paths build into explicit arenas).
FactPtr MakeLeaf(const std::vector<Value>& values);

/// Builds a union with children; `k` children per value, flattened.
FactPtr MakeNode(const std::vector<Value>& values,
                 const std::vector<FactPtr>& children);

/// Arena variants of the above.
FactPtr MakeLeafIn(FactArena& arena, const std::vector<Value>& values);
FactPtr MakeNodeIn(FactArena& arena, const std::vector<Value>& values,
                   const std::vector<FactPtr>& children);

/// A factorised representation of a relation: an f-tree plus one union per
/// f-tree root (their product). A factorisation with `empty() == true`
/// represents the empty relation; one with zero roots represents the
/// relation {()} containing just the nullary tuple.
///
/// The data nodes live in the attached FactArena (shared between
/// factorisations that share subexpressions). Singletons are stored as
/// dictionary-encoded ValueRefs; operators compare raw codes and values are
/// rehydrated to boxed `Value`s only at the Flatten/enumeration boundary.
class Factorisation {
 public:
  Factorisation() = default;
  /// Roots built without an explicit arena (scratch-backed constructors).
  Factorisation(FTree tree, std::vector<FactPtr> roots)
      : tree_(std::move(tree)),
        roots_(std::move(roots)),
        arena_(FactArena::Scratch()) {}
  Factorisation(FTree tree, std::vector<FactPtr> roots,
                std::shared_ptr<FactArena> arena)
      : tree_(std::move(tree)),
        roots_(std::move(roots)),
        arena_(std::move(arena)) {}

  const FTree& tree() const { return tree_; }
  FTree& mutable_tree() { return tree_; }
  const std::vector<FactPtr>& roots() const { return roots_; }
  std::vector<FactPtr>& mutable_roots() { return roots_; }

  /// The arena holding (or keeping alive) this factorisation's nodes.
  const std::shared_ptr<FactArena>& arena() const { return arena_; }

  /// The arena for a mutating operator to allocate result nodes into.
  /// Reuses the attached arena when this factorisation is its sole owner;
  /// otherwise (the arena is shared with another factorisation, e.g. a
  /// materialised view this is a copy of) switches to a fresh arena that
  /// keeps the old one alive, so views never accumulate per-query garbage.
  FactArena& ArenaForWrite();

  /// Replaces the attached arena wholesale. Only valid when every root
  /// points into `arena` (e.g. after a full rebuild such as compression or
  /// compaction). Records the arena's size as the live-data watermark that
  /// MaybeCompact() measures garbage against, and the arena's creation
  /// generation as this factorisation's rebuild stamp.
  void ReplaceArena(std::shared_ptr<FactArena> arena) {
    arena_ = std::move(arena);
    compacted_bytes_ = arena_ == nullptr ? 0 : arena_->bytes_used();
    rebuild_gen_ = arena_ == nullptr ? 0 : arena_->generation();
  }

  /// Stamp of the last wholesale rebuild (compaction/compression), 0 if
  /// never rebuilt. Ordinary updates (ArenaForWrite growth) leave it
  /// unchanged, so incremental checkpointing can tell "new nodes appended
  /// next to the persisted ones" (delta-friendly) from "every node was
  /// copied to fresh addresses" (the retained index is useless; re-dump
  /// the view).
  uint64_t rebuild_generation() const { return rebuild_gen_; }

  /// Generational compaction: copies every node reachable from the roots
  /// into a fresh arena and drops the old one (and, transitively, every
  /// arena it kept alive), so dead node versions left behind by persistent
  /// updates and op chains stop pinning memory. DAG sharing is preserved
  /// (shared subexpressions are copied once); the represented relation is
  /// unchanged. Copies of this factorisation that share the old arena keep
  /// it alive and are unaffected.
  void Compact();

  /// Compacts when the attached arena has grown past 4x the last known
  /// live size (plus fixed slack, so small views never bother). The first
  /// call on a never-compacted factorisation records the current size as
  /// the baseline — a freshly built arena holds no garbage. Returns true
  /// if it compacted. Called by the update path after each mutation.
  bool MaybeCompact();

  /// The value dictionary used by this factorisation's ValueRefs.
  ValueDict& dict() const { return ValueDict::Default(); }

  /// True if this factorisation represents the empty relation.
  bool empty() const;

  /// Number of singletons (values) in the representation — the paper's
  /// measure of factorisation size.
  int64_t CountSingletons() const;

  /// Number of tuples in the represented relation (via the count algorithm,
  /// ignoring aggregate-node interpretations: each entry counts 1).
  int64_t CountTuples() const;

  /// The output schema: all attributes of all live nodes in topological
  /// order (each atomic class contributes all of its attributes; aggregate
  /// nodes contribute their result attribute).
  RelSchema OutputSchema() const;

  /// Flattens into a relation over OutputSchema() by enumeration.
  Relation Flatten() const;

  /// Structural validation against the f-tree: shape, sortedness, pruning
  /// invariants. Returns false (and fills *why) on violation.
  bool Validate(std::string* why = nullptr) const;

  /// Renders the factorised expression, e.g.
  /// "(<1>x(<2>u<3>) u <4>x(<5>))" for debugging small instances.
  std::string ToString(const AttributeRegistry& reg) const;

 private:
  FTree tree_;
  std::vector<FactPtr> roots_;
  std::shared_ptr<FactArena> arena_;
  // Live bytes at the last compaction/rebuild; -1 = never measured.
  int64_t compacted_bytes_ = -1;
  // Arena generation installed by the last rebuild; 0 = never rebuilt.
  uint64_t rebuild_gen_ = 0;
};

}  // namespace fdb

#endif  // FDB_CORE_FACTORISATION_H_
