#ifndef FDB_CORE_FACTORISATION_H_
#define FDB_CORE_FACTORISATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fdb/core/ftree.h"
#include "fdb/relational/relation.h"

namespace fdb {

struct FactNode;
/// Factorised data is immutable and shared: operators build new trees and
/// share untouched subexpressions (persistent / copy-on-write structure).
using FactPtr = std::shared_ptr<const FactNode>;

/// The factorised data attached to one f-tree node instance: the union
/// ⋃_i ⟨A:vᵢ⟩ × E_{i,0} × … × E_{i,k-1}, where k is the number of f-tree
/// children of the node and E_{i,c} is the child union for value vᵢ and
/// f-tree child slot c.
///
/// Invariants: `values` is sorted ascending with no duplicates (paper §4.1);
/// `children.size() == values.size() * k`; no child pointer is null or
/// empty (empty branches are pruned by the operators; only whole roots of a
/// Factorisation may be empty, representing ∅).
struct FactNode {
  std::vector<Value> values;
  /// Flattened child matrix: child of entry i at slot c is
  /// children[i * k + c]. Empty for leaves (k == 0).
  std::vector<FactPtr> children;

  int size() const { return static_cast<int>(values.size()); }
  const FactPtr& child(int i, int k, int c) const {
    return children[static_cast<size_t>(i) * k + c];
  }
};

/// Builds a shared leaf union from sorted distinct values.
FactPtr MakeLeaf(std::vector<Value> values);

/// Builds a shared union with children; `k` children per value, flattened.
FactPtr MakeNode(std::vector<Value> values, std::vector<FactPtr> children);

/// A factorised representation of a relation: an f-tree plus one union per
/// f-tree root (their product). A factorisation with `empty() == true`
/// represents the empty relation; one with zero roots represents the
/// relation {()} containing just the nullary tuple.
class Factorisation {
 public:
  Factorisation() = default;
  Factorisation(FTree tree, std::vector<FactPtr> roots)
      : tree_(std::move(tree)), roots_(std::move(roots)) {}

  const FTree& tree() const { return tree_; }
  FTree& mutable_tree() { return tree_; }
  const std::vector<FactPtr>& roots() const { return roots_; }
  std::vector<FactPtr>& mutable_roots() { return roots_; }

  /// True if this factorisation represents the empty relation.
  bool empty() const;

  /// Number of singletons (values) in the representation — the paper's
  /// measure of factorisation size.
  int64_t CountSingletons() const;

  /// Number of tuples in the represented relation (via the count algorithm,
  /// ignoring aggregate-node interpretations: each entry counts 1).
  int64_t CountTuples() const;

  /// The output schema: all attributes of all live nodes in topological
  /// order (each atomic class contributes all of its attributes; aggregate
  /// nodes contribute their result attribute).
  RelSchema OutputSchema() const;

  /// Flattens into a relation over OutputSchema() by enumeration.
  Relation Flatten() const;

  /// Structural validation against the f-tree: shape, sortedness, pruning
  /// invariants. Returns false (and fills *why) on violation.
  bool Validate(std::string* why = nullptr) const;

  /// Renders the factorised expression, e.g.
  /// "(<1>x(<2>u<3>) u <4>x(<5>))" for debugging small instances.
  std::string ToString(const AttributeRegistry& reg) const;

 private:
  FTree tree_;
  std::vector<FactPtr> roots_;
};

}  // namespace fdb

#endif  // FDB_CORE_FACTORISATION_H_
