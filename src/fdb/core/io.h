#ifndef FDB_CORE_IO_H_
#define FDB_CORE_IO_H_

#include <iosfwd>
#include <string>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Serialises a factorisation (f-tree, dependency hyperedges and data) to a
/// line-oriented text format. Attributes are written by *name*, so the
/// stream is portable across databases; the reader re-interns them. Shared
/// subexpressions are written once and referenced by index, so compressed
/// (DAG) factorisations round-trip without blow-up.
void WriteFactorisation(const Factorisation& f, const AttributeRegistry& reg,
                        std::ostream& out);

/// Reads a factorisation written by WriteFactorisation, interning attribute
/// names into `reg`. Throws std::invalid_argument on malformed input.
Factorisation ReadFactorisation(std::istream& in, AttributeRegistry* reg);

/// File convenience wrappers.
void SaveFactorisation(const Factorisation& f, const AttributeRegistry& reg,
                       const std::string& path);
Factorisation LoadFactorisation(const std::string& path,
                                AttributeRegistry* reg);

}  // namespace fdb

#endif  // FDB_CORE_IO_H_
