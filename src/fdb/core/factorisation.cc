#include "fdb/core/factorisation.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace fdb {
namespace {

FactPtr BuildIn(FactArena& arena, const std::vector<Value>& values,
                const std::vector<FactPtr>& children) {
  ValueDict& dict = ValueDict::Default();
  std::vector<ValueRef> refs;
  refs.reserve(values.size());
  for (const Value& v : values) refs.push_back(dict.Encode(v));
  return arena.NewNode(refs.data(), refs.size(), children.data(),
                       children.size());
}

}  // namespace

FactPtr MakeLeaf(const std::vector<Value>& values) {
  return BuildIn(*FactArena::Scratch(), values, {});
}

FactPtr MakeNode(const std::vector<Value>& values,
                 const std::vector<FactPtr>& children) {
  return BuildIn(*FactArena::Scratch(), values, children);
}

FactPtr MakeLeafIn(FactArena& arena, const std::vector<Value>& values) {
  return BuildIn(arena, values, {});
}

FactPtr MakeNodeIn(FactArena& arena, const std::vector<Value>& values,
                   const std::vector<FactPtr>& children) {
  return BuildIn(arena, values, children);
}

FactArena& Factorisation::ArenaForWrite() {
  if (arena_ != nullptr && arena_.use_count() == 1) return *arena_;
  auto fresh = std::make_shared<FactArena>();
  if (arena_ != nullptr) fresh->Adopt(arena_);
  arena_ = std::move(fresh);
  return *arena_;
}

namespace {

// Recursion depth is the f-tree height, not the data size.
FactPtr CopyInto(FactPtr n, FactArena& arena,
                 std::unordered_map<FactPtr, FactPtr>* copied) {
  if (n->values.empty() && n->children.empty()) {
    return FactArena::EmptyNode();
  }
  auto it = copied->find(n);
  if (it != copied->end()) return it->second;
  std::vector<FactPtr> kids;
  kids.reserve(n->children.size());
  for (FactPtr c : n->children) kids.push_back(CopyInto(c, arena, copied));
  FactPtr out = arena.NewNode(n->values.ptr, n->values.len, kids.data(),
                              kids.size());
  copied->emplace(n, out);
  return out;
}

// Below this much garbage a compaction copy costs more than it frees.
constexpr int64_t kCompactSlackBytes = 64 << 10;

}  // namespace

void Factorisation::Compact() {
  auto fresh = std::make_shared<FactArena>();
  std::unordered_map<FactPtr, FactPtr> copied;
  for (FactPtr& r : roots_) {
    if (r != nullptr) r = CopyInto(r, *fresh, &copied);
  }
  ReplaceArena(std::move(fresh));
}

bool Factorisation::MaybeCompact() {
  if (arena_ == nullptr) return false;
  int64_t used = arena_->bytes_used();
  if (compacted_bytes_ < 0) {
    compacted_bytes_ = used;
    return false;
  }
  if (used <= 4 * compacted_bytes_ + kCompactSlackBytes) return false;
  Compact();
  return true;
}

bool Factorisation::empty() const {
  for (const FactPtr& r : roots_) {
    if (r == nullptr || r->values.empty()) return true;
  }
  return false;
}

namespace {

int64_t CountSingletonsRec(const FactNode& n) {
  int64_t total = static_cast<int64_t>(n.values.size());
  for (const FactPtr& c : n.children) total += CountSingletonsRec(*c);
  return total;
}

int64_t CountTuplesRec(const FTree& t, int node, const FactNode& n) {
  int k = static_cast<int>(t.children(node).size());
  int64_t total = 0;
  for (int i = 0; i < n.size(); ++i) {
    int64_t prod = 1;
    for (int c = 0; c < k; ++c) {
      prod *= CountTuplesRec(t, t.children(node)[c], *n.child(i, k, c));
    }
    total += prod;
  }
  return total;
}

// Appends all tuples (over the subtree's columns, topo order) to *out as the
// cross product with the prefix rows in [begin, out->size()).
void FlattenRec(const FTree& t, int node, const FactNode& n,
                std::vector<Tuple>* out) {
  int k = static_cast<int>(t.children(node).size());
  int ncols_here = t.node(node).is_aggregate()
                       ? 1
                       : static_cast<int>(t.node(node).attrs.size());
  std::vector<Tuple> result;
  for (int i = 0; i < n.size(); ++i) {
    std::vector<Tuple> partial;
    partial.emplace_back(ncols_here, n.values[i].ToValue());
    for (int c = 0; c < k; ++c) {
      std::vector<Tuple> sub;
      FlattenRec(t, t.children(node)[c], *n.child(i, k, c), &sub);
      std::vector<Tuple> next;
      next.reserve(partial.size() * sub.size());
      for (const Tuple& p : partial) {
        for (const Tuple& s : sub) {
          Tuple row = p;
          row.insert(row.end(), s.begin(), s.end());
          next.push_back(std::move(row));
        }
      }
      partial = std::move(next);
    }
    for (Tuple& p : partial) result.push_back(std::move(p));
  }
  *out = std::move(result);
}

}  // namespace

int64_t Factorisation::CountSingletons() const {
  int64_t total = 0;
  for (const FactPtr& r : roots_) {
    if (r) total += CountSingletonsRec(*r);
  }
  return total;
}

int64_t Factorisation::CountTuples() const {
  if (empty()) return 0;
  int64_t prod = 1;
  for (size_t i = 0; i < roots_.size(); ++i) {
    prod *= CountTuplesRec(tree_, tree_.roots()[i], *roots_[i]);
  }
  return prod;
}

RelSchema Factorisation::OutputSchema() const {
  std::vector<AttrId> attrs;
  for (int n : tree_.TopologicalOrder()) {
    auto ids = tree_.node(n).is_aggregate()
                   ? std::vector<AttrId>{tree_.node(n).agg->id}
                   : tree_.node(n).attrs;
    attrs.insert(attrs.end(), ids.begin(), ids.end());
  }
  return RelSchema(std::move(attrs));
}

Relation Factorisation::Flatten() const {
  Relation out(OutputSchema());
  if (empty()) return out;
  std::vector<Tuple> acc = {Tuple{}};
  for (size_t r = 0; r < roots_.size(); ++r) {
    std::vector<Tuple> sub;
    FlattenRec(tree_, tree_.roots()[r], *roots_[r], &sub);
    std::vector<Tuple> next;
    next.reserve(acc.size() * sub.size());
    for (const Tuple& p : acc) {
      for (const Tuple& s : sub) {
        Tuple row = p;
        row.insert(row.end(), s.begin(), s.end());
        next.push_back(std::move(row));
      }
    }
    acc = std::move(next);
  }
  for (Tuple& t : acc) out.Add(std::move(t));
  return out;
}

namespace {

bool ValidateRec(const FTree& t, int node, const FactNode& n, bool is_root,
                 std::string* why) {
  size_t k = t.children(node).size();
  if (n.children.size() != n.values.size() * k) {
    if (why) *why = "child matrix size mismatch at node " + std::to_string(node);
    return false;
  }
  for (size_t i = 1; i < n.values.size(); ++i) {
    if (!(n.values[i - 1] < n.values[i])) {
      if (why) *why = "union not strictly sorted at node " + std::to_string(node);
      return false;
    }
  }
  if (!is_root && n.values.empty()) {
    if (why) *why = "empty non-root union at node " + std::to_string(node);
    return false;
  }
  for (size_t i = 0; i < n.values.size(); ++i) {
    for (size_t c = 0; c < k; ++c) {
      FactPtr ch = n.children[i * k + c];
      if (ch == nullptr) {
        if (why) *why = "null child at node " + std::to_string(node);
        return false;
      }
      if (ch->values.empty()) {
        if (why) *why = "unpruned empty child at node " + std::to_string(node);
        return false;
      }
      if (!ValidateRec(t, t.children(node)[c], *ch, false, why)) return false;
    }
  }
  return true;
}

void PrintRec(const FTree& t, const AttributeRegistry& reg, int node,
              const FactNode& n, std::ostringstream* os) {
  int k = static_cast<int>(t.children(node).size());
  if (n.size() > 1) *os << "(";
  for (int i = 0; i < n.size(); ++i) {
    if (i) *os << " u ";
    *os << "<" << n.values[i] << ">";
    for (int c = 0; c < k; ++c) {
      *os << "x";
      PrintRec(t, reg, t.children(node)[c], *n.child(i, k, c), os);
    }
  }
  if (n.size() > 1) *os << ")";
}

}  // namespace

bool Factorisation::Validate(std::string* why) const {
  if (roots_.size() != tree_.roots().size()) {
    if (why) *why = "root count mismatch";
    return false;
  }
  for (size_t r = 0; r < roots_.size(); ++r) {
    if (roots_[r] == nullptr) {
      if (why) *why = "null root";
      return false;
    }
    if (!ValidateRec(tree_, tree_.roots()[r], *roots_[r], true, why)) {
      return false;
    }
  }
  return true;
}

std::string Factorisation::ToString(const AttributeRegistry& reg) const {
  std::ostringstream os;
  for (size_t r = 0; r < roots_.size(); ++r) {
    if (r) os << " x ";
    PrintRec(tree_, reg, tree_.roots()[r], *roots_[r], &os);
  }
  return os.str();
}

}  // namespace fdb
