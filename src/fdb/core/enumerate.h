#ifndef FDB_CORE_ENUMERATE_H_
#define FDB_CORE_ENUMERATE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fdb/core/factorisation.h"
#include "fdb/core/ops/aggregate.h"

namespace fdb {

/// Constant-delay tuple enumerator over a factorisation (paper §4.1).
///
/// The enumerator maintains one iterator per f-tree node (a "hierarchy of
/// iterators in the parse tree"), visited in a fixed order in which parents
/// precede children. Successive tuples differ only in a suffix of that
/// order, so the delay between tuples is O(#nodes · branching) — constant in
/// data size. Because unions are kept sorted, tuples are emitted in
/// lexicographic order of the visit sequence, honouring the per-node
/// direction (ascending or descending); by Theorem 2 this realises any
/// order-by list whose attributes sit suitably high in the f-tree.
///
/// The enumerator snapshots the factorisation at construction: it pins
/// the arena and captures the root pointers, so persistent updates on the
/// source (which replace roots and may trigger generational compaction,
/// retiring old arenas) cannot invalidate an enumeration in progress — it
/// keeps enumerating the construction-time version. The Factorisation
/// object must still outlive the enumerator, and restructuring its f-tree
/// mid-enumeration remains unsupported.
class Enumerator {
 public:
  /// `visit_order` must contain every live node exactly once, parents before
  /// children; `dirs` is parallel to it.
  Enumerator(const Factorisation& f, std::vector<int> visit_order,
             std::vector<SortDir> dirs);

  /// Convenience: topological order, all ascending.
  explicit Enumerator(const Factorisation& f);

  /// Output columns: the attributes of the visited nodes, in visit order
  /// (an atomic class contributes all of its attributes).
  const RelSchema& schema() const { return schema_; }

  /// Advances to the next tuple; the first call positions on the first one.
  /// Returns false when exhausted.
  bool Next();

  /// Writes the current tuple; `out` must have schema().arity() slots.
  void Fill(Tuple* out) const;

  /// The first visit position whose binding changed in the last Next()
  /// (successive tuples differ only in a suffix of the visit order). After
  /// the first tuple this is 0.
  int ChangedFrom() const { return changed_from_; }

  /// Rewrites only the columns of positions >= from_pos; combined with
  /// ChangedFrom() this rehydrates each singleton once per change instead
  /// of once per tuple.
  void FillFrom(Tuple* out, int from_pos) const;

  /// Restricts enumeration to ranks [lo, hi) of the first visit
  /// position's union, where rank 0 is that position's first entry in its
  /// visit direction. Successive tuples differ in a suffix of the visit
  /// order, so partitioning the top union's ranks partitions the output
  /// into contiguous runs: enumerating [0,c1), [c1,c2), … and
  /// concatenating reproduces the unrestricted sequence exactly — the
  /// parallel enumeration hook. Must be called before the first Next().
  void RestrictRoot(int64_t lo, int64_t hi);

 private:
  friend class GroupAggEnumerator;

  struct Pos {
    int node = -1;
    int parent_pos = -1;  ///< index into order_, or -1 for roots
    int slot = 0;         ///< child slot in the parent node / root slot
    int k = 0;            ///< number of f-tree children of `node`
    int first_col = 0;    ///< first output column of this node
    int ncols = 0;
    SortDir dir = SortDir::kAsc;
    const FactNode* cur = nullptr;
    int idx = 0;
  };

  // Re-resolves position p from its parent's state and resets its index.
  void Reset(int p);

  const Factorisation* f_;
  // Construction-time snapshot: the arena pin keeps the nodes alive
  // across compaction, the captured roots keep Reset() off roots swapped
  // in (and possibly compacted away) by later updates.
  std::shared_ptr<const FactArena> arena_;
  std::vector<FactPtr> roots_;
  std::vector<Pos> order_;
  RelSchema schema_;
  bool started_ = false;
  bool done_ = false;
  int changed_from_ = 0;
  // Rank window of position 0 (RestrictRoot) and the current rank within
  // it; root_hi_ < 0 means unbounded.
  int64_t root_lo_ = 0;
  int64_t root_hi_ = -1;
  int64_t root_rank_ = 0;
};

/// Enumerates the distinct bindings of a set of *grouping* nodes that form a
/// top fragment of the f-tree (each grouping node is a root or the child of
/// another grouping node — the Theorem 1 condition), while evaluating
/// aggregation tasks over the non-grouping subtrees on the fly (§1,
/// scenario 3). This is how FDB produces flat output for group-by aggregate
/// queries without materialising the aggregated factorisation.
class GroupAggEnumerator {
 public:
  /// `visit_order`/`dirs` cover exactly the grouping nodes (parents first).
  /// `task_ids` provides the output attribute of each task's column.
  GroupAggEnumerator(const Factorisation& f, std::vector<int> visit_order,
                     std::vector<SortDir> dirs, std::vector<AggTask> tasks,
                     std::vector<AttrId> task_ids);

  const RelSchema& schema() const { return schema_; }
  bool Next();
  void Fill(Tuple* out) const;

  /// Restricts the grouping enumeration to ranks [lo, hi) of the first
  /// grouping position's union (see Enumerator::RestrictRoot). Groups
  /// never straddle the boundary: each top-union entry owns a contiguous
  /// run of groups, so chunked enumerations concatenate exactly.
  void RestrictRoot(int64_t lo, int64_t hi) { inner_.RestrictRoot(lo, hi); }

 private:
  Enumerator inner_;  // over the grouping nodes only
  std::vector<AggTask> tasks_;
  // One prepared evaluator per task: the Prop. 2 composition analysis runs
  // once here instead of once per emitted group.
  std::vector<ProductAggEvaluator> evaluators_;
  // Root trees containing no grouping node: constant frontier parts.
  std::vector<std::pair<int, const FactNode*>> fixed_parts_;
  // Child slots of grouping nodes that lead outside the grouping set:
  // (position in inner_.order_, slot).
  std::vector<std::pair<int, int>> frontier_slots_;
  // Scratch for Fill: fixed parts followed by the current frontier.
  mutable std::vector<std::pair<int, const FactNode*>> parts_;
  RelSchema schema_;
};

/// Enumerates `f` into a flat relation using the given visit order and
/// directions, stopping after `limit` tuples if provided (operator λ_k).
///
/// Unlimited enumerations of large factorisations run in parallel on
/// TaskPool::Default(): the first visit position's union is split into
/// rank chunks, each worker enumerates its chunk with a root-restricted
/// Enumerator, and the per-chunk rows are concatenated in rank order —
/// the output is identical (same rows, same order) for any thread count.
Relation EnumerateToRelation(const Factorisation& f,
                             const std::vector<int>& visit_order,
                             const std::vector<SortDir>& dirs,
                             std::optional<int64_t> limit = std::nullopt);

/// Enumerates the grouping fragment with on-the-fly aggregate evaluation
/// (GroupAggEnumerator) into a flat relation, stopping after `limit`
/// groups if provided. Like EnumerateToRelation, unlimited enumerations
/// split the first grouping position's union into rank chunks across
/// TaskPool::Default(), one GroupAggEnumerator per chunk; aggregates are
/// evaluated wholly within the chunk that owns the group, so the output
/// is thread-count independent.
Relation GroupAggToRelation(const Factorisation& f,
                            const std::vector<int>& visit_order,
                            const std::vector<SortDir>& dirs,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& task_ids,
                            std::optional<int64_t> limit = std::nullopt);

}  // namespace fdb

#endif  // FDB_CORE_ENUMERATE_H_
