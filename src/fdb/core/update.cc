#include "fdb/core/update.h"

#include <algorithm>
#include <stdexcept>

namespace fdb {
namespace {

// Validates the path shape and returns the node chain root → leaf.
std::vector<int> PathChain(const FTree& tree, size_t arity) {
  if (tree.roots().size() != 1) {
    throw std::invalid_argument("update: view must have a single root");
  }
  std::vector<int> chain;
  int n = tree.roots()[0];
  while (true) {
    const FTreeNode& nd = tree.node(n);
    if (nd.is_aggregate() || nd.attrs.size() != 1) {
      throw std::invalid_argument(
          "update: view must consist of single-attribute atomic nodes");
    }
    chain.push_back(n);
    if (tree.children(n).empty()) break;
    if (tree.children(n).size() != 1) {
      throw std::invalid_argument("update: view f-tree must be a path");
    }
    n = tree.children(n)[0];
  }
  if (chain.size() != arity) {
    throw std::invalid_argument("update: tuple arity does not match view");
  }
  return chain;
}

// Position of `v` in the (sorted) union, or -1.
int FindValue(const FactNode& n, const Value& v) {
  auto it = std::lower_bound(n.values.begin(), n.values.end(), v);
  if (it == n.values.end() || !(*it == v)) return -1;
  return static_cast<int>(it - n.values.begin());
}

FactPtr InsertRec(const FactNode* n, const Tuple& tuple, size_t depth) {
  bool leaf = depth + 1 == tuple.size();
  const Value& v = tuple[depth];
  auto out = std::make_shared<FactNode>();
  if (n != nullptr) {
    out->values = n->values;
    out->children = n->children;
  }
  int pos = n != nullptr ? FindValue(*n, v) : -1;
  if (pos >= 0) {
    if (leaf) return out;  // tuple already present
    FactPtr updated =
        InsertRec(out->children[pos].get(), tuple, depth + 1);
    out->children[pos] = std::move(updated);
    return out;
  }
  auto it = std::lower_bound(out->values.begin(), out->values.end(), v);
  size_t idx = static_cast<size_t>(it - out->values.begin());
  out->values.insert(it, v);
  if (!leaf) {
    out->children.insert(out->children.begin() + idx,
                         InsertRec(nullptr, tuple, depth + 1));
  }
  return out;
}

// Returns the updated node, or nullptr when the union became empty.
FactPtr DeleteRec(const FactNode& n, const Tuple& tuple, size_t depth,
                  bool* found) {
  bool leaf = depth + 1 == tuple.size();
  int pos = FindValue(n, tuple[depth]);
  if (pos < 0) {
    *found = false;
    return nullptr;
  }
  auto out = std::make_shared<FactNode>();
  out->values = n.values;
  out->children = n.children;
  if (leaf) {
    *found = true;
    out->values.erase(out->values.begin() + pos);
  } else {
    FactPtr updated = DeleteRec(*out->children[pos], tuple, depth + 1, found);
    if (!*found) return nullptr;
    if (updated == nullptr) {
      // The branch below emptied: drop this entry too.
      out->values.erase(out->values.begin() + pos);
      out->children.erase(out->children.begin() + pos);
    } else {
      out->children[pos] = std::move(updated);
    }
  }
  if (out->values.empty()) return nullptr;
  return out;
}

}  // namespace

void InsertTuple(Factorisation* f, const Tuple& tuple) {
  PathChain(f->tree(), tuple.size());  // shape validation
  const FactNode* root =
      f->empty() ? nullptr : f->roots().empty() ? nullptr
                                                : f->roots()[0].get();
  f->mutable_roots()[0] = InsertRec(root, tuple, 0);
}

bool DeleteTuple(Factorisation* f, const Tuple& tuple) {
  PathChain(f->tree(), tuple.size());
  if (f->empty()) return false;
  bool found = false;
  FactPtr updated = DeleteRec(*f->roots()[0], tuple, 0, &found);
  if (!found) return false;
  f->mutable_roots()[0] = updated == nullptr ? MakeLeaf({}) : updated;
  return true;
}

bool ContainsTuple(const Factorisation& f, const Tuple& tuple) {
  PathChain(f.tree(), tuple.size());
  if (f.empty()) return false;
  const FactNode* n = f.roots()[0].get();
  for (size_t depth = 0; depth < tuple.size(); ++depth) {
    int pos = FindValue(*n, tuple[depth]);
    if (pos < 0) return false;
    if (depth + 1 < tuple.size()) n = n->children[pos].get();
  }
  return true;
}

}  // namespace fdb
