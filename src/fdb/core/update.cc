#include "fdb/core/update.h"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace {

// Unions rebuilt (copied or freshly built) by the current ApplyBatch merge
// pass. Thread-local so concurrent batches on different views don't need
// to thread a counter through the recursion.
thread_local int64_t g_unions_rebuilt = 0;

// Updates are persistent: each insert/delete copies the root-to-leaf path
// unions into the factorisation's write arena and the previous versions
// become unreachable garbage. Generational compaction keeps that garbage
// bounded: after every mutation, Factorisation::MaybeCompact copies the
// live roots into a fresh generation once the arena has grown past 4x the
// live size, so sustained update chains run in O(live) memory.

// Validates the path shape and returns the node chain root → leaf.
std::vector<int> PathChain(const FTree& tree, size_t arity) {
  if (tree.roots().size() != 1) {
    throw std::invalid_argument("update: view must have a single root");
  }
  std::vector<int> chain;
  int n = tree.roots()[0];
  while (true) {
    const FTreeNode& nd = tree.node(n);
    if (nd.is_aggregate() || nd.attrs.size() != 1) {
      throw std::invalid_argument(
          "update: view must consist of single-attribute atomic nodes");
    }
    chain.push_back(n);
    if (tree.children(n).empty()) break;
    if (tree.children(n).size() != 1) {
      throw std::invalid_argument("update: view f-tree must be a path");
    }
    n = tree.children(n)[0];
  }
  if (chain.size() != arity) {
    throw std::invalid_argument("update: tuple arity does not match view");
  }
  return chain;
}

// Position of `v` in the (sorted) union, or -1.
int FindValue(const FactNode& n, ValueRef v) {
  auto it = std::lower_bound(n.values.begin(), n.values.end(), v);
  if (it == n.values.end() || !(*it == v)) return -1;
  return static_cast<int>(it - n.values.begin());
}

// Encodes a tuple without inserting into the dictionary; nullopt if some
// value cannot appear in any stored singleton (unseen string / big int).
std::optional<std::vector<ValueRef>> TryEncodeTuple(const ValueDict& dict,
                                                    const Tuple& tuple) {
  std::vector<ValueRef> key;
  key.reserve(tuple.size());
  for (const Value& v : tuple) {
    std::optional<ValueRef> r = dict.TryEncode(v);
    if (!r.has_value()) return std::nullopt;
    key.push_back(*r);
  }
  return key;
}

// Returns the updated node; returns `n` itself when the tuple was already
// present (nothing to copy).
FactPtr InsertRec(const FactNode* n, const std::vector<ValueRef>& key,
                  size_t depth, FactArena& arena) {
  bool leaf = depth + 1 == key.size();
  ValueRef v = key[depth];
  int pos = n != nullptr ? FindValue(*n, v) : -1;
  FactBuilder out;
  if (pos >= 0) {
    if (leaf) return n;  // tuple already present
    FactPtr updated = InsertRec(n->children[pos], key, depth + 1, arena);
    if (updated == n->children[pos]) return n;  // present below
    out.values.assign(n->values.begin(), n->values.end());
    out.children.assign(n->children.begin(), n->children.end());
    out.children[pos] = updated;
    return out.Finish(arena);
  }
  if (n != nullptr) {
    out.values.assign(n->values.begin(), n->values.end());
    out.children.assign(n->children.begin(), n->children.end());
  }
  auto it = std::lower_bound(out.values.begin(), out.values.end(), v);
  size_t idx = static_cast<size_t>(it - out.values.begin());
  out.values.insert(it, v);
  if (!leaf) {
    out.children.insert(out.children.begin() + idx,
                        InsertRec(nullptr, key, depth + 1, arena));
  }
  return out.Finish(arena);
}

// Returns the updated node, or nullptr when the union became empty.
FactPtr DeleteRec(const FactNode& n, const std::vector<ValueRef>& key,
                  size_t depth, bool* found, FactArena& arena) {
  bool leaf = depth + 1 == key.size();
  int pos = FindValue(n, key[depth]);
  if (pos < 0) {
    *found = false;
    return nullptr;
  }
  FactBuilder out;
  out.values.assign(n.values.begin(), n.values.end());
  out.children.assign(n.children.begin(), n.children.end());
  if (leaf) {
    *found = true;
    out.values.erase(out.values.begin() + pos);
  } else {
    FactPtr updated =
        DeleteRec(*n.children[pos], key, depth + 1, found, arena);
    if (!*found) return nullptr;
    if (updated == nullptr) {
      // The branch below emptied: drop this entry too.
      out.values.erase(out.values.begin() + pos);
      out.children.erase(out.children.begin() + pos);
    } else {
      out.children[pos] = updated;
    }
  }
  if (out.values.empty()) return nullptr;
  return out.Finish(arena);
}

// --- batch apply ----------------------------------------------------------
//
// A batch is reduced to its final membership first: ordered application of
// idempotent inserts and deletes means only the last op per key matters.
// The survivors, sorted by encoded key (ValueRef order — the same order
// the trie unions use), are then merged against the existing trie in one
// recursive pass, so a union crossed by k keys is copied once instead of
// k times. Subtrees no batch key reaches are returned by pointer,
// preserving node identity for the incremental checkpointer.

// One resolved batch key: final membership `insert` for `*key`.
struct BatchEntry {
  const std::vector<ValueRef>* key;
  bool insert;
};

// Builds a fresh subtree from the inserts in [lo, hi) (all sharing the
// key prefix above `depth`); nullptr when the range holds only deletes.
FactPtr BuildRec(const BatchEntry* lo, const BatchEntry* hi, size_t depth,
                 size_t arity, FactArena& arena) {
  bool leaf = depth + 1 == arity;
  FactBuilder out;
  for (const BatchEntry* e = lo; e < hi;) {
    ValueRef v = (*e->key)[depth];
    const BatchEntry* ge = e;
    while (ge < hi && (*ge->key)[depth] == v) ++ge;
    if (leaf) {
      if (e->insert) out.values.push_back(v);  // keys unique: ge == e + 1
    } else {
      FactPtr child = BuildRec(e, ge, depth + 1, arity, arena);
      if (child != nullptr) {
        out.values.push_back(v);
        out.children.push_back(child);
      }
    }
    e = ge;
  }
  if (out.values.empty()) return nullptr;
  ++g_unions_rebuilt;
  return out.Finish(arena);
}

// Merges the sorted entries [lo, hi) into `n`'s union. Returns `n` itself
// when nothing below changed, nullptr when the union emptied.
FactPtr MergeRec(const FactNode* n, const BatchEntry* lo,
                 const BatchEntry* hi, size_t depth, size_t arity,
                 FactArena& arena) {
  bool leaf = depth + 1 == arity;
  bool changed = false;
  FactBuilder out;
  size_t i = 0;
  const BatchEntry* e = lo;
  while (i < n->values.size() || e < hi) {
    if (e == hi ||
        (i < n->values.size() && n->values[i] < (*e->key)[depth])) {
      out.values.push_back(n->values[i]);
      if (!leaf) out.children.push_back(n->children[i]);
      ++i;
      continue;
    }
    ValueRef v = (*e->key)[depth];
    const BatchEntry* ge = e;
    while (ge < hi && (*ge->key)[depth] == v) ++ge;
    bool present = i < n->values.size() && n->values[i] == v;
    if (leaf) {
      if (present) {
        if (e->insert) {
          out.values.push_back(v);  // already a member: no-op
        } else {
          changed = true;  // deleted
        }
        ++i;
      } else if (e->insert) {
        out.values.push_back(v);
        changed = true;
      }
    } else if (present) {
      FactPtr updated = MergeRec(n->children[i], e, ge, depth + 1, arity,
                                 arena);
      if (updated == nullptr) {
        changed = true;  // branch emptied: drop this entry too
      } else {
        out.values.push_back(v);
        out.children.push_back(updated);
        if (updated != n->children[i]) changed = true;
      }
      ++i;
    } else {
      FactPtr built = BuildRec(e, ge, depth + 1, arity, arena);
      if (built != nullptr) {
        out.values.push_back(v);
        out.children.push_back(built);
        changed = true;
      }
    }
    e = ge;
  }
  if (!changed) return n;
  if (out.values.empty()) return nullptr;
  ++g_unions_rebuilt;
  return out.Finish(arena);
}

}  // namespace

void ApplyBatch(Factorisation* f, const std::vector<BatchOp>& ops) {
  if (ops.empty()) return;
  std::vector<int> chain = PathChain(f->tree(), ops.front().tuple.size());
  size_t arity = chain.size();
  ValueDict& dict = f->dict();
  // Resolve final membership per key, processing in order: a delete of a
  // value only interned by an earlier insert in the same batch must see
  // that encoding (sequential semantics).
  std::map<std::vector<ValueRef>, bool> final_op;
  for (const BatchOp& op : ops) {
    if (op.tuple.size() != arity) {
      throw std::invalid_argument("update: tuple arity does not match view");
    }
    if (op.insert) {
      std::vector<ValueRef> key;
      key.reserve(arity);
      for (const Value& v : op.tuple) key.push_back(dict.Encode(v));
      final_op[std::move(key)] = true;
    } else {
      std::optional<std::vector<ValueRef>> key =
          TryEncodeTuple(dict, op.tuple);
      if (!key.has_value()) continue;  // value never stored: delete no-ops
      final_op[*std::move(key)] = false;
    }
  }
  if (final_op.empty()) return;
  static obs::Counter& batches = obs::Registry::Instance().GetCounter(
      "update.batches", "batches", "ApplyBatch invocations with work");
  static obs::Counter& batch_ops = obs::Registry::Instance().GetCounter(
      "update.batch_ops", "ops", "operations submitted to ApplyBatch");
  static obs::Counter& ops_deduped = obs::Registry::Instance().GetCounter(
      "update.ops_deduped", "ops",
      "batch ops collapsed by last-op-wins dedup before the merge");
  static obs::Counter& unions_merged = obs::Registry::Instance().GetCounter(
      "update.unions_merged", "unions",
      "unions rebuilt by batch merges (shared paths copied once per batch)");
  batches.Inc();
  batch_ops.Inc(ops.size());
  ops_deduped.Inc(ops.size() - final_op.size());
  std::vector<BatchEntry> entries;
  entries.reserve(final_op.size());
  for (const auto& [key, insert] : final_op) {
    entries.push_back(BatchEntry{&key, insert});
  }
  const FactNode* root =
      f->empty() ? nullptr : f->roots().empty() ? nullptr : f->roots()[0];
  g_unions_rebuilt = 0;
  FactPtr updated =
      root == nullptr
          ? BuildRec(entries.data(), entries.data() + entries.size(), 0,
                     arity, f->ArenaForWrite())
          : MergeRec(root, entries.data(), entries.data() + entries.size(),
                     0, arity, f->ArenaForWrite());
  unions_merged.Inc(static_cast<uint64_t>(g_unions_rebuilt));
  f->mutable_roots()[0] =
      updated == nullptr ? FactArena::EmptyNode() : updated;
  f->MaybeCompact();
}

void InsertTuple(Factorisation* f, const Tuple& tuple) {
  PathChain(f->tree(), tuple.size());  // shape validation
  std::vector<ValueRef> key;
  key.reserve(tuple.size());
  ValueDict& dict = f->dict();
  for (const Value& v : tuple) key.push_back(dict.Encode(v));
  const FactNode* root =
      f->empty() ? nullptr : f->roots().empty() ? nullptr : f->roots()[0];
  f->mutable_roots()[0] = InsertRec(root, key, 0, f->ArenaForWrite());
  f->MaybeCompact();
}

bool DeleteTuple(Factorisation* f, const Tuple& tuple) {
  PathChain(f->tree(), tuple.size());
  if (f->empty()) return false;
  std::optional<std::vector<ValueRef>> key =
      TryEncodeTuple(f->dict(), tuple);
  if (!key.has_value()) return false;  // contains a value never stored
  bool found = false;
  FactPtr updated =
      DeleteRec(*f->roots()[0], *key, 0, &found, f->ArenaForWrite());
  if (!found) return false;
  f->mutable_roots()[0] =
      updated == nullptr ? FactArena::EmptyNode() : updated;
  f->MaybeCompact();
  return true;
}

bool ContainsTuple(const Factorisation& f, const Tuple& tuple) {
  PathChain(f.tree(), tuple.size());
  if (f.empty()) return false;
  std::optional<std::vector<ValueRef>> key = TryEncodeTuple(f.dict(), tuple);
  if (!key.has_value()) return false;
  const FactNode* n = f.roots()[0];
  for (size_t depth = 0; depth < key->size(); ++depth) {
    int pos = FindValue(*n, (*key)[depth]);
    if (pos < 0) return false;
    if (depth + 1 < key->size()) n = n->children[pos];
  }
  return true;
}

}  // namespace fdb
