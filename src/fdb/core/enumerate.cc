#include "fdb/core/enumerate.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "fdb/exec/cancel.h"
#include "fdb/exec/task_pool.h"

namespace fdb {

namespace {

// Cooperative limit hook for the enumeration output loops. Output rows
// are plain Tuples, not arena nodes, so a flattening blow-up (huge
// cross-product) escapes FactArena's charge hook — charge the row
// footprint here, every 256 rows, alongside the time/cancel poll. With
// no token armed each call is a counter bump and (rarely) one
// thread-local load.
class EnumLimiter {
 public:
  explicit EnumLimiter(int arity) : arity_(arity) {}
  void Row() {
    if ((++poll_ & 255u) != 0) return;
    if (exec::CancelToken* t = exec::CurrentCancelToken()) {
      t->ChargeMemory(256 * static_cast<int64_t>(arity_) *
                      static_cast<int64_t>(sizeof(Value)));
      t->Check();
    }
  }

 private:
  uint32_t poll_ = 0;
  int arity_;
};

}  // namespace

Enumerator::Enumerator(const Factorisation& f, std::vector<int> visit_order,
                       std::vector<SortDir> dirs)
    : f_(&f), arena_(f.arena()), roots_(f.roots()) {
  if (visit_order.size() != dirs.size()) {
    throw std::invalid_argument("Enumerator: order/dirs size mismatch");
  }
  const FTree& tree = f.tree();
  std::unordered_map<int, int> pos_of;
  std::vector<AttrId> cols;
  for (size_t p = 0; p < visit_order.size(); ++p) {
    Pos pos;
    pos.node = visit_order[p];
    pos.dir = dirs[p];
    pos.k = static_cast<int>(tree.children(pos.node).size());
    int parent = tree.parent(pos.node);
    if (parent < 0) {
      pos.parent_pos = -1;
      pos.slot = tree.SlotOf(pos.node);
    } else {
      auto it = pos_of.find(parent);
      if (it == pos_of.end()) {
        throw std::invalid_argument(
            "Enumerator: visit order lists a child before its parent");
      }
      pos.parent_pos = it->second;
      pos.slot = tree.SlotOf(pos.node);
    }
    pos.first_col = static_cast<int>(cols.size());
    const FTreeNode& nd = tree.node(pos.node);
    if (nd.is_aggregate()) {
      cols.push_back(nd.agg->id);
    } else {
      cols.insert(cols.end(), nd.attrs.begin(), nd.attrs.end());
    }
    pos.ncols = static_cast<int>(cols.size()) - pos.first_col;
    pos_of[pos.node] = static_cast<int>(p);
    order_.push_back(pos);
  }
  schema_ = RelSchema(std::move(cols));
  done_ = f.empty();
}

Enumerator::Enumerator(const Factorisation& f)
    : Enumerator(f, f.tree().TopologicalOrder(),
                 std::vector<SortDir>(f.tree().TopologicalOrder().size(),
                                      SortDir::kAsc)) {}

void Enumerator::RestrictRoot(int64_t lo, int64_t hi) {
  if (started_) {
    throw std::logic_error("Enumerator: RestrictRoot after enumeration began");
  }
  root_lo_ = std::max<int64_t>(0, lo);
  root_hi_ = hi;
}

// The effective end rank of position 0's window given its current union.
static int64_t RootWindowEnd(const FactNode& top, int64_t root_hi) {
  int64_t size = top.size();
  return root_hi < 0 ? size : std::min(size, root_hi);
}

void Enumerator::Reset(int p) {
  Pos& pos = order_[p];
  if (pos.parent_pos < 0) {
    pos.cur = roots_[pos.slot];
  } else {
    const Pos& par = order_[pos.parent_pos];
    pos.cur = par.cur->child(par.idx, par.k, pos.slot);
  }
  if (p == 0) {
    // Position 0 starts at its window's first rank, not the union's.
    root_rank_ = root_lo_;
    pos.idx = pos.dir == SortDir::kAsc
                  ? static_cast<int>(root_rank_)
                  : static_cast<int>(pos.cur->size() - 1 - root_rank_);
  } else {
    pos.idx = pos.dir == SortDir::kAsc ? 0 : pos.cur->size() - 1;
  }
}

bool Enumerator::Next() {
  if (done_) return false;
  if (!started_) {
    started_ = true;
    changed_from_ = 0;
    // Check each position right after its Reset, before resetting any
    // child off it: an empty union (only possible for an empty root,
    // which f.empty() caught, or an empty root window — stay defensive)
    // must not be indexed by a dependent Reset.
    for (size_t p = 0; p < order_.size(); ++p) {
      Reset(static_cast<int>(p));
      if (order_[p].cur->values.empty()) {
        done_ = true;
        return false;
      }
      if (p == 0 && root_rank_ >= RootWindowEnd(*order_[0].cur, root_hi_)) {
        done_ = true;  // empty root window
        return false;
      }
    }
    return true;
  }
  int p = static_cast<int>(order_.size()) - 1;
  while (p >= 0) {
    Pos& pos = order_[p];
    int next = pos.idx + (pos.dir == SortDir::kAsc ? 1 : -1);
    bool in_range =
        p == 0 ? root_rank_ + 1 < RootWindowEnd(*pos.cur, root_hi_)
               : next >= 0 && next < pos.cur->size();
    if (in_range) {
      if (p == 0) ++root_rank_;
      pos.idx = next;
      for (size_t q = p + 1; q < order_.size(); ++q) {
        Reset(static_cast<int>(q));
      }
      changed_from_ = p;
      return true;
    }
    --p;
  }
  done_ = true;
  return false;
}

void Enumerator::Fill(Tuple* out) const { FillFrom(out, 0); }

void Enumerator::FillFrom(Tuple* out, int from_pos) const {
  for (size_t p = from_pos; p < order_.size(); ++p) {
    const Pos& pos = order_[p];
    Value v = pos.cur->values[pos.idx].ToValue();
    for (int c = 0; c < pos.ncols - 1; ++c) {
      (*out)[pos.first_col + c] = v;
    }
    if (pos.ncols > 0) {
      (*out)[pos.first_col + pos.ncols - 1] = std::move(v);
    }
  }
}

GroupAggEnumerator::GroupAggEnumerator(const Factorisation& f,
                                       std::vector<int> visit_order,
                                       std::vector<SortDir> dirs,
                                       std::vector<AggTask> tasks,
                                       std::vector<AttrId> task_ids)
    : inner_(f, visit_order, dirs), tasks_(std::move(tasks)) {
  if (tasks_.size() != task_ids.size()) {
    throw std::invalid_argument("GroupAggEnumerator: task/ids mismatch");
  }
  const FTree& tree = f.tree();
  std::unordered_set<int> group(visit_order.begin(), visit_order.end());
  // Validate the Theorem 1 condition and locate the frontier.
  for (size_t p = 0; p < visit_order.size(); ++p) {
    int n = visit_order[p];
    int par = tree.parent(n);
    if (par >= 0 && !group.count(par)) {
      throw std::invalid_argument(
          "GroupAggEnumerator: grouping nodes do not form a top fragment "
          "(Theorem 1)");
    }
    const std::vector<int>& kids = tree.children(n);
    for (size_t c = 0; c < kids.size(); ++c) {
      if (!group.count(kids[c])) {
        frontier_slots_.emplace_back(static_cast<int>(p),
                                     static_cast<int>(c));
      }
    }
  }
  for (size_t r = 0; r < tree.roots().size(); ++r) {
    int root = tree.roots()[r];
    bool has_group = false;
    for (int n : tree.SubtreeNodes(root)) {
      if (group.count(n)) has_group = true;
    }
    if (!has_group) {
      fixed_parts_.emplace_back(root, f.roots()[r]);
    } else if (!group.count(root)) {
      throw std::invalid_argument(
          "GroupAggEnumerator: grouping node below a non-grouping root");
    }
  }
  std::vector<AttrId> cols = inner_.schema().attrs();
  cols.insert(cols.end(), task_ids.begin(), task_ids.end());
  schema_ = RelSchema(std::move(cols));

  // Prepare one evaluator per task over the fixed part-node list (the data
  // instances change per group; the nodes do not).
  std::vector<int> part_nodes;
  for (const auto& [node, n] : fixed_parts_) part_nodes.push_back(node);
  for (const auto& [p, slot] : frontier_slots_) {
    part_nodes.push_back(tree.children(inner_.order_[p].node)[slot]);
  }
  for (const AggTask& t : tasks_) {
    evaluators_.emplace_back(tree, part_nodes, t);
  }
  parts_ = fixed_parts_;
  parts_.resize(part_nodes.size());
}

bool GroupAggEnumerator::Next() { return inner_.Next(); }

void GroupAggEnumerator::Fill(Tuple* out) const {
  // Full fill: per-group cost is dominated by the aggregate evaluation, and
  // a suffix-only fill would silently require callers to reuse one tuple.
  inner_.Fill(out);
  // Collect the frontier: the non-grouping subtrees under the current
  // grouping binding, plus the grouping-free root trees.
  const FTree& tree = inner_.f_->tree();
  size_t i = fixed_parts_.size();
  for (const auto& [p, slot] : frontier_slots_) {
    const Enumerator::Pos& pos = inner_.order_[p];
    parts_[i++] = {tree.children(pos.node)[slot],
                   pos.cur->child(pos.idx, pos.k, slot)};
  }
  int base = inner_.schema().arity();
  for (size_t t = 0; t < tasks_.size(); ++t) {
    (*out)[base + static_cast<int>(t)] = evaluators_[t].Eval(parts_);
  }
}

namespace {

// Below this many top-union entries, forking costs more than it saves.
constexpr int64_t kMinParallelRootEntries = 64;

// Entries of the union enumeration splits on: position 0's root union.
// visit_order[0] is always a root (the Enumerator ctor rejects orders
// listing a child before its parent).
int64_t RootUnionEntries(const Factorisation& f,
                         const std::vector<int>& visit_order) {
  if (visit_order.empty() || f.empty()) return 0;
  return f.roots()[f.tree().SlotOf(visit_order[0])]->size();
}

// Splits [0, n) root ranks into a few chunks per pool thread (via
// ParallelFor's own grain partitioning), runs `fill(chunk_rows, lo, hi)`
// per chunk, and concatenates the per-chunk rows in rank order. The
// chunk→thread assignment is dynamic but the output order is rank order
// regardless.
void ChunkedEnumerate(
    exec::TaskPool& pool, int64_t n, Relation* out,
    const std::function<void(std::vector<Tuple>*, int64_t, int64_t)>& fill) {
  int64_t chunks = std::min<int64_t>(n, pool.num_threads() * int64_t{4});
  int64_t grain = (n + chunks - 1) / chunks;
  std::vector<std::vector<Tuple>> rows((n + grain - 1) / grain);
  pool.ParallelFor(n, grain, [&](int, int64_t lo, int64_t hi) {
    fill(&rows[lo / grain], lo, hi);
  });
  size_t total = 0;
  for (const std::vector<Tuple>& chunk : rows) total += chunk.size();
  out->mutable_rows().reserve(total);
  for (std::vector<Tuple>& chunk : rows) {
    for (Tuple& t : chunk) out->Add(std::move(t));
  }
}

}  // namespace

Relation EnumerateToRelation(const Factorisation& f,
                             const std::vector<int>& visit_order,
                             const std::vector<SortDir>& dirs,
                             std::optional<int64_t> limit) {
  Enumerator e(f, visit_order, dirs);
  Relation out(e.schema());
  exec::TaskPool& pool = exec::TaskPool::Default();
  int64_t top = RootUnionEntries(f, visit_order);
  if (!limit.has_value() && pool.num_threads() > 1 &&
      top >= kMinParallelRootEntries) {
    ChunkedEnumerate(
        pool, top, &out,
        [&](std::vector<Tuple>* dst, int64_t lo, int64_t hi) {
          // The schema probe `e` is still unstarted; the (single) chunk
          // beginning at rank 0 reuses it instead of building a new one.
          std::optional<Enumerator> local;
          if (lo != 0) local.emplace(f, visit_order, dirs);
          Enumerator& ce = lo == 0 ? e : *local;
          ce.RestrictRoot(lo, hi);
          Tuple row(ce.schema().arity());
          EnumLimiter lim(ce.schema().arity());
          while (ce.Next()) {
            lim.Row();
            ce.FillFrom(&row, ce.ChangedFrom());
            dst->push_back(row);
          }
        });
    return out;
  }
  // Reserve the output rows up front (bounded, in case of huge products).
  constexpr int64_t kMaxReserve = int64_t{1} << 20;
  int64_t expect = limit.has_value() ? *limit : f.CountTuples();
  out.mutable_rows().reserve(
      static_cast<size_t>(std::min(std::max<int64_t>(expect, 0),
                                   kMaxReserve)));
  Tuple row(e.schema().arity());
  EnumLimiter lim(e.schema().arity());
  int64_t n = 0;
  while (e.Next()) {
    lim.Row();
    if (limit.has_value() && n >= *limit) break;
    // Only the columns of the changed visit-order suffix need rewriting.
    e.FillFrom(&row, e.ChangedFrom());
    out.Add(row);
    ++n;
  }
  return out;
}

Relation GroupAggToRelation(const Factorisation& f,
                            const std::vector<int>& visit_order,
                            const std::vector<SortDir>& dirs,
                            const std::vector<AggTask>& tasks,
                            const std::vector<AttrId>& task_ids,
                            std::optional<int64_t> limit) {
  GroupAggEnumerator e(f, visit_order, dirs, tasks, task_ids);
  Relation out(e.schema());
  exec::TaskPool& pool = exec::TaskPool::Default();
  int64_t top = RootUnionEntries(f, visit_order);
  if (!limit.has_value() && pool.num_threads() > 1 &&
      top >= kMinParallelRootEntries) {
    ChunkedEnumerate(
        pool, top, &out,
        [&](std::vector<Tuple>* dst, int64_t lo, int64_t hi) {
          // Reuse the unstarted probe (and its per-task composition
          // analyses) for the chunk at rank 0.
          std::optional<GroupAggEnumerator> local;
          if (lo != 0) local.emplace(f, visit_order, dirs, tasks, task_ids);
          GroupAggEnumerator& ce = lo == 0 ? e : *local;
          ce.RestrictRoot(lo, hi);
          Tuple row(ce.schema().arity());
          EnumLimiter lim(ce.schema().arity());
          while (ce.Next()) {
            lim.Row();
            ce.Fill(&row);
            dst->push_back(row);
          }
        });
    return out;
  }
  Tuple row(e.schema().arity());
  EnumLimiter lim(e.schema().arity());
  while (e.Next()) {
    lim.Row();
    if (limit.has_value() &&
        static_cast<int64_t>(out.size()) >= *limit) {
      break;
    }
    e.Fill(&row);
    out.Add(row);
  }
  return out;
}

}  // namespace fdb
