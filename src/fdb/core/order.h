#ifndef FDB_CORE_ORDER_H_
#define FDB_CORE_ORDER_H_

#include <vector>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Theorem 1: tuples can be enumerated with constant delay grouped by the
/// attributes of `g_nodes` iff each of those nodes is a root of the f-tree
/// or a child of another node in `g_nodes`.
bool SupportsGrouping(const FTree& tree, const std::vector<int>& g_nodes);

/// Theorem 2: tuples can be enumerated with constant delay in lexicographic
/// order by the node list `o_nodes` iff each listed node is a root or a
/// child of a node appearing *earlier* in the list.
bool SupportsOrder(const FTree& tree, const std::vector<int>& o_nodes);

/// Plans the partial restructuring of §4.2: the sequence of swap operators
/// (given as node ids to swap up with their parent, applied in order) after
/// which the tree supports ordering by `o_nodes` (in list order) and
/// grouping by `g_nodes` (a superset or disjoint extra set). The plan is
/// computed on a copy of `tree`; replay it with ApplySwap. Settled nodes are
/// never moved again, so only the necessary fragment is restructured — an
/// existing order is reused rather than re-sorted from scratch.
std::vector<int> PlanRestructure(const FTree& tree,
                                 const std::vector<int>& o_nodes,
                                 const std::vector<int>& g_nodes);

/// The enumeration visit order realising order-by `o_nodes` then any order
/// on the rest: the o-nodes in list order followed by the remaining live
/// nodes in topological order. Requires SupportsOrder(tree, o_nodes).
std::vector<int> OrderedVisitSequence(const FTree& tree,
                                      const std::vector<int>& o_nodes);

}  // namespace fdb

#endif  // FDB_CORE_ORDER_H_
