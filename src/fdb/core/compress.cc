#include "fdb/core/compress.h"

#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fdb {
namespace {

class Compressor {
 public:
  explicit Compressor(FactArena& arena) : arena_(arena) {}

  FactPtr Compress(FactPtr node) {
    auto done = done_.find(node);
    if (done != done_.end()) return done->second;

    // Compress children first, then canonicalise this node by key.
    FactBuilder out;
    out.values.assign(node->values.begin(), node->values.end());
    out.children.reserve(node->children.size());
    for (FactPtr c : node->children) {
      out.children.push_back(Compress(c));
    }
    std::string key = KeyOf(out);
    auto canon = canon_.find(key);
    FactPtr result;
    if (canon != canon_.end()) {
      result = canon->second;
    } else {
      result = out.Finish(arena_);
      canon_.emplace(std::move(key), result);
    }
    done_.emplace(node, result);
    return result;
  }

 private:
  // Children are canonical by construction, so their addresses identify
  // them; together with the raw value bits this keys structural equality.
  static std::string KeyOf(const FactBuilder& b) {
    std::string key;
    key.reserve(b.values.size() * sizeof(uint64_t) +
                b.children.size() * sizeof(FactPtr) + 1);
    for (const ValueRef& v : b.values) {
      uint64_t bits = v.bits();
      key.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
    }
    key.push_back('\x1e');
    for (FactPtr c : b.children) {
      key.append(reinterpret_cast<const char*>(&c), sizeof(c));
    }
    return key;
  }

  FactArena& arena_;
  std::unordered_map<const FactNode*, FactPtr> done_;
  std::unordered_map<std::string, FactPtr> canon_;
};

int64_t CountStoredRec(const FactNode* n,
                       std::unordered_set<const FactNode*>* seen) {
  if (!seen->insert(n).second) return 0;
  int64_t total = static_cast<int64_t>(n->values.size());
  for (FactPtr c : n->children) {
    total += CountStoredRec(c, seen);
  }
  return total;
}

}  // namespace

void CompressInPlace(Factorisation* f) {
  // Compression rebuilds every reachable node, so the result lives in a
  // fresh arena and drops the (possibly much larger) source arena —
  // ReplaceArena also resets the generational-compaction watermark.
  auto arena = std::make_shared<FactArena>();
  Compressor c(*arena);
  for (FactPtr& root : f->mutable_roots()) {
    if (root != nullptr) root = c.Compress(root);
  }
  f->ReplaceArena(std::move(arena));
}

int64_t CountStoredSingletons(const Factorisation& f) {
  std::unordered_set<const FactNode*> seen;
  int64_t total = 0;
  for (FactPtr r : f.roots()) {
    if (r != nullptr) total += CountStoredRec(r, &seen);
  }
  return total;
}

}  // namespace fdb
