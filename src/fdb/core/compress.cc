#include "fdb/core/compress.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace fdb {
namespace {

class Compressor {
 public:
  FactPtr Compress(const FactPtr& node) {
    auto done = done_.find(node.get());
    if (done != done_.end()) return done->second;

    // Compress children first, then canonicalise this node by key.
    auto out = std::make_shared<FactNode>();
    out->values = node->values;
    out->children.reserve(node->children.size());
    for (const FactPtr& c : node->children) {
      out->children.push_back(Compress(c));
    }
    std::string key = KeyOf(*out);
    auto canon = canon_.find(key);
    FactPtr result;
    if (canon != canon_.end()) {
      result = canon->second;
    } else {
      result = out;
      canon_.emplace(std::move(key), result);
    }
    done_.emplace(node.get(), result);
    return result;
  }

 private:
  // Children are canonical by construction, so their addresses identify
  // them; together with the value list this keys structural equality.
  static std::string KeyOf(const FactNode& n) {
    std::ostringstream os;
    for (const Value& v : n.values) os << v << '\x1f';
    os << '\x1e';
    for (const FactPtr& c : n.children) os << c.get() << '\x1f';
    return os.str();
  }

  std::unordered_map<const FactNode*, FactPtr> done_;
  std::unordered_map<std::string, FactPtr> canon_;
};

int64_t CountStoredRec(const FactNode* n,
                       std::unordered_set<const FactNode*>* seen) {
  if (!seen->insert(n).second) return 0;
  int64_t total = static_cast<int64_t>(n->values.size());
  for (const FactPtr& c : n->children) {
    total += CountStoredRec(c.get(), seen);
  }
  return total;
}

}  // namespace

void CompressInPlace(Factorisation* f) {
  Compressor c;
  for (FactPtr& root : f->mutable_roots()) {
    if (root != nullptr) root = c.Compress(root);
  }
}

int64_t CountStoredSingletons(const Factorisation& f) {
  std::unordered_set<const FactNode*> seen;
  int64_t total = 0;
  for (const FactPtr& r : f.roots()) {
    if (r != nullptr) total += CountStoredRec(r.get(), &seen);
  }
  return total;
}

}  // namespace fdb
