#include "fdb/core/stats.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace fdb {
namespace {

void Walk(const FTree& tree, int node, const FactNode& n,
          std::unordered_map<int, FactNodeStats>* acc) {
  FactNodeStats& s = (*acc)[node];
  s.node = node;
  s.unions += 1;
  s.singletons += n.size();
  s.max_union = std::max<int64_t>(s.max_union, n.size());
  int k = static_cast<int>(tree.children(node).size());
  for (int i = 0; i < n.size(); ++i) {
    for (int c = 0; c < k; ++c) {
      Walk(tree, tree.children(node)[c], *n.child(i, k, c), acc);
    }
  }
}

void WalkDistinct(const FTree& tree, int node, const FactNode& n,
                  std::unordered_set<const FactNode*>* seen,
                  FactFootprint* fp) {
  if (!seen->insert(&n).second) return;
  fp->unions += 1;
  fp->singletons += n.size();
  int k = static_cast<int>(tree.children(node).size());
  for (int i = 0; i < n.size(); ++i) {
    for (int c = 0; c < k; ++c) {
      WalkDistinct(tree, tree.children(node)[c], *n.child(i, k, c), seen, fp);
    }
  }
}

}  // namespace

std::vector<FactNodeStats> ComputeFactStats(const Factorisation& f) {
  std::unordered_map<int, FactNodeStats> acc;
  for (size_t r = 0; r < f.roots().size(); ++r) {
    if (f.roots()[r] != nullptr) {
      Walk(f.tree(), f.tree().roots()[r], *f.roots()[r], &acc);
    }
  }
  std::vector<FactNodeStats> out;
  for (int n : f.tree().TopologicalOrder()) {
    FactNodeStats s = acc.count(n) ? acc[n] : FactNodeStats{n, 0, 0, 0, 0};
    if (s.unions > 0) {
      s.avg_union = static_cast<double>(s.singletons) /
                    static_cast<double>(s.unions);
    }
    out.push_back(s);
  }
  return out;
}

FactFootprint ComputeFootprint(const Factorisation& f) {
  FactFootprint fp;
  std::unordered_set<const FactNode*> seen;
  for (size_t r = 0; r < f.roots().size(); ++r) {
    if (f.roots()[r] != nullptr) {
      WalkDistinct(f.tree(), f.tree().roots()[r], *f.roots()[r], &seen, &fp);
    }
  }
  fp.tuples = f.CountTuples();
  fp.flat_values =
      fp.tuples * static_cast<int64_t>(f.OutputSchema().attrs().size());
  if (f.arena() != nullptr) {
    fp.arena_bytes = static_cast<int64_t>(f.arena()->bytes_used());
  }
  return fp;
}

std::string FactStatsToString(const Factorisation& f,
                              const AttributeRegistry& reg) {
  std::ostringstream os;
  os << std::left << std::setw(28) << "node" << std::right << std::setw(10)
     << "unions" << std::setw(12) << "singletons" << std::setw(8) << "max"
     << std::setw(8) << "avg" << "\n";
  for (const FactNodeStats& s : ComputeFactStats(f)) {
    const FTreeNode& nd = f.tree().node(s.node);
    std::string label;
    if (nd.is_aggregate()) {
      label = reg.Name(nd.agg->id);
    } else {
      for (size_t i = 0; i < nd.attrs.size(); ++i) {
        if (i) label += "=";
        label += reg.Name(nd.attrs[i]);
      }
    }
    os << std::left << std::setw(28) << label << std::right << std::setw(10)
       << s.unions << std::setw(12) << s.singletons << std::setw(8)
       << s.max_union << std::setw(8) << std::fixed << std::setprecision(1)
       << s.avg_union << "\n";
  }
  return os.str();
}

}  // namespace fdb
