#include "fdb/core/io.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace fdb {
namespace {

constexpr char kMagic[] = "FDB-FACT 1";

[[noreturn]] void Corrupt(const std::string& what) {
  throw std::invalid_argument("ReadFactorisation: " + what);
}

// --- value encoding: n | i<int> | d<double> | s<len>:<bytes> -------------

void WriteValue(const Value& v, std::ostream& out) {
  if (v.is_null()) {
    out << "n";
  } else if (v.is_int()) {
    out << "i" << v.as_int();
  } else if (v.is_double()) {
    out << "d" << std::setprecision(std::numeric_limits<double>::max_digits10)
        << v.as_double();
  } else {
    const std::string& s = v.as_string();
    out << "s" << s.size() << ":" << s;
  }
}

// Cursor-based parsing within one line (strings may contain spaces).
// Owns the line: callers routinely pass temporaries.
class Cursor {
 public:
  explicit Cursor(std::string line) : s_(std::move(line)) {}

  void SkipSpace() {
    while (i_ < s_.size() && s_[i_] == ' ') ++i_;
  }

  bool AtEnd() {
    SkipSpace();
    return i_ >= s_.size();
  }

  std::string Token() {
    SkipSpace();
    size_t start = i_;
    while (i_ < s_.size() && s_[i_] != ' ') ++i_;
    if (start == i_) Corrupt("unexpected end of line");
    return s_.substr(start, i_ - start);
  }

  int64_t Int() {
    std::string t = Token();
    try {
      return std::stoll(t);
    } catch (...) {
      Corrupt("expected integer, got '" + t + "'");
    }
  }

  /// A non-negative element count.
  int64_t Count() {
    int64_t n = Int();
    if (n < 0) Corrupt("negative count");
    return n;
  }

  Value ReadValue() {
    SkipSpace();
    if (i_ >= s_.size()) Corrupt("expected value");
    char kind = s_[i_++];
    switch (kind) {
      case 'n':
        return Value();
      case 'i': {
        size_t start = i_;
        while (i_ < s_.size() && s_[i_] != ' ') ++i_;
        try {
          return Value(
              static_cast<int64_t>(std::stoll(s_.substr(start, i_ - start))));
        } catch (...) {
          Corrupt("bad integer value");
        }
      }
      case 'd': {
        size_t start = i_;
        while (i_ < s_.size() && s_[i_] != ' ') ++i_;
        try {
          return Value(std::stod(s_.substr(start, i_ - start)));
        } catch (...) {
          Corrupt("bad double value");
        }
      }
      case 's': {
        size_t start = i_;
        while (i_ < s_.size() && s_[i_] != ':') ++i_;
        if (i_ >= s_.size()) Corrupt("unterminated string length");
        size_t len = 0;
        try {
          len = std::stoull(s_.substr(start, i_ - start));
        } catch (...) {
          Corrupt("bad string length");
        }
        ++i_;  // ':'
        if (len > s_.size() || i_ + len > s_.size()) {
          Corrupt("string runs past end of line");
        }
        std::string payload = s_.substr(i_, len);
        i_ += len;
        return Value(std::move(payload));
      }
      default:
        Corrupt(std::string("unknown value kind '") + kind + "'");
    }
  }

 private:
  std::string s_;
  size_t i_ = 0;
};

std::string NextLine(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) Corrupt("unexpected end of stream");
  return line;
}

}  // namespace

void WriteFactorisation(const Factorisation& f, const AttributeRegistry& reg,
                        std::ostream& out) {
  const FTree& tree = f.tree();
  out << kMagic << "\n";

  // --- f-tree nodes (by id, preserving child order) -----------------------
  out << "nodes " << tree.num_nodes() << "\n";
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const FTreeNode& n = tree.node(i);
    out << "node " << (n.alive ? 1 : 0) << " " << n.parent << " ";
    if (n.is_aggregate()) {
      out << "agg " << static_cast<int>(n.agg->fn) << " "
          << (n.agg->source == kInvalidAttr ? "-" : reg.Name(n.agg->source))
          << " " << reg.Name(n.agg->id) << " " << n.agg->over.size();
      for (AttrId a : n.agg->over) out << " " << reg.Name(a);
    } else {
      out << "atomic " << n.attrs.size();
      for (AttrId a : n.attrs) out << " " << reg.Name(a);
    }
    out << "\n";
    out << "children " << n.children.size();
    for (int c : n.children) out << " " << c;
    out << "\n";
  }
  out << "roots " << tree.roots().size();
  for (int r : tree.roots()) out << " " << r;
  out << "\n";

  out << "edges " << tree.edges().size() << "\n";
  for (const Hyperedge& e : tree.edges()) {
    out << "edge " << std::setprecision(17) << e.weight << " "
        << e.attrs.size();
    for (AttrId a : e.attrs) out << " " << reg.Name(a);
    out << " " << e.name << "\n";
  }

  // --- data: post-order, shared nodes written once ------------------------
  std::unordered_map<const FactNode*, int64_t> index;
  std::ostringstream body;
  int64_t count = 0;
  auto emit = [&](const FactNode* n, auto&& self) -> int64_t {
    auto it = index.find(n);
    if (it != index.end()) return it->second;
    std::vector<int64_t> kids;
    kids.reserve(n->children.size());
    for (FactPtr c : n->children) kids.push_back(self(c, self));
    int64_t id = count++;
    index.emplace(n, id);
    body << "f " << n->values.size();
    for (const ValueRef& v : n->values) {
      body << " ";
      WriteValue(v.ToValue(), body);
    }
    body << " " << kids.size();
    for (int64_t k : kids) body << " " << k;
    body << "\n";
    return id;
  };
  std::vector<int64_t> root_ids;
  for (FactPtr r : f.roots()) {
    root_ids.push_back(r ? emit(r, emit) : -1);
  }
  out << "facts " << count << "\n" << body.str();
  out << "rootdata " << root_ids.size();
  for (int64_t r : root_ids) out << " " << r;
  out << "\n";
}

Factorisation ReadFactorisation(std::istream& in, AttributeRegistry* reg) {
  if (NextLine(in) != kMagic) Corrupt("bad magic line");

  Cursor header(NextLine(in));
  if (header.Token() != "nodes") Corrupt("expected 'nodes'");
  int64_t num_nodes = header.Count();

  // Parse node records into FTree::RestoredNodes; the rebuild-and-validate
  // step is shared with the snapshot reader (FTree::Restore). Grown per
  // record read, so a corrupt count fails at EOF instead of attempting a
  // giant allocation up front.
  std::vector<FTree::RestoredNode> raw;
  for (int64_t i = 0; i < num_nodes; ++i) {
    Cursor c(NextLine(in));
    if (c.Token() != "node") Corrupt("expected 'node'");
    FTree::RestoredNode& n = raw.emplace_back();
    n.alive = c.Int() != 0;
    int64_t parent = c.Int();
    if (parent < -1 || parent >= num_nodes) Corrupt("parent out of range");
    n.parent = static_cast<int>(parent);
    std::string kind = c.Token();
    if (kind == "agg") {
      AggregateLabel& agg = n.agg.emplace();
      int64_t fn = c.Int();
      if (fn < 0 || fn > static_cast<int64_t>(AggFn::kMax)) {
        Corrupt("unknown aggregate function");
      }
      agg.fn = static_cast<AggFn>(fn);
      std::string src = c.Token();
      agg.source = src == "-" ? kInvalidAttr : reg->Intern(src);
      agg.id = reg->Intern(c.Token());
      int64_t over = c.Count();
      for (int64_t k = 0; k < over; ++k) {
        agg.over.push_back(reg->Intern(c.Token()));
      }
    } else if (kind == "atomic") {
      int64_t na = c.Count();
      for (int64_t k = 0; k < na; ++k) {
        n.attrs.push_back(reg->Intern(c.Token()));
      }
    } else {
      Corrupt("unknown node kind '" + kind + "'");
    }
    Cursor cc(NextLine(in));
    if (cc.Token() != "children") Corrupt("expected 'children'");
    int64_t nc = cc.Count();
    for (int64_t k = 0; k < nc; ++k) {
      int64_t child = cc.Int();
      if (child < 0 || child >= num_nodes) Corrupt("child id out of range");
      n.children.push_back(static_cast<int>(child));
    }
  }
  Cursor roots_line(NextLine(in));
  if (roots_line.Token() != "roots") Corrupt("expected 'roots'");
  int64_t nroots = roots_line.Count();
  std::vector<int> root_nodes;
  for (int64_t k = 0; k < nroots; ++k) {
    int64_t r = roots_line.Int();
    if (r < 0 || r >= num_nodes) Corrupt("root id out of range");
    root_nodes.push_back(static_cast<int>(r));
  }

  FTree tree = FTree::Restore(std::move(raw), std::move(root_nodes), reg);

  Cursor edges_line(NextLine(in));
  if (edges_line.Token() != "edges") Corrupt("expected 'edges'");
  int64_t nedges = edges_line.Count();
  for (int64_t e = 0; e < nedges; ++e) {
    std::string line = NextLine(in);
    Cursor c(line);
    if (c.Token() != "edge") Corrupt("expected 'edge'");
    Hyperedge edge;
    try {
      edge.weight = std::stod(c.Token());
    } catch (...) {
      Corrupt("bad edge weight");
    }
    int64_t na = c.Count();
    for (int64_t k = 0; k < na; ++k) {
      edge.attrs.push_back(reg->Intern(c.Token()));
    }
    while (!c.AtEnd()) {
      if (!edge.name.empty()) edge.name += " ";
      edge.name += c.Token();
    }
    tree.AddEdge(std::move(edge));
  }

  Cursor facts_line(NextLine(in));
  if (facts_line.Token() != "facts") Corrupt("expected 'facts'");
  int64_t nfacts = facts_line.Count();
  auto arena = std::make_shared<FactArena>();
  ValueDict& dict = ValueDict::Default();
  // Parse all fact records first and bulk-intern their string cells in
  // sorted order (file order is per-union, not global, so encoding as we
  // parse would pay one out-of-order rank shift per new string).
  struct RawFact {
    std::vector<Value> values;
    std::vector<int64_t> kids;
  };
  std::vector<RawFact> raw_facts;
  std::vector<std::string_view> strs;
  for (int64_t i = 0; i < nfacts; ++i) {
    Cursor c(NextLine(in));
    if (c.Token() != "f") Corrupt("expected 'f'");
    RawFact& rf = raw_facts.emplace_back();
    int64_t nv = c.Count();
    for (int64_t k = 0; k < nv; ++k) rf.values.push_back(c.ReadValue());
    int64_t nc = c.Count();
    for (int64_t k = 0; k < nc; ++k) {
      int64_t ref = c.Int();
      if (ref < 0 || ref >= i) Corrupt("fact reference out of range");
      rf.kids.push_back(ref);
    }
  }
  // Collected only once all records are parsed: growing raw_facts above
  // would invalidate string_views into moved Values.
  for (const RawFact& rf : raw_facts) {
    for (const Value& v : rf.values) {
      if (v.is_string()) strs.push_back(v.as_string());
    }
  }
  if (!strs.empty()) dict.InternBulk(std::move(strs));
  std::vector<FactPtr> facts;
  facts.reserve(static_cast<size_t>(nfacts));
  FactBuilder node;
  for (const RawFact& rf : raw_facts) {
    node.clear();
    for (const Value& v : rf.values) node.values.push_back(dict.Encode(v));
    for (int64_t ref : rf.kids) node.children.push_back(facts[ref]);
    facts.push_back(node.Finish(*arena));
  }
  Cursor rd(NextLine(in));
  if (rd.Token() != "rootdata") Corrupt("expected 'rootdata'");
  int64_t nrd = rd.Count();
  std::vector<FactPtr> roots;
  for (int64_t k = 0; k < nrd; ++k) {
    int64_t ref = rd.Int();
    if (ref < 0) {
      roots.push_back(FactArena::EmptyNode());
    } else if (ref >= static_cast<int64_t>(facts.size())) {
      Corrupt("root reference out of range");
    } else {
      roots.push_back(facts[ref]);
    }
  }

  Factorisation f(std::move(tree), std::move(roots), std::move(arena));
  std::string why;
  if (!f.Validate(&why)) Corrupt("inconsistent factorisation: " + why);
  return f;
}

void SaveFactorisation(const Factorisation& f, const AttributeRegistry& reg,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::invalid_argument("SaveFactorisation: cannot open " + path);
  }
  WriteFactorisation(f, reg, out);
}

Factorisation LoadFactorisation(const std::string& path,
                                AttributeRegistry* reg) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("LoadFactorisation: cannot open " + path);
  }
  return ReadFactorisation(in, reg);
}

}  // namespace fdb
