#ifndef FDB_CORE_STATS_H_
#define FDB_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Per-f-tree-node statistics of a factorisation: how many union instances
/// the node has, how many singletons they hold, and the largest/average
/// union size. These are the exact quantities the size bounds of [22]
/// approximate, and what the cost metric (optimizer/cost.h) predicts.
struct FactNodeStats {
  int node = -1;
  int64_t unions = 0;
  int64_t singletons = 0;
  int64_t max_union = 0;
  double avg_union = 0.0;
};

/// Computes statistics for every live node, in topological order.
std::vector<FactNodeStats> ComputeFactStats(const Factorisation& f);

/// Renders a small table, e.g. for EXPLAIN-style diagnostics.
std::string FactStatsToString(const Factorisation& f,
                              const AttributeRegistry& reg);

}  // namespace fdb

#endif  // FDB_CORE_STATS_H_
