#ifndef FDB_CORE_STATS_H_
#define FDB_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Per-f-tree-node statistics of a factorisation: how many union instances
/// the node has, how many singletons they hold, and the largest/average
/// union size. These are the exact quantities the size bounds of [22]
/// approximate, and what the cost metric (optimizer/cost.h) predicts.
struct FactNodeStats {
  int node = -1;
  int64_t unions = 0;
  int64_t singletons = 0;
  int64_t max_union = 0;
  double avg_union = 0.0;
};

/// Computes statistics for every live node, in topological order.
std::vector<FactNodeStats> ComputeFactStats(const Factorisation& f);

/// Whole-factorisation size summary for observability: distinct union
/// nodes and singletons (DAG-aware — shared subexpressions counted once),
/// the represented flat relation's tuple/value counts, arena bytes, and
/// the paper's headline compression ratio (flat values per stored
/// singleton).
struct FactFootprint {
  int64_t unions = 0;      ///< distinct union nodes reachable from the roots
  int64_t singletons = 0;  ///< distinct stored singletons (size measure)
  int64_t tuples = 0;      ///< tuples in the represented relation
  int64_t flat_values = 0; ///< tuples x output arity
  int64_t arena_bytes = 0; ///< bytes used by the attached arena

  double CompressionRatio() const {
    return singletons == 0
               ? 0.0
               : static_cast<double>(flat_values) /
                     static_cast<double>(singletons);
  }
};

FactFootprint ComputeFootprint(const Factorisation& f);

/// Renders a small table, e.g. for EXPLAIN-style diagnostics.
std::string FactStatsToString(const Factorisation& f,
                              const AttributeRegistry& reg);

}  // namespace fdb

#endif  // FDB_CORE_STATS_H_
