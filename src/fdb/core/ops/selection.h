#ifndef FDB_CORE_OPS_SELECTION_H_
#define FDB_CORE_OPS_SELECTION_H_

#include "fdb/core/factorisation.h"

namespace fdb {

/// The merge selection operator: equates the attribute classes of sibling
/// nodes `a` and `b` (children of the same parent, or both roots), merging
/// `b` into `a`. Implemented as a sorted-list intersection of the two
/// unions; entries whose intersection is empty are pruned.
void ApplyMerge(Factorisation* f, int a, int b);

/// The absorb selection operator: equates the class of node `b` with that of
/// its ancestor `a`; within each branch, `b`'s union is restricted to the
/// value bound at `a` and `b`'s children are spliced into `b`'s parent.
void ApplyAbsorb(Factorisation* f, int a, int b);

/// Selection with a constant, σ_{A θ c}: filters the union at the node of
/// attribute `A` (`node`), pruning emptied branches.
void ApplySelectConst(Factorisation* f, int node, CmpOp op, const Value& c);

}  // namespace fdb

#endif  // FDB_CORE_OPS_SELECTION_H_
