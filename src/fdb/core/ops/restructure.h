#ifndef FDB_CORE_OPS_RESTRUCTURE_H_
#define FDB_CORE_OPS_RESTRUCTURE_H_

#include <functional>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Rewrites the union at f-tree node `target` in every instance reachable
/// from `root_node`/`root`. `fn` maps each old union to its replacement; a
/// replacement with no values prunes the enclosing entry, and pruning
/// propagates upwards (an emptied root signals the empty relation).
/// Untouched subtrees are shared, not copied; new nodes (including those
/// built by `fn`) must be allocated from `arena`.
FactPtr RewriteAtNode(const FTree& tree, int root_node, FactPtr root,
                      int target,
                      const std::function<FactPtr(const FactNode&)>& fn,
                      FactArena& arena);

/// Applies RewriteAtNode within the factorisation containing `target`,
/// updating the appropriate root in place. Call *before* mutating the tree.
/// `fn` should allocate from f->ArenaForWrite() (stable for the duration of
/// the call).
void RewriteInFactorisation(
    Factorisation* f, int target,
    const std::function<FactPtr(const FactNode&)>& fn);

/// Removes a leaf node from both tree and data (projection; set semantics
/// is preserved because sibling values within a union are distinct).
void ApplyRemoveLeaf(Factorisation* f, int leaf);

/// Renames the aggregate attribute of node `u` to `name` (interned fresh).
void ApplyRename(Factorisation* f, AttributeRegistry* reg, int u,
                 const std::string& name);

}  // namespace fdb

#endif  // FDB_CORE_OPS_RESTRUCTURE_H_
