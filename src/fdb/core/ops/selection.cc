#include "fdb/core/ops/selection.h"

#include <algorithm>
#include <stdexcept>

#include "fdb/core/ops/restructure.h"

namespace fdb {
namespace {

// Intersects unions `na` and `nb` (sorted); the result keeps a's children
// slots first, then b's, matching FTree::MergeSiblings.
FactPtr IntersectUnions(const FactNode& na, int ka, const FactNode& nb,
                        int kb, FactArena& arena) {
  FactBuilder out;
  size_t cap = std::min(na.values.size(), nb.values.size());
  out.values.reserve(cap);
  out.children.reserve(cap * (ka + kb));
  size_t i = 0, j = 0;
  while (i < na.values.size() && j < nb.values.size()) {
    auto c = na.values[i] <=> nb.values[j];
    if (c == std::strong_ordering::less) {
      ++i;
    } else if (c == std::strong_ordering::greater) {
      ++j;
    } else {
      out.values.push_back(na.values[i]);
      for (int s = 0; s < ka; ++s) {
        out.children.push_back(na.child(static_cast<int>(i), ka, s));
      }
      for (int s = 0; s < kb; ++s) {
        out.children.push_back(nb.child(static_cast<int>(j), kb, s));
      }
      ++i;
      ++j;
    }
  }
  return out.Finish(arena);
}

}  // namespace

void ApplyMerge(Factorisation* f, int a, int b) {
  const FTree& tree = f->tree();
  if (tree.parent(a) != tree.parent(b)) {
    throw std::invalid_argument("ApplyMerge: nodes are not siblings");
  }
  const int ka = static_cast<int>(tree.children(a).size());
  const int kb = static_cast<int>(tree.children(b).size());
  int parent = tree.parent(a);
  FactArena& arena = f->ArenaForWrite();

  if (parent < 0) {
    // Both roots: intersect the two root unions of the forest product.
    int sa = tree.SlotOf(a), sb = tree.SlotOf(b);
    FactPtr merged =
        IntersectUnions(*f->roots()[sa], ka, *f->roots()[sb], kb, arena);
    auto& roots = f->mutable_roots();
    roots[sa] = merged;
    roots.erase(roots.begin() + sb);
  } else {
    int sa = tree.SlotOf(a), sb = tree.SlotOf(b);
    int kp = static_cast<int>(tree.children(parent).size());
    RewriteInFactorisation(f, parent, [&](const FactNode& np) {
      FactBuilder out;
      for (int i = 0; i < np.size(); ++i) {
        FactPtr merged = IntersectUnions(*np.child(i, kp, sa), ka,
                                         *np.child(i, kp, sb), kb, arena);
        if (merged->values.empty()) continue;  // prune this entry
        out.values.push_back(np.values[i]);
        for (int c = 0; c < kp; ++c) {
          if (c == sa) {
            out.children.push_back(merged);
          } else if (c != sb) {
            out.children.push_back(np.child(i, kp, c));
          }
        }
      }
      return out.Finish(arena);
    });
  }
  f->mutable_tree().MergeSiblings(a, b);
}

namespace {

// Restricts the chain below `node` (current union `n`) so that the union at
// the final chain node keeps only the entry with value `bound`; that entry's
// children are returned through *spliced and the union itself disappears
// (its slot is erased in its parent, and the children are appended there).
// Returns nullptr when the bound value is absent (prune).
FactPtr RestrictRec(const FTree& tree, int node, const FactNode& n,
                    const std::vector<int>& chain, size_t depth,
                    ValueRef bound, FactArena& arena) {
  int k = static_cast<int>(tree.children(node).size());
  int slot = chain[depth];
  int next = tree.children(node)[slot];
  FactBuilder out;
  if (depth + 1 == chain.size()) {
    // `next` is b itself: select `bound` in each child union at `slot` and
    // splice its children into this entry (erase slot, append b's children).
    int kb = static_cast<int>(tree.children(next).size());
    for (int i = 0; i < n.size(); ++i) {
      const FactNode& ub = *n.child(i, k, slot);
      auto it = std::lower_bound(ub.values.begin(), ub.values.end(), bound);
      if (it == ub.values.end() || !(*it == bound)) continue;
      int j = static_cast<int>(it - ub.values.begin());
      out.values.push_back(n.values[i]);
      for (int c = 0; c < k; ++c) {
        if (c != slot) out.children.push_back(n.child(i, k, c));
      }
      for (int c = 0; c < kb; ++c) {
        out.children.push_back(ub.child(j, kb, c));
      }
    }
  } else {
    for (int i = 0; i < n.size(); ++i) {
      FactPtr r = RestrictRec(tree, next, *n.child(i, k, slot), chain,
                              depth + 1, bound, arena);
      if (r == nullptr || r->values.empty()) continue;
      out.values.push_back(n.values[i]);
      for (int c = 0; c < k; ++c) {
        out.children.push_back(c == slot ? r : n.child(i, k, c));
      }
    }
  }
  return out.Finish(arena);
}

}  // namespace

void ApplyAbsorb(Factorisation* f, int a, int b) {
  const FTree& tree = f->tree();
  if (!tree.IsAncestor(a, b)) {
    throw std::invalid_argument("ApplyAbsorb: b is not a descendant of a");
  }
  // Slot chain from a (exclusive) down to b (inclusive).
  std::vector<int> nodes;
  for (int n = b; n != a; n = tree.parent(n)) nodes.push_back(n);
  std::reverse(nodes.begin(), nodes.end());
  std::vector<int> chain;
  for (int n : nodes) chain.push_back(tree.SlotOf(n));

  const int ka = static_cast<int>(tree.children(a).size());
  FactArena& arena = f->ArenaForWrite();
  RewriteInFactorisation(f, a, [&](const FactNode& ua) -> FactPtr {
    FactBuilder out;
    for (int i = 0; i < ua.size(); ++i) {
      // Bind b to the value of a in this entry and restrict downwards.
      ValueRef bound = ua.values[i];
      // Build a one-entry view of this a-entry to reuse RestrictRec's frame:
      // directly handle the first chain level here instead.
      int slot = chain[0];
      int next = tree.children(a)[slot];
      FactPtr r;
      if (chain.size() == 1) {
        // b is a direct child of a.
        const FactNode& ub = *ua.child(i, ka, slot);
        auto it =
            std::lower_bound(ub.values.begin(), ub.values.end(), bound);
        if (it == ub.values.end() || !(*it == bound)) continue;
        int j = static_cast<int>(it - ub.values.begin());
        int kb = static_cast<int>(tree.children(b).size());
        out.values.push_back(bound);
        for (int c = 0; c < ka; ++c) {
          if (c != slot) out.children.push_back(ua.child(i, ka, c));
        }
        for (int c = 0; c < kb; ++c) {
          out.children.push_back(ub.child(j, kb, c));
        }
        continue;
      }
      std::vector<int> rest(chain.begin() + 1, chain.end());
      r = RestrictRec(tree, next, *ua.child(i, ka, slot), rest, 0, bound,
                      arena);
      if (r == nullptr || r->values.empty()) continue;
      out.values.push_back(bound);
      for (int c = 0; c < ka; ++c) {
        out.children.push_back(c == slot ? r : ua.child(i, ka, c));
      }
    }
    return out.Finish(arena);
  });
  f->mutable_tree().AbsorbDescendant(a, b);
}

void ApplySelectConst(Factorisation* f, int node, CmpOp op, const Value& c) {
  const FTree& tree = f->tree();
  int k = static_cast<int>(tree.children(node).size());
  // Interning the constant (rather than a lookup) keeps inequality
  // comparisons exact for strings the dictionary has not seen yet.
  ValueRef cref = f->dict().Encode(c);
  FactArena& arena = f->ArenaForWrite();
  RewriteInFactorisation(f, node, [&](const FactNode& n) {
    FactBuilder out;
    for (int i = 0; i < n.size(); ++i) {
      if (!EvalCmpRef(n.values[i], op, cref)) continue;
      out.values.push_back(n.values[i]);
      for (int s = 0; s < k; ++s) out.children.push_back(n.child(i, k, s));
    }
    return out.Finish(arena);
  });
}

}  // namespace fdb
