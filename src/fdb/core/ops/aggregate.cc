#include "fdb/core/ops/aggregate.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "fdb/core/ops/restructure.h"
#include "fdb/exec/task_pool.h"

namespace fdb {
namespace {

[[noreturn]] void BadComposition(const std::string& what) {
  throw std::invalid_argument("aggregation: invalid composition: " + what);
}

bool IsCarrierNode(const FTreeNode& nd, const AggTask& task) {
  if (task.fn == AggFn::kCount) return false;
  if (nd.is_aggregate()) {
    return nd.agg->fn == task.fn && nd.agg->source == task.source;
  }
  return std::binary_search(nd.attrs.begin(), nd.attrs.end(), task.source);
}

// How one subtree node contributes to the multiplicity product during the
// count/sum recursions (the composition rules of Prop. 2, generalised to the
// sibling representation of composite aggregates, where leaves created by
// the same operator share an identical `over` set: the count leaf carries
// the multiplicity of that set and its siblings contribute factor 1).
enum class Factor {
  kOne,    // atomic node, or an aggregate whose multiplicity is owned
           // elsewhere (a count sibling with equal `over`, or the carrier)
  kValue,  // count node: multiply by the stored count
};

// The validated evaluation plan for one task over one subtree.
struct Analysis {
  int carrier = -1;  // node id for sum/min/max; -1 for count
  std::unordered_map<int, Factor> factor;  // per aggregate node id
};

// Validates `task` over the subtree at `u` and computes the factor map.
// Throws std::invalid_argument on compositions outside Prop. 2.
// Validates `task` over the disjoint union of the subtrees at `roots` (a
// product of independent fragments) and computes the factor map. Composite
// sibling leaves may be spread across different roots, so the carrier/count
// ownership rules must be applied globally, not per root.
Analysis Analyze(const FTree& tree, const std::vector<int>& roots,
                 const AggTask& task) {
  Analysis a;
  std::vector<int> nodes;
  for (int r : roots) {
    std::vector<int> sub = tree.SubtreeNodes(r);
    nodes.insert(nodes.end(), sub.begin(), sub.end());
  }

  if (task.fn != AggFn::kCount) {
    for (int n : nodes) {
      if (IsCarrierNode(tree.node(n), task)) {
        if (a.carrier >= 0) BadComposition("multiple carrier nodes");
        a.carrier = n;
      }
    }
    if (a.carrier < 0) {
      BadComposition(AggFnName(task.fn) + ": source attribute not in subtree");
    }
  }
  if (task.fn == AggFn::kMin || task.fn == AggFn::kMax) {
    // Min/max ignore multiplicities entirely; all other nodes are ignored.
    for (int n : nodes) a.factor[n] = Factor::kOne;
    return a;
  }

  // For count and sum, every original attribute's multiplicity must be
  // accounted for exactly once: by its atomic node, by a count node's
  // `over` set, or (for sum) by the carrier itself.
  const std::vector<AttrId> carrier_over =
      a.carrier >= 0 && tree.node(a.carrier).is_aggregate()
          ? tree.node(a.carrier).agg->over
          : std::vector<AttrId>{};
  std::vector<AttrId> covered;
  std::vector<std::vector<AttrId>> count_overs;
  for (int n : nodes) {
    const FTreeNode& nd = tree.node(n);
    if (!nd.is_aggregate()) {
      a.factor[n] = Factor::kOne;
      covered.insert(covered.end(), nd.attrs.begin(), nd.attrs.end());
      continue;
    }
    if (n == a.carrier) {
      covered.insert(covered.end(), nd.agg->over.begin(), nd.agg->over.end());
      continue;
    }
    if (nd.agg->fn == AggFn::kCount) {
      // A count node whose range equals the carrier's is a composite
      // sibling: the carrier already owns that multiplicity.
      if (!carrier_over.empty() && nd.agg->over == carrier_over) {
        a.factor[n] = Factor::kOne;
      } else {
        a.factor[n] = Factor::kValue;
        covered.insert(covered.end(), nd.agg->over.begin(),
                       nd.agg->over.end());
        count_overs.push_back(nd.agg->over);
      }
      continue;
    }
    // A non-count aggregate node that is not the carrier: its multiplicity
    // must be owned by a count sibling with an identical range or by the
    // carrier; otherwise the composition loses multiplicities (Prop. 2).
    a.factor[n] = Factor::kOne;
    bool owned = !carrier_over.empty() && nd.agg->over == carrier_over;
    for (int m : nodes) {
      const FTreeNode& md = tree.node(m);
      if (m != n && md.is_aggregate() && md.agg->fn == AggFn::kCount &&
          md.agg->over == nd.agg->over) {
        owned = true;
      }
    }
    if (!owned) {
      BadComposition(AggFnName(task.fn) + " over a " +
                     AggFnName(nd.agg->fn) + " node with uncounted range");
    }
  }
  // Coverage must be exact and disjoint.
  std::sort(covered.begin(), covered.end());
  if (std::adjacent_find(covered.begin(), covered.end()) != covered.end()) {
    BadComposition("attribute multiplicity counted twice");
  }
  std::vector<AttrId> original;
  for (int r : roots) {
    std::vector<AttrId> sub = tree.SubtreeOriginalAttrs(r);
    original.insert(original.end(), sub.begin(), sub.end());
  }
  std::sort(original.begin(), original.end());
  original.erase(std::unique(original.begin(), original.end()),
                 original.end());
  if (covered != original) {
    BadComposition("attribute multiplicities not fully covered");
  }
  return a;
}

// Dense (per-node-id) rendering of an Analysis: no hash lookups or
// ancestor walks inside the per-group evaluation recursions. The view is
// non-owning; DenseTables below holds the storage.
struct DenseAnalysis {
  int carrier = -1;
  const uint8_t* is_value = nullptr;  // count nodes contributing their value
  const int* cstar = nullptr;  // child slot towards the carrier, or -1
};

struct DenseTables {
  std::vector<uint8_t> is_value;
  std::vector<int> cstar;

  DenseAnalysis View(int carrier) const {
    return {carrier, is_value.data(), cstar.data()};
  }
};

DenseTables MakeDense(const FTree& tree, const Analysis& a) {
  DenseTables d;
  d.is_value.assign(tree.num_nodes(), 0);
  for (const auto& [node, f] : a.factor) {
    if (f == Factor::kValue) d.is_value[node] = 1;
  }
  d.cstar.assign(tree.num_nodes(), -1);
  for (int x = a.carrier; x >= 0 && tree.parent(x) >= 0; x = tree.parent(x)) {
    d.cstar[tree.parent(x)] = tree.SlotOf(x);
  }
  return d;
}

int64_t CountRec(const FTree& tree, int node, const FactNode& n,
                 const DenseAnalysis& a);

// One entry's multiplicity product. Shared by the recursive loop and the
// chunked top-level reduction so the two bodies cannot drift.
int64_t CountEntry(const FTree& tree, const std::vector<int>& kids, int k,
                   bool use_value, const FactNode& n, int i,
                   const DenseAnalysis& a) {
  int64_t prod = use_value ? n.values[i].as_int() : 1;
  for (int c = 0; c < k && prod != 0; ++c) {
    prod *= CountRec(tree, kids[c], *n.child(i, k, c), a);
  }
  return prod;
}

int64_t CountRec(const FTree& tree, int node, const FactNode& n,
                 const DenseAnalysis& a) {
  const FTreeNode& nd = tree.node(node);
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  bool use_value = nd.is_aggregate() && a.is_value[node];
  int64_t total = 0;
  for (int i = 0; i < n.size(); ++i) {
    total += CountEntry(tree, kids, k, use_value, n, i, a);
  }
  return total;
}

// Ref-native numeric accumulator with the same promotion rules as
// AddValues/MulByCount: the result stays an int iff every operand was one.
struct Num {
  bool is_int = true;
  int64_t i = 0;
  double d = 0;

  static Num OfRef(ValueRef r) {
    if (r.is_int()) return {true, r.as_int(), 0};
    if (!r.is_double()) {
      throw std::invalid_argument("AddValues: non-numeric operand");
    }
    return {false, 0, r.as_double()};
  }
  void AddScaled(const Num& v, int64_t cnt) {
    if (is_int && v.is_int) {
      i += v.i * cnt;
      return;
    }
    double dv = (v.is_int ? static_cast<double>(v.i) : v.d) * cnt;
    if (is_int) {
      d = static_cast<double>(i) + dv;
      is_int = false;
    } else {
      d += dv;
    }
  }
  void Scale(int64_t cnt) {
    if (is_int) {
      i *= cnt;
    } else {
      d *= cnt;
    }
  }
  Value ToValue() const { return is_int ? Value(i) : Value(d); }
};

// Fixed reduction granularity for double sums: partials are accumulated
// per 256-entry chunk and combined in chunk order *everywhere* — the
// serial recursion and the parallel top-level reduction share the same
// association — so a SUM over doubles is bit-identical at every thread
// count and on either side of the parallel-dispatch threshold.
constexpr int64_t kAggChunkEntries = 256;

Num SumRec(const FTree& tree, int node, const FactNode& n,
           const DenseAnalysis& a);

// Accumulates one entry's sum contribution into *total: at the carrier,
// vᵢ · Π_c count(child); elsewhere the weighted recursion towards the
// carrier slot. Shared by SumRec and the chunked top-level reduction.
void AddSumEntry(const FTree& tree, const std::vector<int>& kids, int k,
                 bool at_carrier, int cstar, bool use_value,
                 const FactNode& n, int i, const DenseAnalysis& a,
                 Num* total) {
  if (at_carrier) {
    // The children never contain the source.
    int64_t cnt = 1;
    for (int c = 0; c < k; ++c) {
      cnt *= CountRec(tree, kids[c], *n.child(i, k, c), a);
    }
    total->AddScaled(Num::OfRef(n.values[i]), cnt);
    return;
  }
  int64_t w = use_value ? n.values[i].as_int() : 1;
  for (int c = 0; c < k; ++c) {
    if (c != cstar) w *= CountRec(tree, kids[c], *n.child(i, k, c), a);
  }
  total->AddScaled(SumRec(tree, kids[cstar], *n.child(i, k, cstar), a), w);
}

Num SumRec(const FTree& tree, int node, const FactNode& n,
           const DenseAnalysis& a) {
  const FTreeNode& nd = tree.node(node);
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  bool at_carrier = node == a.carrier;
  // Exactly one child subtree contains the carrier below a non-carrier.
  int cstar = at_carrier ? -1 : a.cstar[node];
  if (!at_carrier && cstar < 0) BadComposition("sum: carrier not below node");
  bool use_value = nd.is_aggregate() && a.is_value[node];
  // Accumulate with the fixed chunk association (see kAggChunkEntries):
  // integer sums are exact either way, but double sums must associate
  // identically to the chunked top-level reduction so serial and
  // parallel evaluations agree to the last bit.
  Num total;
  Num chunk;
  int64_t in_chunk = 0;
  for (int i = 0; i < n.size(); ++i) {
    AddSumEntry(tree, kids, k, at_carrier, cstar, use_value, n, i, a,
                &chunk);
    if (++in_chunk == kAggChunkEntries) {
      total.AddScaled(chunk, 1);
      chunk = Num();
      in_chunk = 0;
    }
  }
  if (in_chunk > 0) total.AddScaled(chunk, 1);
  return total;
}

// --- chunked top-level evaluation -----------------------------------------
//
// The per-entry bodies of CountRec/SumRec are independent, so the top
// union of a (potentially huge) part can be reduced in fixed-size chunks
// across TaskPool::Default(). Partials are stored per chunk and combined
// in chunk order, and the chunk boundaries depend only on the data, so
// the result is identical for every thread count — including one, where
// the same chunked loop runs sequentially. Below the size threshold the
// plain recursion runs instead; SumRec shares the chunk association, so
// the threshold is purely a dispatch decision, never a numeric one.

constexpr int64_t kAggParallelMin = 2048;

int64_t CountTop(const FTree& tree, int node, const FactNode& n,
                 const DenseAnalysis& a) {
  int64_t size = n.size();
  if (size < kAggParallelMin) return CountRec(tree, node, n, a);
  const FTreeNode& nd = tree.node(node);
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  bool use_value = nd.is_aggregate() && a.is_value[node];
  std::vector<int64_t> partial((size + kAggChunkEntries - 1) /
                               kAggChunkEntries);
  exec::ParallelForOrSerial(
      size, kAggChunkEntries, /*min_n=*/0,
      [&](int, int64_t lo, int64_t hi) {
        int64_t total = 0;
        for (int64_t i = lo; i < hi; ++i) {
          total += CountEntry(tree, kids, k, use_value, n,
                              static_cast<int>(i), a);
        }
        partial[lo / kAggChunkEntries] = total;
      });
  int64_t total = 0;
  for (int64_t p : partial) total += p;
  return total;
}

ValueRef MinMaxRec(const FTree& tree, int node, const FactNode& n,
                   const DenseAnalysis& a, bool is_min) {
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  if (node == a.carrier) {
    // Unions are sorted, so the extremum is at an end (§4.1 invariant).
    return is_min ? n.values.front() : n.values.back();
  }
  int cstar = a.cstar[node];
  if (cstar < 0) BadComposition("min/max: carrier not below node");
  ValueRef best;
  for (int i = 0; i < n.size(); ++i) {
    ValueRef v =
        MinMaxRec(tree, kids[cstar], *n.child(i, k, cstar), a, is_min);
    if (i == 0) {
      best = v;
    } else if (is_min ? (v < best) : (best < v)) {
      best = v;
    }
  }
  return best;
}

Num SumTop(const FTree& tree, int node, const FactNode& n,
           const DenseAnalysis& a) {
  int64_t size = n.size();
  if (size < kAggParallelMin) return SumRec(tree, node, n, a);
  const FTreeNode& nd = tree.node(node);
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  bool at_carrier = node == a.carrier;
  int cstar = at_carrier ? -1 : a.cstar[node];
  if (!at_carrier && cstar < 0) BadComposition("sum: carrier not below node");
  bool use_value = nd.is_aggregate() && a.is_value[node];
  std::vector<Num> partial((size + kAggChunkEntries - 1) / kAggChunkEntries);
  exec::ParallelForOrSerial(
      size, kAggChunkEntries, /*min_n=*/0,
      [&](int, int64_t lo, int64_t hi) {
        Num total;
        for (int64_t j = lo; j < hi; ++j) {
          AddSumEntry(tree, kids, k, at_carrier, cstar, use_value, n,
                      static_cast<int>(j), a, &total);
        }
        partial[lo / kAggChunkEntries] = total;
      });
  Num total;
  for (const Num& p : partial) total.AddScaled(p, 1);
  return total;
}

ValueRef MinMaxTop(const FTree& tree, int node, const FactNode& n,
                   const DenseAnalysis& a, bool is_min) {
  int64_t size = n.size();
  if (node == a.carrier || size < kAggParallelMin) {
    return MinMaxRec(tree, node, n, a, is_min);
  }
  const std::vector<int>& kids = tree.children(node);
  int k = static_cast<int>(kids.size());
  int cstar = a.cstar[node];
  if (cstar < 0) BadComposition("min/max: carrier not below node");
  std::vector<ValueRef> partial((size + kAggChunkEntries - 1) /
                                kAggChunkEntries);
  exec::ParallelForOrSerial(
      size, kAggChunkEntries, /*min_n=*/0,
      [&](int, int64_t lo, int64_t hi) {
        ValueRef best;
        for (int64_t j = lo; j < hi; ++j) {
          int i = static_cast<int>(j);
          ValueRef v =
              MinMaxRec(tree, kids[cstar], *n.child(i, k, cstar), a, is_min);
          if (j == lo) {
            best = v;
          } else if (is_min ? (v < best) : (best < v)) {
            best = v;
          }
        }
        partial[lo / kAggChunkEntries] = best;
      });
  ValueRef best = partial[0];
  for (size_t p = 1; p < partial.size(); ++p) {
    if (is_min ? (partial[p] < best) : (best < partial[p])) best = partial[p];
  }
  return best;
}

Value Eval(const FTree& tree, int node, const FactNode& n, const AggTask& task,
           const DenseAnalysis& a) {
  switch (task.fn) {
    case AggFn::kCount:
      return Value(CountTop(tree, node, n, a));
    case AggFn::kSum:
      return SumTop(tree, node, n, a).ToValue();
    case AggFn::kMin:
    case AggFn::kMax:
      return MinMaxTop(tree, node, n, a, task.fn == AggFn::kMin).ToValue();
  }
  throw std::logic_error("EvalAggregate: unreachable");
}

}  // namespace

int FindCarrierNode(const FTree& tree, int u, const AggTask& task) {
  int found = -1;
  for (int n : tree.SubtreeNodes(u)) {
    if (IsCarrierNode(tree.node(n), task)) {
      if (found >= 0) BadComposition("multiple carrier nodes");
      found = n;
    }
  }
  return found;
}

void CheckComposable(const FTree& tree, int u, const AggTask& task) {
  Analyze(tree, {u}, task);
}

int64_t EvalCount(const FTree& tree, int node, const FactNode& n) {
  Analysis a = Analyze(tree, {node}, {AggFn::kCount, kInvalidAttr});
  DenseTables t = MakeDense(tree, a);
  return CountTop(tree, node, n, t.View(a.carrier));
}

Value EvalAggregate(const FTree& tree, int node, const FactNode& n,
                    const AggTask& task) {
  Analysis a = Analyze(tree, {node}, task);
  DenseTables t = MakeDense(tree, a);
  return Eval(tree, node, n, task, t.View(a.carrier));
}

Value EvalAggregateProduct(
    const FTree& tree,
    const std::vector<std::pair<int, const FactNode*>>& parts,
    const AggTask& task) {
  std::vector<int> roots;
  for (const auto& [node, n] : parts) roots.push_back(node);
  return ProductAggEvaluator(tree, roots, task).Eval(parts);
}

ProductAggEvaluator::ProductAggEvaluator(const FTree& tree,
                                         const std::vector<int>& part_nodes,
                                         const AggTask& task)
    : tree_(&tree), task_(task) {
  if (part_nodes.empty()) {
    // Aggregate over the empty product {()}: one nullary tuple.
    nullary_ = true;
    if (task.fn != AggFn::kCount) {
      BadComposition("sum/min/max over no attributes");
    }
    return;
  }
  // The parts form a product of independent fragments, but composite
  // sibling leaves (e.g. a sum and its count twin) may be spread across
  // parts, so the ownership analysis must span all of them.
  Analysis a = Analyze(tree, part_nodes, task);
  carrier_ = a.carrier;
  DenseTables dense = MakeDense(tree, a);
  factor_is_value_ = std::move(dense.is_value);
  cstar_ = std::move(dense.cstar);
  if (task.fn != AggFn::kCount) {
    for (size_t p = 0; p < part_nodes.size(); ++p) {
      if (part_nodes[p] == a.carrier ||
          tree.IsAncestor(part_nodes[p], a.carrier)) {
        carrier_part_ = static_cast<int>(p);
      }
    }
    if (carrier_part_ < 0) BadComposition("sum/min/max: source not found");
  }
}

Value ProductAggEvaluator::Eval(
    const std::vector<std::pair<int, const FactNode*>>& parts) const {
  if (nullary_) return Value(static_cast<int64_t>(1));
  // Borrow the precomputed dense tables (no per-group copies).
  DenseAnalysis a{carrier_, factor_is_value_.data(), cstar_.data()};
  switch (task_.fn) {
    case AggFn::kCount: {
      int64_t prod = 1;
      for (const auto& [node, n] : parts) {
        prod *= CountTop(*tree_, node, *n, a);
      }
      return Value(prod);
    }
    case AggFn::kSum: {
      // Exactly one part carries the source; the rest contribute counts.
      Num s = SumTop(*tree_, parts[carrier_part_].first,
                     *parts[carrier_part_].second, a);
      int64_t cnt = 1;
      for (size_t p = 0; p < parts.size(); ++p) {
        if (static_cast<int>(p) == carrier_part_) continue;
        cnt *= CountTop(*tree_, parts[p].first, *parts[p].second, a);
      }
      s.Scale(cnt);
      return s.ToValue();
    }
    case AggFn::kMin:
    case AggFn::kMax: {
      return MinMaxTop(*tree_, parts[carrier_part_].first,
                       *parts[carrier_part_].second, a,
                       task_.fn == AggFn::kMin)
          .ToValue();
    }
  }
  throw std::logic_error("ProductAggEvaluator::Eval: unreachable");
}

namespace {

std::string AggName(const AttributeRegistry& reg, const AggTask& task,
                    const std::vector<AttrId>& over) {
  std::string s = AggFnName(task.fn);
  if (task.source != kInvalidAttr) s += "_" + reg.Name(task.source);
  s += "(";
  for (size_t i = 0; i < over.size(); ++i) {
    if (i) s += ",";
    s += reg.Name(over[i]);
  }
  s += ")";
  return s;
}

AttrId FreshAttr(AttributeRegistry* reg, const std::string& base) {
  if (!reg->Find(base).has_value()) return reg->Intern(base);
  // Suffix seeded by the registry size so finding a free name is O(1) even
  // after millions of aggregate queries (scanning #2, #3, ... from the
  // start is quadratic across a query workload).
  for (int i = reg->size() + 2;; ++i) {
    std::string name = base + "#" + std::to_string(i);
    if (!reg->Find(name).has_value()) return reg->Intern(name);
  }
}

}  // namespace

std::vector<int> ApplyAggregate(Factorisation* f, AttributeRegistry* reg,
                                int u, const std::vector<AggTask>& tasks) {
  if (tasks.empty()) {
    throw std::invalid_argument("ApplyAggregate: no aggregation tasks");
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (size_t j = i + 1; j < tasks.size(); ++j) {
      if (tasks[i] == tasks[j]) {
        throw std::invalid_argument("ApplyAggregate: duplicate task");
      }
    }
  }
  const FTree& tree = f->tree();
  std::vector<Analysis> analyses;
  for (const AggTask& t : tasks) analyses.push_back(Analyze(tree, {u}, t));
  std::vector<DenseTables> tables;
  for (const Analysis& a : analyses) tables.push_back(MakeDense(tree, a));

  std::vector<AttrId> over = tree.SubtreeOriginalAttrs(u);
  std::vector<AggregateLabel> labels;
  for (const AggTask& t : tasks) {
    AggregateLabel l;
    l.fn = t.fn;
    l.source = t.source;
    l.over = over;
    // Reuse the canonical name when this tree does not already carry it:
    // re-running a query then labels its aggregate identically instead of
    // growing the shared registry by one fresh name per execution.
    std::string name = AggName(*reg, t, over);
    std::optional<AttrId> existing = reg->Find(name);
    if (existing.has_value() && tree.NodeOfAttr(*existing) < 0) {
      l.id = *existing;
    } else {
      l.id = FreshAttr(reg, name);
    }
    labels.push_back(std::move(l));
  }

  bool was_empty = f->empty();
  int parent = tree.parent(u);
  if (was_empty) {
    // Normalise the empty relation: all roots become empty unions so the
    // data stays shape-consistent with the mutated tree below.
    for (FactPtr& r : f->mutable_roots()) r = FactArena::EmptyNode();
  } else {
    FactArena& arena = f->ArenaForWrite();
    ValueDict& dict = f->dict();
    auto eval_all = [&](const FactNode& sub) {
      std::vector<FactPtr> leaves;
      for (size_t t = 0; t < tasks.size(); ++t) {
        ValueRef r = dict.Encode(Eval(
            tree, u, sub, tasks[t], tables[t].View(analyses[t].carrier)));
        leaves.push_back(arena.NewNode(&r, 1, nullptr, 0));
      }
      return leaves;
    };
    if (parent < 0) {
      // Aggregating a whole root tree: one value per task.
      int slot = tree.SlotOf(u);
      std::vector<FactPtr> leaves = eval_all(*f->roots()[slot]);
      auto& roots = f->mutable_roots();
      roots[slot] = leaves[0];
      for (size_t i = 1; i < leaves.size(); ++i) {
        roots.push_back(leaves[i]);
      }
    } else {
      int kp = static_cast<int>(tree.children(parent).size());
      int slot = tree.SlotOf(u);
      RewriteInFactorisation(f, parent, [&](const FactNode& np) {
        FactBuilder out;
        out.values.assign(np.values.begin(), np.values.end());
        for (int i = 0; i < np.size(); ++i) {
          std::vector<FactPtr> leaves = eval_all(*np.child(i, kp, slot));
          // First task takes u's slot; the rest are appended at the end,
          // mirroring FTree::ReplaceSubtreeWithAggregates.
          for (int c = 0; c < kp; ++c) {
            out.children.push_back(c == slot ? leaves[0]
                                             : np.child(i, kp, c));
          }
          for (size_t t = 1; t < leaves.size(); ++t) {
            out.children.push_back(leaves[t]);
          }
        }
        return out.Finish(arena);
      });
    }
  }

  std::vector<int> ids =
      f->mutable_tree().ReplaceSubtreeWithAggregates(u, std::move(labels));
  if (was_empty) {
    // Keep roots aligned with the tree on the empty relation.
    f->mutable_roots().resize(f->tree().roots().size(),
                              FactArena::EmptyNode());
  }
  return ids;
}

}  // namespace fdb
