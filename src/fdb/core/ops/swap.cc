#include "fdb/core/ops/swap.h"

#include <algorithm>
#include <stdexcept>

#include "fdb/core/ops/restructure.h"

namespace fdb {

void ApplySwap(Factorisation* f, int b) {
  const FTree& tree = f->tree();
  int a = tree.parent(b);
  if (a < 0) throw std::invalid_argument("ApplySwap: node is a root");

  const int ka = static_cast<int>(tree.children(a).size());
  const int kb = static_cast<int>(tree.children(b).size());
  const int slot_b = tree.SlotOf(b);

  // Partition b's child slots exactly as FTree::SwapUp will: slots whose
  // subtree depends on a move under a (TAB), the rest stay under b (TB).
  std::vector<int> stay_slots, move_slots;
  for (int c = 0; c < kb; ++c) {
    if (tree.SubtreeDependsOn(tree.children(b)[c], a)) {
      move_slots.push_back(c);
    } else {
      stay_slots.push_back(c);
    }
  }

  FactArena& arena = f->ArenaForWrite();

  // Data transformation, per instance of the union at A:
  //   ⋃_a ⟨a⟩ × E_a × ⋃_b ⟨b⟩ × F_b × G_ab
  //     ↦ ⋃_b ⟨b⟩ × F_b × ⋃_a ⟨a⟩ × E_a × G_ab .
  struct Occ {
    uint64_t key;  // order key of v; ties broken by the exact value order
    int ai, bi;
  };
  std::vector<Occ> occs;  // reused across instances of the union at A
  auto occ_value = [&](const FactNode& ua, const Occ& o) {
    return ua.child(o.ai, ka, slot_b)->values[o.bi];
  };
  auto rewriter = [&](const FactNode& ua) -> FactPtr {
    // Collect (b_value, a_entry, b_entry) triples and sort by (value, a),
    // comparing precomputed 64-bit order keys instead of refs. Rank
    // shifts are frozen across the key batch and its sorts (concurrent
    // interns must not reorder keys mid-sort); nothing below interns.
    auto frozen = ValueDict::Default().FreezeRanks();
    occs.clear();
    size_t total = 0;
    for (int i = 0; i < ua.size(); ++i) {
      total += ua.child(i, ka, slot_b)->values.size();
    }
    occs.reserve(total);
    for (int i = 0; i < ua.size(); ++i) {
      const FactNode& ub = *ua.child(i, ka, slot_b);
      for (int j = 0; j < ub.size(); ++j) {
        occs.push_back({ub.values[j].OrderKey(), i, j});
      }
    }
    // Each b-union holds distinct values, so (v, ai) keys are unique and a
    // plain sort suffices.
    std::sort(occs.begin(), occs.end(), [](const Occ& x, const Occ& y) {
      if (x.key != y.key) return x.key < y.key;
      return x.ai < y.ai;
    });
    // Distinct values can collide on a key (numerics within 4 ulps): find
    // such runs and re-sort them with the exact comparison.
    for (size_t g = 0; g + 1 < occs.size();) {
      size_t h = g + 1;
      while (h < occs.size() && occs[h].key == occs[g].key) ++h;
      if (h - g > 1) {
        bool collided = false;
        ValueRef v0 = occ_value(ua, occs[g]);
        for (size_t t = g + 1; t < h && !collided; ++t) {
          collided = !(occ_value(ua, occs[t]) == v0);
        }
        if (collided) {
          std::sort(occs.begin() + g, occs.begin() + h,
                    [&](const Occ& x, const Occ& y) {
                      auto c = occ_value(ua, x) <=> occ_value(ua, y);
                      if (c != std::strong_ordering::equal) {
                        return c == std::strong_ordering::less;
                      }
                      return x.ai < y.ai;
                    });
        }
      }
      g = h;
    }

    // New union at B: for each distinct b-value, F_b kids from the first
    // occurrence, then an inner union at A over the matching a-entries.
    FactBuilder out;
    FactBuilder inner;
    size_t g = 0;
    while (g < occs.size()) {
      ValueRef gv = occ_value(ua, occs[g]);
      size_t h = g + 1;
      while (h < occs.size() && occs[h].key == occs[g].key &&
             occ_value(ua, occs[h]) == gv) {
        ++h;
      }

      inner.clear();
      for (size_t t = g; t < h; ++t) {
        int i = occs[t].ai;
        const FactNode& ub = *ua.child(i, ka, slot_b);
        inner.values.push_back(ua.values[i]);
        // A keeps its old children except slot_b, then gains TAB.
        for (int c = 0; c < ka; ++c) {
          if (c != slot_b) inner.children.push_back(ua.child(i, ka, c));
        }
        for (int m : move_slots) {
          inner.children.push_back(ub.child(occs[t].bi, kb, m));
        }
      }

      out.values.push_back(gv);
      const FactNode& ub0 = *ua.child(occs[g].ai, ka, slot_b);
      for (int s : stay_slots) {
        out.children.push_back(ub0.child(occs[g].bi, kb, s));
      }
      out.children.push_back(inner.Finish(arena));
      g = h;
    }
    return out.Finish(arena);
  };

  RewriteInFactorisation(f, a, rewriter);
  f->mutable_tree().SwapUp(b);
}

}  // namespace fdb
