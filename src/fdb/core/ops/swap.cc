#include "fdb/core/ops/swap.h"

#include <algorithm>
#include <stdexcept>

#include "fdb/core/ops/restructure.h"

namespace fdb {

void ApplySwap(Factorisation* f, int b) {
  const FTree& tree = f->tree();
  int a = tree.parent(b);
  if (a < 0) throw std::invalid_argument("ApplySwap: node is a root");

  const int ka = static_cast<int>(tree.children(a).size());
  const int kb = static_cast<int>(tree.children(b).size());
  const int slot_b = tree.SlotOf(b);

  // Partition b's child slots exactly as FTree::SwapUp will: slots whose
  // subtree depends on a move under a (TAB), the rest stay under b (TB).
  std::vector<int> stay_slots, move_slots;
  for (int c = 0; c < kb; ++c) {
    if (tree.SubtreeDependsOn(tree.children(b)[c], a)) {
      move_slots.push_back(c);
    } else {
      stay_slots.push_back(c);
    }
  }

  // Data transformation, per instance of the union at A:
  //   ⋃_a ⟨a⟩ × E_a × ⋃_b ⟨b⟩ × F_b × G_ab
  //     ↦ ⋃_b ⟨b⟩ × F_b × ⋃_a ⟨a⟩ × E_a × G_ab .
  auto rewriter = [&](const FactNode& ua) -> FactPtr {
    // Collect (b_value, a_entry, b_entry) triples and sort by (value, a).
    struct Occ {
      const Value* v;
      int ai, bi;
    };
    std::vector<Occ> occs;
    for (int i = 0; i < ua.size(); ++i) {
      const FactNode& ub = *ua.child(i, ka, slot_b);
      for (int j = 0; j < ub.size(); ++j) {
        occs.push_back({&ub.values[j], i, j});
      }
    }
    std::stable_sort(occs.begin(), occs.end(), [](const Occ& x, const Occ& y) {
      auto c = *x.v <=> *y.v;
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
      return x.ai < y.ai;
    });

    // New union at B: for each distinct b-value, F_b kids from the first
    // occurrence, then an inner union at A over the matching a-entries.
    auto out = std::make_shared<FactNode>();
    size_t g = 0;
    while (g < occs.size()) {
      size_t h = g;
      while (h < occs.size() && *occs[h].v == *occs[g].v) ++h;

      auto inner = std::make_shared<FactNode>();
      for (size_t t = g; t < h; ++t) {
        int i = occs[t].ai;
        const FactNode& ub = *ua.child(i, ka, slot_b);
        inner->values.push_back(ua.values[i]);
        // A keeps its old children except slot_b, then gains TAB.
        for (int c = 0; c < ka; ++c) {
          if (c != slot_b) inner->children.push_back(ua.child(i, ka, c));
        }
        for (int m : move_slots) {
          inner->children.push_back(ub.child(occs[t].bi, kb, m));
        }
      }

      out->values.push_back(*occs[g].v);
      const FactNode& ub0 = *ua.child(occs[g].ai, ka, slot_b);
      for (int s : stay_slots) {
        out->children.push_back(ub0.child(occs[g].bi, kb, s));
      }
      out->children.push_back(std::move(inner));
      g = h;
    }
    return out;
  };

  RewriteInFactorisation(f, a, rewriter);
  f->mutable_tree().SwapUp(b);
}

}  // namespace fdb
