#include "fdb/core/ops/restructure.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace fdb {
namespace {

// The chain of child-slot indices leading from `root_node` down to `target`.
std::vector<int> SlotChain(const FTree& tree, int root_node, int target) {
  std::vector<int> nodes;
  for (int n = target; n != root_node; n = tree.parent(n)) {
    if (n < 0) {
      throw std::invalid_argument("SlotChain: target not under root");
    }
    nodes.push_back(n);
  }
  std::reverse(nodes.begin(), nodes.end());
  std::vector<int> slots;
  for (int n : nodes) slots.push_back(tree.SlotOf(n));
  return slots;
}

FactPtr RewriteRec(const FTree& tree, int node, const FactNode& n,
                   const std::vector<int>& slots, size_t depth,
                   const std::function<FactPtr(const FactNode&)>& fn,
                   FactArena& arena) {
  if (depth == slots.size()) return fn(n);
  int k = static_cast<int>(tree.children(node).size());
  int slot = slots[depth];
  int next = tree.children(node)[slot];
  FactBuilder out;
  for (int i = 0; i < n.size(); ++i) {
    FactPtr rewritten = RewriteRec(tree, next, *n.child(i, k, slot), slots,
                                   depth + 1, fn, arena);
    if (rewritten == nullptr || rewritten->values.empty()) continue;  // prune
    out.values.push_back(n.values[i]);
    for (int c = 0; c < k; ++c) {
      out.children.push_back(c == slot ? rewritten : n.child(i, k, c));
    }
  }
  return out.Finish(arena);
}

}  // namespace

FactPtr RewriteAtNode(const FTree& tree, int root_node, FactPtr root,
                      int target,
                      const std::function<FactPtr(const FactNode&)>& fn,
                      FactArena& arena) {
  std::vector<int> slots = SlotChain(tree, root_node, target);
  return RewriteRec(tree, root_node, *root, slots, 0, fn, arena);
}

void RewriteInFactorisation(
    Factorisation* f, int target,
    const std::function<FactPtr(const FactNode&)>& fn) {
  const FTree& tree = f->tree();
  int root_node = tree.RootOf(target);
  int slot = -1;
  for (size_t r = 0; r < tree.roots().size(); ++r) {
    if (tree.roots()[r] == root_node) slot = static_cast<int>(r);
  }
  if (slot < 0) throw std::logic_error("RewriteInFactorisation: root missing");
  FactPtr nr = RewriteAtNode(tree, root_node, f->roots()[slot], target, fn,
                             f->ArenaForWrite());
  if (nr == nullptr) nr = FactArena::EmptyNode();
  f->mutable_roots()[slot] = nr;
}

void ApplyRemoveLeaf(Factorisation* f, int leaf) {
  const FTree& tree = f->tree();
  if (!tree.children(leaf).empty()) {
    throw std::invalid_argument("ApplyRemoveLeaf: node is not a leaf");
  }
  int parent = tree.parent(leaf);
  if (parent < 0) {
    // A root leaf: drop the whole (single-node) tree from the forest. This
    // changes the represented relation only by projecting the column away.
    int slot = tree.SlotOf(leaf);
    f->mutable_roots().erase(f->mutable_roots().begin() + slot);
  } else {
    int k = static_cast<int>(tree.children(parent).size());
    int slot = tree.SlotOf(leaf);
    FactArena& arena = f->ArenaForWrite();
    RewriteInFactorisation(f, parent, [&](const FactNode& n) {
      FactBuilder out;
      out.values.assign(n.values.begin(), n.values.end());
      out.children.reserve(n.values.size() * (k - 1));
      for (int i = 0; i < n.size(); ++i) {
        for (int c = 0; c < k; ++c) {
          if (c != slot) out.children.push_back(n.child(i, k, c));
        }
      }
      return out.Finish(arena);
    });
  }
  f->mutable_tree().RemoveLeaf(leaf);
}

void ApplyRename(Factorisation* f, AttributeRegistry* reg, int u,
                 const std::string& name) {
  AttrId id = reg->Intern(name);
  f->mutable_tree().RenameAggregate(u, id);
}

}  // namespace fdb
