#include "fdb/core/ops/project.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace fdb {
namespace {

FactPtr CopyFragment(const FTree& tree, int node, const FactNode& n,
                     const std::unordered_set<int>& keep,
                     const std::vector<int>& kept_child_slots,
                     FactArena& arena) {
  int k = static_cast<int>(tree.children(node).size());
  FactBuilder out;
  out.values.assign(n.values.begin(), n.values.end());
  out.children.reserve(n.values.size() * kept_child_slots.size());
  for (int i = 0; i < n.size(); ++i) {
    for (int slot : kept_child_slots) {
      int child = tree.children(node)[slot];
      // Recompute the kept slots of the child lazily below.
      std::vector<int> child_slots;
      const std::vector<int>& cc = tree.children(child);
      for (size_t c = 0; c < cc.size(); ++c) {
        if (keep.count(cc[c])) child_slots.push_back(static_cast<int>(c));
      }
      out.children.push_back(CopyFragment(tree, child, *n.child(i, k, slot),
                                          keep, child_slots, arena));
    }
  }
  return out.Finish(arena);
}

}  // namespace

Factorisation ProjectToTopFragment(const Factorisation& f,
                                   const std::vector<int>& keep_nodes) {
  const FTree& tree = f.tree();
  std::unordered_set<int> keep(keep_nodes.begin(), keep_nodes.end());
  for (int n : keep_nodes) {
    int p = tree.parent(n);
    if (p >= 0 && !keep.count(p)) {
      throw std::invalid_argument(
          "ProjectToTopFragment: kept nodes must form a top fragment "
          "(Theorem 1); restructure first");
    }
  }

  // Rebuild the f-tree restricted to the kept nodes (fresh ids).
  FTree out_tree;
  std::unordered_map<int, int> remap;
  for (int n : tree.TopologicalOrder()) {
    if (!keep.count(n)) continue;
    const FTreeNode& nd = tree.node(n);
    int parent = tree.parent(n) >= 0 ? remap.at(tree.parent(n)) : -1;
    remap[n] = nd.is_aggregate()
                   ? out_tree.AddAggregateNode(*nd.agg, parent)
                   : out_tree.AddNode(nd.attrs, parent);
  }

  // Kept attribute ids, for restricting the dependency hypergraph.
  std::vector<AttrId> kept_attrs;
  for (int n : keep_nodes) {
    auto ids = tree.node(n).AllAttrIds();
    kept_attrs.insert(kept_attrs.end(), ids.begin(), ids.end());
  }
  std::sort(kept_attrs.begin(), kept_attrs.end());

  // Edges fully inside the kept attributes survive; all others merge into
  // one (their removed attributes made the rest mutually dependent).
  Hyperedge merged;
  merged.weight = 1.0;
  bool any_merged = false;
  for (const Hyperedge& e : tree.edges()) {
    bool inside = true;
    for (AttrId a : e.attrs) {
      if (!std::binary_search(kept_attrs.begin(), kept_attrs.end(), a)) {
        inside = false;
      }
    }
    if (inside) {
      out_tree.AddEdge(e);
      continue;
    }
    any_merged = true;
    for (AttrId a : e.attrs) {
      if (std::binary_search(kept_attrs.begin(), kept_attrs.end(), a)) {
        merged.attrs.push_back(a);
      }
    }
    merged.weight *= e.weight;
    if (!merged.name.empty()) merged.name += "*";
    merged.name += e.name.empty() ? "?" : e.name;
  }
  if (any_merged && !merged.attrs.empty()) {
    out_tree.AddEdge(std::move(merged));
  }

  // Copy the data fragment into a fresh arena (a full copy: nothing is
  // shared with the source factorisation).
  auto arena = std::make_shared<FactArena>();
  std::vector<FactPtr> roots;
  for (size_t r = 0; r < tree.roots().size(); ++r) {
    int root = tree.roots()[r];
    if (!keep.count(root)) continue;  // whole tree projected away
    std::vector<int> child_slots;
    const std::vector<int>& cc = tree.children(root);
    for (size_t c = 0; c < cc.size(); ++c) {
      if (keep.count(cc[c])) child_slots.push_back(static_cast<int>(c));
    }
    roots.push_back(
        CopyFragment(tree, root, *f.roots()[r], keep, child_slots, *arena));
  }
  if (f.empty()) {
    for (FactPtr& r : roots) r = FactArena::EmptyNode();
  }
  return Factorisation(std::move(out_tree), std::move(roots),
                       std::move(arena));
}

}  // namespace fdb
