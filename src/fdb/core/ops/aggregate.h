#ifndef FDB_CORE_OPS_AGGREGATE_H_
#define FDB_CORE_OPS_AGGREGATE_H_

#include <utility>
#include <vector>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Verifies that evaluating `task` over the subtree rooted at `u` is a valid
/// composition per Proposition 2 — i.e. every aggregate node already inside
/// the subtree can be interpreted (count within count/sum; a unique carrier
/// for sum/min/max). Throws std::invalid_argument otherwise.
void CheckComposable(const FTree& tree, int u, const AggTask& task);

/// The node inside the subtree at `u` that carries `source`: either the
/// atomic class containing it, or a compatible aggregate node whose function
/// matches `task.fn` with the same source. Returns -1 if absent.
int FindCarrierNode(const FTree& tree, int u, const AggTask& task);

/// Linear-time cardinality of the relation represented by the union `n` at
/// f-tree node `node` (§3.2.1), interpreting count-aggregate singletons as
/// pre-computed counts. Throws on non-count aggregate nodes.
int64_t EvalCount(const FTree& tree, int node, const FactNode& n);

/// Linear-time evaluation of `task` over the union `n` at f-tree node `node`
/// (§3.2.1–§3.2.3). For sum, uses sum(E_j) · Π count(E_i); for min/max,
/// exploits sorted unions. The caller must have checked composability.
Value EvalAggregate(const FTree& tree, int node, const FactNode& n,
                    const AggTask& task);

/// Evaluates `task` over the *product* of several subtree instances — used
/// for on-the-fly aggregation during enumeration (§1 scenario 3), where the
/// non-grouping subtrees hanging below the current group binding are
/// combined without materialising anything.
Value EvalAggregateProduct(
    const FTree& tree,
    const std::vector<std::pair<int, const FactNode*>>& parts,
    const AggTask& task);

/// EvalAggregateProduct with the composition analysis hoisted out: the
/// validation walk (Prop. 2 ownership rules, carrier search) depends only
/// on the f-tree, the part *nodes* and the task, so a group-by enumerator
/// runs it once and evaluates millions of group bindings against dense
/// per-node tables instead of re-analysing per output tuple.
class ProductAggEvaluator {
 public:
  /// `part_nodes` are the f-tree nodes of the parts, in the exact order the
  /// parts will be passed to Eval(). Throws std::invalid_argument on
  /// compositions outside Proposition 2.
  ProductAggEvaluator(const FTree& tree, const std::vector<int>& part_nodes,
                      const AggTask& task);

  /// `parts` must pair the construction-time node ids (same order) with the
  /// current subtree instances.
  Value Eval(const std::vector<std::pair<int, const FactNode*>>& parts) const;

 private:
  const FTree* tree_ = nullptr;
  AggTask task_;
  bool nullary_ = false;      // aggregate over the empty product {()}
  int carrier_ = -1;          // node id for sum/min/max
  int carrier_part_ = -1;     // index into parts for sum/min/max
  // Dense per-node tables (indexed by node id).
  std::vector<uint8_t> factor_is_value_;  // count nodes contributing factors
  std::vector<int> cstar_;  // child slot leading towards the carrier, or -1
};

/// The aggregation operator γ_F(U) of §3, for a composite list of tasks:
/// replaces the subtree rooted at `u` by one aggregate leaf per task, in
/// every branch of the factorisation, and updates the f-tree and its
/// dependency hypergraph. Fresh aggregate attribute names are interned in
/// `reg`. Returns the new aggregate node ids (aligned with `tasks`).
std::vector<int> ApplyAggregate(Factorisation* f, AttributeRegistry* reg,
                                int u, const std::vector<AggTask>& tasks);

}  // namespace fdb

#endif  // FDB_CORE_OPS_AGGREGATE_H_
