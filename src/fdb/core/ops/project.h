#ifndef FDB_CORE_OPS_PROJECT_H_
#define FDB_CORE_OPS_PROJECT_H_

#include <vector>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Materialised projection on a factorisation with set semantics (the π of
/// select-project-join queries): keeps exactly the nodes in `keep_nodes`,
/// which must form a top fragment of the f-tree (every kept node is a root
/// or the child of a kept node — push them up with PlanRestructure /
/// ApplySwap first, exactly as for grouping, Theorem 1).
///
/// Every retained binding of the kept nodes had at least one tuple below it
/// (empty branches are pruned by invariant), so discarding the subtrees
/// below the fragment yields precisely the distinct projection. Hyperedges
/// touching removed attributes are merged (projection makes the attributes
/// they connected mutually dependent, as in §3). Node ids are remapped;
/// the result is a fresh factorisation sharing no structure with the input.
Factorisation ProjectToTopFragment(const Factorisation& f,
                                   const std::vector<int>& keep_nodes);

}  // namespace fdb

#endif  // FDB_CORE_OPS_PROJECT_H_
