#ifndef FDB_CORE_OPS_SWAP_H_
#define FDB_CORE_OPS_SWAP_H_

#include "fdb/core/factorisation.h"

namespace fdb {

/// The swap operator χ(A,B) of paper §4.2, applied to node `b` and its
/// parent A: restructures both the f-tree and the factorised data so that
/// data previously grouped first by A then B is grouped by B then A.
/// Children of B whose subtrees depend on A move below A; the rest stay
/// below B. Subexpressions E_a, F_b and G_ab are shared, not copied — this
/// is what makes partial re-sorting cheap (Experiment 4).
void ApplySwap(Factorisation* f, int b);

}  // namespace fdb

#endif  // FDB_CORE_OPS_SWAP_H_
