#include "fdb/core/fact_arena.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <new>

#include "fdb/exec/cancel.h"

namespace fdb {

namespace {
const FactNode kEmptyNode{};
}  // namespace

FactPtr FactArena::EmptyNode() { return &kEmptyNode; }

uint64_t FactArena::NextGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

const std::shared_ptr<FactArena>& FactArena::Scratch() {
  static const std::shared_ptr<FactArena>* arena =
      new std::shared_ptr<FactArena>(std::make_shared<FactArena>());
  return *arena;
}

void* FactArena::Allocate(size_t bytes) {
  bytes = (bytes + 7) & ~size_t{7};
  // Arena allocation is the single choke point for factorisation memory:
  // charge it against the serving layer's per-query budget when one is
  // armed on this thread (one thread-local load when not).
  if (exec::CancelToken* t = exec::CurrentCancelToken()) {
    t->ChargeMemory(static_cast<int64_t>(bytes));
  }
  if (used_ + bytes > cap_) {
    size_t want = chunks_.empty()
                      ? kFirstChunk
                      : std::min(cap_ * 2, kMaxChunk);
    want = std::max(want, bytes);
    chunks_.push_back(std::make_unique<std::byte[]>(want));
    chunk_sizes_.push_back(want);
    cap_ = want;
    used_ = 0;
  }
  void* p = chunks_.back().get() + used_;
  used_ += bytes;
  bytes_ += static_cast<int64_t>(bytes);
  return p;
}

FactPtr FactArena::NewNode(const ValueRef* vals, size_t nv, const FactPtr* kids,
                           size_t nk) {
  if (nv == 0 && nk == 0) return EmptyNode();
  size_t bytes = sizeof(FactNode) + nv * sizeof(ValueRef) +
                 nk * sizeof(FactPtr);
  std::byte* block = static_cast<std::byte*>(Allocate(bytes));
  auto* node = new (block) FactNode();
  auto* v = reinterpret_cast<ValueRef*>(block + sizeof(FactNode));
  if (nv > 0) std::memcpy(v, vals, nv * sizeof(ValueRef));
  auto* k = reinterpret_cast<FactPtr*>(block + sizeof(FactNode) +
                                       nv * sizeof(ValueRef));
  if (nk > 0) std::memcpy(k, kids, nk * sizeof(FactPtr));
  node->values = {v, static_cast<uint32_t>(nv)};
  node->children = {k, static_cast<uint32_t>(nk)};
  ++nodes_;
  return node;
}

bool FactArena::KeepsAlive(const FactArena* other) const {
  if (other == this) return true;
  for (const auto& p : parents_) {
    if (p.get() == other) return true;
  }
  return false;
}

bool FactArena::OwnsNodeMemory(const FactNode* node) const {
  const std::byte* p = reinterpret_cast<const std::byte*>(node);
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const std::byte* lo = chunks_[i].get();
    if (p >= lo && p + sizeof(FactNode) <= lo + chunk_sizes_[i]) return true;
  }
  return false;
}

bool FactArena::ChainOwnsNode(FactPtr node) const {
  if (node == EmptyNode()) return true;
  if (OwnsNodeMemory(node)) return true;
  for (const auto& p : parents_) {
    // Parents are flattened to depth one, but a parent may itself be a
    // MappedArena whose override must run — hence the virtual probe.
    if (p->OwnsNodeMemory(node)) return true;
  }
  return false;
}

void FactArena::Adopt(const std::shared_ptr<const FactArena>& other) {
  if (other == nullptr || other.get() == this) return;
  auto has = [this](const std::shared_ptr<const FactArena>& a) {
    return std::find(parents_.begin(), parents_.end(), a) != parents_.end();
  };
  // Flatten: adopt other's parents directly so chains stay depth one.
  for (const auto& p : other->parents_) {
    if (!has(p)) parents_.push_back(p);
  }
  if (!has(other)) parents_.push_back(other);
}

}  // namespace fdb
