#include "fdb/core/build.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fdb/core/fact_arena.h"

namespace fdb {
namespace {

// A base relation prepared for trie construction: the path columns are
// dictionary-encoded into contiguous per-step arrays (column-major) and
// sorted by the concatenated path order, so the leapfrog intersection
// below compares raw 8-byte codes instead of boxed values.
struct PreparedRel {
  std::vector<std::vector<ValueRef>> cols;  // cols[step][row], sorted
  std::vector<int> node_path;               // f-tree nodes, root-to-leaf
  std::vector<std::vector<int>> node_cols;  // column positions per path node
  size_t num_rows() const { return cols.empty() ? 0 : cols[0].size(); }
};

// Per-branch cursor into one prepared relation.
struct RelState {
  int rel;   // index into prepared relations
  int step;  // next entry of node_path to consume
  int lo, hi;  // active row range [lo, hi)
};

class TrieBuilder {
 public:
  TrieBuilder(const FTree& tree, const std::vector<const Relation*>& relations,
              FactArena& arena)
      : tree_(tree), arena_(arena) {
    depth_.assign(tree.num_nodes(), 0);
    for (int n : tree.TopologicalOrder()) {
      depth_[n] = tree.parent(n) < 0 ? 0 : depth_[tree.parent(n)] + 1;
    }
    frames_.resize(tree.num_nodes() + 1);
    Prepare(relations);
  }

  std::vector<FactPtr> BuildRoots() {
    std::vector<RelState> states;
    for (size_t r = 0; r < rels_.size(); ++r) {
      states.push_back({static_cast<int>(r), 0, 0,
                        static_cast<int>(rels_[r].num_rows())});
    }
    std::vector<FactPtr> roots;
    bool empty = false;
    for (int root : tree_.roots()) {
      std::vector<RelState> routed;
      for (const RelState& s : states) {
        if (NextNodeIn(s, root)) routed.push_back(s);
      }
      FactPtr f = BuildNode(root, routed, 0);
      if (f->values.empty()) empty = true;
      roots.push_back(f);
    }
    if (empty) {
      // Normalise: the empty relation is represented by empty root unions.
      for (FactPtr& r : roots) r = FactArena::EmptyNode();
    }
    return roots;
  }

 private:
  void Prepare(const std::vector<const Relation*>& relations) {
    ValueDict& dict = ValueDict::Default();
    for (const Relation* rel : relations) {
      PreparedRel p;
      // Map each attribute to its f-tree node; collect per-node columns.
      std::vector<std::pair<int, int>> node_col;  // (node, column position)
      for (int i = 0; i < rel->schema().arity(); ++i) {
        int n = tree_.NodeOfAttr(rel->schema().attr(i));
        if (n < 0) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attribute missing from f-tree");
        }
        node_col.emplace_back(n, i);
      }
      std::stable_sort(node_col.begin(), node_col.end(),
                       [this](const auto& a, const auto& b) {
                         return depth_[a.first] < depth_[b.first];
                       });
      for (const auto& [n, col] : node_col) {
        if (p.node_path.empty() || p.node_path.back() != n) {
          p.node_path.push_back(n);
          p.node_cols.emplace_back();
        }
        p.node_cols.back().push_back(col);
      }
      // The nodes must form a chain (path constraint).
      for (size_t i = 1; i < p.node_path.size(); ++i) {
        if (!tree_.IsAncestor(p.node_path[i - 1], p.node_path[i])) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attributes not on one root-to-leaf "
              "path of the f-tree");
        }
      }
      // Keep only rows whose columns agree within each equivalence class.
      std::vector<const Tuple*> kept;
      kept.reserve(rel->rows().size());
      for (const Tuple& row : rel->rows()) {
        bool ok = true;
        for (const auto& cols : p.node_cols) {
          for (size_t i = 1; i < cols.size() && ok; ++i) {
            ok = row[cols[0]] == row[cols[i]];
          }
        }
        if (ok) kept.push_back(&row);
      }
      // Bulk-intern the string cells of the path columns in sorted order so
      // dictionary codes are assigned with (mostly) append-only ranks.
      std::vector<std::string_view> strs;
      for (const auto& cols : p.node_cols) {
        for (const Tuple* row : kept) {
          const Value& v = (*row)[cols[0]];
          if (v.is_string()) strs.push_back(v.as_string());
        }
      }
      if (!strs.empty()) dict.InternBulk(std::move(strs));
      // Encode the path columns column-major, then sort by path order using
      // packed row-major 64-bit order keys (one contiguous integer compare
      // per column; exact ref comparison only on the rare key collision).
      size_t steps = p.node_path.size();
      size_t nrows = kept.size();
      std::vector<std::vector<ValueRef>> cols(steps);
      std::vector<uint64_t> rowkeys(nrows * steps);
      for (size_t s = 0; s < steps; ++s) {
        int c = p.node_cols[s][0];
        cols[s].reserve(nrows);
        for (size_t r = 0; r < nrows; ++r) {
          ValueRef ref = dict.Encode((*kept[r])[c]);
          cols[s].push_back(ref);
          rowkeys[r * steps + s] = ref.OrderKey();
        }
      }
      // Column-at-a-time run refinement: sort contiguous (key, row) pairs
      // by the first column, then recursively re-sort each run of equal
      // keys by the next column. All sorts touch sequential memory.
      std::vector<uint32_t> perm(nrows);
      std::iota(perm.begin(), perm.end(), 0);
      std::vector<std::pair<uint64_t, uint32_t>> buf(nrows);
      struct Seg {
        uint32_t lo, hi, col;
      };
      std::vector<Seg> segs;
      if (nrows > 1 && steps > 0) segs.push_back({0, (uint32_t)nrows, 0});
      while (!segs.empty()) {
        Seg seg = segs.back();
        segs.pop_back();
        uint32_t s = seg.col;
        for (uint32_t i = seg.lo; i < seg.hi; ++i) {
          buf[i] = {rowkeys[perm[i] * steps + s], perm[i]};
        }
        std::sort(buf.begin() + seg.lo, buf.begin() + seg.hi);
        for (uint32_t i = seg.lo; i < seg.hi; ++i) perm[i] = buf[i].second;
        for (uint32_t i = seg.lo; i < seg.hi;) {
          uint32_t j = i + 1;
          while (j < seg.hi && buf[j].first == buf[i].first) ++j;
          if (j - i > 1) {
            // Key collisions (distinct values mapping to one key) are rare;
            // detect them and finish such runs with the exact comparator.
            bool collided = false;
            for (uint32_t t = i + 1; t < j && !collided; ++t) {
              collided = !(cols[s][perm[t]] == cols[s][perm[i]]);
            }
            if (collided) {
              std::sort(perm.begin() + i, perm.begin() + j,
                        [&cols, s, steps](uint32_t a, uint32_t b) {
                          for (size_t t = s; t < steps; ++t) {
                            auto cmp = cols[t][a] <=> cols[t][b];
                            if (cmp != std::strong_ordering::equal) {
                              return cmp == std::strong_ordering::less;
                            }
                          }
                          return false;
                        });
            } else if (s + 1 < steps) {
              segs.push_back({i, j, s + 1});
            }
          }
          i = j;
        }
      }
      p.cols.resize(steps);
      for (size_t s = 0; s < steps; ++s) {
        p.cols[s].reserve(nrows);
        for (uint32_t i : perm) p.cols[s].push_back(cols[s][i]);
      }
      rels_.push_back(std::move(p));
    }
  }

  // True if the state's next unconsumed node lies in the subtree rooted at u.
  bool NextNodeIn(const RelState& s, int u) const {
    const PreparedRel& p = rels_[s.rel];
    if (s.step >= static_cast<int>(p.node_path.size())) return false;
    int n = p.node_path[s.step];
    return n == u || tree_.IsAncestor(u, n);
  }

  ValueRef ValueAt(const RelState& s, int row) const {
    return rels_[s.rel].cols[s.step][row];
  }

  // Advances s.lo to the first row in [lo, hi) with column value >= v,
  // galloping from the current cursor (runs of equal values are short, so
  // exponential probing beats a full-range binary search).
  int LowerBound(const RelState& s, ValueRef v) const {
    const ValueRef* col = rels_[s.rel].cols[s.step].data();
    int lo = s.lo, hi = s.hi;
    if (lo >= hi || !(col[lo] < v)) return lo;
    int step = 1;
    while (lo + step < hi && col[lo + step] < v) {
      lo += step;
      step <<= 1;
    }
    // col[lo] < v, so the answer lies in (lo, min(hi, lo + step)].
    int right = std::min(hi, lo + step);
    ++lo;
    while (lo < right) {
      int mid = lo + (right - lo) / 2;
      if (col[mid] < v) {
        lo = mid + 1;
      } else {
        right = mid;
      }
    }
    return lo;
  }

  // First row in [lo, hi) with column value > v, galloping from the cursor.
  int UpperBound(const RelState& s, ValueRef v) const {
    const ValueRef* col = rels_[s.rel].cols[s.step].data();
    int lo = s.lo, hi = s.hi;
    if (lo >= hi || v < col[lo]) return lo;
    int step = 1;
    while (lo + step < hi && !(v < col[lo + step])) {
      lo += step;
      step <<= 1;
    }
    int right = std::min(hi, lo + step);
    ++lo;
    while (lo < right) {
      int mid = lo + (right - lo) / 2;
      if (!(v < col[mid])) {
        lo = mid + 1;
      } else {
        right = mid;
      }
    }
    return lo;
  }

  // Builds the union at node u constrained by `states` (all of which have
  // their next node in u's subtree). Returns a (possibly empty) FactNode
  // frozen into the arena. Per-depth frames keep all scratch state free of
  // per-call allocation.
  FactPtr BuildNode(int u, const std::vector<RelState>& states, int depth) {
    Frame& fr = frames_[depth];
    // Split the states into those constraining u itself and the waiters.
    fr.here.clear();
    fr.waiting.clear();
    for (const RelState& s : states) {
      if (rels_[s.rel].node_path[s.step] == u) {
        fr.here.push_back(s);
      } else {
        fr.waiting.push_back(s);
      }
    }
    if (fr.here.empty()) {
      throw std::invalid_argument(
          "FactoriseJoin: f-tree node not covered by any relation");
    }
    const std::vector<int>& kids = tree_.children(u);
    int k = static_cast<int>(kids.size());

    fr.out.clear();
    fr.kid_nodes.assign(k, nullptr);
    fr.ends.resize(fr.here.size());
    // Leapfrog-style sorted intersection over the participants.
    while (true) {
      bool exhausted = false;
      for (const RelState& s : fr.here) {
        if (s.lo >= s.hi) {
          exhausted = true;
          break;
        }
      }
      if (exhausted) break;
      // Candidate: the maximum of the current heads.
      ValueRef cand = ValueAt(fr.here[0], fr.here[0].lo);
      for (size_t i = 1; i < fr.here.size(); ++i) {
        ValueRef v = ValueAt(fr.here[i], fr.here[i].lo);
        if (cand < v) cand = v;
      }
      // Advance everyone to >= cand; restart if someone jumps past it.
      bool agreed = true;
      for (RelState& s : fr.here) {
        s.lo = LowerBound(s, cand);
        if (s.lo >= s.hi || !(ValueAt(s, s.lo) == cand)) agreed = false;
      }
      if (!agreed) continue;

      // The end of each participant's `cand` run, computed once and reused
      // for every child slot and for the final advance.
      for (size_t i = 0; i < fr.here.size(); ++i) {
        fr.ends[i] = UpperBound(fr.here[i], cand);
      }

      // Matched value `cand`: recurse into children with narrowed ranges.
      bool all_ok = true;
      for (int c = 0; c < k && all_ok; ++c) {
        fr.routed.clear();
        for (size_t i = 0; i < fr.here.size(); ++i) {
          RelState t = fr.here[i];
          t.step++;
          t.hi = fr.ends[i];
          // t.lo unchanged (rows with value == cand start here).
          if (NextNodeIn(t, kids[c])) fr.routed.push_back(t);
        }
        for (const RelState& s : fr.waiting) {
          if (NextNodeIn(s, kids[c])) fr.routed.push_back(s);
        }
        FactPtr f = BuildNode(kids[c], fr.routed, depth + 1);
        if (f->values.empty()) {
          all_ok = false;
        } else {
          fr.kid_nodes[c] = f;
        }
      }
      if (all_ok) {
        fr.out.values.push_back(cand);
        for (int c = 0; c < k; ++c) {
          fr.out.children.push_back(fr.kid_nodes[c]);
        }
      }
      // Move past `cand` in all participants.
      for (size_t i = 0; i < fr.here.size(); ++i) {
        fr.here[i].lo = fr.ends[i];
      }
    }
    return fr.out.Finish(arena_);
  }

  struct Frame {
    std::vector<RelState> here, waiting, routed;
    std::vector<int> ends;
    std::vector<FactPtr> kid_nodes;
    FactBuilder out;
  };

  const FTree& tree_;
  FactArena& arena_;
  std::vector<int> depth_;
  std::vector<PreparedRel> rels_;
  std::vector<Frame> frames_;  // one per recursion depth
};

}  // namespace

Factorisation FactoriseJoin(const FTree& tree,
                            const std::vector<const Relation*>& relations) {
  auto arena = std::make_shared<FactArena>();
  TrieBuilder b(tree, relations, *arena);
  std::vector<FactPtr> roots = b.BuildRoots();
  return Factorisation(tree, std::move(roots), std::move(arena));
}

Factorisation FactoriseRelation(const Relation& rel,
                                const std::vector<AttrId>& attr_order) {
  if (attr_order.size() != static_cast<size_t>(rel.schema().arity())) {
    throw std::invalid_argument(
        "FactoriseRelation: order must cover all attributes");
  }
  FTree tree;
  int parent = -1;
  for (AttrId a : attr_order) {
    parent = tree.AddNode({a}, parent);
  }
  Hyperedge e;
  e.attrs = attr_order;
  std::sort(e.attrs.begin(), e.attrs.end());
  e.weight = static_cast<double>(rel.size());
  e.name = "R";
  tree.AddEdge(std::move(e));
  return FactoriseJoin(tree, {&rel});
}

}  // namespace fdb
