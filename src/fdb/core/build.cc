#include "fdb/core/build.h"

#include <algorithm>
#include <stdexcept>

namespace fdb {
namespace {

// A base relation prepared for trie construction.
struct PreparedRel {
  std::vector<Tuple> rows;  // sorted by the concatenated path columns
  std::vector<int> node_path;             // f-tree nodes in root-to-leaf order
  std::vector<std::vector<int>> node_cols;  // column positions per path node
};

// Per-branch cursor into one prepared relation.
struct RelState {
  int rel;   // index into prepared relations
  int step;  // next entry of node_path to consume
  int lo, hi;  // active row range [lo, hi)
};

class TrieBuilder {
 public:
  TrieBuilder(const FTree& tree,
              const std::vector<const Relation*>& relations)
      : tree_(tree) {
    depth_.assign(tree.num_nodes(), 0);
    for (int n : tree.TopologicalOrder()) {
      depth_[n] = tree.parent(n) < 0 ? 0 : depth_[tree.parent(n)] + 1;
    }
    Prepare(relations);
  }

  Factorisation Build() {
    std::vector<RelState> states;
    for (size_t r = 0; r < rels_.size(); ++r) {
      states.push_back({static_cast<int>(r), 0, 0,
                        static_cast<int>(rels_[r].rows.size())});
    }
    std::vector<FactPtr> roots;
    bool empty = false;
    for (int root : tree_.roots()) {
      std::vector<RelState> routed;
      for (const RelState& s : states) {
        if (NextNodeIn(s, root)) routed.push_back(s);
      }
      FactPtr f = BuildNode(root, routed);
      if (f->values.empty()) empty = true;
      roots.push_back(std::move(f));
    }
    if (empty) {
      // Normalise: the empty relation is represented by empty root unions.
      for (FactPtr& r : roots) r = MakeLeaf({});
    }
    return Factorisation(tree_, std::move(roots));
  }

 private:
  void Prepare(const std::vector<const Relation*>& relations) {
    for (const Relation* rel : relations) {
      PreparedRel p;
      // Map each attribute to its f-tree node; collect per-node columns.
      std::vector<std::pair<int, int>> node_col;  // (node, column position)
      for (int i = 0; i < rel->schema().arity(); ++i) {
        int n = tree_.NodeOfAttr(rel->schema().attr(i));
        if (n < 0) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attribute missing from f-tree");
        }
        node_col.emplace_back(n, i);
      }
      std::stable_sort(node_col.begin(), node_col.end(),
                       [this](const auto& a, const auto& b) {
                         return depth_[a.first] < depth_[b.first];
                       });
      for (const auto& [n, col] : node_col) {
        if (p.node_path.empty() || p.node_path.back() != n) {
          p.node_path.push_back(n);
          p.node_cols.emplace_back();
        }
        p.node_cols.back().push_back(col);
      }
      // The nodes must form a chain (path constraint).
      for (size_t i = 1; i < p.node_path.size(); ++i) {
        if (!tree_.IsAncestor(p.node_path[i - 1], p.node_path[i])) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attributes not on one root-to-leaf "
              "path of the f-tree");
        }
      }
      // Keep only rows whose columns agree within each equivalence class,
      // then sort by the concatenated path order.
      for (const Tuple& row : rel->rows()) {
        bool ok = true;
        for (const auto& cols : p.node_cols) {
          for (size_t i = 1; i < cols.size() && ok; ++i) {
            ok = row[cols[0]] == row[cols[i]];
          }
        }
        if (ok) p.rows.push_back(row);
      }
      std::vector<int> order;
      for (const auto& cols : p.node_cols) order.push_back(cols[0]);
      std::sort(p.rows.begin(), p.rows.end(),
                [&order](const Tuple& a, const Tuple& b) {
                  for (int c : order) {
                    auto cmp = a[c] <=> b[c];
                    if (cmp != std::strong_ordering::equal) {
                      return cmp == std::strong_ordering::less;
                    }
                  }
                  return false;
                });
      rels_.push_back(std::move(p));
    }
  }

  // True if the state's next unconsumed node lies in the subtree rooted at u.
  bool NextNodeIn(const RelState& s, int u) const {
    const PreparedRel& p = rels_[s.rel];
    if (s.step >= static_cast<int>(p.node_path.size())) return false;
    int n = p.node_path[s.step];
    return n == u || tree_.IsAncestor(u, n);
  }

  const Value& ValueAt(const RelState& s, int row) const {
    const PreparedRel& p = rels_[s.rel];
    return p.rows[row][p.node_cols[s.step][0]];
  }

  // Advances s.lo to the first row in [lo, hi) with column value >= v.
  int LowerBound(const RelState& s, const Value& v) const {
    const PreparedRel& p = rels_[s.rel];
    int col = p.node_cols[s.step][0];
    int lo = s.lo, hi = s.hi;
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (p.rows[mid][col] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  int UpperBound(const RelState& s, const Value& v) const {
    const PreparedRel& p = rels_[s.rel];
    int col = p.node_cols[s.step][0];
    int lo = s.lo, hi = s.hi;
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (v < p.rows[mid][col]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // Builds the union at node u constrained by `states` (all of which have
  // their next node in u's subtree). Returns a (possibly empty) FactNode.
  FactPtr BuildNode(int u, const std::vector<RelState>& states) {
    // Split the states into those constraining u itself and the waiters.
    std::vector<RelState> here, waiting;
    for (const RelState& s : states) {
      if (rels_[s.rel].node_path[s.step] == u) {
        here.push_back(s);
      } else {
        waiting.push_back(s);
      }
    }
    if (here.empty()) {
      throw std::invalid_argument(
          "FactoriseJoin: f-tree node not covered by any relation");
    }
    const std::vector<int>& kids = tree_.children(u);
    int k = static_cast<int>(kids.size());

    auto out = std::make_shared<FactNode>();
    // Leapfrog-style sorted intersection over the participants.
    while (true) {
      bool exhausted = false;
      for (RelState& s : here) {
        if (s.lo >= s.hi) {
          exhausted = true;
          break;
        }
      }
      if (exhausted) break;
      // Candidate: the maximum of the current heads.
      Value cand = ValueAt(here[0], here[0].lo);
      for (size_t i = 1; i < here.size(); ++i) {
        Value v = ValueAt(here[i], here[i].lo);
        if (cand < v) cand = v;
      }
      // Advance everyone to >= cand; restart if someone jumps past it.
      bool agreed = true;
      for (RelState& s : here) {
        s.lo = LowerBound(s, cand);
        if (s.lo >= s.hi || !(ValueAt(s, s.lo) == cand)) agreed = false;
      }
      if (!agreed) continue;

      // Matched value `cand`: recurse into children with narrowed ranges.
      std::vector<FactPtr> kid_nodes(k);
      bool all_ok = true;
      for (int c = 0; c < k && all_ok; ++c) {
        std::vector<RelState> routed;
        for (RelState s : here) {
          RelState t = s;
          t.step++;
          t.hi = UpperBound(s, cand);
          // t.lo == s.lo (rows with value == cand start here).
          if (NextNodeIn(t, kids[c])) routed.push_back(t);
        }
        for (const RelState& s : waiting) {
          if (NextNodeIn(s, kids[c])) routed.push_back(s);
        }
        FactPtr f = BuildNode(kids[c], routed);
        if (f->values.empty()) {
          all_ok = false;
        } else {
          kid_nodes[c] = std::move(f);
        }
      }
      if (all_ok) {
        out->values.push_back(cand);
        for (int c = 0; c < k; ++c) {
          out->children.push_back(std::move(kid_nodes[c]));
        }
      }
      // Move past `cand` in all participants.
      for (RelState& s : here) s.lo = UpperBound(s, cand);
    }
    return out;
  }

  const FTree& tree_;
  std::vector<int> depth_;
  std::vector<PreparedRel> rels_;
};

}  // namespace

Factorisation FactoriseJoin(const FTree& tree,
                            const std::vector<const Relation*>& relations) {
  TrieBuilder b(tree, relations);
  return b.Build();
}

Factorisation FactoriseRelation(const Relation& rel,
                                const std::vector<AttrId>& attr_order) {
  if (attr_order.size() != static_cast<size_t>(rel.schema().arity())) {
    throw std::invalid_argument(
        "FactoriseRelation: order must cover all attributes");
  }
  FTree tree;
  int parent = -1;
  for (AttrId a : attr_order) {
    parent = tree.AddNode({a}, parent);
  }
  Hyperedge e;
  e.attrs = attr_order;
  std::sort(e.attrs.begin(), e.attrs.end());
  e.weight = static_cast<double>(rel.size());
  e.name = "R";
  tree.AddEdge(std::move(e));
  return FactoriseJoin(tree, {&rel});
}

}  // namespace fdb
