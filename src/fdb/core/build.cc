#include "fdb/core/build.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fdb/core/fact_arena.h"
#include "fdb/exec/cancel.h"
#include "fdb/exec/task_pool.h"

namespace fdb {
namespace {

// A base relation prepared for trie construction: the path columns are
// dictionary-encoded into contiguous per-step arrays (column-major) and
// sorted by the concatenated path order, so the leapfrog intersection
// below compares raw 8-byte codes instead of boxed values.
struct PreparedRel {
  std::vector<std::vector<ValueRef>> cols;  // cols[step][row], sorted
  std::vector<int> node_path;               // f-tree nodes, root-to-leaf
  std::vector<std::vector<int>> node_cols;  // column positions per path node
  size_t num_rows() const { return cols.empty() ? 0 : cols[0].size(); }
};

// Per-branch cursor into one prepared relation.
struct RelState {
  int rel;   // index into prepared relations
  int step;  // next entry of node_path to consume
  int lo, hi;  // active row range [lo, hi)
};

class TrieBuilder {
 public:
  struct Frame {
    std::vector<RelState> here, waiting, routed;
    std::vector<int> ends;
    std::vector<FactPtr> kid_nodes;
    FactBuilder out;
  };

  TrieBuilder(const FTree& tree, const std::vector<const Relation*>& relations)
      : tree_(tree) {
    depth_.assign(tree.num_nodes(), 0);
    for (int n : tree.TopologicalOrder()) {
      depth_[n] = tree.parent(n) < 0 ? 0 : depth_[tree.parent(n)] + 1;
    }
    Prepare(relations);
  }

  // Per-thread build state: the arena new nodes freeze into plus one
  // scratch frame per recursion depth. The prepared relations and the
  // f-tree are shared read-only across contexts.
  struct Ctx {
    explicit Ctx(const FTree& tree, FactArena* a) : arena(a) {
      frames.resize(tree.num_nodes() + 1);
    }
    FactArena* arena;
    std::vector<Frame> frames;
    uint32_t cancel_poll = 0;  // PollCancel counter for BuildNode's loop
  };

  std::vector<FactPtr> BuildRoots(FactArena& arena) {
    Ctx ctx(tree_, &arena);
    std::vector<FactPtr> roots;
    bool empty = false;
    for (int root : tree_.roots()) {
      std::vector<RelState> routed = RouteInitial(root);
      FactPtr f = BuildNode(root, routed, 0, ctx);
      if (f->values.empty()) empty = true;
      roots.push_back(f);
    }
    if (empty) {
      // Normalise: the empty relation is represented by empty root unions.
      for (FactPtr& r : roots) r = FactArena::EmptyNode();
    }
    return roots;
  }

  /// Parallel build: the entries of each root union are scanned up front
  /// (one leapfrog pass that records, per matched root value, the row
  /// range of that value's run in every participating relation) and their
  /// child subtrees are built concurrently, each worker freezing nodes
  /// into its own private arena. The root unions themselves go into
  /// `main`, which must Adopt() every arena returned in `*worker_arenas`
  /// that allocated nodes. The produced factorisation is structurally
  /// identical to BuildRoots(): value order, pruning decisions and child
  /// wiring are all decided per candidate, independent of the number of
  /// threads executing — only which arena holds which subtree differs.
  std::vector<FactPtr> BuildRootsParallel(
      exec::TaskPool& pool, FactArena& main,
      std::vector<std::shared_ptr<FactArena>>* worker_arenas) {
    int parts = pool.num_threads();
    std::vector<std::shared_ptr<FactArena>> arenas;
    std::vector<Ctx> ctxs;
    ctxs.reserve(parts);
    for (int p = 0; p < parts; ++p) {
      arenas.push_back(std::make_shared<FactArena>());
      ctxs.emplace_back(tree_, arenas[p].get());
    }
    std::vector<FactPtr> roots;
    bool empty = false;
    for (int root : tree_.roots()) {
      std::vector<RelState> routed = RouteInitial(root);
      FactPtr f = BuildRootUnion(root, routed, pool, ctxs, main);
      if (f->values.empty()) empty = true;
      roots.push_back(f);
    }
    if (empty) {
      for (FactPtr& r : roots) r = FactArena::EmptyNode();
    }
    for (std::shared_ptr<FactArena>& a : arenas) {
      if (a->num_nodes() > 0) worker_arenas->push_back(std::move(a));
    }
    return roots;
  }

  /// Total prepared input rows — the work estimate FactoriseJoin gates
  /// the parallel path on (tiny query-time joins stay serial: spinning
  /// up per-worker arenas costs more than the build).
  int64_t TotalRows() const {
    int64_t total = 0;
    for (const PreparedRel& p : rels_) {
      total += static_cast<int64_t>(p.num_rows());
    }
    return total;
  }

 private:
  std::vector<RelState> RouteInitial(int root) const {
    std::vector<RelState> routed;
    for (size_t r = 0; r < rels_.size(); ++r) {
      RelState s{static_cast<int>(r), 0, 0,
                 static_cast<int>(rels_[r].num_rows())};
      if (NextNodeIn(s, root)) routed.push_back(s);
    }
    return routed;
  }

  void Prepare(const std::vector<const Relation*>& relations) {
    ValueDict& dict = ValueDict::Default();
    for (const Relation* rel : relations) {
      PreparedRel p;
      // Map each attribute to its f-tree node; collect per-node columns.
      std::vector<std::pair<int, int>> node_col;  // (node, column position)
      for (int i = 0; i < rel->schema().arity(); ++i) {
        int n = tree_.NodeOfAttr(rel->schema().attr(i));
        if (n < 0) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attribute missing from f-tree");
        }
        node_col.emplace_back(n, i);
      }
      std::stable_sort(node_col.begin(), node_col.end(),
                       [this](const auto& a, const auto& b) {
                         return depth_[a.first] < depth_[b.first];
                       });
      for (const auto& [n, col] : node_col) {
        if (p.node_path.empty() || p.node_path.back() != n) {
          p.node_path.push_back(n);
          p.node_cols.emplace_back();
        }
        p.node_cols.back().push_back(col);
      }
      // The nodes must form a chain (path constraint).
      for (size_t i = 1; i < p.node_path.size(); ++i) {
        if (!tree_.IsAncestor(p.node_path[i - 1], p.node_path[i])) {
          throw std::invalid_argument(
              "FactoriseJoin: relation attributes not on one root-to-leaf "
              "path of the f-tree");
        }
      }
      // Keep only rows whose columns agree within each equivalence class.
      std::vector<const Tuple*> kept;
      kept.reserve(rel->rows().size());
      for (const Tuple& row : rel->rows()) {
        bool ok = true;
        for (const auto& cols : p.node_cols) {
          for (size_t i = 1; i < cols.size() && ok; ++i) {
            ok = row[cols[0]] == row[cols[i]];
          }
        }
        if (ok) kept.push_back(&row);
      }
      // Bulk-intern the string cells of the path columns in sorted order so
      // dictionary codes are assigned with (mostly) append-only ranks.
      std::vector<std::string_view> strs;
      for (const auto& cols : p.node_cols) {
        for (const Tuple* row : kept) {
          const Value& v = (*row)[cols[0]];
          if (v.is_string()) strs.push_back(v.as_string());
        }
      }
      if (!strs.empty()) dict.InternBulk(std::move(strs));
      // Encode the path columns column-major, then sort by path order using
      // packed row-major 64-bit order keys (one contiguous integer compare
      // per column; exact ref comparison only on the rare key collision).
      size_t steps = p.node_path.size();
      size_t nrows = kept.size();
      std::vector<std::vector<ValueRef>> cols(steps);
      for (size_t s = 0; s < steps; ++s) {
        int c = p.node_cols[s][0];
        cols[s].reserve(nrows);
        for (size_t r = 0; r < nrows; ++r) {
          cols[s].push_back(dict.Encode((*kept[r])[c]));  // may intern
        }
      }
      // The rank keys and every sort consuming them run with rank shifts
      // frozen: a concurrent out-of-order intern (e.g. InsertTuple on
      // another view) must not move string ranks between two key reads
      // or mid-sort. All interning for this relation happened above, and
      // the freeze is shared — only writers are excluded.
      auto frozen = dict.FreezeRanks();
      std::vector<uint64_t> rowkeys(nrows * steps);
      for (size_t s = 0; s < steps; ++s) {
        for (size_t r = 0; r < nrows; ++r) {
          rowkeys[r * steps + s] = cols[s][r].OrderKey();
        }
      }
      // Column-at-a-time run refinement: sort contiguous (key, row) pairs
      // by the first column, then recursively re-sort each run of equal
      // keys by the next column. All sorts touch sequential memory.
      std::vector<uint32_t> perm(nrows);
      std::iota(perm.begin(), perm.end(), 0);
      std::vector<std::pair<uint64_t, uint32_t>> buf(nrows);
      struct Seg {
        uint32_t lo, hi, col;
      };
      std::vector<Seg> segs;
      if (nrows > 1 && steps > 0) segs.push_back({0, (uint32_t)nrows, 0});
      while (!segs.empty()) {
        Seg seg = segs.back();
        segs.pop_back();
        uint32_t s = seg.col;
        for (uint32_t i = seg.lo; i < seg.hi; ++i) {
          buf[i] = {rowkeys[perm[i] * steps + s], perm[i]};
        }
        std::sort(buf.begin() + seg.lo, buf.begin() + seg.hi);
        for (uint32_t i = seg.lo; i < seg.hi; ++i) perm[i] = buf[i].second;
        for (uint32_t i = seg.lo; i < seg.hi;) {
          uint32_t j = i + 1;
          while (j < seg.hi && buf[j].first == buf[i].first) ++j;
          if (j - i > 1) {
            // Key collisions (distinct values mapping to one key) are rare;
            // detect them and finish such runs with the exact comparator.
            bool collided = false;
            for (uint32_t t = i + 1; t < j && !collided; ++t) {
              collided = !(cols[s][perm[t]] == cols[s][perm[i]]);
            }
            if (collided) {
              std::sort(perm.begin() + i, perm.begin() + j,
                        [&cols, s, steps](uint32_t a, uint32_t b) {
                          for (size_t t = s; t < steps; ++t) {
                            auto cmp = cols[t][a] <=> cols[t][b];
                            if (cmp != std::strong_ordering::equal) {
                              return cmp == std::strong_ordering::less;
                            }
                          }
                          return false;
                        });
            } else if (s + 1 < steps) {
              segs.push_back({i, j, s + 1});
            }
          }
          i = j;
        }
      }
      p.cols.resize(steps);
      for (size_t s = 0; s < steps; ++s) {
        p.cols[s].reserve(nrows);
        for (uint32_t i : perm) p.cols[s].push_back(cols[s][i]);
      }
      rels_.push_back(std::move(p));
    }
  }

  // True if the state's next unconsumed node lies in the subtree rooted at u.
  bool NextNodeIn(const RelState& s, int u) const {
    const PreparedRel& p = rels_[s.rel];
    if (s.step >= static_cast<int>(p.node_path.size())) return false;
    int n = p.node_path[s.step];
    return n == u || tree_.IsAncestor(u, n);
  }

  ValueRef ValueAt(const RelState& s, int row) const {
    return rels_[s.rel].cols[s.step][row];
  }

  // Advances s.lo to the first row in [lo, hi) with column value >= v,
  // galloping from the current cursor (runs of equal values are short, so
  // exponential probing beats a full-range binary search).
  int LowerBound(const RelState& s, ValueRef v) const {
    const ValueRef* col = rels_[s.rel].cols[s.step].data();
    int lo = s.lo, hi = s.hi;
    if (lo >= hi || !(col[lo] < v)) return lo;
    int step = 1;
    while (lo + step < hi && col[lo + step] < v) {
      lo += step;
      step <<= 1;
    }
    // col[lo] < v, so the answer lies in (lo, min(hi, lo + step)].
    int right = std::min(hi, lo + step);
    ++lo;
    while (lo < right) {
      int mid = lo + (right - lo) / 2;
      if (col[mid] < v) {
        lo = mid + 1;
      } else {
        right = mid;
      }
    }
    return lo;
  }

  // One step of the sorted leapfrog intersection, shared by BuildNode
  // and the parallel root scan so the two paths cannot drift: advances
  // `here` to the next value every participant agrees on. On true, *cand
  // is that value, each here[i].lo sits at the start of its run and
  // ends[i] at the run's end; the caller moves lo to ends[i] once done
  // with the value. Returns false when any participant is exhausted.
  bool NextAgreedValue(std::vector<RelState>& here, ValueRef* cand,
                       std::vector<int>& ends) const {
    while (true) {
      for (const RelState& s : here) {
        if (s.lo >= s.hi) return false;
      }
      // Candidate: the maximum of the current heads.
      ValueRef c = ValueAt(here[0], here[0].lo);
      for (size_t i = 1; i < here.size(); ++i) {
        ValueRef v = ValueAt(here[i], here[i].lo);
        if (c < v) c = v;
      }
      // Advance everyone to >= c; restart if someone jumps past it.
      bool agreed = true;
      for (RelState& s : here) {
        s.lo = LowerBound(s, c);
        if (s.lo >= s.hi || !(ValueAt(s, s.lo) == c)) agreed = false;
      }
      if (!agreed) continue;
      // The end of each participant's run of `c`, computed once and
      // reused for every child slot and for the final advance.
      for (size_t i = 0; i < here.size(); ++i) {
        ends[i] = UpperBound(here[i], c);
      }
      *cand = c;
      return true;
    }
  }

  // First row in [lo, hi) with column value > v, galloping from the cursor.
  int UpperBound(const RelState& s, ValueRef v) const {
    const ValueRef* col = rels_[s.rel].cols[s.step].data();
    int lo = s.lo, hi = s.hi;
    if (lo >= hi || v < col[lo]) return lo;
    int step = 1;
    while (lo + step < hi && !(v < col[lo + step])) {
      lo += step;
      step <<= 1;
    }
    int right = std::min(hi, lo + step);
    ++lo;
    while (lo < right) {
      int mid = lo + (right - lo) / 2;
      if (!(v < col[mid])) {
        lo = mid + 1;
      } else {
        right = mid;
      }
    }
    return lo;
  }

  // Builds the union at node u constrained by `states` (all of which have
  // their next node in u's subtree). Returns a (possibly empty) FactNode
  // frozen into the context's arena. Per-depth frames keep all scratch
  // state free of per-call allocation.
  FactPtr BuildNode(int u, const std::vector<RelState>& states, int depth,
                    Ctx& ctx) {
    Frame& fr = ctx.frames[depth];
    // Split the states into those constraining u itself and the waiters.
    fr.here.clear();
    fr.waiting.clear();
    for (const RelState& s : states) {
      if (rels_[s.rel].node_path[s.step] == u) {
        fr.here.push_back(s);
      } else {
        fr.waiting.push_back(s);
      }
    }
    if (fr.here.empty()) {
      throw std::invalid_argument(
          "FactoriseJoin: f-tree node not covered by any relation");
    }
    const std::vector<int>& kids = tree_.children(u);
    int k = static_cast<int>(kids.size());

    fr.out.clear();
    fr.kid_nodes.assign(k, nullptr);
    fr.ends.resize(fr.here.size());
    // Leapfrog-style sorted intersection over the participants.
    ValueRef cand;
    while (NextAgreedValue(fr.here, &cand, fr.ends)) {
      // Time/cancel poll for the serving layer's limits: this loop is the
      // build hot path (arena memory is charged separately in Allocate).
      exec::PollCancel(&ctx.cancel_poll);
      // Matched value `cand`: recurse into children with narrowed ranges.
      bool all_ok = true;
      for (int c = 0; c < k && all_ok; ++c) {
        fr.routed.clear();
        for (size_t i = 0; i < fr.here.size(); ++i) {
          RelState t = fr.here[i];
          t.step++;
          t.hi = fr.ends[i];
          // t.lo unchanged (rows with value == cand start here).
          if (NextNodeIn(t, kids[c])) fr.routed.push_back(t);
        }
        for (const RelState& s : fr.waiting) {
          if (NextNodeIn(s, kids[c])) fr.routed.push_back(s);
        }
        FactPtr f = BuildNode(kids[c], fr.routed, depth + 1, ctx);
        if (f->values.empty()) {
          all_ok = false;
        } else {
          fr.kid_nodes[c] = f;
        }
      }
      if (all_ok) {
        fr.out.values.push_back(cand);
        for (int c = 0; c < k; ++c) {
          fr.out.children.push_back(fr.kid_nodes[c]);
        }
      }
      // Move past `cand` in all participants.
      for (size_t i = 0; i < fr.here.size(); ++i) {
        fr.here[i].lo = fr.ends[i];
      }
    }
    return fr.out.Finish(*ctx.arena);
  }

  // One matched value of a root union: the row range of its run in every
  // `here` participant (waiting participants are unconstrained at the
  // root and shared by all candidates).
  struct RootCand {
    ValueRef v;
    std::vector<std::pair<int, int>> ranges;  // per here-state [lo, hi)
  };

  // Builds the union at root node u like BuildNode, but runs the
  // value-matching leapfrog as a standalone scan first and then builds
  // each matched value's child subtrees in parallel across the contexts.
  // Per-candidate results land in slots indexed by candidate, so the
  // assembled union is identical no matter how chunks map to threads.
  FactPtr BuildRootUnion(int u, const std::vector<RelState>& states,
                         exec::TaskPool& pool, std::vector<Ctx>& ctxs,
                         FactArena& main) {
    std::vector<RelState> here, waiting;
    for (const RelState& s : states) {
      if (rels_[s.rel].node_path[s.step] == u) {
        here.push_back(s);
      } else {
        waiting.push_back(s);
      }
    }
    if (here.empty()) {
      throw std::invalid_argument(
          "FactoriseJoin: f-tree node not covered by any relation");
    }
    const std::vector<int>& kids = tree_.children(u);
    int k = static_cast<int>(kids.size());

    // --- scan: the leapfrog of BuildNode without the recursion ----------
    std::vector<RootCand> cands;
    std::vector<int> ends(here.size());
    ValueRef cand;
    while (NextAgreedValue(here, &cand, ends)) {
      RootCand rc;
      rc.v = cand;
      rc.ranges.reserve(here.size());
      for (size_t i = 0; i < here.size(); ++i) {
        rc.ranges.emplace_back(here[i].lo, ends[i]);
      }
      cands.push_back(std::move(rc));
      for (size_t i = 0; i < here.size(); ++i) here[i].lo = ends[i];
    }

    // Routing of participants into child slots depends only on (rel,
    // step), so it is shared by every candidate.
    std::vector<std::vector<int>> here_route(k);
    std::vector<std::vector<RelState>> waiting_route(k);
    for (int c = 0; c < k; ++c) {
      for (size_t i = 0; i < here.size(); ++i) {
        RelState t = here[i];
        t.step++;
        if (NextNodeIn(t, kids[c])) here_route[c].push_back(int(i));
      }
      for (const RelState& s : waiting) {
        if (NextNodeIn(s, kids[c])) waiting_route[c].push_back(s);
      }
    }

    // --- fork: per-candidate subtree builds into worker arenas ----------
    int64_t n = static_cast<int64_t>(cands.size());
    std::vector<FactPtr> kid_results(cands.size() * k, nullptr);
    std::vector<uint8_t> ok(cands.size(), 0);
    pool.ParallelFor(n, /*grain=*/1, [&](int part, int64_t lo, int64_t hi) {
      Ctx& ctx = ctxs[part];
      std::vector<RelState> routed;
      for (int64_t ci = lo; ci < hi; ++ci) {
        const RootCand& rc = cands[ci];
        bool all_ok = true;
        for (int c = 0; c < k && all_ok; ++c) {
          routed.clear();
          for (int i : here_route[c]) {
            RelState t = here[i];
            t.step++;
            t.lo = rc.ranges[i].first;
            t.hi = rc.ranges[i].second;
            routed.push_back(t);
          }
          routed.insert(routed.end(), waiting_route[c].begin(),
                        waiting_route[c].end());
          FactPtr f = BuildNode(kids[c], routed, 0, ctx);
          if (f->values.empty()) {
            all_ok = false;
          } else {
            kid_results[ci * k + c] = f;
          }
        }
        ok[ci] = all_ok;
      }
    });

    // --- join: assemble the root union in candidate order ---------------
    FactBuilder out;
    for (size_t ci = 0; ci < cands.size(); ++ci) {
      if (!ok[ci]) continue;
      out.values.push_back(cands[ci].v);
      for (int c = 0; c < k; ++c) {
        out.children.push_back(kid_results[ci * k + c]);
      }
    }
    return out.Finish(main);
  }

  const FTree& tree_;
  std::vector<int> depth_;
  std::vector<PreparedRel> rels_;
};

}  // namespace

namespace {
// Below this many total input rows a build is too small to fork.
constexpr int64_t kMinParallelBuildRows = 256;
}  // namespace

Factorisation FactoriseJoin(const FTree& tree,
                            const std::vector<const Relation*>& relations) {
  auto arena = std::make_shared<FactArena>();
  TrieBuilder b(tree, relations);
  exec::TaskPool& pool = exec::TaskPool::Default();
  std::vector<FactPtr> roots;
  if (pool.num_threads() > 1 && b.TotalRows() >= kMinParallelBuildRows) {
    // Root union entries are built concurrently, each worker allocating
    // into a private arena the result adopts: workers never contend on
    // allocation, and subtrees handed over stay alive with the result.
    std::vector<std::shared_ptr<FactArena>> worker_arenas;
    roots = b.BuildRootsParallel(pool, *arena, &worker_arenas);
    for (const std::shared_ptr<FactArena>& a : worker_arenas) {
      arena->Adopt(a);
    }
  } else {
    roots = b.BuildRoots(*arena);
  }
  return Factorisation(tree, std::move(roots), std::move(arena));
}

Factorisation FactoriseRelation(const Relation& rel,
                                const std::vector<AttrId>& attr_order) {
  if (attr_order.size() != static_cast<size_t>(rel.schema().arity())) {
    throw std::invalid_argument(
        "FactoriseRelation: order must cover all attributes");
  }
  FTree tree;
  int parent = -1;
  for (AttrId a : attr_order) {
    parent = tree.AddNode({a}, parent);
  }
  Hyperedge e;
  e.attrs = attr_order;
  std::sort(e.attrs.begin(), e.attrs.end());
  e.weight = static_cast<double>(rel.size());
  e.name = "R";
  tree.AddEdge(std::move(e));
  return FactoriseJoin(tree, {&rel});
}

}  // namespace fdb
