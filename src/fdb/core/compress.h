#ifndef FDB_CORE_COMPRESS_H_
#define FDB_CORE_COMPRESS_H_

#include <cstdint>

#include "fdb/core/factorisation.h"

namespace fdb {

/// Shares structurally identical subexpressions bottom-up, turning the
/// factorisation tree into a DAG — a lightweight step toward the
/// representations "more succinct than f-trees" the paper's conclusion
/// points at (§8; the line of work that became d-representations).
///
/// The represented relation is unchanged and every read-only algorithm
/// (enumeration, aggregation, flattening) works as before, since they treat
/// child pointers as values. Restructuring operators also remain correct —
/// they may simply re-duplicate shared nodes they rewrite. Only memory and
/// cache footprint shrink: repeated subexpressions (e.g. identical price
/// lists under many packages) are stored once.
///
/// Like Factorisation::Compact (which copies without canonicalising),
/// compression rebuilds every live node into a fresh arena, so it doubles
/// as a generational compaction step: dead node versions are dropped and
/// the live-size watermark used by MaybeCompact is reset.
void CompressInPlace(Factorisation* f);

/// The number of singletons physically stored, counting each shared
/// subexpression once. CountSingletons() counts the logical tree; after
/// CompressInPlace the stored count can be much smaller.
int64_t CountStoredSingletons(const Factorisation& f);

}  // namespace fdb

#endif  // FDB_CORE_COMPRESS_H_
