#include "fdb/core/order.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fdb {

bool SupportsGrouping(const FTree& tree, const std::vector<int>& g_nodes) {
  std::unordered_set<int> g(g_nodes.begin(), g_nodes.end());
  for (int n : g_nodes) {
    int p = tree.parent(n);
    if (p >= 0 && !g.count(p)) return false;
  }
  return true;
}

bool SupportsOrder(const FTree& tree, const std::vector<int>& o_nodes) {
  std::unordered_set<int> before;
  for (int n : o_nodes) {
    int p = tree.parent(n);
    if (p >= 0 && !before.count(p)) return false;
    before.insert(n);
  }
  return true;
}

std::vector<int> PlanRestructure(const FTree& tree,
                                 const std::vector<int>& o_nodes,
                                 const std::vector<int>& g_nodes) {
  FTree sim = tree;  // simulate swaps on a copy
  std::vector<int> plan;
  std::unordered_set<int> settled;

  // Settle the order-by nodes left to right: push each up until its parent
  // is an earlier (settled) order node or it becomes a root. Settled nodes
  // are never moved by later swaps, so the existing grouping below them is
  // reused (partial re-sorting, Experiment 4).
  for (int n : o_nodes) {
    while (sim.parent(n) >= 0 && !settled.count(sim.parent(n))) {
      plan.push_back(n);
      sim.SwapUp(n);
    }
    settled.insert(n);
  }
  // Settle the remaining grouping nodes (order within the group does not
  // matter, Theorem 1): shallowest first.
  std::vector<int> rest;
  for (int n : g_nodes) {
    if (!settled.count(n)) rest.push_back(n);
  }
  auto depth = [&sim](int n) {
    int d = 0;
    for (int p = sim.parent(n); p >= 0; p = sim.parent(p)) ++d;
    return d;
  };
  std::sort(rest.begin(), rest.end(),
            [&](int a, int b) { return depth(a) < depth(b); });
  for (int n : rest) {
    while (sim.parent(n) >= 0 && !settled.count(sim.parent(n))) {
      plan.push_back(n);
      sim.SwapUp(n);
    }
    settled.insert(n);
  }
  return plan;
}

std::vector<int> OrderedVisitSequence(const FTree& tree,
                                      const std::vector<int>& o_nodes) {
  if (!SupportsOrder(tree, o_nodes)) {
    throw std::invalid_argument(
        "OrderedVisitSequence: tree does not support the requested order "
        "(Theorem 2)");
  }
  std::vector<int> out = o_nodes;
  std::unordered_set<int> seen(o_nodes.begin(), o_nodes.end());
  for (int n : tree.TopologicalOrder()) {
    if (!seen.count(n)) out.push_back(n);
  }
  return out;
}

}  // namespace fdb
