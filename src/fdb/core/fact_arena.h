#ifndef FDB_CORE_FACT_ARENA_H_
#define FDB_CORE_FACT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fdb/relational/value_dict.h"

namespace fdb {

struct FactNode;
/// Factorised data is immutable and shared: operators build new nodes and
/// share untouched subexpressions. Nodes are plain pointers into a
/// FactArena; the owning Factorisation keeps the arena (and, transitively,
/// every arena it shares nodes with) alive via shared_ptr.
using FactPtr = const FactNode*;

/// A read-only view over the values of one union, contiguous in its arena.
struct ValueSpan {
  const ValueRef* ptr = nullptr;
  uint32_t len = 0;

  const ValueRef* begin() const { return ptr; }
  const ValueRef* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  const ValueRef& operator[](size_t i) const { return ptr[i]; }
  const ValueRef& front() const { return ptr[0]; }
  const ValueRef& back() const { return ptr[len - 1]; }
};

/// A read-only view over the flattened child matrix of one union.
struct ChildSpan {
  const FactNode* const* ptr = nullptr;
  uint32_t len = 0;

  const FactNode* const* begin() const { return ptr; }
  const FactNode* const* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  FactPtr operator[](size_t i) const { return ptr[i]; }
};

/// The factorised data attached to one f-tree node instance: the union
/// ⋃_i ⟨A:vᵢ⟩ × E_{i,0} × … × E_{i,k-1}, where k is the number of f-tree
/// children of the node and E_{i,c} is the child union for value vᵢ and
/// f-tree child slot c.
///
/// Invariants: `values` is sorted ascending with no duplicates (paper §4.1);
/// `children.size() == values.size() * k`; no child pointer is null or
/// empty (empty branches are pruned by the operators; only whole roots of a
/// Factorisation may be empty, representing ∅). The header and both arrays
/// live in one contiguous arena block.
struct FactNode {
  ValueSpan values;
  ChildSpan children;

  int size() const { return static_cast<int>(values.size()); }
  FactPtr child(int i, int k, int c) const {
    return children[static_cast<size_t>(i) * k + c];
  }
};

/// Bump-pointer storage for FactNodes. Each node is one allocation holding
/// the header, its value array and its child array back to back, so a
/// union scan touches one contiguous block instead of three heap objects.
/// Allocation never frees individually: operators append new versions and
/// whole arenas die with the last Factorisation that references them.
/// Long op/update chains reclaim dead versions via generational compaction
/// (Factorisation::Compact copies the live roots into a fresh arena).
///
/// storage::MappedArena subclasses this to serve nodes straight out of an
/// mmapped snapshot segment; new nodes allocated into such an arena (e.g.
/// by updates on an opened view) land in ordinary heap chunks as usual.
class FactArena {
 public:
  FactArena() = default;
  virtual ~FactArena() = default;
  FactArena(const FactArena&) = delete;
  FactArena& operator=(const FactArena&) = delete;

  /// Copies the given arrays into the arena and returns the new node.
  /// Returns EmptyNode() when nv == 0 && nk == 0 (no allocation).
  FactPtr NewNode(const ValueRef* vals, size_t nv, const FactPtr* kids,
                  size_t nk);

  /// Keeps `other` (and everything it adopted) alive as long as this arena
  /// lives; call when new nodes reference nodes owned by `other`.
  void Adopt(const std::shared_ptr<const FactArena>& other);

  /// True if `other` is this arena or one this arena keeps alive
  /// (transitively — Adopt flattens chains to depth one). The storage
  /// layer's incremental-checkpoint eligibility test: nodes indexed
  /// against `other` can only be referenced by address if the current
  /// arena still pins them, else a recycled address could alias a new
  /// node (ABA).
  bool KeepsAlive(const FactArena* other) const;

  /// True if `node`'s header lies inside memory this arena itself
  /// allocated (not its adopted parents). Subclasses with out-of-chunk
  /// node storage (MappedArena) extend the test to it. An O(#chunks)
  /// probe for the invariant checker, not a hot path.
  virtual bool OwnsNodeMemory(const FactNode* node) const;

  /// True if `node` is the canonical empty union, owned by this arena,
  /// or owned by any arena this one keeps alive — i.e. the node cannot
  /// dangle while this arena lives. The checker's reachability test for
  /// cross-arena leaks.
  bool ChainOwnsNode(FactPtr node) const;

  /// The canonical empty union (static storage; never in any arena).
  static FactPtr EmptyNode();

  /// A process-wide immortal arena backing ad-hoc nodes built without an
  /// explicit arena (MakeLeaf/MakeNode convenience constructors, tests).
  static const std::shared_ptr<FactArena>& Scratch();

  int64_t bytes_used() const { return bytes_; }
  int64_t num_nodes() const { return nodes_; }

  /// Process-wide monotone creation stamp: arena A was constructed before
  /// arena B iff A.generation() < B.generation(). The storage layer uses
  /// it to tell a rebuild (compaction/compression installed a *fresh*
  /// arena, invalidating node identities) from ordinary update growth.
  uint64_t generation() const { return generation_; }

 protected:
  // Subclasses with out-of-chunk node storage (MappedArena) account for it
  // here so bytes_used()/num_nodes() stay meaningful for stats and the
  // compaction policy.
  int64_t bytes_ = 0;
  int64_t nodes_ = 0;

 private:
  void* Allocate(size_t bytes);
  static uint64_t NextGeneration();

  static constexpr size_t kFirstChunk = size_t{1} << 12;
  static constexpr size_t kMaxChunk = size_t{1} << 20;

  const uint64_t generation_ = NextGeneration();
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<size_t> chunk_sizes_;  ///< capacity of each chunk
  std::vector<std::shared_ptr<const FactArena>> parents_;
  size_t used_ = 0;
  size_t cap_ = 0;
};

/// Scratch vectors for assembling one union before freezing it into an
/// arena. Reusable: Finish() does not clear; call clear() between unions.
struct FactBuilder {
  std::vector<ValueRef> values;
  std::vector<FactPtr> children;

  void clear() {
    values.clear();
    children.clear();
  }
  bool empty() const { return values.empty(); }

  /// Freezes into `arena` (or returns the canonical empty node).
  FactPtr Finish(FactArena& arena) const {
    return arena.NewNode(values.data(), values.size(), children.data(),
                         children.size());
  }
};

}  // namespace fdb

#endif  // FDB_CORE_FACT_ARENA_H_
