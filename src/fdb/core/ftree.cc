#include "fdb/core/ftree.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace fdb {

std::vector<AttrId> FTreeNode::AllAttrIds() const {
  if (agg.has_value()) return {agg->id};
  return attrs;
}

void FTree::AddEdge(Hyperedge edge) {
  std::sort(edge.attrs.begin(), edge.attrs.end());
  edge.attrs.erase(std::unique(edge.attrs.begin(), edge.attrs.end()),
                   edge.attrs.end());
  edges_.push_back(std::move(edge));
}

int FTree::AddNode(std::vector<AttrId> attrs, int parent) {
  if (attrs.empty()) {
    throw std::invalid_argument("FTree::AddNode: empty attribute class");
  }
  std::sort(attrs.begin(), attrs.end());
  FTreeNode n;
  n.attrs = std::move(attrs);
  n.parent = parent;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  if (parent < 0) {
    roots_.push_back(id);
  } else {
    nodes_[parent].children.push_back(id);
  }
  return id;
}

int FTree::AddAggregateNode(AggregateLabel label, int parent) {
  FTreeNode n;
  n.agg = std::move(label);
  n.parent = parent;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  if (parent < 0) {
    roots_.push_back(id);
  } else {
    nodes_[parent].children.push_back(id);
  }
  return id;
}

std::vector<int> FTree::TopologicalOrder() const {
  std::vector<int> order;
  for (int r : roots_) CollectSubtree(r, &order);
  return order;
}

std::vector<int> FTree::SubtreeNodes(int u) const {
  std::vector<int> out;
  CollectSubtree(u, &out);
  return out;
}

void FTree::CollectSubtree(int u, std::vector<int>* out) const {
  out->push_back(u);
  for (int c : nodes_[u].children) CollectSubtree(c, out);
}

std::vector<AttrId> FTree::SubtreeAttrIds(int u) const {
  std::vector<AttrId> out;
  for (int n : SubtreeNodes(u)) {
    auto ids = nodes_[n].AllAttrIds();
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AttrId> FTree::SubtreeOriginalAttrs(int u) const {
  std::vector<AttrId> out;
  for (int n : SubtreeNodes(u)) {
    const FTreeNode& nd = nodes_[n];
    if (nd.is_aggregate()) {
      out.insert(out.end(), nd.agg->over.begin(), nd.agg->over.end());
    } else {
      out.insert(out.end(), nd.attrs.begin(), nd.attrs.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int FTree::NodeOfAttr(AttrId a) const {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    const FTreeNode& n = nodes_[i];
    if (!n.alive) continue;
    if (n.is_aggregate()) {
      if (n.agg->id == a) return i;
    } else if (std::binary_search(n.attrs.begin(), n.attrs.end(), a)) {
      return i;
    }
  }
  return -1;
}

bool FTree::IsAncestor(int anc, int desc) const {
  for (int p = nodes_[desc].parent; p >= 0; p = nodes_[p].parent) {
    if (p == anc) return true;
  }
  return false;
}

int FTree::RootOf(int u) const {
  while (nodes_[u].parent >= 0) u = nodes_[u].parent;
  return u;
}

int FTree::SlotOf(int child) const {
  const std::vector<int>& sibs =
      nodes_[child].parent < 0 ? roots_ : nodes_[nodes_[child].parent].children;
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (sibs[i] == child) return static_cast<int>(i);
  }
  throw std::logic_error("FTree::SlotOf: node not found among siblings");
}

namespace {
bool Intersects(const std::vector<AttrId>& sorted_edge,
                const std::vector<AttrId>& ids) {
  for (AttrId a : ids) {
    if (std::binary_search(sorted_edge.begin(), sorted_edge.end(), a)) {
      return true;
    }
  }
  return false;
}
}  // namespace

bool FTree::NodesDependent(int x, int y) const {
  auto xs = nodes_[x].AllAttrIds();
  auto ys = nodes_[y].AllAttrIds();
  for (const Hyperedge& e : edges_) {
    if (Intersects(e.attrs, xs) && Intersects(e.attrs, ys)) return true;
  }
  return false;
}

bool FTree::SubtreeDependsOn(int u, int y) const {
  for (int n : SubtreeNodes(u)) {
    if (NodesDependent(n, y)) return true;
  }
  return false;
}

bool FTree::SatisfiesPathConstraint() const {
  std::vector<int> live;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[i].alive) live.push_back(i);
  }
  for (size_t i = 0; i < live.size(); ++i) {
    for (size_t j = i + 1; j < live.size(); ++j) {
      int x = live[i], y = live[j];
      if (!NodesDependent(x, y)) continue;
      if (!IsAncestor(x, y) && !IsAncestor(y, x)) return false;
    }
  }
  return true;
}

std::vector<int> FTree::SwapUp(int b) {
  int a = nodes_[b].parent;
  if (a < 0) throw std::invalid_argument("FTree::SwapUp: node is a root");
  int grand = nodes_[a].parent;

  // Partition b's children into those whose subtree depends on a (they move
  // under a, preserving the path constraint) and the rest (stay under b).
  std::vector<int> moved_slots;
  std::vector<int> stay, move;
  const std::vector<int> b_children = nodes_[b].children;
  for (size_t i = 0; i < b_children.size(); ++i) {
    if (SubtreeDependsOn(b_children[i], a)) {
      move.push_back(b_children[i]);
      moved_slots.push_back(static_cast<int>(i));
    } else {
      stay.push_back(b_children[i]);
    }
  }

  // Detach b from a's children.
  auto& ac = nodes_[a].children;
  ac.erase(std::remove(ac.begin(), ac.end(), b), ac.end());
  // a gains the dependent children of b, appended after its own.
  for (int m : move) {
    nodes_[m].parent = a;
    ac.push_back(m);
  }
  // b takes a's place.
  nodes_[b].parent = grand;
  if (grand < 0) {
    std::replace(roots_.begin(), roots_.end(), a, b);
  } else {
    std::replace(nodes_[grand].children.begin(), nodes_[grand].children.end(),
                 a, b);
  }
  // b keeps the independent children, then gains a as its last child.
  nodes_[b].children = stay;
  nodes_[b].children.push_back(a);
  nodes_[a].parent = b;
  return moved_slots;
}

void FTree::MergeSiblings(int a, int b) {
  FTreeNode& na = nodes_[a];
  FTreeNode& nb = nodes_[b];
  if (na.parent != nb.parent) {
    throw std::invalid_argument("FTree::MergeSiblings: not siblings");
  }
  if (na.is_aggregate() || nb.is_aggregate()) {
    throw std::invalid_argument(
        "FTree::MergeSiblings: cannot merge aggregate nodes");
  }
  na.attrs.insert(na.attrs.end(), nb.attrs.begin(), nb.attrs.end());
  std::sort(na.attrs.begin(), na.attrs.end());
  for (int c : nb.children) {
    nodes_[c].parent = a;
    na.children.push_back(c);
  }
  nb.children.clear();
  nb.alive = false;
  if (nb.parent < 0) {
    roots_.erase(std::remove(roots_.begin(), roots_.end(), b), roots_.end());
  } else {
    auto& pc = nodes_[nb.parent].children;
    pc.erase(std::remove(pc.begin(), pc.end(), b), pc.end());
  }
}

void FTree::AbsorbDescendant(int a, int b) {
  if (!IsAncestor(a, b)) {
    throw std::invalid_argument("FTree::AbsorbDescendant: not a descendant");
  }
  FTreeNode& na = nodes_[a];
  FTreeNode& nb = nodes_[b];
  if (na.is_aggregate() || nb.is_aggregate()) {
    throw std::invalid_argument(
        "FTree::AbsorbDescendant: cannot absorb aggregate nodes");
  }
  na.attrs.insert(na.attrs.end(), nb.attrs.begin(), nb.attrs.end());
  std::sort(na.attrs.begin(), na.attrs.end());
  int p = nb.parent;
  auto& pc = nodes_[p].children;
  // b's children take b's place, appended at the end of the parent's list
  // (the matching data transformation mirrors this slot edit).
  pc.erase(std::remove(pc.begin(), pc.end(), b), pc.end());
  for (int c : nb.children) {
    nodes_[c].parent = p;
    pc.push_back(c);
  }
  nb.children.clear();
  nb.alive = false;
}

std::vector<int> FTree::ReplaceSubtreeWithAggregates(
    int u, std::vector<AggregateLabel> labels) {
  if (labels.empty()) {
    throw std::invalid_argument("ReplaceSubtreeWithAggregates: no labels");
  }
  int p = nodes_[u].parent;
  std::vector<AttrId> gone = SubtreeAttrIds(u);

  // Merge all hyperedges touching the removed attributes (projecting away U
  // makes the attributes they connect to mutually dependent, §3), and attach
  // a copy per new aggregate attribute so each depends on everything U
  // depended on while remaining independent of its sibling aggregates.
  Hyperedge merged;
  merged.weight = 1.0;
  std::vector<Hyperedge> kept;
  bool any = false;
  for (Hyperedge& e : edges_) {
    if (Intersects(e.attrs, gone)) {
      any = true;
      for (AttrId a : e.attrs) {
        if (!std::binary_search(gone.begin(), gone.end(), a)) {
          merged.attrs.push_back(a);
        }
      }
      merged.weight *= e.weight;
      if (!merged.name.empty()) merged.name += "*";
      merged.name += e.name;
    } else {
      kept.push_back(std::move(e));
    }
  }
  std::sort(merged.attrs.begin(), merged.attrs.end());
  merged.attrs.erase(std::unique(merged.attrs.begin(), merged.attrs.end()),
                     merged.attrs.end());
  edges_ = std::move(kept);

  // Tombstone the subtree.
  for (int n : SubtreeNodes(u)) {
    nodes_[n].alive = false;
    nodes_[n].children.clear();
  }

  // New aggregate leaves: first takes u's slot, the rest appended.
  // Note: re-resolve the sibling list on every use — pushing into nodes_
  // can reallocate it.
  size_t slot;
  {
    const std::vector<int>& sibs = p < 0 ? roots_ : nodes_[p].children;
    auto it = std::find(sibs.begin(), sibs.end(), u);
    assert(it != sibs.end());
    slot = static_cast<size_t>(it - sibs.begin());
  }

  std::vector<int> new_ids;
  for (size_t i = 0; i < labels.size(); ++i) {
    FTreeNode n;
    n.agg = labels[i];
    n.parent = p;
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
    new_ids.push_back(id);
    std::vector<int>& sibs = p < 0 ? roots_ : nodes_[p].children;
    if (i == 0) {
      sibs[slot] = id;
    } else {
      sibs.push_back(id);
    }
    if (any) {
      Hyperedge e = merged;
      e.attrs.push_back(labels[i].id);
      std::sort(e.attrs.begin(), e.attrs.end());
      edges_.push_back(std::move(e));
    }
  }
  return new_ids;
}

void FTree::RemoveLeaf(int u) {
  FTreeNode& n = nodes_[u];
  if (!n.children.empty()) {
    throw std::invalid_argument("FTree::RemoveLeaf: node has children");
  }
  n.alive = false;
  if (n.parent < 0) {
    roots_.erase(std::remove(roots_.begin(), roots_.end(), u), roots_.end());
  } else {
    auto& pc = nodes_[n.parent].children;
    pc.erase(std::remove(pc.begin(), pc.end(), u), pc.end());
  }
  // Remove the attributes from the dependency hypergraph.
  std::vector<AttrId> gone = n.AllAttrIds();
  std::sort(gone.begin(), gone.end());
  for (Hyperedge& e : edges_) {
    std::erase_if(e.attrs, [&gone](AttrId a) {
      return std::binary_search(gone.begin(), gone.end(), a);
    });
  }
}

void FTree::RestoreWiring(const std::vector<bool>& alive,
                          const std::vector<int>& parents,
                          const std::vector<std::vector<int>>& children,
                          std::vector<int> roots) {
  if (alive.size() != nodes_.size() || parents.size() != nodes_.size() ||
      children.size() != nodes_.size()) {
    throw std::invalid_argument("FTree::RestoreWiring: size mismatch");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].alive = alive[i];
    nodes_[i].parent = parents[i];
    nodes_[i].children = children[i];
  }
  roots_ = std::move(roots);
}

FTree FTree::Restore(std::vector<RestoredNode> nodes, std::vector<int> roots,
                     AttributeRegistry* reg) {
  FTree tree;
  for (RestoredNode& n : nodes) {
    if (n.agg.has_value()) {
      std::sort(n.agg->over.begin(), n.agg->over.end());
      tree.AddAggregateNode(std::move(*n.agg), -1);
    } else if (n.attrs.empty()) {
      // Only tombstoned nodes may have lost their class; a live one would
      // leak the placeholder into schemas.
      if (n.alive) {
        throw std::invalid_argument(
            "FTree::Restore: live atomic node without attributes");
      }
      tree.AddNode({reg->Intern("__tombstone")}, -1);
    } else {
      tree.AddNode(std::move(n.attrs), -1);
    }
  }
  std::vector<bool> alive;
  std::vector<int> parents;
  std::vector<std::vector<int>> children;
  for (RestoredNode& n : nodes) {
    alive.push_back(n.alive);
    parents.push_back(n.parent);
    children.push_back(std::move(n.children));
  }
  tree.RestoreWiring(alive, parents, children, std::move(roots));
  std::string why;
  if (!tree.ValidateWiring(&why)) {
    throw std::invalid_argument("FTree::Restore: inconsistent wiring: " + why);
  }
  return tree;
}

bool FTree::ValidateWiring(std::string* why) const {
  auto fail = [why](const std::string& what) {
    if (why) *why = what;
    return false;
  };
  int n = num_nodes();
  std::vector<bool> seen(nodes_.size(), false);
  // Iterative DFS: corrupt input may chain thousands of nodes in a line.
  std::vector<int> stack;
  for (int r : roots_) {
    if (r < 0 || r >= n) return fail("root id out of range");
    if (nodes_[r].parent != -1) return fail("root with a parent");
    if (seen[r]) return fail("duplicate root");
    seen[r] = true;
    stack.push_back(r);
  }
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    if (!nodes_[u].alive) return fail("dead node reachable from a root");
    for (int c : nodes_[u].children) {
      if (c < 0 || c >= n) return fail("child id out of range");
      if (nodes_[c].parent != u) return fail("child/parent mismatch");
      if (seen[c]) return fail("node reached twice (shared or cyclic)");
      seen[c] = true;
      stack.push_back(c);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (nodes_[i].alive && !seen[i]) {
      return fail("live node unreachable from the roots");
    }
    if (!nodes_[i].alive && !nodes_[i].children.empty()) {
      return fail("tombstoned node with children");
    }
  }
  return true;
}

void FTree::RenameAggregate(int u, AttrId new_id) {
  FTreeNode& n = nodes_[u];
  if (!n.is_aggregate()) {
    throw std::invalid_argument("FTree::RenameAggregate: not an aggregate");
  }
  AttrId old = n.agg->id;
  n.agg->id = new_id;
  for (Hyperedge& e : edges_) {
    for (AttrId& a : e.attrs) {
      if (a == old) a = new_id;
    }
    std::sort(e.attrs.begin(), e.attrs.end());
  }
}

namespace {
void PrintNode(const FTree& t, const AttributeRegistry& reg, int u, int depth,
               std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  const FTreeNode& n = t.node(u);
  if (n.is_aggregate()) {
    *os << reg.Name(n.agg->id);
  } else {
    for (size_t i = 0; i < n.attrs.size(); ++i) {
      if (i) *os << "=";
      *os << reg.Name(n.attrs[i]);
    }
  }
  *os << "\n";
  for (int c : n.children) PrintNode(t, reg, c, depth + 1, os);
}
}  // namespace

std::string FTree::ToString(const AttributeRegistry& reg) const {
  std::ostringstream os;
  for (int r : roots_) PrintNode(*this, reg, r, 0, &os);
  return os.str();
}

}  // namespace fdb
