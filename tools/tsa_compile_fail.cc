// Negative compile test for the thread-safety annotations: this file
// reads and writes a GUARDED_BY field without holding its mutex, so
//
//   clang++ -Wthread-safety -Werror -Isrc -c tools/tsa_compile_fail.cc
//
// MUST fail. The CI `thread-safety` job builds it expecting a non-zero
// exit, proving the analysis is actually wired up and would reject
// misguarded engine code — a green annotation build alone cannot
// distinguish "no bugs" from "annotations not enforced".
//
// Under GCC the annotations are no-ops and the file compiles; the CI
// step therefore runs it only in the clang job.

#include "fdb/base/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): touches value_ with mu_ unheld.
  void Bump() { ++value_; }
  int Get() const { return value_; }

 private:
  mutable fdb::base::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get();
}
