#ifndef FDB_BENCH_BENCH_METRICS_H_
#define FDB_BENCH_BENCH_METRICS_H_

// Registry-backed timing for the bench emitters: every duration written
// into a BENCH_*.json comes out of the metrics registry (histogram sum
// deltas), never a bench-local stopwatch, so the JSON fields and a live
// \metrics dump can never disagree. Callers must have metrics enabled
// (obs::SetMetricsEnabled(true)) or every delta reads back as zero.

#include <cstdint>
#include <string>
#include <utility>

#include "fdb/obs/metrics.h"

namespace fdb {
namespace bench {

/// Seconds accumulated in `hist` since `before` was snapshotted.
inline double HistDeltaSeconds(const obs::HistogramSnapshot& before,
                               const obs::Histogram& hist) {
  return static_cast<double>(hist.Snapshot().sum - before.sum) / 1e9;
}

/// Runs `fn` once, recording its wall time into the registry histogram
/// `bench.<name>_ns`, and returns the duration as read back from the
/// registry rather than from a local stopwatch.
template <typename Fn>
inline double TimedIntoRegistry(const std::string& name, Fn&& fn) {
  obs::Histogram& hist = obs::Registry::Instance().GetHistogram(
      "bench." + name + "_ns", "ns", "self-timed bench section");
  obs::HistogramSnapshot before = hist.Snapshot();
  {
    obs::ScopedLatency lat(hist);
    std::forward<Fn>(fn)();
  }
  return HistDeltaSeconds(before, hist);
}

/// Runs `fn` once and returns the seconds the *engine's own* histogram
/// `metric` accumulated while it ran — the bench then reports exactly
/// what the instrumented subsystem measured about itself (e.g.
/// storage.checkpoint_ns around a Database::Checkpoint call).
template <typename Fn>
inline double SubsystemSeconds(const std::string& metric, Fn&& fn) {
  obs::Histogram& hist = obs::Registry::Instance().GetHistogram(metric);
  obs::HistogramSnapshot before = hist.Snapshot();
  std::forward<Fn>(fn)();
  return HistDeltaSeconds(before, hist);
}

/// Current value of a registry counter (0 before first registration).
inline uint64_t CounterValue(const std::string& name) {
  return obs::Registry::Instance().GetCounter(name).Value();
}

}  // namespace bench
}  // namespace fdb

#endif  // FDB_BENCH_BENCH_METRICS_H_
