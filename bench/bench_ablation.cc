// Ablations for the design choices called out in DESIGN.md:
//   (a) partial aggregation on/off — evaluate Q2 with the greedy plan
//       (partial aggregates interleaved with swaps) versus restructuring
//       only and aggregating the atomic subtrees on the fly;
//   (b) greedy versus exhaustive plan search (planning time);
//   (c) swap-based partial re-sort versus re-factorising from scratch
//       versus flat std::sort (Q13).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "fdb/core/compress.h"
#include "fdb/relational/rdb_ops.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/swap.h"
#include "fdb/optimizer/exhaustive.h"

namespace fdb {
namespace bench {
namespace {

constexpr int kScale = 8;

// (a) Q2 with full partial aggregation (the normal engine path).
void PartialAggregationOn(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  BoundQuery query = Bind(ParseSql(AggSql(2, "R1")), b.db.get());
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    benchmark::DoNotOptimize(r.flat);
  }
}

// (a) Q2 with partial aggregation disabled: push customer up with swaps
// only, then aggregate the remaining *atomic* subtrees during enumeration.
// The intermediate factorisations stay large — the point of §3.
void PartialAggregationOff(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  AttributeRegistry& reg = b.db->registry();
  AttrId customer = *reg.Find("customer"), price = *reg.Find("price");
  AttrId out = reg.Intern("revenue_ablation");
  for (auto _ : state) {
    Factorisation f = *b.db->view("R1");
    int n_customer = f.tree().NodeOfAttr(customer);
    for (int swap : PlanRestructure(f.tree(), {}, {n_customer})) {
      ApplySwap(&f, swap);
    }
    GroupAggEnumerator e(f, {f.tree().NodeOfAttr(customer)},
                         {SortDir::kAsc}, {{AggFn::kSum, price}}, {out});
    Relation r{e.schema()};
    Tuple row(e.schema().arity());
    while (e.Next()) {
      e.Fill(&row);
      r.Add(row);
    }
    benchmark::DoNotOptimize(r);
  }
}

// (b) Planning time: greedy vs exhaustive on Q2's planner query.
void PlanGreedy(benchmark::State& state) {
  BenchDb& b = GetBenchDb(1);
  AttributeRegistry& reg = b.db->registry();
  PlannerQuery q;
  q.group = {*reg.Find("customer")};
  q.tasks = {{AggFn::kSum, *reg.Find("price")}};
  const FTree& tree = b.db->view("R1")->tree();
  for (auto _ : state) {
    FPlan plan = GreedyPlan(tree, reg, q);
    benchmark::DoNotOptimize(plan);
  }
}

void PlanExhaustive(benchmark::State& state) {
  BenchDb& b = GetBenchDb(1);
  AttributeRegistry& reg = b.db->registry();
  PlannerQuery q;
  q.group = {*reg.Find("customer")};
  q.tasks = {{AggFn::kSum, *reg.Find("price")}};
  const FTree& tree = b.db->view("R1")->tree();
  for (auto _ : state) {
    auto plan = ExhaustivePlan(tree, reg, q);
    benchmark::DoNotOptimize(plan);
  }
}

// (c) Q13 three ways: swap-based partial re-sort of the factorised R3,
// re-factorising Orders from scratch in the target order, and flat sort.
void ResortBySwap(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  AttributeRegistry& reg = b.db->registry();
  AttrId customer = *reg.Find("customer"), date = *reg.Find("date"),
         package = *reg.Find("package");
  for (auto _ : state) {
    Factorisation f = *b.db->view("R3");
    std::vector<int> o = {f.tree().NodeOfAttr(customer),
                          f.tree().NodeOfAttr(date),
                          f.tree().NodeOfAttr(package)};
    for (int swap : PlanRestructure(f.tree(), o, {})) ApplySwap(&f, swap);
    Relation r = EnumerateToRelation(
        f, OrderedVisitSequence(f.tree(), o),
        std::vector<SortDir>(3, SortDir::kAsc));
    benchmark::DoNotOptimize(r);
  }
}

void ResortFromScratch(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  AttributeRegistry& reg = b.db->registry();
  AttrId customer = *reg.Find("customer"), date = *reg.Find("date"),
         package = *reg.Find("package");
  const Relation* orders = b.db->relation("Orders");
  for (auto _ : state) {
    Factorisation f = FactoriseRelation(*orders, {customer, date, package});
    Relation r = EnumerateToRelation(
        f, f.tree().TopologicalOrder(),
        std::vector<SortDir>(3, SortDir::kAsc));
    benchmark::DoNotOptimize(r);
  }
}

void ResortFlatSort(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  AttributeRegistry& reg = b.db->registry();
  AttrId customer = *reg.Find("customer"), date = *reg.Find("date"),
         package = *reg.Find("package");
  const Relation* orders = b.db->relation("Orders");
  for (auto _ : state) {
    Relation r = *orders;
    r.SortBy({{customer, SortDir::kAsc},
              {date, SortDir::kAsc},
              {package, SortDir::kAsc}});
    benchmark::DoNotOptimize(r);
  }
}

// (d) View construction: the one-off cost of materialising the factorised
// view from the base relations (amortised over the read-optimised
// workload), versus materialising the flat join.
void BuildFactorisedView(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  Database* db = b.db.get();
  std::vector<const Relation*> rels = {db->relation("Orders"),
                                       db->relation("Packages"),
                                       db->relation("Items")};
  FTree tree = ChooseFTree(rels);
  int64_t singletons = 0;
  for (auto _ : state) {
    Factorisation f = FactoriseJoin(tree, rels);
    singletons = f.CountSingletons();
    benchmark::DoNotOptimize(f);
  }
  state.counters["singletons"] = static_cast<double>(singletons);
}

void BuildFlatJoin(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  Database* db = b.db.get();
  std::vector<const Relation*> rels = {db->relation("Orders"),
                                       db->relation("Packages"),
                                       db->relation("Items")};
  int64_t tuples = 0;
  for (auto _ : state) {
    Relation r = NaturalJoinAll(rels);
    tuples = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}

// (e) Subexpression sharing (the §8 extension): compression time and the
// stored-singleton ratio on the workload view.
void CompressView(benchmark::State& state) {
  BenchDb& b = GetBenchDb(kScale);
  int64_t logical = 0, stored = 0;
  for (auto _ : state) {
    Factorisation f = *b.db->view("R1");
    CompressInPlace(&f);
    logical = f.CountSingletons();
    stored = CountStoredSingletons(f);
    benchmark::DoNotOptimize(f);
  }
  state.counters["logical_singletons"] = static_cast<double>(logical);
  state.counters["stored_singletons"] = static_cast<double>(stored);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("ablation/partial_aggregation:on",
                               PartialAggregationOn)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/partial_aggregation:off",
                               PartialAggregationOff)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/planner:greedy", PlanGreedy)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("ablation/planner:exhaustive",
                               PlanExhaustive)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("ablation/q13_resort:swap", ResortBySwap)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/q13_resort:refactorise",
                               ResortFromScratch)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/q13_resort:flat_sort",
                               ResortFlatSort)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/materialise:factorised",
                               BuildFactorisedView)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/materialise:flat_join",
                               BuildFlatJoin)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("ablation/compress_view", CompressView)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("ablation", argc, argv);
}
