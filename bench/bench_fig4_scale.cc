// Figure 4: wall-clock time of Q2 and Q3 on the factorised materialised
// view R1 as the dataset scale grows, for FDB and the relational baseline
// (sort-based grouping ≈ SQLite, hash-based ≈ PostgreSQL). The paper's
// claim: the gap follows the succinctness gap and widens with scale.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace fdb {
namespace bench {
namespace {

void ReportShape(benchmark::State& state, const BenchDb& b) {
  state.counters["view_singletons"] =
      static_cast<double>(b.view_singletons);
  state.counters["flat_tuples"] = static_cast<double>(b.flat_tuples);
}

void FdbAgg(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  int q = static_cast<int>(state.range(1));
  BenchDb& b = GetBenchDb(scale);
  FdbEngine engine(b.db.get());
  BoundQuery query = Bind(ParseSql(AggSql(q, "R1")), b.db.get());
  int64_t rows = 0;
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    rows = r.flat.size();
    benchmark::DoNotOptimize(r.flat);
  }
  state.counters["rows"] = static_cast<double>(rows);
  ReportShape(state, b);
}

void RdbAgg(benchmark::State& state, RdbOptions::Grouping grouping) {
  int scale = static_cast<int>(state.range(0));
  int q = static_cast<int>(state.range(1));
  BenchDb& b = GetBenchDb(scale);
  RdbEngine engine(b.db.get());
  RdbOptions opt;
  opt.grouping = grouping;
  BoundQuery query = Bind(ParseSql(AggSql(q, "R1flat")), b.db.get());
  int64_t rows = 0;
  for (auto _ : state) {
    RdbResult r = engine.Execute(query, opt);
    rows = r.flat.size();
    benchmark::DoNotOptimize(r.flat);
  }
  state.counters["rows"] = static_cast<double>(rows);
  ReportShape(state, b);
}

void RdbSort(benchmark::State& state) {
  RdbAgg(state, RdbOptions::Grouping::kSort);
}
void RdbHash(benchmark::State& state) {
  RdbAgg(state, RdbOptions::Grouping::kHash);
}

void RegisterAll() {
  for (int q : {2, 3}) {
    for (int scale : {1, 2, 4, 8}) {
      std::string suffix = "/Q" + std::to_string(q) + "/scale:" +
                           std::to_string(scale);
      benchmark::RegisterBenchmark(("fig4/FDB" + suffix).c_str(), FdbAgg)
          ->Args({scale, q})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("fig4/SQLite-like" + suffix).c_str(),
                                   RdbSort)
          ->Args({scale, q})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("fig4/PSQL-like" + suffix).c_str(),
                                   RdbHash)
          ->Args({scale, q})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("fig4_scale", argc, argv);
}
