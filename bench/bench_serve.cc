// Many-clients serve benchmark: drives a live in-process fdb_server
// (real TCP loopback sockets, the full wire protocol) with N concurrent
// closed-loop clients running a mixed insert+query workload, and reports
// client-observed latency (p50/p99) and statement throughput.
//
// Two phases:
//   mix        — default admission (4 executing, deep queue): every
//                statement is admitted; measures the serving overhead
//                and queueing behaviour under a healthy load.
//   saturate   — one execution slot, zero queue: most statements bounce
//                with a typed Retry + backoff hint; measures that an
//                overloaded server rejects in bounded time instead of
//                hanging or buffering unboundedly.
//
// Self-timed (obs::NowNs on the client side — the numbers are what a
// client experiences, including the wire round trip). Emits
// BENCH_serve_mix.json; exits 1 on any hard failure (error frames,
// transport errors, stalls).
//
// Usage: bench_serve [clients] [statements-per-client] [scale]
//        (defaults: 8 clients, 40 statements, scale 3)

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/engine/database.h"
#include "fdb/obs/metrics.h"
#include "fdb/serve/client.h"
#include "fdb/serve/server.h"
#include "fdb/workload/generator.h"

using namespace fdb;

namespace {

double PercentileMs(std::vector<double>* lat_ms, double p) {
  if (lat_ms->empty()) return 0.0;
  std::sort(lat_ms->begin(), lat_ms->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(lat_ms->size() - 1));
  return (*lat_ms)[idx];
}

struct PhaseResult {
  int clients = 0;
  int64_t oks = 0;
  int64_t retries = 0;
  int64_t hard_failures = 0;
  double wall_seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput = 0;  // admitted statements per second
};

/// Runs `clients` closed-loop client threads against `port`, each
/// issuing `statements` from the mixed workload (2 reads : 1 write).
/// Rejected statements are retried after the server's hint, up to 3
/// times, then counted as a retry-exhausted drop (not a hard failure —
/// that is the saturation phase working as designed).
PhaseResult RunPhase(int port, int clients, int statements, int max_retries) {
  PhaseResult out;
  out.clients = clients;
  std::mutex merge_mu;
  std::vector<double> all_lat_ms;
  std::atomic<int64_t> oks{0}, retries{0}, hard{0};

  int64_t wall0 = obs::NowNs();
  std::vector<std::thread> threads;
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&, ci] {
      std::vector<double> lat_ms;
      try {
        serve::Client c;
        c.Connect("127.0.0.1", port);
        for (int q = 0; q < statements; ++q) {
          std::string stmt;
          if (q % 3 == 2) {
            stmt = "INSERT INTO V VALUES (" + std::to_string(1000 + ci) +
                   ", " + std::to_string(ci * 100000 + q) + ")";
          } else if (q % 2 == 0) {
            stmt =
                "SELECT customer, sum(price) AS revenue FROM R1 "
                "GROUP BY customer ORDER BY revenue DESC";
          } else {
            stmt = "SELECT customer, item FROM R1";
          }
          for (int attempt = 0; attempt <= max_retries; ++attempt) {
            int64_t t0 = obs::NowNs();
            serve::Client::Result res = c.Query(stmt);
            if (res.ok) {
              lat_ms.push_back(
                  static_cast<double>(obs::NowNs() - t0) / 1e6);
              oks.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (res.retry) {
              retries.fetch_add(1, std::memory_order_relaxed);
              if (attempt < max_retries) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    static_cast<int64_t>(res.retry_info.retry_after_ms)));
              }
              continue;
            }
            std::cerr << "statement failed: " << res.error.message << "\n";
            hard.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        c.Close();
      } catch (const std::exception& e) {
        std::cerr << "client " << ci << ": " << e.what() << "\n";
        hard.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> g(merge_mu);
      all_lat_ms.insert(all_lat_ms.end(), lat_ms.begin(), lat_ms.end());
    });
  }
  for (std::thread& t : threads) t.join();

  out.wall_seconds = static_cast<double>(obs::NowNs() - wall0) / 1e9;
  out.oks = oks.load();
  out.retries = retries.load();
  out.hard_failures = hard.load();
  out.p50_ms = PercentileMs(&all_lat_ms, 0.50);
  out.p99_ms = PercentileMs(&all_lat_ms, 0.99);
  out.throughput =
      out.wall_seconds > 0 ? static_cast<double>(out.oks) / out.wall_seconds
                           : 0;
  return out;
}

void FillDb(Database* db, int scale) {
  InstallWorkload(db, SmallParams(scale), "R1");
  AttrId a = db->Attr("va"), b = db->Attr("vb");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < 50; ++x) r.Add({Value(x / 10), Value(x)});
  db->AddView("V", FactoriseRelation(r, {a, b}));
}

}  // namespace

int main(int argc, char** argv) {
  int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  if (clients < 1) clients = 1;
  int statements = argc > 2 ? std::atoi(argv[2]) : 40;
  if (statements < 1) statements = 1;
  int scale = argc > 3 ? std::atoi(argv[3]) : 3;
  if (scale < 1) scale = 1;

  obs::SetMetricsEnabled(true);

  // Phase 1: healthy server — default concurrency, queue deep enough
  // that nothing is rejected.
  Database db;
  FillDb(&db, scale);
  serve::ServerConfig cfg;
  cfg.admission.max_concurrent = 4;
  cfg.admission.max_queue = 256;
  cfg.admission.queue_wait_ms = 60000;
  serve::Server server(&db, cfg);
  server.Start();
  std::cout << "mix phase: " << clients << " clients x " << statements
            << " statements, scale " << scale << "\n";
  PhaseResult mix = RunPhase(server.port(), clients, statements,
                             /*max_retries=*/8);
  server.Shutdown();
  std::cout << "  ok=" << mix.oks << " retries=" << mix.retries
            << " p50=" << mix.p50_ms << "ms p99=" << mix.p99_ms
            << "ms throughput=" << mix.throughput << " stmt/s\n";

  // Phase 2: saturated server — one slot, no queue. The point is the
  // shape of the failure: typed Retry frames with hints, no hangs.
  Database db2;
  FillDb(&db2, scale);
  serve::ServerConfig sat_cfg;
  sat_cfg.admission.max_concurrent = 1;
  sat_cfg.admission.max_queue = 0;
  serve::Server sat_server(&db2, sat_cfg);
  sat_server.Start();
  std::cout << "saturate phase: 1 slot, queue 0\n";
  PhaseResult sat = RunPhase(sat_server.port(), clients, statements / 2,
                             /*max_retries=*/2);
  sat_server.Shutdown();
  std::cout << "  ok=" << sat.oks << " retries=" << sat.retries
            << " p50=" << sat.p50_ms << "ms p99=" << sat.p99_ms << "ms\n";

  bool pass = mix.hard_failures == 0 && sat.hard_failures == 0 &&
              mix.oks == static_cast<int64_t>(clients) * statements &&
              sat.retries > 0;

  std::ofstream json("BENCH_serve_mix.json");
  json << "{\n"
       << "  \"name\": \"serve_mix\",\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"statements_per_client\": " << statements << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"workload\": \"2 reads (group-by-revenue, wide projection) : "
          "1 autocommit insert\",\n"
       << "  \"mix_ok\": " << mix.oks << ",\n"
       << "  \"mix_retries\": " << mix.retries << ",\n"
       << "  \"mix_hard_failures\": " << mix.hard_failures << ",\n"
       << "  \"mix_wall_seconds\": " << mix.wall_seconds << ",\n"
       << "  \"mix_p50_ms\": " << mix.p50_ms << ",\n"
       << "  \"mix_p99_ms\": " << mix.p99_ms << ",\n"
       << "  \"mix_throughput_stmt_per_s\": " << mix.throughput << ",\n"
       << "  \"saturate_ok\": " << sat.oks << ",\n"
       << "  \"saturate_retries\": " << sat.retries << ",\n"
       << "  \"saturate_hard_failures\": " << sat.hard_failures << ",\n"
       << "  \"saturate_p50_ms\": " << sat.p50_ms << ",\n"
       << "  \"saturate_p99_ms\": " << sat.p99_ms << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
       << "  \"note\": \"client-observed latency over TCP loopback, "
          "closed loop; saturate phase uses max_concurrent=1 max_queue=0 "
          "so rejections are the expected outcome\"\n"
       << "}\n";
  std::cout << (pass ? "PASS" : "FAIL") << " — wrote BENCH_serve_mix.json\n";
  return pass ? 0 : 1;
}
