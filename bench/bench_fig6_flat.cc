// Figure 6: the AGG queries on *flat* input (no materialised view): FDB
// factorises the join first and still beats the naive relational plans,
// because SQLite/PostgreSQL do not use partial aggregation. With manually
// optimised eager-aggregation plans ("man"), the engines converge.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace fdb {
namespace bench {
namespace {

constexpr int kScale = 8;
const char* kFrom = "Orders, Packages, Items";

void FdbFromFlat(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  BoundQuery query = Bind(ParseSql(AggSql(q, kFrom)), b.db.get());
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    benchmark::DoNotOptimize(r.flat);
  }
}

void FdbFromFlatFactorisedOutput(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  FdbOptions opt;
  opt.factorised_output = true;
  BoundQuery query = Bind(ParseSql(AggSql(q, kFrom)), b.db.get());
  for (auto _ : state) {
    FdbResult r = engine.Execute(query, opt);
    benchmark::DoNotOptimize(r.factorised);
  }
}

void RdbNaive(benchmark::State& state, RdbOptions::Grouping grouping) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  RdbEngine engine(b.db.get());
  RdbOptions opt;
  opt.grouping = grouping;
  BoundQuery query = Bind(ParseSql(AggSql(q, kFrom)), b.db.get());
  for (auto _ : state) {
    RdbResult r = engine.Execute(query, opt);
    benchmark::DoNotOptimize(r.flat);
  }
}

void RdbSort(benchmark::State& state) {
  RdbNaive(state, RdbOptions::Grouping::kSort);
}
void RdbHash(benchmark::State& state) {
  RdbNaive(state, RdbOptions::Grouping::kHash);
}

void RdbEager(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  RdbEngine engine(b.db.get());
  RdbOptions opt;
  opt.eager = true;
  BoundQuery query = Bind(ParseSql(AggSql(q, kFrom)), b.db.get());
  for (auto _ : state) {
    RdbResult r = engine.Execute(query, opt);
    benchmark::DoNotOptimize(r.flat);
  }
}

void RegisterAll() {
  for (int q = 1; q <= 5; ++q) {
    std::string suffix = "/Q" + std::to_string(q);
    benchmark::RegisterBenchmark(("fig6/FDB-f_o" + suffix).c_str(),
                                 FdbFromFlatFactorisedOutput)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig6/FDB" + suffix).c_str(), FdbFromFlat)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig6/SQLite-like" + suffix).c_str(),
                                 RdbSort)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig6/SQLite-like-man" + suffix).c_str(),
                                 RdbEager)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig6/PSQL-like" + suffix).c_str(),
                                 RdbHash)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("fig6_flat", argc, argv);
}
