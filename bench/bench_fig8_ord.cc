// Figure 8: the ORD queries Q10–Q13, with and without LIMIT 10, at scale
// 16 in the paper. The claims: FDB reuses existing orders (Q10, Q11 need
// no work; Q12/Q13 need one swap — "partial sorting via restructuring"),
// while the relational engines re-sort from scratch; LIMIT 10 is nearly
// free for FDB because enumeration is constant-delay with at most one
// partial restructuring, but the relational engines still pay the sort.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace fdb {
namespace bench {
namespace {

constexpr int kScale = 8;

void Fdb(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  bool lim = state.range(1) != 0;
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  BoundQuery query =
      Bind(ParseSql(OrdSql(q, /*factorised=*/true, lim)), b.db.get());
  int64_t rows = 0;
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    rows = r.flat.size();
    benchmark::DoNotOptimize(r.flat);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void Rdb(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  bool lim = state.range(1) != 0;
  BenchDb& b = GetBenchDb(kScale);
  RdbEngine engine(b.db.get());
  BoundQuery query =
      Bind(ParseSql(OrdSql(q, /*factorised=*/false, lim)), b.db.get());
  for (auto _ : state) {
    RdbResult r = engine.Execute(query);
    benchmark::DoNotOptimize(r.flat);
  }
}

void RegisterAll() {
  for (int q = 10; q <= 13; ++q) {
    for (int lim : {0, 1}) {
      std::string suffix =
          "/Q" + std::to_string(q) + (lim ? "-lim10" : "");
      benchmark::RegisterBenchmark(("fig8/FDB" + suffix).c_str(), Fdb)
          ->Args({q, lim})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("fig8/RDB" + suffix).c_str(), Rdb)
          ->Args({q, lim})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("fig8_ord", argc, argv);
}
