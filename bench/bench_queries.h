#ifndef FDB_BENCH_BENCH_QUERIES_H_
#define FDB_BENCH_BENCH_QUERIES_H_

// The shared benchmark fixtures: the §6 database at a given scale and the
// paper's query texts (Figure 3 aggregates, the ORD experiments). Kept
// free of the google-benchmark dependency so the self-timed binaries
// (bench_storage, bench_parallel, bench_obs) can use the same workload
// definitions as the bench_fig* sweeps.

#include <map>
#include <memory>
#include <string>

#include "fdb/core/build.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/query/parser.h"
#include "fdb/workload/generator.h"

namespace fdb {
namespace bench {

// One benchmark database instance at a given scale, holding:
//   Orders/Packages/Items      base relations (§6 workload, SmallParams)
//   R1                         the factorised materialised view over T
//   R1flat                     the flat join (for the relational engines)
//   R2                         R1 factorised by (package, date, item, …)
//   R3                         Orders factorised by (date, customer, package)
struct BenchDb {
  std::unique_ptr<Database> db;
  int64_t view_singletons = 0;
  int64_t flat_tuples = 0;
};

inline BenchDb MakeBenchDb(int scale) {
  BenchDb b;
  b.db = std::make_unique<Database>();
  WorkloadParams params = SmallParams(scale);
  b.view_singletons = InstallWorkload(b.db.get(), params, "R1");

  Relation flat = b.db->view("R1")->Flatten();
  b.flat_tuples = flat.size();
  AttributeRegistry& reg = b.db->registry();
  AttrId customer = *reg.Find("customer"), date = *reg.Find("date"),
         package = *reg.Find("package"), item = *reg.Find("item"),
         price = *reg.Find("price");
  b.db->AddView("R2", FactoriseRelation(
                          flat, {package, date, item, customer, price}));
  b.db->AddView("R3", FactoriseRelation(*b.db->relation("Orders"),
                                        {date, customer, package}));
  // The flat side of the ORD experiments: materialised pre-sorted by
  // (package, date, item), the order of view R2 in the paper.
  Relation r2flat = flat;
  r2flat.SortBy({{package, SortDir::kAsc},
                 {date, SortDir::kAsc},
                 {item, SortDir::kAsc},
                 {customer, SortDir::kAsc},
                 {price, SortDir::kAsc}});
  b.db->AddRelation("R2flat", std::move(r2flat));
  b.db->AddRelation("R1flat", std::move(flat));
  return b;
}

// Scale-keyed cache so repeated benchmarks share the generated data.
inline BenchDb& GetBenchDb(int scale) {
  static std::map<int, BenchDb>* cache = new std::map<int, BenchDb>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    it = cache->emplace(scale, MakeBenchDb(scale)).first;
  }
  return it->second;
}

// The queries of Figure 3, phrased over `source` ("R1" or "R1flat").
inline std::string AggSql(int q, const std::string& source) {
  switch (q) {
    case 1:
      return "SELECT package, date, customer, sum(price) FROM " + source +
             " GROUP BY package, date, customer";
    case 2:
      return "SELECT customer, sum(price) AS revenue FROM " + source +
             " GROUP BY customer";
    case 3:
      return "SELECT date, package, sum(price) FROM " + source +
             " GROUP BY date, package";
    case 4:
      return "SELECT package, sum(price) FROM " + source +
             " GROUP BY package";
    case 5:
      return "SELECT sum(price) FROM " + source;
    default:
      return "";
  }
}

inline std::string AggOrdSql(int q, const std::string& source) {
  switch (q) {
    case 6:
      return "SELECT customer, sum(price) AS revenue FROM " + source +
             " GROUP BY customer ORDER BY customer";
    case 7:
      return "SELECT customer, sum(price) AS revenue FROM " + source +
             " GROUP BY customer ORDER BY revenue";
    case 8:
      return "SELECT date, package, sum(price) AS s FROM " + source +
             " GROUP BY date, package ORDER BY date, package";
    case 9:
      return "SELECT date, package, sum(price) AS s FROM " + source +
             " GROUP BY date, package ORDER BY package, date";
    default:
      return "";
  }
}

// ORD queries (Experiment 4). For FDB, Q10–Q12 run over the T-shaped view
// R1, which simultaneously supports the (package, date, item) and
// (package, item, date) orders (the paper's R2); the relational engines get
// the flat view pre-sorted by (package, date, item). Q13 re-sorts the
// sorted Orders view R3.
inline std::string OrdSql(int q, bool factorised, bool limit10) {
  std::string src = q == 13 ? (factorised ? "R3" : "Orders")
                            : (factorised ? "R1" : "R2flat");
  std::string sql;
  switch (q) {
    case 10:
      sql = "SELECT * FROM " + src + " ORDER BY package, date, item";
      break;
    case 11:
      sql = "SELECT * FROM " + src + " ORDER BY package, item, date";
      break;
    case 12:
      sql = "SELECT * FROM " + src + " ORDER BY date, package, item";
      break;
    case 13:
      sql = "SELECT * FROM " + src + " ORDER BY customer, date, package";
      break;
  }
  if (limit10) sql += " LIMIT 10";
  return sql;
}

}  // namespace bench
}  // namespace fdb

#endif  // FDB_BENCH_BENCH_QUERIES_H_
