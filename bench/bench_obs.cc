// Overhead microbench for the observability layer: runs the Figure-3
// aggregate sweep (Q1–Q5 over the factorised view R1, the fig4 query
// set) four ways — metrics compiled in but disabled, metrics enabled
// (the always-on production setting, which includes statement-store
// recording), metrics + the structured event log enabled, and fully
// traced (EXPLAIN ANALYZE) — and asserts the enabled-but-idle tax
// stays under 2% and the full statements+log tax under 3%. Primitive
// costs (one counter increment, one histogram record, one disabled
// SpanScope, one statement-store record) are measured alongside so the
// README's overhead numbers have a source.
//
// Configs are interleaved rep by rep so clock drift and thermal state
// hit all four equally, and the gates compare minima (the classic
// low-noise estimator) rather than means. This is the one bench that
// *must* time with a plain stopwatch (obs::NowNs): the baseline config
// runs with metrics disabled, so no registry histogram can observe it.
//
// Usage: bench_obs [scale] [reps]        (default scale 4, 15 reps)
// Emits BENCH_obs_overhead.json and BENCH_obs_stats.json; exits 1 if
// either overhead gate fails.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_queries.h"
#include "fdb/obs/log.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/statements.h"
#include "fdb/obs/trace.h"

using namespace fdb;

namespace {

double MinOf(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 4;
  if (scale < 1) scale = 1;
  int reps = argc > 2 ? std::atoi(argv[2]) : 15;
  if (reps < 3) reps = 3;
  const double kThresholdPct = 2.0;
  const double kStatsThresholdPct = 3.0;

  bench::BenchDb b = bench::MakeBenchDb(scale);
  FdbEngine engine(b.db.get());
  std::vector<BoundQuery> plain, traced;
  for (int q = 1; q <= 5; ++q) {
    BoundQuery bound = Bind(ParseSql(bench::AggSql(q, "R1")), b.db.get());
    plain.push_back(bound);
    bound.explain_analyze = true;
    traced.push_back(std::move(bound));
  }

  // One full sweep; returns total rows so results can be cross-checked.
  auto sweep = [&](const std::vector<BoundQuery>& queries) {
    int64_t rows = 0;
    for (const BoundQuery& q : queries) {
      rows += engine.Execute(q).flat.size();
    }
    return rows;
  };

  obs::SetMetricsEnabled(false);
  obs::SetLogEnabled(false);
  int64_t ref_rows = sweep(plain);
  sweep(plain);  // warm
  obs::SetMetricsEnabled(true);
  sweep(plain);  // warm (registers the engine metrics + statement rows)
  bool consistent = true;

  std::vector<double> t_disabled, t_enabled, t_stats, t_traced;
  for (int r = 0; r < reps; ++r) {
    obs::SetMetricsEnabled(false);
    int64_t t0 = obs::NowNs();
    int64_t rows = sweep(plain);
    t_disabled.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;

    obs::SetMetricsEnabled(true);
    t0 = obs::NowNs();
    rows = sweep(plain);
    t_enabled.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;

    // Everything short of tracing: metrics + statement store + event
    // log (slow-query checks armed on every completion).
    obs::SetLogEnabled(true);
    t0 = obs::NowNs();
    rows = sweep(plain);
    t_stats.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;
    obs::SetLogEnabled(false);

    t0 = obs::NowNs();
    rows = sweep(traced);
    t_traced.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;
  }
  obs::SetMetricsEnabled(true);

  double dis_min = MinOf(t_disabled), en_min = MinOf(t_enabled);
  double st_min = MinOf(t_stats), tr_min = MinOf(t_traced);
  double overhead_pct =
      dis_min > 0 ? (en_min / dis_min - 1.0) * 100.0 : 0.0;
  double stats_pct = dis_min > 0 ? (st_min / dis_min - 1.0) * 100.0 : 0.0;
  double traced_pct = dis_min > 0 ? (tr_min / dis_min - 1.0) * 100.0 : 0.0;

  // Primitive costs, amortised over a tight loop.
  const int64_t kPrimOps = 5'000'000;
  obs::Registry& reg = obs::Registry::Instance();
  obs::Counter& prim_c = reg.GetCounter("bench.obs_prim_ops");
  obs::Histogram& prim_h = reg.GetHistogram("bench.obs_prim_ns");
  auto prim_ns = [&](auto&& fn) {
    int64_t t0 = obs::NowNs();
    for (int64_t i = 0; i < kPrimOps; ++i) fn(i);
    return static_cast<double>(obs::NowNs() - t0) /
           static_cast<double>(kPrimOps);
  };
  obs::SetMetricsEnabled(false);
  double inc_disabled_ns = prim_ns([&](int64_t) { prim_c.Inc(); });
  double span_noop_ns = prim_ns([&](int64_t i) {
    obs::SpanScope span(nullptr, "noop");
    span.NoteInt("i", i);
  });
  // Statement-store primitives: the disabled path must be one relaxed
  // load, the enabled path one shard lock + map hit.
  const uint64_t kBenchFp = 0xB0B5FADEDBEEFull;
  const std::string bench_text = "SELECT bench FROM R1";
  double stmt_disabled_ns = prim_ns([&](int64_t i) {
    obs::StatementStore::Instance().Record(
        kBenchFp, bench_text, true, static_cast<uint64_t>(i), 1, false);
  });
  obs::SetMetricsEnabled(true);
  double inc_enabled_ns = prim_ns([&](int64_t) { prim_c.Inc(); });
  double record_enabled_ns =
      prim_ns([&](int64_t i) { prim_h.Record(static_cast<uint64_t>(i)); });
  double stmt_enabled_ns = prim_ns([&](int64_t i) {
    obs::StatementStore::Instance().Record(
        kBenchFp, bench_text, true, static_cast<uint64_t>(i), 1, false);
  });

  bool pass = consistent && overhead_pct < kThresholdPct &&
              stats_pct < kStatsThresholdPct;

  std::ofstream json("BENCH_obs_overhead.json");
  json << "{\n"
       << "  \"name\": \"obs_overhead\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"queries\": \"fig3 Q1-Q5 over R1 (fig4 sweep)\",\n"
       << "  \"view_singletons\": " << b.view_singletons << ",\n"
       << "  \"sweep_seconds_disabled\": " << dis_min << ",\n"
       << "  \"sweep_seconds_enabled\": " << en_min << ",\n"
       << "  \"sweep_seconds_traced\": " << tr_min << ",\n"
       << "  \"sweep_seconds_disabled_median\": " << MedianOf(t_disabled)
       << ",\n"
       << "  \"sweep_seconds_enabled_median\": " << MedianOf(t_enabled)
       << ",\n"
       << "  \"enabled_idle_overhead_pct\": " << overhead_pct << ",\n"
       << "  \"traced_overhead_pct\": " << traced_pct << ",\n"
       << "  \"threshold_pct\": " << kThresholdPct << ",\n"
       << "  \"counter_inc_disabled_ns\": " << inc_disabled_ns << ",\n"
       << "  \"counter_inc_enabled_ns\": " << inc_enabled_ns << ",\n"
       << "  \"histogram_record_enabled_ns\": " << record_enabled_ns
       << ",\n"
       << "  \"span_scope_null_trace_ns\": " << span_noop_ns << ",\n"
       << "  \"consistent\": " << (consistent ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
       << "  \"note\": \"minima over interleaved reps; enabled-idle = "
          "metrics registry live but no query traced (sharded relaxed "
          "counters only); traced = EXPLAIN ANALYZE, which also forces "
          "per-op stats collection\"\n"
       << "}\n";

  // The statements+log pass gets its own artefact: the cost of the full
  // introspection layer (statement store + armed slow-query checks)
  // over the always-on metrics baseline.
  std::ofstream stats_json("BENCH_obs_stats.json");
  stats_json << "{\n"
             << "  \"name\": \"obs_stats\",\n"
             << "  \"scale\": " << scale << ",\n"
             << "  \"reps\": " << reps << ",\n"
             << "  \"queries\": \"fig3 Q1-Q5 over R1 (fig4 sweep)\",\n"
             << "  \"sweep_seconds_disabled\": " << dis_min << ",\n"
             << "  \"sweep_seconds_stats\": " << st_min << ",\n"
             << "  \"sweep_seconds_stats_median\": " << MedianOf(t_stats)
             << ",\n"
             << "  \"stats_overhead_pct\": " << stats_pct << ",\n"
             << "  \"threshold_pct\": " << kStatsThresholdPct << ",\n"
             << "  \"statement_record_disabled_ns\": " << stmt_disabled_ns
             << ",\n"
             << "  \"statement_record_enabled_ns\": " << stmt_enabled_ns
             << ",\n"
             << "  \"pass\": "
             << (consistent && stats_pct < kStatsThresholdPct ? "true"
                                                              : "false")
             << ",\n"
             << "  \"note\": \"stats config = metrics + statement store + "
                "event log enabled (no tracing); statement_record_* is one "
                "StatementStore::Record on a warm fingerprint\"\n"
             << "}\n";

  std::cout << "obs overhead (scale " << scale << ", " << reps
            << " reps): disabled " << dis_min * 1e3 << " ms, enabled "
            << en_min * 1e3 << " ms (+" << overhead_pct << "%), stats+log "
            << st_min * 1e3 << " ms (+" << stats_pct << "%), traced "
            << tr_min * 1e3 << " ms (+" << traced_pct
            << "%); counter inc " << inc_disabled_ns << " ns off / "
            << inc_enabled_ns << " ns on, hist record "
            << record_enabled_ns << " ns, stmt record " << stmt_disabled_ns
            << " ns off / " << stmt_enabled_ns << " ns on, null SpanScope "
            << span_noop_ns << " ns"
            << (pass ? "" : "  [FAIL: over threshold]") << "\n";

  return pass ? 0 : 1;
}
