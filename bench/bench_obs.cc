// Overhead microbench for the observability layer: runs the Figure-3
// aggregate sweep (Q1–Q5 over the factorised view R1, the fig4 query
// set) three ways — metrics compiled in but disabled, metrics enabled
// (the always-on production setting), and fully traced (EXPLAIN
// ANALYZE) — and asserts the enabled-but-idle tax stays under 2%.
// Primitive costs (one counter increment, one histogram record, one
// disabled SpanScope) are measured alongside so the README's overhead
// numbers have a source.
//
// Configs are interleaved rep by rep so clock drift and thermal state
// hit all three equally, and the gate compares minima (the classic
// low-noise estimator) rather than means. This is the one bench that
// *must* time with a plain stopwatch (obs::NowNs): the baseline config
// runs with metrics disabled, so no registry histogram can observe it.
//
// Usage: bench_obs [scale] [reps]        (default scale 4, 15 reps)
// Emits BENCH_obs_overhead.json; exits 1 if the enabled-idle overhead
// exceeds the 2% threshold.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_queries.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/trace.h"

using namespace fdb;

namespace {

double MinOf(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 4;
  if (scale < 1) scale = 1;
  int reps = argc > 2 ? std::atoi(argv[2]) : 15;
  if (reps < 3) reps = 3;
  const double kThresholdPct = 2.0;

  bench::BenchDb b = bench::MakeBenchDb(scale);
  FdbEngine engine(b.db.get());
  std::vector<BoundQuery> plain, traced;
  for (int q = 1; q <= 5; ++q) {
    BoundQuery bound = Bind(ParseSql(bench::AggSql(q, "R1")), b.db.get());
    plain.push_back(bound);
    bound.explain_analyze = true;
    traced.push_back(std::move(bound));
  }

  // One full sweep; returns total rows so results can be cross-checked.
  auto sweep = [&](const std::vector<BoundQuery>& queries) {
    int64_t rows = 0;
    for (const BoundQuery& q : queries) {
      rows += engine.Execute(q).flat.size();
    }
    return rows;
  };

  obs::SetMetricsEnabled(false);
  int64_t ref_rows = sweep(plain);
  sweep(plain);  // warm
  obs::SetMetricsEnabled(true);
  sweep(plain);  // warm (registers the engine metrics)
  bool consistent = true;

  std::vector<double> t_disabled, t_enabled, t_traced;
  for (int r = 0; r < reps; ++r) {
    obs::SetMetricsEnabled(false);
    int64_t t0 = obs::NowNs();
    int64_t rows = sweep(plain);
    t_disabled.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;

    obs::SetMetricsEnabled(true);
    t0 = obs::NowNs();
    rows = sweep(plain);
    t_enabled.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;

    t0 = obs::NowNs();
    rows = sweep(traced);
    t_traced.push_back(static_cast<double>(obs::NowNs() - t0) / 1e9);
    consistent = consistent && rows == ref_rows;
  }
  obs::SetMetricsEnabled(true);

  double dis_min = MinOf(t_disabled), en_min = MinOf(t_enabled);
  double tr_min = MinOf(t_traced);
  double overhead_pct =
      dis_min > 0 ? (en_min / dis_min - 1.0) * 100.0 : 0.0;
  double traced_pct = dis_min > 0 ? (tr_min / dis_min - 1.0) * 100.0 : 0.0;

  // Primitive costs, amortised over a tight loop.
  const int64_t kPrimOps = 5'000'000;
  obs::Registry& reg = obs::Registry::Instance();
  obs::Counter& prim_c = reg.GetCounter("bench.obs_prim_ops");
  obs::Histogram& prim_h = reg.GetHistogram("bench.obs_prim_ns");
  auto prim_ns = [&](auto&& fn) {
    int64_t t0 = obs::NowNs();
    for (int64_t i = 0; i < kPrimOps; ++i) fn(i);
    return static_cast<double>(obs::NowNs() - t0) /
           static_cast<double>(kPrimOps);
  };
  obs::SetMetricsEnabled(false);
  double inc_disabled_ns = prim_ns([&](int64_t) { prim_c.Inc(); });
  double span_noop_ns = prim_ns([&](int64_t i) {
    obs::SpanScope span(nullptr, "noop");
    span.NoteInt("i", i);
  });
  obs::SetMetricsEnabled(true);
  double inc_enabled_ns = prim_ns([&](int64_t) { prim_c.Inc(); });
  double record_enabled_ns =
      prim_ns([&](int64_t i) { prim_h.Record(static_cast<uint64_t>(i)); });

  bool pass = consistent && overhead_pct < kThresholdPct;

  std::ofstream json("BENCH_obs_overhead.json");
  json << "{\n"
       << "  \"name\": \"obs_overhead\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"queries\": \"fig3 Q1-Q5 over R1 (fig4 sweep)\",\n"
       << "  \"view_singletons\": " << b.view_singletons << ",\n"
       << "  \"sweep_seconds_disabled\": " << dis_min << ",\n"
       << "  \"sweep_seconds_enabled\": " << en_min << ",\n"
       << "  \"sweep_seconds_traced\": " << tr_min << ",\n"
       << "  \"sweep_seconds_disabled_median\": " << MedianOf(t_disabled)
       << ",\n"
       << "  \"sweep_seconds_enabled_median\": " << MedianOf(t_enabled)
       << ",\n"
       << "  \"enabled_idle_overhead_pct\": " << overhead_pct << ",\n"
       << "  \"traced_overhead_pct\": " << traced_pct << ",\n"
       << "  \"threshold_pct\": " << kThresholdPct << ",\n"
       << "  \"counter_inc_disabled_ns\": " << inc_disabled_ns << ",\n"
       << "  \"counter_inc_enabled_ns\": " << inc_enabled_ns << ",\n"
       << "  \"histogram_record_enabled_ns\": " << record_enabled_ns
       << ",\n"
       << "  \"span_scope_null_trace_ns\": " << span_noop_ns << ",\n"
       << "  \"consistent\": " << (consistent ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << ",\n"
       << "  \"note\": \"minima over interleaved reps; enabled-idle = "
          "metrics registry live but no query traced (sharded relaxed "
          "counters only); traced = EXPLAIN ANALYZE, which also forces "
          "per-op stats collection\"\n"
       << "}\n";

  std::cout << "obs overhead (scale " << scale << ", " << reps
            << " reps): disabled " << dis_min * 1e3 << " ms, enabled "
            << en_min * 1e3 << " ms (+" << overhead_pct << "%), traced "
            << tr_min * 1e3 << " ms (+" << traced_pct
            << "%); counter inc " << inc_disabled_ns << " ns off / "
            << inc_enabled_ns << " ns on, hist record "
            << record_enabled_ns << " ns, null SpanScope " << span_noop_ns
            << " ns" << (pass ? "" : "  [FAIL: over threshold]") << "\n";

  return pass ? 0 : 1;
}
