// Thread-count sweep over the parallel execution runtime: builds the §6
// materialised view (FactoriseJoin over the T f-tree), evaluates the
// Figure-3 aggregate Q3 (GROUP BY date, package) and fully enumerates the
// view at 1/2/4/8 threads, reporting median wall time and the speedup
// over the 1-thread run. Results are checked for cross-thread-count
// consistency (identical Flatten bytes and aggregate rows) on every run.
//
// Usage: bench_parallel [scale] [reps]       (default scale 8, 5 reps)
// Emits BENCH_parallel_build.json in the working directory. No
// google-benchmark dependency: the sweep resizes the process-default
// TaskPool between phases, which google-benchmark's threaded registration
// does not model. Honest caveat: speedups are bounded by the machine —
// hardware_concurrency is recorded in the JSON.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_metrics.h"
#include "fdb/core/build.h"
#include "fdb/core/enumerate.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/exec/task_pool.h"
#include "fdb/obs/metrics.h"
#include "fdb/query/parser.h"
#include "fdb/workload/generator.h"

using namespace fdb;

namespace {

// Median of `reps` runs of fn (first run warms caches, not timed). Each
// rep's wall time is recorded into — and read back out of — the registry
// histogram bench.<name>_ns, so the JSON and live metrics agree.
template <typename Fn>
double MedianSeconds(const std::string& name, int reps, Fn fn) {
  fn();
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    times.push_back(bench::TimedIntoRegistry(name, fn));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct PhaseTimes {
  int threads = 0;
  double build_s = 0;
  double agg_s = 0;
  double enumerate_s = 0;
  uint64_t tasks_run = 0;
  uint64_t steals = 0;
};

}  // namespace

int main(int argc, char** argv) {
  obs::SetMetricsEnabled(true);  // timings are read back from the registry
  int scale = argc > 1 ? std::atoi(argv[1]) : 8;
  if (scale < 1) scale = 1;
  int reps = argc > 2 ? std::atoi(argv[2]) : 5;
  if (reps < 1) reps = 1;

  Database db;
  Workload w = GenerateWorkload(&db, SmallParams(scale));
  const std::vector<const Relation*> rels{&w.orders, &w.packages, &w.items};

  // Reference results at 1 thread, used to verify every other width.
  exec::TaskPool::SetDefaultThreads(1);
  Factorisation ref = FactoriseJoin(w.ftree, rels);
  int64_t singletons = ref.CountSingletons();
  Relation ref_flat = ref.Flatten();
  db.AddView("R1", ref);
  FdbEngine engine(&db);
  const std::string agg_sql =
      "SELECT date, package, sum(price) FROM R1 GROUP BY date, package";
  BoundQuery agg_query = Bind(ParseSql(agg_sql), &db);
  Relation ref_agg = engine.Execute(agg_query).flat;

  std::vector<PhaseTimes> sweep;
  bool consistent = true;
  for (int threads : {1, 2, 4, 8}) {
    exec::TaskPool::SetDefaultThreads(threads);
    PhaseTimes pt;
    pt.threads = threads;
    uint64_t tasks0 = bench::CounterValue("taskpool.tasks_run");
    uint64_t steals0 = bench::CounterValue("taskpool.steals");

    Factorisation built;
    pt.build_s = MedianSeconds("parallel_build", reps, [&] {
      built = FactoriseJoin(w.ftree, rels);
    });
    consistent = consistent && built.CountSingletons() == singletons;

    Relation agg;
    pt.agg_s = MedianSeconds("parallel_aggregate", reps, [&] {
      agg = engine.Execute(agg_query).flat;
    });
    consistent = consistent && agg.rows() == ref_agg.rows();

    Relation flat;
    std::vector<int> visit = built.tree().TopologicalOrder();
    std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
    pt.enumerate_s = MedianSeconds("parallel_enumerate", reps, [&] {
      flat = EnumerateToRelation(built, visit, dirs);
    });
    consistent = consistent && flat.rows() == ref_flat.rows();

    // Work-distribution counters for this width, from the TaskPool's own
    // registry instrumentation.
    pt.tasks_run = bench::CounterValue("taskpool.tasks_run") - tasks0;
    pt.steals = bench::CounterValue("taskpool.steals") - steals0;

    sweep.push_back(pt);
    std::cout << "threads " << threads << ": build " << pt.build_s * 1e3
              << " ms, agg " << pt.agg_s * 1e3 << " ms, enumerate "
              << pt.enumerate_s * 1e3 << " ms (" << pt.tasks_run
              << " tasks, " << pt.steals << " steals)"
              << (consistent ? "" : "  [MISMATCH]") << "\n";
  }
  exec::TaskPool::SetDefaultThreads(1);

  const PhaseTimes& base = sweep.front();
  std::ofstream json("BENCH_parallel_build.json");
  json << "{\n"
       << "  \"name\": \"parallel_build\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"view_singletons\": " << singletons << ",\n"
       << "  \"flat_tuples\": " << ref_flat.size() << ",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"consistent\": " << (consistent ? "true" : "false") << ",\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const PhaseTimes& pt = sweep[i];
    json << "    {\"threads\": " << pt.threads
         << ", \"build_seconds\": " << pt.build_s
         << ", \"aggregate_seconds\": " << pt.agg_s
         << ", \"enumerate_seconds\": " << pt.enumerate_s
         << ", \"build_speedup\": " << (pt.build_s > 0 ? base.build_s / pt.build_s : 0)
         << ", \"aggregate_speedup\": " << (pt.agg_s > 0 ? base.agg_s / pt.agg_s : 0)
         << ", \"enumerate_speedup\": "
         << (pt.enumerate_s > 0 ? base.enumerate_s / pt.enumerate_s : 0)
         << ", \"tasks_run\": " << pt.tasks_run
         << ", \"steals\": " << pt.steals
         << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  return consistent ? 0 : 1;
}
