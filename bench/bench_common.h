#ifndef FDB_BENCH_BENCH_COMMON_H_
#define FDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_metrics.h"
#include "bench_queries.h"

namespace fdb {
namespace bench {

/// Standard driver for every bench_* binary: registers nothing itself, but
/// runs google-benchmark with a machine-readable sidecar. Unless the caller
/// already passed --benchmark_out, results are also written as
/// BENCH_<name>.json in the working directory (google-benchmark JSON:
/// per-benchmark wall time in the declared unit plus registered counters
/// such as scale, view_singletons and flat_tuples) so perf trajectories can
/// be tracked across commits.
///
/// Workload fixtures and query texts live in bench_queries.h; the
/// registry-backed timing helpers (used by the self-timed binaries so
/// their JSON fields come from the metrics registry, not local
/// stopwatches) live in bench_metrics.h.
inline int RunBenchmarks(const std::string& name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_" + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Attaches the engine-side counters that moved since `before` (a
/// Registry snapshot is overkill here: callers name the counters they
/// care about) to a google-benchmark State, so the sidecar JSON reports
/// the same numbers a live \metrics dump would.
inline void ReportCounterDelta(benchmark::State& state,
                               const std::string& metric, uint64_t before) {
  state.counters[metric] =
      static_cast<double>(CounterValue(metric) - before);
}

}  // namespace bench
}  // namespace fdb

#endif  // FDB_BENCH_BENCH_COMMON_H_
