// Cold-open benchmark for the snapshot storage subsystem: measures how
// long Database::Save takes, how big the snapshot is, and how a cold
// Database::Open of the §6 materialised view compares against rebuilding
// the same view from CSV files (load three relations + FactoriseJoin) —
// the paper's read-optimised scenario restarting a serving process.
//
// Both sides are measured in one process right after the data was
// written, so the page cache is warm for the snapshot *and* the CSVs
// alike; "cold" means "no in-memory state reused", not "cold disk". The
// §6 workload is integer-only, so the open takes the dictionary identity
// fast path exactly as a fresh process would (nothing to intern either
// way) — the comparison is fair, just not a disk-latency measurement.
//
// A second phase measures incremental checkpointing: a grouped trie view
// receives K updates, Database::Checkpoint appends a delta, and the
// per-checkpoint bytes/time are recorded against K — demonstrating that
// a checkpoint costs O(changes) (the unions along the updated paths),
// not O(database). The streaming writer's peak transient allocation is
// recorded alongside the file size (the pre-streaming writer buffered
// the whole file plus the segment arrays: ~3x file size).
//
// A third phase measures WAL group commit: single-op autocommits (one
// fsync each) vs Begin/Commit groups (one fsync per group), plus the
// cold-open replay cost of the resulting log.
//
// Usage: bench_storage [scale]          (default 8)
// Emits BENCH_storage_open.json, BENCH_storage_checkpoint.json and
// BENCH_storage_wal.json in the working directory. No google-benchmark dependency: one timed run per
// phase is the honest measurement here (save/open are I/O-shaped,
// rebuild dominates by far).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/obs/metrics.h"
#include "fdb/storage/io_env.h"
#include "fdb/storage/snapshot.h"
#include "fdb/workload/generator.h"

using namespace fdb;
using bench::SubsystemSeconds;
using bench::TimedIntoRegistry;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  // All durations below are read back out of the metrics registry
  // (histogram sum deltas), not local stopwatches, so the JSON fields
  // and a live \metrics dump can never disagree.
  obs::SetMetricsEnabled(true);
  int scale = argc > 1 ? std::atoi(argv[1]) : 8;
  if (scale < 1) scale = 1;

  fs::path dir =
      fs::temp_directory_path() / ("fdb_bench_storage_" + std::to_string(scale));
  fs::create_directories(dir);
  std::string snap_path = (dir / "r1.fdbs").string();

  // --- build the workload once and stage its CSVs -------------------------
  Database db;
  int64_t singletons = InstallWorkload(&db, SmallParams(scale), "R1");
  for (const char* rel : {"Orders", "Packages", "Items"}) {
    SaveCsvRelation(*db.relation(rel), db.registry(),
                    (dir / (std::string(rel) + ".csv")).string());
  }

  // The serving artifact of the read-optimised scenario: the materialised
  // view, persisted. Base relations stay upstream (the CSVs); a serving
  // restart only needs the view back. Registry names are interned in id
  // order so the view's attribute ids stay valid.
  Database serving;
  for (AttrId id = 0; id < db.registry().size(); ++id) {
    serving.Attr(db.registry().Name(id));
  }
  serving.AddView("R1", *db.view("R1"));

  // --- save (streamed; record the writer's peak transient allocation) -----
  storage::SaveStats save_stats;
  double save_seconds = TimedIntoRegistry("storage_save", [&] {
    storage::SaveSnapshot(serving, snap_path, &save_stats);
  });
  auto save_bytes = static_cast<int64_t>(fs::file_size(snap_path));

  // --- rebuild from CSV (what a restart costs without snapshots) ----------
  Database rebuilt;
  double rebuild_seconds = TimedIntoRegistry("storage_rebuild_csv", [&] {
  for (const char* rel : {"Orders", "Packages", "Items"}) {
    LoadCsvRelation(&rebuilt, rel, (dir / (std::string(rel) + ".csv")).string());
  }
  {
    AttributeRegistry& reg = rebuilt.registry();
    AttrId customer = reg.Intern("customer"), date = reg.Intern("date"),
           package = reg.Intern("package"), item = reg.Intern("item"),
           price = reg.Intern("price");
    // The f-tree T of §6: package → {date → customer, item → price}.
    FTree t;
    int n_package = t.AddNode({package}, -1);
    int n_date = t.AddNode({date}, n_package);
    t.AddNode({customer}, n_date);
    int n_item = t.AddNode({item}, n_package);
    t.AddNode({price}, n_item);
    t.AddEdge({{customer, date, package},
               static_cast<double>(rebuilt.relation("Orders")->size()),
               "Orders"});
    t.AddEdge({{item, package},
               static_cast<double>(rebuilt.relation("Packages")->size()),
               "Packages"});
    t.AddEdge({{item, price},
               static_cast<double>(rebuilt.relation("Items")->size()),
               "Items"});
    rebuilt.AddView("R1",
                    FactoriseJoin(t, {rebuilt.relation("Orders"),
                                      rebuilt.relation("Packages"),
                                      rebuilt.relation("Items")}));
  }
  });
  int64_t rebuilt_singletons = rebuilt.view("R1")->CountSingletons();

  // --- cold open of the snapshot ------------------------------------------
  // End-to-end (Open + lazy view materialisation) from the bench's own
  // registry histogram; the file-parse share comes from the engine's
  // storage.open_ns histogram recorded inside Database::Open.
  Database opened;
  const Factorisation* view = nullptr;
  int64_t opened_tuples = -1;
  double open_parse_seconds = 0;
  double open_seconds = TimedIntoRegistry("storage_cold_open", [&] {
    open_parse_seconds = SubsystemSeconds("storage.open_ns", [&] {
      opened = Database::Open(snap_path);
    });
    view = opened.view("R1");  // lazy materialisation
    opened_tuples = view == nullptr ? -1 : view->CountTuples();
  });

  bool ok = view != nullptr && rebuilt_singletons == singletons &&
            opened_tuples == rebuilt.view("R1")->CountTuples();
  double speedup = open_seconds > 0 ? rebuild_seconds / open_seconds : 0;

  std::ofstream json("BENCH_storage_open.json");
  json << "{\n"
       << "  \"name\": \"storage_open\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"view_singletons\": " << singletons << ",\n"
       << "  \"save_bytes\": " << save_bytes << ",\n"
       << "  \"save_peak_transient_bytes\": "
       << save_stats.peak_transient_bytes << ",\n"
       << "  \"save_peak_to_file_ratio\": "
       << (save_bytes > 0 ? static_cast<double>(
                                save_stats.peak_transient_bytes) /
                                static_cast<double>(save_bytes)
                          : 0)
       << ",\n"
       << "  \"save_peak_includes_fixed_buffer_bytes\": 65536,\n"
       << "  \"save_seconds\": " << save_seconds << ",\n"
       << "  \"rebuild_from_csv_seconds\": " << rebuild_seconds << ",\n"
       << "  \"cold_open_seconds\": " << open_seconds << ",\n"
       << "  \"cold_open_parse_seconds\": " << open_parse_seconds << ",\n"
       << "  \"open_speedup_vs_rebuild\": " << speedup << ",\n"
       << "  \"consistent\": " << (ok ? "true" : "false") << ",\n"
       << "  \"note\": \"same-process measurement: page cache warm for "
          "snapshot and CSVs alike; integer-only workload takes the "
          "dictionary identity path as a fresh process would\"\n"
       << "}\n";

  std::cout << "scale " << scale << ": " << singletons << " singletons, save "
            << save_bytes << " B in " << save_seconds * 1e3
            << " ms (peak transient "
            << save_stats.peak_transient_bytes << " B); rebuild "
            << rebuild_seconds * 1e3 << " ms vs cold open "
            << open_seconds * 1e3 << " ms (" << speedup << "x)"
            << (ok ? "" : "  [MISMATCH]") << "\n";

  // --- incremental checkpointing: delta cost vs update count --------------
  // A grouped trie (100 tuples per root value) localises updates: an
  // insert rewrites the root union, one group's subtree and a leaf, so a
  // checkpoint's delta covers the touched unions, not the database.
  std::string ckpt_path = (dir / "ckpt.fdbs").string();
  int64_t rows = int64_t{20000} * scale;
  Database ckdb;
  {
    AttrId a = ckdb.Attr("ck_a"), b = ckdb.Attr("ck_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < rows; ++x) {
      r.Add({Value(x / 100), Value(x)});
    }
    ckdb.AddView("U", FactoriseRelation(r, {a, b}));
  }
  // Checkpoint durations come straight from the engine's own
  // storage.checkpoint_ns histogram — the bench reports exactly what the
  // storage layer measured about itself.
  storage::CheckpointInfo base_info;
  double base_seconds = SubsystemSeconds("storage.checkpoint_ns", [&] {
    base_info = ckdb.Checkpoint(ckpt_path);
  });

  struct CkptRow {
    int64_t updates;
    uint64_t bytes;
    double seconds;
  };
  std::vector<CkptRow> rows_out;
  int64_t next_b = rows + 1000;
  bool ckpt_ok = base_info.kind == storage::CheckpointInfo::kBase;
  int64_t total_inserted = 0;
  for (int64_t k : {16, 64, 256, 1024}) {
    // K updates spread over 8 groups: the touched-union set stays small
    // while K grows, so delta bytes track the changes.
    for (int64_t i = 0; i < k; ++i) {
      ckdb.UpdateView("U", [&](Factorisation* f) {
        InsertTuple(f, {Value(i % 8), Value(next_b++)});
      });
    }
    total_inserted += k;
    storage::CheckpointInfo info;
    double secs = SubsystemSeconds("storage.checkpoint_ns", [&] {
      info = ckdb.Checkpoint(ckpt_path);
    });
    ckpt_ok = ckpt_ok && info.kind == storage::CheckpointInfo::kDelta &&
              info.bytes * 4 < base_info.bytes;
    rows_out.push_back({k, info.bytes, secs});
  }
  {
    Database reloaded = Database::Open(ckpt_path);
    const Factorisation* u = reloaded.view("U");
    ckpt_ok = ckpt_ok && u != nullptr &&
              u->CountTuples() == rows + total_inserted;
  }

  std::ofstream cj("BENCH_storage_checkpoint.json");
  cj << "{\n"
     << "  \"name\": \"storage_checkpoint\",\n"
     << "  \"scale\": " << scale << ",\n"
     << "  \"view_rows\": " << rows << ",\n"
     << "  \"base_bytes\": " << base_info.bytes << ",\n"
     << "  \"base_seconds\": " << base_seconds << ",\n"
     << "  \"checkpoints\": [\n";
  for (size_t i = 0; i < rows_out.size(); ++i) {
    cj << "    {\"updates\": " << rows_out[i].updates
       << ", \"delta_bytes\": " << rows_out[i].bytes
       << ", \"seconds\": " << rows_out[i].seconds
       << ", \"delta_to_base_ratio\": "
       << static_cast<double>(rows_out[i].bytes) /
              static_cast<double>(base_info.bytes)
       << "}" << (i + 1 < rows_out.size() ? "," : "") << "\n";
  }
  cj << "  ],\n"
     << "  \"consistent\": " << (ckpt_ok ? "true" : "false") << ",\n"
     << "  \"note\": \"delta bytes cover the unions along the updated "
        "paths (root union + touched groups + new leaves), so they grow "
        "with the update count and stay far below the base size; the "
        "streaming writer's peak transient allocation is reported in "
        "BENCH_storage_open.json (save_peak_transient_bytes: node index "
        "+ emission order + a fixed 64 KiB write buffer, vs the "
        "~3x-file-size peak of the old build-then-write path — at small "
        "scales the constant buffer floor dominates the ratio, so "
        "compare against files well above 64 KiB)\"\n"
     << "}\n";

  std::cout << "checkpoint: base " << base_info.bytes << " B in "
            << base_seconds * 1e3 << " ms";
  for (const CkptRow& r : rows_out) {
    std::cout << "; K=" << r.updates << " -> " << r.bytes << " B in "
              << r.seconds * 1e3 << " ms";
  }
  std::cout << (ckpt_ok ? "" : "  [MISMATCH]") << "\n";

  // --- WAL group commit: durable throughput, one fsync per group ----------
  // Single-op autocommits pay one frame write + one fsync each; grouping G
  // ops into a Begin/Commit pays the same two calls for the whole group,
  // so durable throughput scales with G until the frame write dominates.
  std::string wal_path = (dir / "wal.fdbs").string();
  const int64_t kSingles = 500;
  const int64_t kGroup = 100;
  const int64_t kGroups = 50;
  storage::IoEnv& io = storage::IoEnv::Instance();

  Database wdb;
  {
    AttrId a = wdb.Attr("w_a"), b = wdb.Attr("w_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < 1000; ++x) r.Add({Value(x / 10), Value(x)});
    wdb.AddView("W", FactoriseRelation(r, {a, b}));
  }
  wdb.EnableWal(wal_path);
  int64_t next_key = 100000;

  // Fsync counts come from atomic snapshot-and-reset of the I/O shim's
  // per-site counters — unlike a Count()/ResetCounts() pair, no call can
  // slip between the read and the zeroing.
  io.SnapshotCounts(/*reset=*/true);
  double single_seconds = TimedIntoRegistry("wal_single_commits", [&] {
    for (int64_t i = 0; i < kSingles; ++i) {
      int64_t x = next_key++;
      wdb.Insert("W", {Value(x / 10), Value(x)});  // autocommit: 1 fsync each
    }
  });
  uint64_t single_fsyncs = io.SnapshotCounts(/*reset=*/true)["wal_fsync"];

  double batched_seconds = TimedIntoRegistry("wal_group_commits", [&] {
    for (int64_t g = 0; g < kGroups; ++g) {
      wdb.Begin();
      for (int64_t i = 0; i < kGroup; ++i) {
        int64_t x = next_key++;
        wdb.Insert("W", {Value(x / 10), Value(x)});
      }
      wdb.Commit();
    }
  });
  uint64_t batched_fsyncs = io.SnapshotCounts(/*reset=*/true)["wal_fsync"];
  uint64_t wal_bytes = wdb.WalStatus().wal_bytes;

  // Fsync latency distribution over both phases, from the registry.
  obs::HistogramSnapshot fsync_hist =
      obs::Registry::Instance().GetHistogram("io.fsync_ns").Snapshot();

  // Replay cost: a cold open re-reads base + the whole log.
  Database wre;
  int64_t replayed_tuples = 0;
  double replay_seconds = TimedIntoRegistry("wal_replay", [&] {
    wre = Database::Open(wal_path);
    replayed_tuples = wre.view("W")->CountTuples();
  });

  double single_tput = kSingles / single_seconds;
  double batched_tput = kGroup * kGroups / batched_seconds;
  double wal_speedup = batched_tput / single_tput;
  bool wal_ok = single_fsyncs == static_cast<uint64_t>(kSingles) &&
                batched_fsyncs == static_cast<uint64_t>(kGroups) &&
                replayed_tuples == 1000 + kSingles + kGroup * kGroups &&
                wal_speedup >= 10.0;

  std::ofstream wj("BENCH_storage_wal.json");
  wj << "{\n"
     << "  \"name\": \"storage_wal\",\n"
     << "  \"scale\": " << scale << ",\n"
     << "  \"single_commits\": " << kSingles << ",\n"
     << "  \"single_seconds\": " << single_seconds << ",\n"
     << "  \"single_ops_per_second\": " << single_tput << ",\n"
     << "  \"single_fsyncs\": " << single_fsyncs << ",\n"
     << "  \"group_size\": " << kGroup << ",\n"
     << "  \"groups\": " << kGroups << ",\n"
     << "  \"batched_seconds\": " << batched_seconds << ",\n"
     << "  \"batched_ops_per_second\": " << batched_tput << ",\n"
     << "  \"batched_fsyncs\": " << batched_fsyncs << ",\n"
     << "  \"batched_speedup\": " << wal_speedup << ",\n"
     << "  \"wal_bytes\": " << wal_bytes << ",\n"
     << "  \"fsyncs_recorded\": " << fsync_hist.count << ",\n"
     << "  \"fsync_p50_ns\": " << fsync_hist.Percentile(0.50) << ",\n"
     << "  \"fsync_p99_ns\": " << fsync_hist.Percentile(0.99) << ",\n"
     << "  \"replay_seconds\": " << replay_seconds << ",\n"
     << "  \"replayed_tuples\": " << replayed_tuples << ",\n"
     << "  \"consistent\": " << (wal_ok ? "true" : "false") << ",\n"
     << "  \"note\": \"one wal fsync per commit group (verified by the "
        "I/O shim's call counters); batched throughput also gains from "
        "the one-sorted-merge batch apply, which rebuilds each affected "
        "union once per group instead of once per op\"\n"
     << "}\n";

  std::cout << "wal: " << single_tput << " ops/s single-commit ("
            << single_fsyncs << " fsyncs) vs " << batched_tput
            << " ops/s batched x" << kGroup << " (" << batched_fsyncs
            << " fsyncs) = " << wal_speedup << "x; replay " << wal_bytes
            << " B in " << replay_seconds * 1e3 << " ms"
            << (wal_ok ? "" : "  [MISMATCH]") << "\n";

  fs::remove_all(dir);
  return ok && ckpt_ok && wal_ok ? 0 : 1;
}
