// Cold-open benchmark for the snapshot storage subsystem: measures how
// long Database::Save takes, how big the snapshot is, and how a cold
// Database::Open of the §6 materialised view compares against rebuilding
// the same view from CSV files (load three relations + FactoriseJoin) —
// the paper's read-optimised scenario restarting a serving process.
//
// Both sides are measured in one process right after the data was
// written, so the page cache is warm for the snapshot *and* the CSVs
// alike; "cold" means "no in-memory state reused", not "cold disk". The
// §6 workload is integer-only, so the open takes the dictionary identity
// fast path exactly as a fresh process would (nothing to intern either
// way) — the comparison is fair, just not a disk-latency measurement.
//
// Usage: bench_storage [scale]          (default 8)
// Emits BENCH_storage_open.json in the working directory. No
// google-benchmark dependency: one timed run per phase is the honest
// measurement here (save/open are I/O-shaped, rebuild dominates by far).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "fdb/core/build.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/workload/generator.h"

using namespace fdb;
namespace fs = std::filesystem;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 8;
  if (scale < 1) scale = 1;

  fs::path dir =
      fs::temp_directory_path() / ("fdb_bench_storage_" + std::to_string(scale));
  fs::create_directories(dir);
  std::string snap_path = (dir / "r1.fdbs").string();

  // --- build the workload once and stage its CSVs -------------------------
  Database db;
  int64_t singletons = InstallWorkload(&db, SmallParams(scale), "R1");
  for (const char* rel : {"Orders", "Packages", "Items"}) {
    SaveCsvRelation(*db.relation(rel), db.registry(),
                    (dir / (std::string(rel) + ".csv")).string());
  }

  // The serving artifact of the read-optimised scenario: the materialised
  // view, persisted. Base relations stay upstream (the CSVs); a serving
  // restart only needs the view back. Registry names are interned in id
  // order so the view's attribute ids stay valid.
  Database serving;
  for (AttrId id = 0; id < db.registry().size(); ++id) {
    serving.Attr(db.registry().Name(id));
  }
  serving.AddView("R1", *db.view("R1"));

  // --- save ---------------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  serving.Save(snap_path);
  double save_seconds = Seconds(t0);
  auto save_bytes = static_cast<int64_t>(fs::file_size(snap_path));

  // --- rebuild from CSV (what a restart costs without snapshots) ----------
  t0 = std::chrono::steady_clock::now();
  Database rebuilt;
  for (const char* rel : {"Orders", "Packages", "Items"}) {
    LoadCsvRelation(&rebuilt, rel, (dir / (std::string(rel) + ".csv")).string());
  }
  {
    AttributeRegistry& reg = rebuilt.registry();
    AttrId customer = reg.Intern("customer"), date = reg.Intern("date"),
           package = reg.Intern("package"), item = reg.Intern("item"),
           price = reg.Intern("price");
    // The f-tree T of §6: package → {date → customer, item → price}.
    FTree t;
    int n_package = t.AddNode({package}, -1);
    int n_date = t.AddNode({date}, n_package);
    t.AddNode({customer}, n_date);
    int n_item = t.AddNode({item}, n_package);
    t.AddNode({price}, n_item);
    t.AddEdge({{customer, date, package},
               static_cast<double>(rebuilt.relation("Orders")->size()),
               "Orders"});
    t.AddEdge({{item, package},
               static_cast<double>(rebuilt.relation("Packages")->size()),
               "Packages"});
    t.AddEdge({{item, price},
               static_cast<double>(rebuilt.relation("Items")->size()),
               "Items"});
    rebuilt.AddView("R1",
                    FactoriseJoin(t, {rebuilt.relation("Orders"),
                                      rebuilt.relation("Packages"),
                                      rebuilt.relation("Items")}));
  }
  double rebuild_seconds = Seconds(t0);
  int64_t rebuilt_singletons = rebuilt.view("R1")->CountSingletons();

  // --- cold open of the snapshot ------------------------------------------
  t0 = std::chrono::steady_clock::now();
  Database opened = Database::Open(snap_path);
  const Factorisation* view = opened.view("R1");  // lazy materialisation
  int64_t opened_tuples = view == nullptr ? -1 : view->CountTuples();
  double open_seconds = Seconds(t0);

  bool ok = view != nullptr && rebuilt_singletons == singletons &&
            opened_tuples == rebuilt.view("R1")->CountTuples();
  double speedup = open_seconds > 0 ? rebuild_seconds / open_seconds : 0;

  std::ofstream json("BENCH_storage_open.json");
  json << "{\n"
       << "  \"name\": \"storage_open\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"view_singletons\": " << singletons << ",\n"
       << "  \"save_bytes\": " << save_bytes << ",\n"
       << "  \"save_seconds\": " << save_seconds << ",\n"
       << "  \"rebuild_from_csv_seconds\": " << rebuild_seconds << ",\n"
       << "  \"cold_open_seconds\": " << open_seconds << ",\n"
       << "  \"open_speedup_vs_rebuild\": " << speedup << ",\n"
       << "  \"consistent\": " << (ok ? "true" : "false") << ",\n"
       << "  \"note\": \"same-process measurement: page cache warm for "
          "snapshot and CSVs alike; integer-only workload takes the "
          "dictionary identity path as a fresh process would\"\n"
       << "}\n";

  std::cout << "scale " << scale << ": " << singletons << " singletons, save "
            << save_bytes << " B in " << save_seconds * 1e3 << " ms; rebuild "
            << rebuild_seconds * 1e3 << " ms vs cold open "
            << open_seconds * 1e3 << " ms (" << speedup << "x)"
            << (ok ? "" : "  [MISMATCH]") << "\n";

  fs::remove_all(dir);
  return ok ? 0 : 1;
}
