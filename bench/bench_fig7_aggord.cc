// Figure 7: the AGG+ORD queries Q6–Q9 on the factorised view R1. The
// paper's claims: ordering adds only small overhead on top of aggregation —
// Q6's order falls out of Q2's evaluation for free, and re-ordering by the
// aggregation result (Q7) restructures only the small aggregated result.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace fdb {
namespace bench {
namespace {

constexpr int kScale = 8;

void Fdb(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  BoundQuery query = Bind(ParseSql(AggOrdSql(q, "R1")), b.db.get());
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    benchmark::DoNotOptimize(r.flat);
  }
}

void Rdb(benchmark::State& state, RdbOptions::Grouping grouping) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  RdbEngine engine(b.db.get());
  RdbOptions opt;
  opt.grouping = grouping;
  BoundQuery query = Bind(ParseSql(AggOrdSql(q, "R1flat")), b.db.get());
  for (auto _ : state) {
    RdbResult r = engine.Execute(query, opt);
    benchmark::DoNotOptimize(r.flat);
  }
}

void RdbSort(benchmark::State& state) {
  Rdb(state, RdbOptions::Grouping::kSort);
}
void RdbHash(benchmark::State& state) {
  Rdb(state, RdbOptions::Grouping::kHash);
}

void RegisterAll() {
  for (int q = 6; q <= 9; ++q) {
    std::string suffix = "/Q" + std::to_string(q);
    benchmark::RegisterBenchmark(("fig7/FDB" + suffix).c_str(), Fdb)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig7/SQLite-like" + suffix).c_str(),
                                 RdbSort)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig7/PSQL-like" + suffix).c_str(),
                                 RdbHash)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("fig7_aggord", argc, argv);
}
