// Figure 5: the five AGG queries (Q1–Q5) on the factorised materialised
// view R1 at a fixed scale, comparing FDB with factorised output (f/o),
// FDB with flat output, and the relational baselines. The paper's claim:
// f/o wins big on queries with large factorisable results (Q1), and the
// enumeration cost dominates only when the result itself is large.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace fdb {
namespace bench {
namespace {

constexpr int kScale = 8;

void FdbFlat(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  BoundQuery query = Bind(ParseSql(AggSql(q, "R1")), b.db.get());
  int64_t rows = 0;
  for (auto _ : state) {
    FdbResult r = engine.Execute(query);
    rows = r.flat.size();
    benchmark::DoNotOptimize(r.flat);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void FdbFactorisedOutput(benchmark::State& state) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  FdbEngine engine(b.db.get());
  FdbOptions opt;
  opt.factorised_output = true;
  BoundQuery query = Bind(ParseSql(AggSql(q, "R1")), b.db.get());
  int64_t singletons = 0;
  for (auto _ : state) {
    FdbResult r = engine.Execute(query, opt);
    singletons = r.result_singletons;
    benchmark::DoNotOptimize(r.factorised);
  }
  state.counters["result_singletons"] = static_cast<double>(singletons);
}

void Rdb(benchmark::State& state, RdbOptions::Grouping grouping) {
  int q = static_cast<int>(state.range(0));
  BenchDb& b = GetBenchDb(kScale);
  RdbEngine engine(b.db.get());
  RdbOptions opt;
  opt.grouping = grouping;
  BoundQuery query = Bind(ParseSql(AggSql(q, "R1flat")), b.db.get());
  for (auto _ : state) {
    RdbResult r = engine.Execute(query, opt);
    benchmark::DoNotOptimize(r.flat);
  }
}

void RdbSort(benchmark::State& state) {
  Rdb(state, RdbOptions::Grouping::kSort);
}
void RdbHash(benchmark::State& state) {
  Rdb(state, RdbOptions::Grouping::kHash);
}

void RegisterAll() {
  for (int q = 1; q <= 5; ++q) {
    std::string suffix = "/Q" + std::to_string(q);
    benchmark::RegisterBenchmark(("fig5/FDB-f_o" + suffix).c_str(),
                                 FdbFactorisedOutput)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig5/FDB" + suffix).c_str(), FdbFlat)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig5/SQLite-like" + suffix).c_str(),
                                 RdbSort)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig5/PSQL-like" + suffix).c_str(),
                                 RdbHash)
        ->Args({q})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fdb

int main(int argc, char** argv) {
  fdb::bench::RegisterAll();
  return fdb::bench::RunBenchmarks("fig5_agg", argc, argv);
}
