#include "fdb/core/ops/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fdb/core/build.h"
#include "fdb/core/ops/swap.h"
#include "fdb/engine/database.h"
#include "fdb/exec/task_pool.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;

TEST(EvalAggregateTest, CountWholePizzeria) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  EXPECT_EQ(EvalCount(f.tree(), f.tree().roots()[0], *f.roots()[0]), 13);
}

TEST(EvalAggregateTest, SumPriceWholePizzeria) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  // Σ price over R: Capricciosa orders 2×(6+1+1)=16, Hawaii 2×(6+1+2)=18,
  // Margherita 1×6=6 → 40.
  Value v = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kSum, p.attr("price")});
  EXPECT_EQ(v.as_int(), 40);
}

TEST(EvalAggregateTest, MinMaxPrice) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  EXPECT_EQ(EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kMin, p.attr("price")})
                .as_int(),
            1);
  EXPECT_EQ(EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kMax, p.attr("price")})
                .as_int(),
            6);
}

TEST(EvalAggregateTest, MinMaxOnStringAttribute) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  EXPECT_EQ(EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kMin, p.attr("customer")})
                .as_string(),
            "Lucia");
  EXPECT_EQ(EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kMax, p.attr("customer")})
                .as_string(),
            "Pietro");
}

TEST(ApplyAggregateTest, LocalAggregationExample1Scenario1) {
  // Query S (Example 1): replace the item/price subtree by sum(price) per
  // pizza: Capricciosa 8, Hawaii 9, Margherita 6 — f-tree T2.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  std::vector<int> ids =
      ApplyAggregate(&f, &p.db->registry(), p.n_item,
                     {{AggFn::kSum, p.attr("price")}});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(f.tree().SatisfiesPathConstraint());
  // The aggregate leaf sits under pizza, in item's former slot.
  EXPECT_EQ(f.tree().parent(ids[0]), p.n_pizza);
  const FactNode* root = f.roots()[0];
  ASSERT_EQ(root->size(), 3);  // Capricciosa, Hawaii, Margherita (sorted)
  int k = static_cast<int>(f.tree().children(p.n_pizza).size());
  int slot = f.tree().SlotOf(ids[0]);
  EXPECT_EQ(root->child(0, k, slot)->values[0].as_int(), 8);
  EXPECT_EQ(root->child(1, k, slot)->values[0].as_int(), 9);
  EXPECT_EQ(root->child(2, k, slot)->values[0].as_int(), 6);
}

TEST(ApplyAggregateTest, Example8RevenuePerCustomer) {
  // The full Example 1/8 pipeline for P = ̟customer;sum(price)(R):
  // γ_sumprice(item subtree); swap customer up twice; γ_count(date);
  // then the final sum over the subtree under customer gives
  // Lucia 9, Mario 22, Pietro 9.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  AttrId price = p.attr("price");
  ApplyAggregate(&f, &p.db->registry(), p.n_item, {{AggFn::kSum, price}});
  // Push customer above date and pizza (T2 → T3).
  ApplySwap(&f, p.n_customer);
  ApplySwap(&f, p.n_customer);
  ASSERT_EQ(f.tree().roots(), std::vector<int>{p.n_customer});
  EXPECT_TRUE(f.Validate());
  // Now count the dates per (customer, pizza) (T3 → T4).
  ApplyAggregate(&f, &p.db->registry(), p.n_date,
                 {{AggFn::kCount, kInvalidAttr}});
  EXPECT_TRUE(f.Validate());
  // Finally aggregate the whole subtree under customer on the fly.
  const FactNode* root = f.roots()[0];
  ASSERT_EQ(root->size(), 3);  // Lucia, Mario, Pietro
  const FTree& t = f.tree();
  int kc = static_cast<int>(t.children(p.n_customer).size());
  ASSERT_EQ(kc, 1);  // the pizza subtree
  int pizza_node = t.children(p.n_customer)[0];
  std::vector<int64_t> revenue;
  for (int i = 0; i < root->size(); ++i) {
    Value v = EvalAggregate(t, pizza_node, *root->child(i, kc, 0),
                            {AggFn::kSum, price});
    revenue.push_back(v.as_int());
  }
  EXPECT_EQ(revenue, (std::vector<int64_t>{9, 22, 9}));
}

TEST(ApplyAggregateTest, CountComposesOverCountExample6) {
  // Example 6: γ_count(item) on Pizzas gives counts 1/3/3 per pizza; a
  // subsequent count over (pizza, count(item)) must yield 7, not 3.
  Pizzeria p = MakePizzeria();
  AttrId pizza = p.attr("pizza"), item = p.attr("item");
  Factorisation f =
      FactoriseRelation(*p.db->relation("Pizzas"), {pizza, item});
  int n_item = f.tree().NodeOfAttr(item);
  ApplyAggregate(&f, &p.db->registry(), n_item,
                 {{AggFn::kCount, kInvalidAttr}});
  EXPECT_TRUE(f.Validate());
  EXPECT_EQ(EvalCount(f.tree(), f.tree().roots()[0], *f.roots()[0]), 7);
}

TEST(ApplyAggregateTest, SumAbsorbsInnerCountProposition2) {
  // γ_sumA(U) ∘ γ_count(V) = γ_sumA(U) for V ⊆ U, A ∉ V: computing the sum
  // with and without the partial count gives the same value.
  Pizzeria p = MakePizzeria();
  AttrId price = p.attr("price");

  Factorisation direct = p.view();
  Value expect =
      EvalAggregate(direct.tree(), direct.tree().roots()[0],
                    *direct.roots()[0], {AggFn::kSum, price});

  Factorisation partial = p.view();
  ApplyAggregate(&partial, &p.db->registry(), p.n_customer,
                 {{AggFn::kCount, kInvalidAttr}});
  Value with_partial =
      EvalAggregate(partial.tree(), partial.tree().roots()[0],
                    *partial.roots()[0], {AggFn::kSum, price});
  EXPECT_EQ(expect, with_partial);
}

TEST(ApplyAggregateTest, SumComposesOverInnerSum) {
  // γ_sumA(U) ∘ γ_sumA(V) = γ_sumA(U) for V ⊆ U.
  Pizzeria p = MakePizzeria();
  AttrId price = p.attr("price");
  Factorisation f = p.view();
  ApplyAggregate(&f, &p.db->registry(), p.n_price, {{AggFn::kSum, price}});
  Value v = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kSum, price});
  EXPECT_EQ(v.as_int(), 40);
}

TEST(ApplyAggregateTest, MinComposesOverInnerMin) {
  Pizzeria p = MakePizzeria();
  AttrId price = p.attr("price");
  Factorisation f = p.view();
  ApplyAggregate(&f, &p.db->registry(), p.n_item, {{AggFn::kMin, price}});
  Value v = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kMin, price});
  EXPECT_EQ(v.as_int(), 1);
}

TEST(ApplyAggregateTest, CompositeSumCountShareOneOperator) {
  // avg = (sum, count) evaluated by one operator: two sibling leaves whose
  // `over` sets coincide; later aggregates must interpret them correctly.
  Pizzeria p = MakePizzeria();
  AttrId price = p.attr("price");
  Factorisation f = p.view();
  std::vector<int> ids = ApplyAggregate(
      &f, &p.db->registry(), p.n_item,
      {{AggFn::kSum, price}, {AggFn::kCount, kInvalidAttr}});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(f.Validate());
  // Global sum must not double-count via the count sibling: still 40.
  Value s = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kSum, price});
  EXPECT_EQ(s.as_int(), 40);
  // Global count interprets the count leaf: 13 tuples.
  EXPECT_EQ(EvalCount(f.tree(), f.tree().roots()[0], *f.roots()[0]), 13);
}

TEST(ApplyAggregateTest, CountOverLoneSumNodeThrows) {
  // Without a count sibling, a sum leaf loses the multiplicity of its
  // range: counting over it is an invalid composition (Prop. 2).
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplyAggregate(&f, &p.db->registry(), p.n_item,
                 {{AggFn::kSum, p.attr("price")}});
  EXPECT_THROW(EvalCount(f.tree(), f.tree().roots()[0], *f.roots()[0]),
               std::invalid_argument);
}

TEST(ApplyAggregateTest, SumOverForeignMinNodeThrows) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplyAggregate(&f, &p.db->registry(), p.n_price,
                 {{AggFn::kMin, p.attr("price")}});
  EXPECT_THROW(
      EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                    {AggFn::kSum, p.attr("price")}),
      std::invalid_argument);
}

TEST(ApplyAggregateTest, SumWithoutSourceThrows) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  EXPECT_THROW(
      ApplyAggregate(&f, &p.db->registry(), p.n_date,
                     {{AggFn::kSum, p.attr("price")}}),
      std::invalid_argument);
}

TEST(ApplyAggregateTest, DuplicateTasksThrow) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  EXPECT_THROW(
      ApplyAggregate(&f, &p.db->registry(), p.n_item,
                     {{AggFn::kCount, kInvalidAttr},
                      {AggFn::kCount, kInvalidAttr}}),
      std::invalid_argument);
}

TEST(ApplyAggregateTest, AggregateOnEmptyFactorisationKeepsShape) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ea2"), b = reg.Intern("eb2");
  Relation r{RelSchema({a, b})};
  Factorisation f = FactoriseRelation(r, {a, b});
  ASSERT_TRUE(f.empty());
  int nb = f.tree().NodeOfAttr(b);
  ApplyAggregate(&f, &reg, nb, {{AggFn::kCount, kInvalidAttr}});
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.Validate());
}

TEST(EvalAggregateProductTest, CombinesIndependentParts) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  const FTree& t = f.tree();
  // Parts: the date subtree and the item subtree of the first pizza
  // (Capricciosa): count = 2 × 3 = 6, sum(price) = 8 × 2 = 16.
  const FactNode* root = f.roots()[0];
  std::vector<std::pair<int, const FactNode*>> parts = {
      {p.n_date, root->child(0, 2, 0)},
      {p.n_item, root->child(0, 2, 1)}};
  EXPECT_EQ(EvalAggregateProduct(t, parts, {AggFn::kCount, kInvalidAttr})
                .as_int(),
            6);
  EXPECT_EQ(
      EvalAggregateProduct(t, parts, {AggFn::kSum, p.attr("price")}).as_int(),
      16);
  EXPECT_EQ(
      EvalAggregateProduct(t, parts, {AggFn::kMin, p.attr("price")}).as_int(),
      1);
}

TEST(EvalAggregateProductTest, EmptyPartsCountIsOne) {
  FTree t;
  EXPECT_EQ(EvalAggregateProduct(t, {}, {AggFn::kCount, kInvalidAttr})
                .as_int(),
            1);
  EXPECT_THROW(EvalAggregateProduct(t, {}, {AggFn::kSum, 0}),
               std::invalid_argument);
}

// Double SUMs must be bit-identical at every thread count and on either
// side of the parallel-dispatch threshold: the serial recursion and the
// chunked top-level reduction share one fixed 256-entry association.
// (Regression for the PR-4 known-FP note: the serial reducer used a
// different association, so results drifted by an ulp across paths.)
TEST(EvalAggregateTest, DoubleSumBitIdenticalAcrossThreadCounts) {
  auto sum_with_threads = [](int n, int threads) {
    int before = exec::TaskPool::Default().num_threads();
    exec::TaskPool::SetDefaultThreads(threads);
    Database db;
    AttrId a = db.Attr("fp_a"), b = db.Attr("fp_b");
    FTree t;
    int na = t.AddNode({a}, -1);
    t.AddNode({b}, na);
    // Irrational-ish doubles make the accumulation order visible in the
    // last bits; one leaf per top entry keeps the carrier below the root
    // (the cstar recursion path).
    std::vector<Value> top;
    std::vector<FactPtr> leaves;
    for (int i = 0; i < n; ++i) {
      top.push_back(Value(int64_t{i}));
      leaves.push_back(MakeLeaf({Value(std::sqrt(i + 1.0))}));
    }
    Factorisation f(t, {MakeNode(top, leaves)});
    Value v = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                            {AggFn::kSum, b});
    exec::TaskPool::SetDefaultThreads(before);
    return v.as_double();
  };
  // Above the parallel threshold (2500 entries) and below it (600):
  // exact double equality, i.e. the same bits.
  double serial_big = sum_with_threads(2500, 1);
  double parallel_big = sum_with_threads(2500, 4);
  EXPECT_EQ(serial_big, parallel_big);
  double serial_small = sum_with_threads(600, 1);
  double parallel_small = sum_with_threads(600, 4);
  EXPECT_EQ(serial_small, parallel_small);
}

TEST(FindCarrierNodeTest, FindsAtomicAndAggregateCarriers) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  AttrId price = p.attr("price");
  EXPECT_EQ(FindCarrierNode(f.tree(), p.n_pizza, {AggFn::kSum, price}),
            p.n_price);
  std::vector<int> ids = ApplyAggregate(&f, &p.db->registry(), p.n_price,
                                        {{AggFn::kSum, price}});
  EXPECT_EQ(FindCarrierNode(f.tree(), p.n_pizza, {AggFn::kSum, price}),
            ids[0]);
  // A min task does not accept a sum node as carrier.
  EXPECT_EQ(FindCarrierNode(f.tree(), p.n_pizza, {AggFn::kMin, price}), -1);
}

}  // namespace
}  // namespace fdb
