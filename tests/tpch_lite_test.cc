#include "fdb/workload/tpch_lite.h"

#include <gtest/gtest.h>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/relational/rdb_ops.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::SameBag;

class TpchLiteTest : public ::testing::Test {
 protected:
  TpchLiteTest() {
    TpchLiteParams p;
    p.scale = 1;
    p.seed = 11;
    singletons_ = InstallTpchLite(&db_, p, "TL");
    Relation flat = db_.view("TL")->Flatten();
    flat_tuples_ = flat.size();
    db_.AddRelation("TLflat", std::move(flat));
  }

  void ExpectAgree(const std::string& select_list,
                   const std::string& tail) {
    FdbEngine fdb(&db_);
    RdbEngine rdb(&db_);
    FdbResult fr =
        fdb.ExecuteSql("SELECT " + select_list + " FROM TL " + tail);
    RdbResult rr =
        rdb.ExecuteSql("SELECT " + select_list + " FROM TLflat " + tail);
    EXPECT_TRUE(SameBag(fr.flat, rr.flat, db_.registry()))
        << select_list << " | " << tail;
  }

  Database db_;
  int64_t singletons_ = 0;
  int64_t flat_tuples_ = 0;
};

TEST_F(TpchLiteTest, TreeSatisfiesPathConstraintAndBranches) {
  const FTree& t = db_.view("TL")->tree();
  EXPECT_TRUE(t.SatisfiesPathConstraint());
  int branching = 0;
  for (int n : t.TopologicalOrder()) {
    branching += t.children(n).size() >= 2;
  }
  EXPECT_GE(branching, 3) << "custkey, orderkey and partkey all branch";
}

TEST_F(TpchLiteTest, ViewIsSmallerThanFlatJoin) {
  EXPECT_LT(singletons_, flat_tuples_ * 8);
  EXPECT_GT(flat_tuples_, 0);
  EXPECT_TRUE(db_.view("TL")->Validate());
  EXPECT_EQ(db_.view("TL")->CountTuples(), flat_tuples_);
}

TEST_F(TpchLiteTest, ViewMatchesRelationalJoin) {
  Relation join = NaturalJoinAll({db_.relation("Customer"),
                                  db_.relation("COrders"),
                                  db_.relation("Lineitem"),
                                  db_.relation("Part")});
  EXPECT_EQ(join.size(), flat_tuples_);
}

TEST_F(TpchLiteTest, RevenuePerNation) {
  ExpectAgree("nation, sum(extprice)", "GROUP BY nation");
}

TEST_F(TpchLiteTest, PricingSummaryPerBrand) {
  ExpectAgree("brand, count(*), sum(quantity), avg(extprice)",
              "GROUP BY brand");
}

TEST_F(TpchLiteTest, TopCustomersWithHavingAndOrder) {
  FdbEngine fdb(&db_);
  RdbEngine rdb(&db_);
  std::string sql =
      "SELECT custkey, sum(extprice) AS rev FROM TL GROUP BY custkey "
      "HAVING count(*) > 1 ORDER BY rev DESC, custkey LIMIT 10";
  std::string rsql =
      "SELECT custkey, sum(extprice) AS rev FROM TLflat GROUP BY custkey "
      "HAVING count(*) > 1 ORDER BY rev DESC, custkey LIMIT 10";
  FdbResult fr = fdb.ExecuteSql(sql);
  RdbResult rr = rdb.ExecuteSql(rsql);
  EXPECT_TRUE(SameBag(fr.flat, rr.flat, db_.registry()));
  EXPECT_TRUE(fr.flat.IsSortedBy(
      {{*db_.registry().Find("rev"), SortDir::kDesc},
       {*db_.registry().Find("custkey"), SortDir::kAsc}}));
}

TEST_F(TpchLiteTest, SelectiveDateFilter) {
  ExpectAgree("nation, count(*)",
              "WHERE odate < 100 AND quantity >= 10 GROUP BY nation");
}

TEST_F(TpchLiteTest, DeepGroupByAcrossBranches) {
  ExpectAgree("nation, brand, sum(quantity)",
              "GROUP BY nation, brand");
}

TEST_F(TpchLiteTest, OrderedEnumerationOnDeepTree) {
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM TL ORDER BY partkey, custkey LIMIT 50");
  EXPECT_EQ(r.flat.size(), std::min<int64_t>(50, flat_tuples_));
  EXPECT_TRUE(
      r.flat.IsSortedBy({{*db_.registry().Find("partkey"), SortDir::kAsc},
                         {*db_.registry().Find("custkey"), SortDir::kAsc}}));
}

TEST_F(TpchLiteTest, DeterministicUnderSeed) {
  Database other;
  TpchLiteParams p;
  p.scale = 1;
  p.seed = 11;
  int64_t s2 = InstallTpchLite(&other, p, "TL");
  EXPECT_EQ(s2, singletons_);
}

}  // namespace
}  // namespace fdb
