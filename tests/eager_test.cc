#include "fdb/relational/eager.h"

#include <gtest/gtest.h>

#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameBag;

// Oracle: join everything, then aggregate in one pass.
Relation Lazy(const std::vector<const Relation*>& rels,
              const std::vector<AttrId>& group,
              const std::vector<AggTask>& tasks,
              const std::vector<AttrId>& out_ids) {
  Relation join = NaturalJoinAll(rels);
  return SortGroupAggregate(join, group, tasks, out_ids);
}

TEST(EagerTest, RevenuePerCustomerMatchesLazy) {
  Pizzeria p = MakePizzeria();
  std::vector<const Relation*> rels = {p.db->relation("Orders"),
                                       p.db->relation("Pizzas"),
                                       p.db->relation("Items")};
  AttrId customer = p.attr("customer"), price = p.attr("price");
  AttrId out = p.db->registry().Intern("revenue_e");
  Relation eager = EagerAggregateJoin(rels, {customer},
                                      {{AggFn::kSum, price}}, {out},
                                      &p.db->registry());
  Relation lazy = Lazy(rels, {customer}, {{AggFn::kSum, price}}, {out});
  EXPECT_TRUE(SameBag(eager, lazy, p.db->registry()));
  // Spot values: Mario 22.
  for (const Tuple& t : eager.rows()) {
    if (t[0].as_string() == "Mario") {
      EXPECT_EQ(t[1].as_int(), 22);
    }
  }
}

TEST(EagerTest, CountStartsFromNonSourceRelation) {
  Pizzeria p = MakePizzeria();
  std::vector<const Relation*> rels = {p.db->relation("Orders"),
                                       p.db->relation("Pizzas"),
                                       p.db->relation("Items")};
  AttrId pizza = p.attr("pizza");
  AttrId out = p.db->registry().Intern("cnt_e");
  std::vector<AggTask> tasks = {{AggFn::kCount, kInvalidAttr}};
  Relation eager =
      EagerAggregateJoin(rels, {pizza}, tasks, {out}, &p.db->registry());
  Relation lazy = Lazy(rels, {pizza}, tasks, {out});
  EXPECT_TRUE(SameBag(eager, lazy, p.db->registry()));
}

TEST(EagerTest, LateSourceRelationScalesByCount) {
  // Sum over price, but the relation order starts from Orders, so Items
  // joins last and its values must be scaled by the running counts.
  Pizzeria p = MakePizzeria();
  std::vector<const Relation*> rels = {p.db->relation("Orders"),
                                       p.db->relation("Pizzas"),
                                       p.db->relation("Items")};
  AttrId out = p.db->registry().Intern("total_e");
  std::vector<AggTask> tasks = {{AggFn::kSum, p.attr("price")}};
  Relation eager =
      EagerAggregateJoin(rels, {}, tasks, {out}, &p.db->registry());
  ASSERT_EQ(eager.size(), 1);
  EXPECT_EQ(eager.rows()[0][0].as_int(), 40);
}

TEST(EagerTest, MinMaxUnaffectedByMultiplicity) {
  Pizzeria p = MakePizzeria();
  std::vector<const Relation*> rels = {p.db->relation("Orders"),
                                       p.db->relation("Pizzas"),
                                       p.db->relation("Items")};
  AttrId customer = p.attr("customer"), price = p.attr("price");
  std::vector<AttrId> out_ids = {p.db->registry().Intern("mn_e"),
                                 p.db->registry().Intern("mx_e")};
  std::vector<AggTask> tasks = {{AggFn::kMin, price}, {AggFn::kMax, price}};
  Relation eager = EagerAggregateJoin(rels, {customer}, tasks, out_ids,
                                      &p.db->registry());
  Relation lazy = Lazy(rels, {customer}, tasks, out_ids);
  EXPECT_TRUE(SameBag(eager, lazy, p.db->registry()));
}

TEST(EagerTest, MultipleGroupAttributes) {
  Pizzeria p = MakePizzeria();
  std::vector<const Relation*> rels = {p.db->relation("Orders"),
                                       p.db->relation("Pizzas"),
                                       p.db->relation("Items")};
  std::vector<AttrId> group = {p.attr("pizza"), p.attr("date")};
  AttrId out = p.db->registry().Intern("ps_e");
  std::vector<AggTask> tasks = {{AggFn::kSum, p.attr("price")}};
  Relation eager =
      EagerAggregateJoin(rels, group, tasks, {out}, &p.db->registry());
  Relation lazy = Lazy(rels, group, tasks, {out});
  EXPECT_TRUE(SameBag(eager, lazy, p.db->registry()));
}

TEST(EagerTest, EmptyInputGlobalCountIsZero) {
  Database db;
  AttrId a = db.Attr("ega"), b = db.Attr("egb");
  Relation r1{RelSchema({a, b})};
  Relation r2{RelSchema({b})};
  AttrId out = db.registry().Intern("c_eg");
  Relation eager = EagerAggregateJoin(
      {&r1, &r2}, {}, {{AggFn::kCount, kInvalidAttr}}, {out},
      &db.registry());
  ASSERT_EQ(eager.size(), 1);
  EXPECT_EQ(eager.rows()[0][0].as_int(), 0);
}

TEST(EagerTest, DisconnectedJoinGraphThrows) {
  Database db;
  AttrId a = db.Attr("dga"), b = db.Attr("dgb");
  Relation r1{RelSchema({a})};
  r1.Add({Value(1)});
  Relation r2{RelSchema({b})};
  r2.Add({Value(2)});
  EXPECT_THROW(
      EagerAggregateJoin({&r1, &r2}, {}, {{AggFn::kCount, kInvalidAttr}},
                         {db.registry().Intern("x_dg")}, &db.registry()),
      std::invalid_argument);
}

// Differential property across random chain databases and task mixes.
class EagerProperty : public ::testing::TestWithParam<int> {};

TEST_P(EagerProperty, EagerEqualsLazy) {
  Database db;
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam() + 900);
  spec.num_relations = 3;
  spec.rows = 30;
  spec.domain = 4;
  RandomDb rdb =
      GenerateChainDb(&db, "eg" + std::to_string(GetParam()), spec);
  std::vector<const Relation*> rels;
  for (const std::string& name : rdb.relation_names) {
    rels.push_back(db.relation(name));
  }
  // Group by the first attribute; aggregate over the last.
  AttrId g = *db.registry().Find(rdb.attr_names.front());
  AttrId src = *db.registry().Find(rdb.attr_names.back());
  std::vector<AggTask> tasks = {{AggFn::kSum, src},
                                {AggFn::kCount, kInvalidAttr},
                                {AggFn::kMin, src}};
  std::vector<AttrId> out_ids = {
      db.registry().Intern("p_s" + std::to_string(GetParam())),
      db.registry().Intern("p_c" + std::to_string(GetParam())),
      db.registry().Intern("p_m" + std::to_string(GetParam()))};
  Relation eager =
      EagerAggregateJoin(rels, {g}, tasks, out_ids, &db.registry());
  Relation lazy = Lazy(rels, {g}, tasks, out_ids);
  EXPECT_TRUE(SameBag(eager, lazy, db.registry()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace fdb
