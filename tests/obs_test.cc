#include "fdb/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "fdb/obs/log.h"
#include "fdb/obs/statements.h"
#include "fdb/obs/trace.h"
#include "fdb/storage/io_env.h"

// Global allocation counter for the zero-allocation assertions: this test
// binary replaces operator new/delete so a test can prove a code path
// performed no heap allocation at all.
static std::atomic<int64_t> g_allocs{0};

// GCC pairs these malloc-backed replacements up for -Wmismatched-new-delete
// and flags the internal malloc/free as mismatched with the replaced
// operators themselves; the pairing is by design here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fdb {
namespace obs {
namespace {

TEST(HistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);
  // Every bucket's bounds invert its index.
  for (int i = 0; i < detail::kHistBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(HistogramSnapshot::BucketLo(i)), i);
    EXPECT_EQ(Histogram::BucketIndex(HistogramSnapshot::BucketHi(i)), i);
  }
}

TEST(HistogramTest, PercentilesOnKnownDistribution) {
  SetMetricsEnabled(true);
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_DOUBLE_EQ(s.Mean(), 500.5);
  // Linear interpolation inside power-of-two buckets: p50 lands within a
  // few percent of the true median; the tail percentiles stay inside the
  // bucket that truly contains them.
  EXPECT_NEAR(s.Percentile(0.50), 500.0, 55.0);
  EXPECT_GE(s.Percentile(0.95), 512.0);
  EXPECT_LE(s.Percentile(0.95), 1023.0);
  EXPECT_GE(s.Percentile(0.99), s.Percentile(0.95));
  EXPECT_GE(s.Percentile(0.95), s.Percentile(0.50));
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  SetMetricsEnabled(false);
}

TEST(HistogramTest, BimodalDistribution) {
  SetMetricsEnabled(true);
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);
  for (int i = 0; i < 100; ++i) h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 200u);
  // p25 sits in the low mode's bucket [8,15], p75 in the high mode's
  // [512,1023].
  EXPECT_GE(s.Percentile(0.25), 8.0);
  EXPECT_LE(s.Percentile(0.25), 15.0);
  EXPECT_GE(s.Percentile(0.75), 512.0);
  EXPECT_LE(s.Percentile(0.75), 1023.0);
  SetMetricsEnabled(false);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(CounterTest, ShardMergeUnderHammer) {
  SetMetricsEnabled(true);
  Counter c;
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kOps = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kOps; ++i) {
        c.Inc();
        h.Record(static_cast<uint64_t>(i & 1023));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(h.Snapshot().count, static_cast<uint64_t>(kThreads) * kOps);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  SetMetricsEnabled(false);
}

TEST(GaugeTest, SetAddUpdateMax) {
  SetMetricsEnabled(true);
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(3);
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(5);  // smaller: no change
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(42);
  EXPECT_EQ(g.Value(), 42);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
  SetMetricsEnabled(false);
}

TEST(RegistryTest, RegistrationAndRender) {
  SetMetricsEnabled(true);
  Registry& reg = Registry::Instance();
  Counter& c = reg.GetCounter("obs_test.counter", "ops", "test counter");
  // Same name returns the same object (stable addresses).
  EXPECT_EQ(&c, &reg.GetCounter("obs_test.counter"));
  c.Inc(5);
  reg.GetGauge("obs_test.gauge", "items").Set(11);
  reg.GetHistogram("obs_test.hist", "ns").Record(100);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("obs_test.counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test.hist"), std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"name\":\"obs_test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);

  bool found = false;
  for (const MetricRow& row : reg.Snapshot()) {
    if (row.name == "obs_test.counter") {
      found = true;
      EXPECT_GE(row.value, 5);
      EXPECT_EQ(row.unit, "ops");
    }
  }
  EXPECT_TRUE(found);
  SetMetricsEnabled(false);
}

TEST(TraceTest, SpanNestingAndOrdering) {
  Trace tr;
  int a = tr.Begin("outer");
  tr.NoteInt(a, "k", 1);
  int b = tr.Begin("inner");
  tr.NoteStr(b, "what", "leaf");
  tr.End(b);
  (void)tr.AddComplete("retro", NowNs() - 1000, 500);
  tr.End(a);

  std::vector<TraceSpan> spans = tr.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, a);
  EXPECT_EQ(spans[1].depth, 1);
  // AddComplete while `outer` was open parents under it.
  EXPECT_EQ(spans[2].name, "retro");
  EXPECT_EQ(spans[2].parent, a);
  // Every span closed, outer covers inner.
  EXPECT_GE(spans[0].dur_ns, spans[1].dur_ns);
  EXPECT_GE(spans[1].dur_ns, 0);

  std::string report = ExplainReport(tr);
  size_t outer_at = report.find("outer:");
  size_t inner_at = report.find("  inner:");
  ASSERT_NE(outer_at, std::string::npos);
  ASSERT_NE(inner_at, std::string::npos);
  EXPECT_LT(outer_at, inner_at);  // parent precedes indented child
  EXPECT_NE(report.find("k=1"), std::string::npos);
  EXPECT_NE(report.find("what=leaf"), std::string::npos);

  std::string chrome = tr.ToChromeJson();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(chrome.find("\"args\":{\"what\":\"leaf\"}"), std::string::npos);
}

TEST(TraceTest, EndClosesAbandonedChildren) {
  Trace tr;
  int a = tr.Begin("outer");
  tr.Begin("abandoned");  // never explicitly ended (exception unwind)
  tr.End(a);
  for (const TraceSpan& s : tr.Spans()) {
    EXPECT_GE(s.dur_ns, 0) << s.name;
  }
}

TEST(ObsFastPathTest, DisabledPathsDoNotAllocate) {
  SetMetricsEnabled(false);
  Registry& reg = Registry::Instance();
  // Warm up: registration itself allocates, the hot path must not.
  Counter& c = reg.GetCounter("obs_test.fastpath");
  Histogram& h = reg.GetHistogram("obs_test.fastpath_ns");
  c.Inc();
  h.Record(1);

  int64_t before = g_allocs.load();
  for (int i = 0; i < 10000; ++i) {
    c.Inc();
    h.Record(static_cast<uint64_t>(i));
    SpanScope span(nullptr, "not-traced");
    span.NoteInt("k", i);
  }
  int64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0) << "disabled metrics/tracing fast path "
                                  "allocated on the heap";
}

TEST(ObsFastPathTest, DisabledMetricsRecordNothing) {
  SetMetricsEnabled(false);
  Counter c;
  Gauge g;
  Histogram h;
  c.Inc(100);
  g.Set(5);
  h.Record(42);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Snapshot().count, 0u);
}

// The satellite fix: snapshot+reset is one critical section, so summing
// successive snapshots under concurrent writers never loses a call.
TEST(IoEnvTest, SnapshotCountsIsAtomicUnderWriters) {
  storage::IoEnv& env = storage::IoEnv::Instance();
  env.ResetCounts();
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::atomic<bool> done{false};
  uint64_t harvested = 0;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&env] {
      for (int i = 0; i < kOps; ++i) {
        // A failing rename still counts the site before touching the fs.
        env.Rename("obs_test_site", "/nonexistent/a", "/nonexistent/b");
      }
    });
  }
  std::thread reaper([&] {
    while (!done.load()) {
      harvested += env.SnapshotCounts(/*reset=*/true)["obs_test_site"];
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true);
  reaper.join();
  harvested += env.SnapshotCounts(/*reset=*/true)["obs_test_site"];
  EXPECT_EQ(harvested, static_cast<uint64_t>(kThreads) * kOps);
}

TEST(JsonEscapeTest, QuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("C:\\temp\\x"), "C:\\\\temp\\\\x");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape(std::string("a\bb\fc")), "a\\bb\\fc");
  // Control characters without a short form take the \u00XX spelling.
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  // Embedded NUL must not truncate the string.
  std::string nul("x");
  nul.push_back('\0');
  nul.push_back('y');
  EXPECT_EQ(JsonEscape(nul), "x\\u0000y");
  // Non-ASCII bytes (UTF-8 payload) pass through untouched.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(TraceTest, ChromeJsonEscapesHostileNamesAndNotes) {
  Trace tr;
  int a = tr.Begin("outer \"quoted\"\\path");
  tr.NoteStr(a, "note", "line1\nline2\ttabbed");
  tr.NoteStr(a, "ctrl", std::string("bell\x07!"));
  tr.End(a);
  std::string chrome = tr.ToChromeJson();
  // Escaped forms present...
  EXPECT_NE(chrome.find("outer \\\"quoted\\\"\\\\path"), std::string::npos);
  EXPECT_NE(chrome.find("line1\\nline2\\ttabbed"), std::string::npos);
  EXPECT_NE(chrome.find("bell\\u0007!"), std::string::npos);
  // ...and no raw control characters survive anywhere in the output.
  for (char c : chrome) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character in Chrome-trace JSON";
  }
  // Quote parity: every '"' is a delimiter or properly escaped, so the
  // count of unescaped quotes must be even.
  size_t quotes = 0;
  for (size_t i = 0; i < chrome.size(); ++i) {
    if (chrome[i] == '"' && (i == 0 || chrome[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0u);
}

TEST(EventLogTest, ToJsonEscapesFields) {
  Event e;
  e.seq = 7;
  e.wall_us = 123;
  e.type = EventType::kSave;
  e.fields.push_back(F("path", "/tmp/\"odd\"\\dir\nname"));
  std::string json = e.ToJson();
  EXPECT_NE(json.find("\\\"odd\\\"\\\\dir\\nname"), std::string::npos);
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(ObsFastPathTest, DisabledStatementAndLogPathsDoNotAllocate) {
  SetMetricsEnabled(false);
  SetLogEnabled(false);
  // Warm up the immortal singletons: first use registers/allocates.
  StatementStore& store = StatementStore::Instance();
  EventLog& log = EventLog::Instance();
  const std::string text = "SELECT a FROM r";
  store.Record(0x1234, text, true, 100, 1, false);
  log.Clear();

  int64_t before = g_allocs.load();
  for (int i = 0; i < 10000; ++i) {
    // Disabled metrics: Record must bail before touching any shard.
    store.Record(0x1234, text, true, static_cast<uint64_t>(i), 1, false);
    // Emission sites gate on LogEnabled() before assembling fields, so
    // the disabled path is one relaxed load.
    if (LogEnabled()) {
      log.Emit(EventType::kSlowQuery, {F("latency_ms", i)});
    }
    ReportQueryCompletion(0x1234, text, true, static_cast<uint64_t>(i), 1,
                          false);
  }
  int64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0) << "disabled statement/log fast path "
                                  "allocated on the heap";
}

TEST(ScopedLatencyTest, RecordsWhenEnabled) {
  SetMetricsEnabled(true);
  Histogram h;
  { ScopedLatency lat(h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
  SetMetricsEnabled(false);
  { ScopedLatency lat(h); }
  EXPECT_EQ(h.Snapshot().count, 1u);  // disabled: nothing recorded
}

}  // namespace
}  // namespace obs
}  // namespace fdb